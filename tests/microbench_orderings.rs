//! Shape assertions for the paper's evaluation figures.
//!
//! The reproduction criterion is *shape*, not absolute cycle counts: who
//! wins, roughly by how much, and which way the trends run. These tests
//! pin the orderings the paper reports so regressions in the model show
//! up immediately. (Small parameters keep debug-mode runtime down; the
//! figure binaries use the full sweeps.)

use hmp::platform::Strategy;
use hmp::workloads::{run, MicrobenchParams, RunSpec, Scenario};

fn params(lines: u32, exec_time: u32) -> MicrobenchParams {
    MicrobenchParams {
        lines_per_iter: lines,
        exec_time,
        outer_iters: 6,
        ..Default::default()
    }
}

fn cycles(scenario: Scenario, strategy: Strategy, lines: u32, exec: u32, penalty: u64) -> u64 {
    let result =
        run(&RunSpec::new(scenario, strategy, params(lines, exec)).with_burst_penalty(penalty));
    assert!(
        result.is_clean_completion(),
        "{scenario}/{strategy}: {result}"
    );
    result.cycles_u64()
}

#[test]
fn fig5_wcs_proposed_beats_software_everywhere() {
    // Paper: "better performance than the software solution by at least
    // 2.51% for all WCS simulations."
    for lines in [1u32, 8, 32] {
        for exec in [1u32, 4] {
            let sw = cycles(Scenario::Worst, Strategy::SoftwareDrain, lines, exec, 13);
            let prop = cycles(Scenario::Worst, Strategy::Proposed, lines, exec, 13);
            assert!(
                prop < sw,
                "WCS lines={lines} exec={exec}: proposed {prop} !< software {sw}"
            );
        }
    }
}

#[test]
fn fig5_wcs_proposed_beats_cache_disabled_strongly_at_exec4() {
    // Paper: 57.66% improvement against cache-disabled at exec_time = 4.
    let disabled = cycles(Scenario::Worst, Strategy::CacheDisabled, 4, 4, 13);
    let proposed = cycles(Scenario::Worst, Strategy::Proposed, 4, 4, 13);
    let improvement = (disabled - proposed) as f64 / disabled as f64;
    assert!(
        improvement > 0.5,
        "expected a >50% improvement, got {:.1}%",
        improvement * 100.0
    );
}

#[test]
fn fig6_bcs_speedup_grows_with_line_count() {
    // Paper: "speedup increases as the number of accessed cache lines
    // increases", reaching 38.22% at 32 lines.
    let speedup = |lines| {
        let sw = cycles(Scenario::Best, Strategy::SoftwareDrain, lines, 1, 13);
        let prop = cycles(Scenario::Best, Strategy::Proposed, lines, 1, 13);
        (sw - prop) as f64 / sw as f64
    };
    let s1 = speedup(1);
    let s8 = speedup(8);
    let s32 = speedup(32);
    assert!(
        s1 < s8 && s8 < s32,
        "monotone growth: {s1:.3} {s8:.3} {s32:.3}"
    );
    assert!(
        (0.25..0.55).contains(&s32),
        "32-line BCS speedup should bracket the paper's 38.22%, got {:.1}%",
        s32 * 100.0
    );
}

#[test]
fn fig7_tcs_sits_between_wcs_and_bcs() {
    // The typical case conflicts ~10% of the time, so its proposed-vs-
    // software gain lands between the worst and best cases.
    let gain = |scenario| {
        let sw = cycles(scenario, Strategy::SoftwareDrain, 8, 1, 13);
        let prop = cycles(scenario, Strategy::Proposed, 8, 1, 13);
        (sw as f64 - prop as f64) / sw as f64
    };
    let wcs = gain(Scenario::Worst);
    let tcs = gain(Scenario::Typical);
    let bcs = gain(Scenario::Best);
    assert!(
        wcs <= tcs && tcs <= bcs,
        "expected WCS ≤ TCS ≤ BCS, got {wcs:.3} / {tcs:.3} / {bcs:.3}"
    );
}

#[test]
fn fig8_bcs_speedup_grows_with_miss_penalty() {
    // Paper: "As the miss penalty increases, the performance difference
    // also increases in favor of our approach", ~76% for BCS @ 32 lines
    // at a 96-cycle penalty.
    let speedup = |penalty| {
        let sw = cycles(Scenario::Best, Strategy::SoftwareDrain, 32, 1, penalty);
        let prop = cycles(Scenario::Best, Strategy::Proposed, 32, 1, penalty);
        (sw - prop) as f64 / sw as f64
    };
    let at13 = speedup(13);
    let at48 = speedup(48);
    let at96 = speedup(96);
    assert!(
        at13 < at48 && at48 < at96,
        "monotone in penalty: {at13:.3} {at48:.3} {at96:.3}"
    );
    assert!(
        at96 > 0.55,
        "high-penalty BCS speedup should approach the paper's ~76%, got {:.1}%",
        at96 * 100.0
    );
}

#[test]
fn both_cached_strategies_beat_cache_disabled() {
    for scenario in [Scenario::Worst, Scenario::Typical, Scenario::Best] {
        let disabled = cycles(scenario, Strategy::CacheDisabled, 8, 1, 13);
        let sw = cycles(scenario, Strategy::SoftwareDrain, 8, 1, 13);
        let prop = cycles(scenario, Strategy::Proposed, 8, 1, 13);
        assert!(
            sw < disabled,
            "{scenario}: software {sw} !< disabled {disabled}"
        );
        assert!(
            prop < disabled,
            "{scenario}: proposed {prop} !< disabled {disabled}"
        );
    }
}

#[test]
fn runs_are_deterministic() {
    let a = cycles(Scenario::Typical, Strategy::Proposed, 8, 2, 13);
    let b = cycles(Scenario::Typical, Strategy::Proposed, 8, 2, 13);
    assert_eq!(a, b);
}
