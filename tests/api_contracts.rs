//! API-level contracts: thread-safety markers and facade re-exports.

use hmp::bus::{Bus, BusStats, LockRegister};
use hmp::cache::{DataCache, LineState, ProtocolKind};
use hmp::core::{SnoopLogic, Wrapper, WrapperPolicy};
use hmp::cpu::{Cpu, Program};
use hmp::mem::{Addr, LatencyModel, Memory, MemoryMap};
use hmp::platform::{PlatformSpec, Report, RunResult};
use hmp::sim::{MetricsObserver, SpanTracker, SplitMix64, Stats, Watchdog};

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

/// Simulation state can be moved to worker threads (e.g. a parameter
/// sweep fanned out with `std::thread`) — everything is `Send`…
#[test]
fn simulation_types_are_send() {
    assert_send::<Bus>();
    assert_send::<BusStats>();
    assert_send::<LockRegister>();
    assert_send::<DataCache>();
    assert_send::<SnoopLogic>();
    assert_send::<Wrapper>();
    assert_send::<Cpu>();
    assert_send::<Program>();
    assert_send::<Memory>();
    assert_send::<MemoryMap>();
    assert_send::<PlatformSpec>();
    assert_send::<RunResult>();
    assert_send::<Report>();
    assert_send::<SplitMix64>();
    assert_send::<Stats>();
    assert_send::<SpanTracker>();
    assert_send::<MetricsObserver>();
    assert_send::<Watchdog>();
}

/// …and the plain-data types are `Sync` too.
#[test]
fn data_types_are_sync() {
    assert_sync::<Addr>();
    assert_sync::<LineState>();
    assert_sync::<ProtocolKind>();
    assert_sync::<LatencyModel>();
    assert_sync::<WrapperPolicy>();
    assert_sync::<BusStats>();
    assert_sync::<RunResult>();
    assert_sync::<Stats>();
}

/// The facade exposes every subsystem under its expected module name.
#[test]
fn facade_module_paths_resolve() {
    // Compilation of the `use` items above is the real assertion; a few
    // spot values keep the test observable.
    assert_eq!(ProtocolKind::ALL.len(), 5);
    assert_eq!(LatencyModel::TABLE4.line_burst().as_u64(), 13);
    assert_eq!(Addr::new(0x20).line_base(), Addr::new(0x20));
}

/// Parameter sweeps really can fan out across threads.
#[test]
fn runs_parallelise_across_threads() {
    use hmp::platform::Strategy;
    use hmp::workloads::{run, MicrobenchParams, RunSpec, Scenario};
    let handles: Vec<_> = [1u32, 2, 4]
        .into_iter()
        .map(|lines| {
            std::thread::spawn(move || {
                let params = MicrobenchParams {
                    lines_per_iter: lines,
                    outer_iters: 2,
                    ..Default::default()
                };
                run(&RunSpec::new(Scenario::Worst, Strategy::Proposed, params)).cycles_u64()
            })
        })
        .collect();
    let cycles: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(cycles[0] < cycles[1] && cycles[1] < cycles[2]);
}
