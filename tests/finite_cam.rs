//! System-level tests of the finite TAG CAM: capacity interrupts keep the
//! CAM a superset of the cache, so coherence survives a working set
//! larger than the CAM.

use hmp::cpu::{LockKind, ProgramBuilder};
use hmp::platform::{presets, Strategy};

#[test]
fn finite_cam_capacity_interrupts_preserve_coherence() {
    let (mut spec, lay) = presets::ppc_arm(Strategy::Proposed, LockKind::Turn, false);
    // A deliberately tiny CAM: 4 sets × 1 way = 4 tags, far below the
    // ARM's 16 KiB cache.
    spec.cpus[1].cam_geometry = Some((4, 1));
    let x = lay.shared_base;

    // The ARM writes 16 lines (4× the CAM capacity); every overflow
    // forces a drain interrupt that pushes the line to memory. The
    // PowerPC then reads all 16 lines and must see every value.
    let mut arm = ProgramBuilder::new();
    for l in 0..16 {
        arm = arm.write(x.add_lines(l), 0x5000 + l);
    }
    let arm = arm.build();
    let mut ppc = ProgramBuilder::new().delay(4000);
    for l in 0..16 {
        ppc = ppc.read(x.add_lines(l));
    }
    let ppc = ppc.build();

    let mut sys = presets::instantiate(&spec, Strategy::Proposed, vec![ppc, arm]);
    let result = sys.run(1_000_000);
    assert!(result.is_clean_completion(), "{result}");
    let cam = sys.snoop_logic(1).expect("ARM has a CAM");
    assert!(
        cam.capacity_evictions() >= 12,
        "16 fills through 4 tags must overflow repeatedly, got {}",
        cam.capacity_evictions()
    );
    assert!(
        result.cpus[1].isr_entries >= 12,
        "capacity interrupts drove the ISR: {result}"
    );
    for l in 0..16 {
        let a = x.add_lines(l);
        let v = sys
            .cache(0)
            .peek_word(a)
            .unwrap_or_else(|| sys.memory().read_word(a));
        assert_eq!(v, 0x5000 + l, "line {l}");
    }
}

#[test]
fn full_map_cam_never_takes_capacity_interrupts() {
    let (spec, lay) = presets::ppc_arm(Strategy::Proposed, LockKind::Turn, false);
    let x = lay.shared_base;
    let mut arm = ProgramBuilder::new();
    for l in 0..16 {
        arm = arm.write(x.add_lines(l), l);
    }
    let mut sys = presets::instantiate(
        &spec,
        Strategy::Proposed,
        vec![ProgramBuilder::new().build(), arm.build()],
    );
    let result = sys.run(1_000_000);
    assert!(result.is_clean_completion(), "{result}");
    assert_eq!(sys.snoop_logic(1).unwrap().capacity_evictions(), 0);
    assert_eq!(
        result.cpus[1].isr_entries, 0,
        "nothing remote touched the lines"
    );
}

#[test]
fn finite_cam_costs_cycles_but_not_correctness() {
    // Same workload with and without the capacity pressure: the finite
    // CAM run is slower (forced drains + refetches would be needed by the
    // PowerPC anyway, but the ARM pays interrupts), never incoherent.
    let run_with = |geometry| {
        let (mut spec, lay) = presets::ppc_arm(Strategy::Proposed, LockKind::Turn, false);
        spec.cpus[1].cam_geometry = geometry;
        let x = lay.shared_base;
        let mut arm = ProgramBuilder::new();
        for round in 0..3u32 {
            for l in 0..8 {
                arm = arm
                    .read(x.add_lines(l))
                    .write(x.add_lines(l), (round << 8) | l);
            }
        }
        let mut sys = presets::instantiate(
            &spec,
            Strategy::Proposed,
            vec![ProgramBuilder::new().build(), arm.build()],
        );
        let result = sys.run(1_000_000);
        assert!(result.is_clean_completion(), "{result}");
        result.cycles_u64()
    };
    let unbounded = run_with(None);
    let tiny = run_with(Some((2, 1)));
    assert!(
        tiny > unbounded,
        "capacity interrupts must cost time: {tiny} vs {unbounded}"
    );
}
