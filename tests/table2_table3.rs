//! Integration reproduction of paper Tables 2 and 3.
//!
//! The four-step sequence (P1 reads, P2 reads, P2 writes, P1 reads) on one
//! shared line must read stale data under naive integration and stay
//! coherent under the paper's wrappers — with the exact intermediate line
//! states the tables print.

use hmp::cache::{LineState, ProtocolKind};
use hmp::cpu::{LockKind, LockLayout, ProgramBuilder};
use hmp::mem::Addr;
use hmp::platform::{layout, CpuSpec, PlatformSpec, RunOutcome, Strategy, System, WrapperMode};

struct Trace {
    /// (P1 state, P2 state) sampled after steps a–d.
    states: Vec<(LineState, LineState)>,
    violations: usize,
    final_p1_value: Option<u32>,
}

/// Runs the table's op sequence and samples line states after each step.
fn run_sequence(p1: ProtocolKind, p2: ProtocolKind, mode: WrapperMode) -> Trace {
    let (lay, map) = layout(2, Strategy::Proposed, LockKind::Turn, false);
    let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 2);
    let mut spec = PlatformSpec::new(
        vec![CpuSpec::generic("P1", p1), CpuSpec::generic("P2", p2)],
        map,
        lock,
    );
    spec.wrapper_mode = mode;
    let c = lay.shared_base;
    let prog1 = ProgramBuilder::new().read(c).delay(600).read(c).build();
    let prog2 = ProgramBuilder::new()
        .delay(200)
        .read(c)
        .delay(150)
        .write(c, 0xAB)
        .build();
    let mut sys = System::new(&spec, vec![prog1, prog2]);
    sys.poke_word(c, 0x11);

    let state =
        |sys: &System, cpu: usize| sys.cache(cpu).line_state(c).unwrap_or(LineState::Invalid);
    let mut states = Vec::new();
    for sample_at in [100u64, 300, 500, 800] {
        while sys.now().as_u64() < sample_at {
            sys.step();
        }
        states.push((state(&sys, 0), state(&sys, 1)));
    }
    let result = sys.run(10_000);
    assert_eq!(result.outcome, RunOutcome::Completed);
    Trace {
        states,
        violations: result.violations.len(),
        final_p1_value: sys.cache(0).peek_word(Addr::new(c.as_u32())),
    }
}

#[test]
fn table2_naive_mei_mesi_reads_stale() {
    use LineState::*;
    let t = run_sequence(
        ProtocolKind::Mesi,
        ProtocolKind::Mei,
        WrapperMode::Transparent,
    );
    // The table's exact state walk:
    //   a: P1 E / P2 I;  b: P1 S / P2 E;  c: P1 S (stale) / P2 M;  d: same.
    assert_eq!(
        t.states,
        vec![
            (Exclusive, Invalid),
            (Shared, Exclusive),
            (Shared, Modified),
            (Shared, Modified)
        ]
    );
    assert!(t.violations > 0, "transaction d must read stale data");
    assert_eq!(
        t.final_p1_value,
        Some(0x11),
        "P1 keeps the stale pre-write value"
    );
}

#[test]
fn table2_wrapped_mei_mesi_is_coherent() {
    use LineState::*;
    let t = run_sequence(ProtocolKind::Mesi, ProtocolKind::Mei, WrapperMode::Paper);
    // With read→write conversion the S state never appears (paper §2.1):
    //   a: P1 E / P2 I;  b: P1 I / P2 E;  c: P1 I / P2 M;  d: P1 E / P2 I.
    assert_eq!(
        t.states,
        vec![
            (Exclusive, Invalid),
            (Invalid, Exclusive),
            (Invalid, Modified),
            (Exclusive, Invalid)
        ]
    );
    assert_eq!(t.violations, 0);
    assert_eq!(t.final_p1_value, Some(0xAB), "P1 sees P2's write");
}

#[test]
fn table3_naive_msi_mesi_reads_stale() {
    use LineState::*;
    let t = run_sequence(
        ProtocolKind::Msi,
        ProtocolKind::Mesi,
        WrapperMode::Transparent,
    );
    // Table 3: P1 (MSI) cannot assert the shared signal, so P2 (MESI)
    // fills E at step b and writes silently at step c.
    assert_eq!(
        t.states,
        vec![
            (Shared, Invalid),
            (Shared, Exclusive),
            (Shared, Modified),
            (Shared, Modified)
        ]
    );
    assert!(t.violations > 0);
    assert_eq!(t.final_p1_value, Some(0x11));
}

#[test]
fn table3_wrapped_msi_mesi_is_coherent() {
    use LineState::*;
    let t = run_sequence(ProtocolKind::Msi, ProtocolKind::Mesi, WrapperMode::Paper);
    // The wrapper forces the shared signal: P2 fills S at step b, pays an
    // upgrade at step c (invalidating P1), and P1 re-fetches at step d.
    assert_eq!(t.states[0], (Shared, Invalid));
    assert_eq!(
        t.states[1],
        (Shared, Shared),
        "E state removed (paper §2.2)"
    );
    assert_eq!(t.states[2], (Invalid, Modified), "upgrade invalidated P1");
    assert_eq!(t.violations, 0);
    assert_eq!(t.final_p1_value, Some(0xAB));
}

#[test]
fn every_mismatched_pair_is_fixed_by_wrappers() {
    use ProtocolKind::*;
    for (a, b) in [
        (Mesi, Mei),
        (Msi, Mesi),
        (Msi, Moesi),
        (Mesi, Moesi),
        (Moesi, Mei),
    ] {
        let naive = run_sequence(a, b, WrapperMode::Transparent);
        let wrapped = run_sequence(a, b, WrapperMode::Paper);
        assert_eq!(wrapped.violations, 0, "{a}+{b} wrapped must be coherent");
        assert_eq!(wrapped.final_p1_value, Some(0xAB), "{a}+{b}");
        // Not every naive pairing is broken by THIS sequence (e.g. the
        // paper's own tables pick specific pairs), but the wrapped run
        // must never be worse.
        assert!(naive.violations >= wrapped.violations, "{a}+{b}");
    }
}
