//! End-to-end tests of the observability stack: live invariant checking
//! across the paper's platforms, span lifecycle coverage, and the
//! watchdog's span-annotated hang report on the Figure 4 deadlock.

use hmp::bus::ArbitrationPolicy;
use hmp::cache::ProtocolKind;
use hmp::cpu::{LockKind, LockLayout, ProgramBuilder};
use hmp::platform::{
    layout, presets, CpuSpec, InvariantKind, PlatformSpec, RunOutcome, Strategy, System,
    WrapperMode,
};
use hmp::workloads::{run, MicrobenchParams, PlatformPick, RunSpec, Scenario};

fn small() -> MicrobenchParams {
    MicrobenchParams {
        lines_per_iter: 4,
        exec_time: 1,
        outer_iters: 2,
        seed: 3,
        ..Default::default()
    }
}

/// Every preset platform, scenario and strategy satisfies the structural
/// line invariants on every completed transaction — the wrappers exist
/// precisely to make this hold on heterogeneous pairings.
#[test]
fn invariants_hold_across_presets_and_strategies() {
    for scenario in [Scenario::Worst, Scenario::Best, Scenario::Typical] {
        for strategy in Strategy::ALL {
            let r = run(&RunSpec::new(scenario, strategy, small())
                .with_spans(64)
                .with_invariants());
            assert!(r.is_clean_completion(), "{scenario}/{strategy}: {r}");
            assert!(r.invariant.is_none(), "{scenario}/{strategy}");
        }
    }
    use ProtocolKind::*;
    let platforms = [
        PlatformPick::I486Ppc,
        PlatformPick::Pf1Dual,
        PlatformPick::Pair(Mei, Mesi),
        PlatformPick::Pair(Msi, Moesi),
        PlatformPick::Pair(Moesi, Moesi),
    ];
    for platform in platforms {
        let r = run(&RunSpec::new(Scenario::Worst, Strategy::Proposed, small())
            .on(platform)
            .with_spans(64)
            .with_invariants());
        assert!(r.is_clean_completion(), "{platform:?}: {r}");
    }
}

/// The Table 2 seeded violation: transparent (no-op) wrappers let a MEI
/// cache take exclusive ownership while the MESI cache still holds the
/// line Shared. The golden-memory checker only notices when the stale
/// value is *read*, at the end of the program; the live invariant checker
/// must kill the run at the protocol break itself.
#[test]
fn transparent_wrapper_violation_fails_fast() {
    let build = |check: bool| {
        let (lay, map) = layout(2, Strategy::Proposed, LockKind::Turn, false);
        let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 2);
        let mut spec = PlatformSpec::new(
            vec![
                CpuSpec::generic("mesi", ProtocolKind::Mesi),
                CpuSpec::generic("mei", ProtocolKind::Mei),
            ],
            map,
            lock,
        );
        spec.wrapper_mode = WrapperMode::Transparent;
        spec.check_invariants = check;
        spec.span_capacity = 64;
        let a = lay.shared_base;
        let p0 = ProgramBuilder::new().read(a).delay(200).read(a).build();
        let p1 = ProgramBuilder::new().delay(60).read(a).write(a, 77).build();
        (System::new(&spec, vec![p0, p1]), a)
    };

    // Unchecked: the run completes and only the end-of-run checker
    // reports the stale read.
    let (mut unchecked, _) = build(false);
    let full = unchecked.run(10_000);
    assert_eq!(full.outcome, RunOutcome::Completed);
    assert!(!full.violations.is_empty(), "{full}");

    // Checked: the same run dies at the break, long before completion.
    let (mut checked, a) = build(true);
    let r = checked.run(10_000);
    assert_eq!(r.outcome, RunOutcome::InvariantViolation, "{r}");
    assert!(!r.is_clean_completion());
    let v = r
        .invariant
        .as_ref()
        .expect("violation must be latched in the result");
    assert_eq!(v.kind, InvariantKind::WriterWithSharers, "{v}");
    assert_eq!(v.addr, a.line_base(), "{v}");
    assert!(
        r.cycles_u64() < full.cycles_u64(),
        "fail-fast must beat the end-of-run checker ({} vs {})",
        r.cycles_u64(),
        full.cycles_u64()
    );
    let txt = r.to_string();
    assert!(txt.contains("invariant violation"), "{txt}");
    assert!(txt.contains("writer with live sharers"), "{txt}");
}

/// Span lifecycle over a full run: every bus transaction produced exactly
/// one completed span, nothing stays open after completion, and the
/// histograms saw every one of them.
#[test]
fn spans_cover_every_transaction() {
    let spec = RunSpec::new(Scenario::Worst, Strategy::Proposed, small()).with_spans(4096);
    let mut sys = hmp::workloads::prepare(&spec);
    let r = sys.run(spec.max_cycles);
    assert!(r.is_clean_completion(), "{r}");
    let snap = r.metrics.as_ref().expect("metrics enabled");
    assert!(snap.completions > 0);
    assert_eq!(snap.span_orphans, 0);
    assert_eq!(snap.spans_recorded, snap.completions);
    assert_eq!(snap.service_time.count(), snap.completions);
    let m = sys.metrics().unwrap();
    assert!(
        m.spans().open_spans().is_empty(),
        "no transaction may stay open after a clean completion"
    );
}

/// The Figure 4 hardware deadlock, with spans on: the watchdog's hang
/// report names the wedged transaction (an open span that kept absorbing
/// retries) instead of leaving a bare "stalled" outcome.
#[test]
fn hang_report_names_the_wedged_transaction() {
    let stall = (0..200).find_map(|arm_delay| {
        let (mut spec, lay) = presets::ppc_arm(Strategy::Proposed, LockKind::Bakery, true);
        spec.watchdog_window = 10_000;
        spec.arbitration = ArbitrationPolicy::FixedPriority;
        spec.retry_backoff = 4;
        spec.span_capacity = 256;
        let x = lay.shared_base;
        let mut arm = ProgramBuilder::new();
        for l in 0..4 {
            arm = arm.read(x.add_lines(l)).write(x.add_lines(l), 0xA0 + l);
        }
        let arm = arm.delay(arm_delay).acquire(0).delay(50).release(0).build();
        let mut ppc = ProgramBuilder::new().delay(200).acquire(0);
        for l in 0..4 {
            ppc = ppc.read(x.add_lines(l)).delay(16);
        }
        let ppc = ppc.release(0).build();
        let mut sys = presets::instantiate(&spec, Strategy::Proposed, vec![ppc, arm]);
        let r = sys.run(500_000);
        (r.outcome == RunOutcome::Stalled).then_some(r)
    });
    let r = stall.expect("some interleaving must reproduce the Figure 4 deadlock");
    let hang = r.hang.as_ref().expect("stall must carry a hang report");
    assert!(hang.stalled_at.as_u64() > 0);
    assert!(
        !hang.open_spans.is_empty(),
        "the wedged transaction must be visible as an open span: {r}"
    );
    assert!(
        hang.open_spans.iter().any(|s| s.retries > 0),
        "the livelocked request kept absorbing retries: {r}"
    );
    let txt = r.to_string();
    assert!(txt.contains("watchdog tripped"), "{txt}");
    assert!(txt.contains("open transactions"), "{txt}");
}
