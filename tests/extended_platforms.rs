//! Integration coverage beyond the paper's headline platform: the
//! Intel486's write-through (SI) lines, MOESI cache-to-cache supply, the
//! PF1 dual-snoop-logic platform, and a four-processor bus.

use hmp::cache::{LineState, ProtocolKind};
use hmp::core::PlatformClass;
use hmp::cpu::{LockKind, LockLayout, ProgramBuilder};
use hmp::mem::{MemAttr, Region};
use hmp::platform::{layout, presets, CpuSpec, MemLayout, PlatformSpec, Strategy, System};

/// Intel486 + PowerPC755 with the shared window marked *write-through*:
/// the 486's lines follow the SI protocol, every store goes straight to
/// memory, and the paper's INV-pin trick (read→write conversion) kills
/// the S state whenever the MEI-reduced bus demands it.
#[test]
fn intel486_write_through_shared_window() {
    let lay = MemLayout::default();
    let mut map = hmp::mem::MemoryMap::new();
    for i in 0..2 {
        map.add(Region::new(
            lay.private(i),
            MemLayout::PRIVATE_STRIDE,
            MemAttr::CachedWriteBack,
        ))
        .unwrap();
    }
    map.add(Region::new(
        lay.shared_base,
        MemLayout::SHARED_BYTES,
        MemAttr::CachedWriteThrough,
    ))
    .unwrap();
    map.add(Region::new(
        lay.lock_base,
        MemLayout::LOCK_BYTES,
        MemAttr::Uncached,
    ))
    .unwrap();
    let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 2);
    let spec = PlatformSpec::new(vec![CpuSpec::intel486(), CpuSpec::powerpc755()], map, lock);

    let x = lay.shared_base;
    // The 486 reads (SI line fills Shared), writes through, reads back;
    // the PowerPC then reads and must see the written-through value.
    let i486 = ProgramBuilder::new()
        .read(x)
        .write(x, 0x486)
        .read(x)
        .build();
    let ppc = ProgramBuilder::new()
        .delay(200)
        .read(x)
        .write(x, 0x755)
        .build();
    let mut sys = System::new(&spec, vec![i486, ppc]);
    let result = sys.run(100_000);
    assert!(result.is_clean_completion(), "{result}");
    assert_eq!(sys.memory().read_word(x), 0x755);
    // The PowerPC's write-through... the MEI side also gets SI lines in a
    // WT region, so nobody holds a dirty copy at the end.
    assert_eq!(sys.cache(0).dirty_lines(), 0);
    assert_eq!(sys.cache(1).dirty_lines(), 0);
    assert!(result.stats.get("cpu0.write_through") >= 1, "{result}");
}

/// Homogeneous MOESI pair: a snooped read of a dirty line is served
/// cache-to-cache (M→O), memory stays stale until the owner drains, and
/// the checker stays happy throughout.
#[test]
fn moesi_cache_to_cache_supply() {
    let (spec, lay) = presets::protocol_pair(
        ProtocolKind::Moesi,
        ProtocolKind::Moesi,
        Strategy::Proposed,
        LockKind::Turn,
    );
    let x = lay.shared_base;
    let p0 = ProgramBuilder::new().write(x, 0xCAFE).delay(200).build();
    let p1 = ProgramBuilder::new().delay(100).read(x).build();
    let mut sys = presets::instantiate(&spec, Strategy::Proposed, vec![p0, p1]);
    let result = sys.run(100_000);
    assert!(result.is_clean_completion(), "{result}");
    assert_eq!(
        sys.cache(0).line_state(x),
        Some(LineState::Owned),
        "owner keeps responsibility after supplying"
    );
    assert_eq!(sys.cache(1).line_state(x), Some(LineState::Shared));
    assert_eq!(sys.cache(1).peek_word(x), Some(0xCAFE));
    assert_ne!(
        sys.memory().read_word(x),
        0xCAFE,
        "cache-to-cache supply must not update memory"
    );
    assert!(result.stats.get("cpu0.cache_to_cache") >= 1);
}

/// The Owned line must still reach memory when it is finally evicted.
#[test]
fn owned_line_eviction_writes_back() {
    let (mut spec, lay) = presets::protocol_pair(
        ProtocolKind::Moesi,
        ProtocolKind::Moesi,
        Strategy::Proposed,
        LockKind::Turn,
    );
    spec.cpus[0].cache = hmp::cache::CacheConfig { sets: 2, ways: 1 };
    let x = lay.shared_base;
    let conflict = x.add_lines(2); // same set as x in a 2-set cache
    let p0 = ProgramBuilder::new()
        .write(x, 0xCAFE)
        .delay(200)
        .read(conflict) // evicts the Owned line
        .build();
    let p1 = ProgramBuilder::new().delay(100).read(x).build();
    let mut sys = presets::instantiate(&spec, Strategy::Proposed, vec![p0, p1]);
    let result = sys.run(100_000);
    assert!(result.is_clean_completion(), "{result}");
    assert_eq!(sys.cache(0).line_state(x), None, "owned line evicted");
    assert_eq!(sys.memory().read_word(x), 0xCAFE, "eviction drained O data");
}

/// PF1: two processors with *no* coherence hardware hand shared data back
/// and forth purely through their TAG CAMs and drain ISRs.
#[test]
fn pf1_dual_cam_handover() {
    let (spec, lay) = presets::pf1_dual(Strategy::Proposed, LockKind::Turn);
    let x = lay.shared_base;
    let p0 = ProgramBuilder::new()
        .acquire(0)
        .write(x, 0xA)
        .release(0)
        .acquire(0)
        .read(x)
        .release(0)
        .build();
    let p1 = ProgramBuilder::new()
        .acquire(0)
        .read(x)
        .write(x, 0xB)
        .release(0)
        .acquire(0)
        .read(x)
        .release(0)
        .build();
    let mut sys = presets::instantiate(&spec, Strategy::Proposed, vec![p0, p1]);
    assert_eq!(sys.platform_class(), PlatformClass::Pf1);
    let result = sys.run(500_000);
    assert!(result.is_clean_completion(), "{result}");
    // Both sides had to take drain interrupts for the handover.
    assert!(
        result.cpus[0].isr_entries + result.cpus[1].isr_entries >= 2,
        "{result}"
    );
    assert_eq!(sys.memory().read_word(x), 0xB);
}

/// Four heterogeneous processors on one bus — the paper's "can be easily
/// extended to platforms with more than two processors", one protocol of
/// each kind plus a non-coherent core behind snoop logic (PF2 overall).
#[test]
fn four_processor_mixed_platform() {
    let (lay, map) = layout(4, Strategy::Proposed, LockKind::Turn, false);
    let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 4);
    let mut arm = CpuSpec::arm920t();
    arm.name = "ARM920T".into();
    let spec = PlatformSpec::new(
        vec![
            CpuSpec::generic("mei", ProtocolKind::Mei),
            CpuSpec::generic("mesi", ProtocolKind::Mesi),
            CpuSpec::generic("moesi", ProtocolKind::Moesi),
            arm,
        ],
        map,
        lock,
    );
    let shared = lay.shared_base;
    let mut programs = Vec::new();
    for cpu in 0..4u32 {
        let mut b = ProgramBuilder::new();
        for round in 0..2u32 {
            b = b.acquire(0);
            for l in 0..3 {
                let a = shared.add_lines(l);
                b = b.read(a).write(a, (cpu << 16) | (round << 8) | l);
            }
            b = b.release(0).delay(7);
        }
        programs.push(b.build());
    }
    let mut sys = System::new(&spec, programs);
    assert_eq!(sys.platform_class(), PlatformClass::Pf2);
    assert_eq!(sys.system_protocol(), Some(ProtocolKind::Mei));
    let result = sys.run(4_000_000);
    assert!(result.is_clean_completion(), "{result}");
    for (i, c) in result.cpus.iter().enumerate() {
        assert_eq!(c.lock_acquires, 2, "cpu{i}");
        assert_eq!(c.lock_releases, 2, "cpu{i}");
    }
    // The last writer in turn order is the ARM (party 3, round 1); its
    // line may legitimately still be dirty in its cache rather than in
    // memory, so check the authoritative copy.
    let authoritative = (0..4)
        .find_map(|i| {
            sys.cache(i)
                .line_state(shared)
                .filter(|s| s.is_dirty())
                .and_then(|_| sys.cache(i).peek_word(shared))
        })
        .unwrap_or_else(|| sys.memory().read_word(shared));
    assert_eq!(authoritative & 0xFF0000, 3 << 16);
}

/// On a MEI-reduced four-way bus, no two caches ever share a line; spot-
/// check at completion.
#[test]
fn four_processor_exclusivity_at_rest() {
    let (lay, map) = layout(4, Strategy::Proposed, LockKind::Turn, false);
    let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 4);
    let spec = PlatformSpec::new(
        vec![
            CpuSpec::generic("a", ProtocolKind::Mei),
            CpuSpec::generic("b", ProtocolKind::Mesi),
            CpuSpec::generic("c", ProtocolKind::Moesi),
            CpuSpec::generic("d", ProtocolKind::Msi),
        ],
        map,
        lock,
    );
    let shared = lay.shared_base;
    let mut programs = Vec::new();
    for cpu in 0..4u32 {
        let mut b = ProgramBuilder::new().acquire(0);
        for l in 0..4 {
            b = b.read(shared.add_lines(l)).write(shared.add_lines(l), cpu);
        }
        programs.push(b.release(0).build());
    }
    let mut sys = System::new(&spec, programs);
    let result = sys.run(4_000_000);
    assert!(result.is_clean_completion(), "{result}");
    for l in 0..4 {
        let addr = shared.add_lines(l);
        let holders = (0..4).filter(|&i| sys.cache(i).contains(addr)).count();
        assert!(holders <= 1, "line {l} shared on a MEI bus");
    }
}
