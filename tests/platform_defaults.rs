//! Asserts the paper's Table 4 simulation environment and Table 1
//! platform classes are wired in as the defaults.

use hmp::cache::ProtocolKind;
use hmp::core::{CoherenceSupport, PlatformClass};
use hmp::cpu::{LockKind, Program};
use hmp::mem::LatencyModel;
use hmp::platform::{presets, CpuSpec, Strategy, System};

#[test]
fn table4_memory_timing() {
    let lat = LatencyModel::default();
    assert_eq!(lat.single().as_u64(), 6, "single word: 6 cycles");
    assert_eq!(lat.burst(1).as_u64(), 6, "1st word of a burst: 6 cycles");
    assert_eq!(
        lat.burst(8).as_u64(),
        13,
        "8-word burst: 6 + 7×1 = 13 cycles"
    );
}

#[test]
fn table4_clock_ratios() {
    // PowerPC755 at 100 MHz, ARM920T at 50 MHz, ASB at 50 MHz.
    assert_eq!(CpuSpec::powerpc755().clock_mult, 2);
    assert_eq!(CpuSpec::arm920t().clock_mult, 1);
}

#[test]
fn processor_protocols_match_the_paper() {
    assert_eq!(
        CpuSpec::powerpc755().coherence,
        CoherenceSupport::Native(ProtocolKind::Mei),
        "PowerPC755 uses the MEI protocol"
    );
    assert_eq!(
        CpuSpec::arm920t().coherence,
        CoherenceSupport::None,
        "no cache coherence is supported in ARM920T"
    );
    assert_eq!(
        CpuSpec::intel486().coherence,
        CoherenceSupport::Native(ProtocolKind::Mesi),
        "Intel486 supports a modified MESI protocol"
    );
}

#[test]
fn named_platform_classes() {
    let (spec, _) = presets::ppc_arm(Strategy::Proposed, LockKind::Turn, false);
    let sys = System::new(&spec, vec![Program::empty(); 2]);
    assert_eq!(sys.platform_class(), PlatformClass::Pf2);
    assert_eq!(sys.system_protocol(), Some(ProtocolKind::Mei));

    let (spec, _) = presets::i486_ppc(Strategy::Proposed, LockKind::Turn);
    let sys = System::new(&spec, vec![Program::empty(); 2]);
    assert_eq!(sys.platform_class(), PlatformClass::Pf3);
    assert_eq!(sys.system_protocol(), Some(ProtocolKind::Mei));

    let (spec, _) = presets::pf1_dual(Strategy::Proposed, LockKind::Turn);
    let sys = System::new(&spec, vec![Program::empty(); 2]);
    assert_eq!(sys.platform_class(), PlatformClass::Pf1);
    assert_eq!(sys.system_protocol(), None);
}

#[test]
fn figure8_latency_sweep_points_construct() {
    for total in [13u64, 24, 48, 96] {
        let lat = LatencyModel::scaled_to_burst(total);
        assert_eq!(lat.line_burst().as_u64(), total);
    }
}

#[test]
fn cache_geometries_match_the_parts() {
    assert_eq!(CpuSpec::powerpc755().cache.capacity_bytes(), 32 * 1024);
    assert_eq!(CpuSpec::arm920t().cache.capacity_bytes(), 16 * 1024);
    assert_eq!(CpuSpec::intel486().cache.capacity_bytes(), 8 * 1024);
}
