//! Edge paths of the platform: racing upgrades, write-through
//! no-allocate stores, and custom bus devices.

use hmp::bus::BusDevice;
use hmp::cache::ProtocolKind;
use hmp::cpu::{LockKind, LockLayout, ProgramBuilder};
use hmp::mem::{Addr, MemAttr, MemoryMap, Region};
use hmp::platform::{presets, CpuSpec, MemLayout, PlatformSpec, Strategy, System};

/// Two MESI caches both hold the line Shared and race their upgrade
/// broadcasts: the loser's line is invalidated while its upgrade waits,
/// so it must restart the store as a write miss (`upgrade_lost`). Sweep
/// the relative timing until the race actually fires, and require
/// coherence at every offset.
#[test]
fn racing_upgrades_fall_back_to_write_miss() {
    let mut race_seen = false;
    for offset in 0..24u32 {
        let (spec, lay) = presets::protocol_pair(
            ProtocolKind::Mesi,
            ProtocolKind::Mesi,
            Strategy::Proposed,
            LockKind::Turn,
        );
        let x = lay.shared_base;
        let p0 = ProgramBuilder::new()
            .read(x)
            .delay(60)
            .write(x, 0xAAA)
            .build();
        let p1 = ProgramBuilder::new()
            .delay(20)
            .read(x)
            .delay(20 + offset)
            .write(x, 0xBBB)
            .build();
        let mut sys = presets::instantiate(&spec, Strategy::Proposed, vec![p0, p1]);
        let result = sys.run(100_000);
        assert!(result.is_clean_completion(), "offset {offset}: {result}");
        if result.stats.get("cpu0.upgrade_lost") + result.stats.get("cpu1.upgrade_lost") > 0 {
            race_seen = true;
        }
        // Whoever wrote last owns the line; the other copy is gone.
        let holders = (0..2).filter(|&i| sys.cache(i).contains(x)).count();
        assert_eq!(holders, 1, "offset {offset}");
    }
    assert!(race_seen, "some offset must lose an upgrade race");
}

/// A write miss into a write-through window does not allocate: the word
/// goes straight to memory and the cache stays empty.
#[test]
fn write_through_miss_does_not_allocate() {
    let lay = MemLayout::default();
    let mut map = MemoryMap::new();
    map.add(Region::new(
        lay.shared_base,
        MemLayout::SHARED_BYTES,
        MemAttr::CachedWriteThrough,
    ))
    .unwrap();
    map.add(Region::new(
        lay.lock_base,
        MemLayout::LOCK_BYTES,
        MemAttr::Uncached,
    ))
    .unwrap();
    let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 1);
    let spec = PlatformSpec::new(vec![CpuSpec::generic("wt", ProtocolKind::Mesi)], map, lock);
    let x = lay.shared_base;
    let p = ProgramBuilder::new().write(x, 0x77).build();
    let mut sys = System::new(&spec, vec![p]);
    let result = sys.run(10_000);
    assert!(result.is_clean_completion(), "{result}");
    assert_eq!(sys.memory().read_word(x), 0x77);
    assert!(!sys.cache(0).contains(x), "no write-allocate on WT lines");
    assert_eq!(result.stats.get("cpu0.write_no_allocate"), 1);
}

/// A scratch bus device: reads pop an incrementing sequence, writes set
/// the next value. Exercises `System::add_device` and device routing.
#[derive(Debug)]
struct Mailbox {
    next: u32,
}

impl BusDevice for Mailbox {
    fn name(&self) -> &str {
        "mailbox"
    }
    fn read_word(&mut self, _addr: Addr) -> u32 {
        let v = self.next;
        self.next += 1;
        v
    }
    fn write_word(&mut self, _addr: Addr, value: u32) {
        self.next = value;
    }
}

#[test]
fn custom_device_round_trip() {
    let lay = MemLayout::default();
    let mut map = MemoryMap::new();
    map.add(Region::new(
        lay.lock_base,
        MemLayout::LOCK_BYTES,
        MemAttr::Uncached,
    ))
    .unwrap();
    let dev_base = Addr::new(0x0030_0000);
    map.add(Region::new(dev_base, 0x100, MemAttr::Device(0)))
        .unwrap();
    let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 1);
    let spec = PlatformSpec::new(
        vec![CpuSpec::generic("host", ProtocolKind::Mesi)],
        map,
        lock,
    );
    // Seed 100, then read twice → 100, 101.
    let p = ProgramBuilder::new()
        .write(dev_base, 100)
        .read(dev_base)
        .read(dev_base)
        .build();
    let mut sys = System::new(&spec, vec![p]);
    sys.add_device(Box::new(Mailbox { next: 0 }));
    let result = sys.run(10_000);
    assert!(result.is_clean_completion(), "{result}");
    assert_eq!(result.stats.get("cpu0.uncached_read"), 2);
    assert_eq!(result.stats.get("cpu0.uncached_write"), 1);
    // Device state advanced past the two reads.
    // (Observable indirectly: a fresh system read would yield 102 — here
    // we just confirm the program consumed both reads without stalling.)
    assert_eq!(result.cpus[0].reads, 2);
}

/// Upgrades on a single-CPU system complete trivially (no snoopers), and
/// the MSI protocol still pays the broadcast for its S→M transition.
#[test]
fn msi_upgrade_without_contention() {
    let (spec, lay) = presets::protocol_pair(
        ProtocolKind::Msi,
        ProtocolKind::Msi,
        Strategy::Proposed,
        LockKind::Turn,
    );
    let x = lay.shared_base;
    let p0 = ProgramBuilder::new().read(x).write(x, 5).build();
    let mut sys = presets::instantiate(
        &spec,
        Strategy::Proposed,
        vec![p0, ProgramBuilder::new().build()],
    );
    let result = sys.run(10_000);
    assert!(result.is_clean_completion(), "{result}");
    // MSI read-fills Shared, so the store needs an upgrade broadcast even
    // with nobody else caching the line.
    assert_eq!(result.stats.get("cpu0.write_upgrade"), 1);
    assert_eq!(
        sys.cache(0).line_state(x),
        Some(hmp::cache::LineState::Modified)
    );
}
