//! Property-based coherence testing.
//!
//! Random programs over a small shared working set run on randomly chosen
//! heterogeneous protocol pairings (and on the paper's PF2 platform). The
//! golden-memory checker must never observe a stale read, every run must
//! complete, and stepping invariants (single dirty owner; no sharing under
//! a MEI-reduced bus) must hold throughout.

// QUARANTINED (PR 1): these property tests depend on the `proptest` crate,
// which the offline build environment cannot fetch (empty cargo registry, no
// network). Enable the `proptests` feature after restoring the `proptest`
// dev-dependency to run them. Tracking: CHANGES.md (PR 1).
#![cfg(feature = "proptests")]

use hmp::cache::{LineState, ProtocolKind};
use hmp::cpu::{LockKind, LockLayout, Op, Program, ProgramBuilder};
use hmp::mem::Addr;
use hmp::platform::{layout, presets, CpuSpec, PlatformSpec, RunOutcome, System};
// NB: `hmp::platform::Strategy` stays fully qualified — its name collides
// with proptest's `Strategy` trait.
use hmp::platform::Strategy as ShareStrategy;
use proptest::prelude::*;

const LINES: u32 = 6;

#[derive(Debug, Clone)]
enum GenOp {
    Read { line: u32, word: u32 },
    Write { line: u32, word: u32 },
    Flush { line: u32 },
    Delay { cycles: u32 },
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (0..LINES, 0..8u32).prop_map(|(line, word)| GenOp::Read { line, word }),
        (0..LINES, 0..8u32).prop_map(|(line, word)| GenOp::Write { line, word }),
        (0..LINES).prop_map(|line| GenOp::Flush { line }),
        (1..16u32).prop_map(|cycles| GenOp::Delay { cycles }),
    ]
}

fn gen_program() -> impl Strategy<Value = Vec<GenOp>> {
    prop::collection::vec(gen_op(), 1..40)
}

fn protocol() -> impl Strategy<Value = ProtocolKind> {
    prop::sample::select(ProtocolKind::WRITE_BACK.to_vec())
}

/// Appends a generated op list with globally unique store values.
fn append(mut b: ProgramBuilder, ops: &[GenOp], cpu: u32, shared: Addr) -> ProgramBuilder {
    for (i, op) in ops.iter().enumerate() {
        let value = (cpu << 24) | (i as u32);
        b = match *op {
            GenOp::Read { line, word } => b.read(shared.add_lines(line).add_words(word)),
            GenOp::Write { line, word } => b.write(shared.add_lines(line).add_words(word), value),
            GenOp::Flush { line } => b.flush(shared.add_lines(line)),
            GenOp::Delay { cycles } => b.delay(cycles),
        };
    }
    b
}

/// Materialises a generated op list as a whole program.
fn build(ops: &[GenOp], cpu: u32, shared: Addr) -> Program {
    append(ProgramBuilder::new(), ops, cpu, shared).build()
}

/// Same, wrapped in one lock-protected critical section (the PF2
/// programming model of paper §3).
fn build_locked(ops: &[GenOp], cpu: u32, shared: Addr) -> Program {
    append(ProgramBuilder::new().acquire(0), ops, cpu, shared)
        .release(0)
        .build()
}

fn pair_system(a: ProtocolKind, b: ProtocolKind, programs: Vec<Program>) -> System {
    let (spec, _) = presets::protocol_pair(a, b, ShareStrategy::Proposed, LockKind::Turn);
    presets::instantiate(&spec, ShareStrategy::Proposed, programs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_programs_stay_coherent_on_any_protocol_pair(
        a in protocol(),
        b in protocol(),
        ops0 in gen_program(),
        ops1 in gen_program(),
    ) {
        let shared = hmp::platform::MemLayout::default().shared_base;
        let programs = vec![build(&ops0, 0, shared), build(&ops1, 1, shared)];
        let mut sys = pair_system(a, b, programs);
        let result = sys.run(2_000_000);
        prop_assert_eq!(result.outcome, RunOutcome::Completed);
        prop_assert!(result.violations.is_empty(),
            "stale reads on {}+{}: {:?}", a, b, result.violations);
    }

    /// On PF2, paper §3 restricts programs to "perform all shared variable
    /// operations within critical sections, or a similar deadlock can
    /// occur on non-lock variables" — so the property quantifies over
    /// lock-protected programs, exactly as the paper's programming model
    /// demands. (The unprotected hazard is pinned by
    /// `pf2_unlocked_concurrent_access_is_a_liveness_hazard` below.)
    #[test]
    fn random_programs_stay_coherent_on_pf2(
        ops0 in gen_program(),
        ops1 in gen_program(),
    ) {
        let (spec, lay) = presets::ppc_arm(ShareStrategy::Proposed, LockKind::Turn, false);
        let programs = vec![
            build_locked(&ops0, 0, lay.shared_base),
            build_locked(&ops1, 1, lay.shared_base),
        ];
        let mut sys = presets::instantiate(&spec, ShareStrategy::Proposed, programs);
        let result = sys.run(2_000_000);
        prop_assert_eq!(result.outcome, RunOutcome::Completed);
        prop_assert!(result.violations.is_empty(), "{:?}", result.violations);
    }

    #[test]
    fn stepping_invariants_hold_throughout(
        a in protocol(),
        b in protocol(),
        ops0 in gen_program(),
        ops1 in gen_program(),
    ) {
        let shared = hmp::platform::MemLayout::default().shared_base;
        let programs = vec![build(&ops0, 0, shared), build(&ops1, 1, shared)];
        let mut sys = pair_system(a, b, programs);
        let system_protocol = sys.system_protocol().expect("native pair");
        let mut steps = 0u32;
        while !sys.finished() && steps < 1_000_000 {
            sys.step();
            steps += 1;
            for line in 0..LINES {
                let addr = shared.add_lines(line);
                let s0 = sys.cache(0).line_state(addr);
                let s1 = sys.cache(1).line_state(addr);
                // Invariant 1: at most one dirty owner.
                let dirty =
                    [s0, s1].iter().filter(|s| s.is_some_and(|s| s.is_dirty())).count();
                prop_assert!(dirty <= 1, "two dirty owners of {addr}: {s0:?} {s1:?}");
                // Invariant 2: M/E excludes any other valid copy.
                let exclusive = [s0, s1].iter().any(|s| {
                    matches!(s, Some(LineState::Modified) | Some(LineState::Exclusive))
                });
                let valid =
                    [s0, s1].iter().filter(|s| s.is_some_and(|s| s.is_valid())).count();
                if exclusive {
                    prop_assert!(valid <= 1, "E/M alongside another copy of {addr}");
                }
                // Invariant 3: a MEI-reduced bus never shares.
                if system_protocol == ProtocolKind::Mei {
                    prop_assert!(valid <= 1,
                        "sharing on a MEI bus at {addr}: {s0:?} {s1:?}");
                }
            }
        }
        prop_assert!(sys.finished(), "run must terminate");
    }

    #[test]
    fn lock_protected_random_critical_sections(
        a in protocol(),
        b in protocol(),
        cs_ops in prop::collection::vec(gen_op(), 1..10),
        rounds in 1..4u32,
    ) {
        // Both tasks run the same number of lock-protected rounds (the
        // turn lock hands over strictly alternately).
        let shared = hmp::platform::MemLayout::default().shared_base;
        let mut programs = Vec::new();
        for cpu in 0..2u32 {
            let mut bld = ProgramBuilder::new();
            for round in 0..rounds {
                bld = bld.acquire(0);
                for (i, op) in cs_ops.iter().enumerate() {
                    let value = (cpu << 24) | (round << 12) | (i as u32);
                    bld = match *op {
                        GenOp::Read { line, word } =>
                            bld.read(shared.add_lines(line).add_words(word)),
                        GenOp::Write { line, word } =>
                            bld.write(shared.add_lines(line).add_words(word), value),
                        GenOp::Flush { line } => bld.flush(shared.add_lines(line)),
                        GenOp::Delay { cycles } => bld.delay(cycles),
                    };
                }
                bld = bld.release(0);
            }
            programs.push(bld.build());
        }
        let mut sys = pair_system(a, b, programs);
        let result = sys.run(4_000_000);
        prop_assert_eq!(result.outcome, RunOutcome::Completed);
        prop_assert!(result.violations.is_empty(), "{:?}", result.violations);
        prop_assert_eq!(result.cpus[0].lock_acquires, u64::from(rounds));
        prop_assert_eq!(result.cpus[1].lock_acquires, u64::from(rounds));
    }
}

/// Regression (found by the property search): a software flush puts the
/// dirty line into a write-back that travels as a *CPU transaction*; a
/// remote read racing that write-back must be ARTRY'd until it lands, or
/// it reads stale memory. Sweep the race window cycle by cycle.
#[test]
fn remote_read_racing_a_flush_writeback_is_never_stale() {
    for delay in 0..40u32 {
        let shared = hmp::platform::MemLayout::default().shared_base;
        let l1 = shared.add_lines(1);
        let p0 = ProgramBuilder::new()
            .write(l1, 0xFEED)
            .delay(5)
            .flush(l1)
            .build();
        let p1 = ProgramBuilder::new().delay(delay).read(l1).build();
        let mut sys = pair_system(ProtocolKind::Mesi, ProtocolKind::Mei, vec![p0, p1]);
        let result = sys.run(100_000);
        assert_eq!(result.outcome, RunOutcome::Completed, "delay {delay}");
        assert!(
            result.violations.is_empty(),
            "stale read at delay {delay}: {:?}",
            result.violations
        );
        assert_eq!(sys.memory().read_word(l1), 0xFEED, "delay {delay}");
    }
}

/// Paper §3's PF2 caveat, pinned: *unprotected* concurrent access to
/// cacheable shared data can deadlock ("a similar deadlock can occur on
/// non-lock variables") — which is exactly why the PF2 programming model
/// requires critical sections. This is the minimal counterexample the
/// coherence property search found.
#[test]
fn pf2_unlocked_concurrent_access_is_a_liveness_hazard() {
    let (spec, lay) = presets::ppc_arm(ShareStrategy::Proposed, LockKind::Turn, false);
    let x = lay.shared_base;
    let ppc = ProgramBuilder::new()
        .read(x)
        .read(x.add_lines(1))
        .write(x.add_lines(5), 1)
        .write(x, 2)
        .build();
    let arm = ProgramBuilder::new()
        .delay(14)
        .read(x)
        .read(x.add_lines(2).add_words(7))
        .write(x.add_lines(5), 3)
        .build();
    let mut sys = presets::instantiate(&spec, ShareStrategy::Proposed, vec![ppc, arm]);
    let result = sys.run(2_000_000);
    assert_eq!(
        result.outcome,
        RunOutcome::Stalled,
        "this interleaving deadlocks: ARM blocked on a line the PowerPC \
         must drain, PowerPC retrying a line the ARM must ISR-drain"
    );
}

/// Non-proptest sanity: three heterogeneous CPUs on one bus (the paper's
/// "can be easily extended to platforms with more than two processors").
#[test]
fn three_processor_platform_stays_coherent() {
    let (lay, map) = layout(3, ShareStrategy::Proposed, LockKind::Turn, false);
    let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 3);
    let spec = PlatformSpec::new(
        vec![
            CpuSpec::generic("mesi", ProtocolKind::Mesi),
            CpuSpec::generic("moesi", ProtocolKind::Moesi),
            CpuSpec::generic("msi", ProtocolKind::Msi),
        ],
        map,
        lock,
    );
    let shared = lay.shared_base;
    let mut programs = Vec::new();
    for cpu in 0..3u32 {
        let mut b = ProgramBuilder::new();
        for round in 0..3u32 {
            b = b.acquire(0);
            for l in 0..4 {
                let addr = shared.add_lines(l);
                b = b.read(addr).write(addr, (cpu << 16) | (round << 8) | l);
            }
            b = b.release(0).delay(5);
        }
        programs.push(b.build());
    }
    let mut sys = System::new(&spec, programs);
    assert_eq!(sys.system_protocol(), Some(ProtocolKind::Msi));
    let result = sys.run(4_000_000);
    assert!(result.is_clean_completion(), "{result}");
    for c in &result.cpus {
        assert_eq!(c.lock_acquires, 3);
    }
}

/// The generated op vocabulary is exercised by the flattener too.
#[test]
fn build_helper_round_trips() {
    let shared = hmp::platform::MemLayout::default().shared_base;
    let ops = vec![
        GenOp::Read { line: 0, word: 1 },
        GenOp::Write { line: 2, word: 3 },
        GenOp::Flush { line: 4 },
        GenOp::Delay { cycles: 7 },
    ];
    let p = build(&ops, 1, shared);
    let flat = p.flatten();
    assert_eq!(flat.len(), 4);
    assert!(matches!(flat[0], Op::Read(_)));
    assert!(matches!(flat[1], Op::Write(_, v) if v >> 24 == 1));
    assert!(matches!(flat[2], Op::FlushLine(_)));
    assert_eq!(flat[3], Op::Delay(7));
}
