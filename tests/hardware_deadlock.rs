//! Integration reproduction of paper Figure 4: the hardware deadlock.
//!
//! On the PF2 platform with AMBA fixed-priority arbitration and BOFF
//! back-off, *cacheable* lock variables can deadlock the bus: the
//! PowerPC's killed transaction outranks the snoop-push drain of the lock
//! line, and the ARM — blocked on that very lock — can never service the
//! drain interrupt. Both of the paper's remedies restore liveness.

use hmp::bus::ArbitrationPolicy;
use hmp::cpu::{LockKind, ProgramBuilder};
use hmp::platform::{presets, RunOutcome, Strategy};

fn figure4_run(cacheable_locks: bool, arm_delay: u32, lock_kind: LockKind) -> RunOutcome {
    let (mut spec, lay) = presets::ppc_arm(Strategy::Proposed, lock_kind, cacheable_locks);
    spec.watchdog_window = 10_000;
    spec.arbitration = ArbitrationPolicy::FixedPriority;
    spec.retry_backoff = 4;
    let x = lay.shared_base;
    let mut arm = ProgramBuilder::new();
    for l in 0..4 {
        arm = arm.read(x.add_lines(l)).write(x.add_lines(l), 0xA0 + l);
    }
    let arm = arm.delay(arm_delay).acquire(0).delay(50).release(0).build();
    let mut ppc = ProgramBuilder::new().delay(200).acquire(0);
    for l in 0..4 {
        ppc = ppc.read(x.add_lines(l)).delay(16);
    }
    let ppc = ppc.release(0).build();
    let mut sys = presets::instantiate(&spec, Strategy::Proposed, vec![ppc, arm]);
    sys.run(500_000).outcome
}

#[test]
fn cacheable_locks_can_deadlock_pf2() {
    let stalled = (0..200)
        .filter(|&d| figure4_run(true, d, LockKind::Bakery) == RunOutcome::Stalled)
        .count();
    assert!(
        stalled > 0,
        "some interleaving must reproduce the Figure 4 deadlock"
    );
}

#[test]
fn uncached_bakery_lock_never_deadlocks() {
    for d in (0..200).step_by(7) {
        assert_eq!(
            figure4_run(false, d, LockKind::Bakery),
            RunOutcome::Completed,
            "uncached locks must stay live (delay {d})"
        );
    }
}

#[test]
fn hardware_lock_register_never_deadlocks() {
    for d in (0..200).step_by(7) {
        assert_eq!(
            figure4_run(false, d, LockKind::HardwareRegister),
            RunOutcome::Completed,
            "the lock register must stay live (delay {d})"
        );
    }
}

#[test]
fn round_robin_arbitration_dodges_this_instance() {
    // With fair arbitration the two-master ordering that starves the drain
    // cannot form; this documents that the deadlock is a property of the
    // priority bus the paper assumes, not of the simulator.
    for d in (0..200).step_by(7) {
        let (mut spec, lay) = presets::ppc_arm(Strategy::Proposed, LockKind::Bakery, true);
        spec.watchdog_window = 10_000;
        spec.arbitration = ArbitrationPolicy::RoundRobin;
        let x = lay.shared_base;
        let mut arm = ProgramBuilder::new();
        for l in 0..4 {
            arm = arm.read(x.add_lines(l)).write(x.add_lines(l), 0xA0 + l);
        }
        let arm = arm.delay(d).acquire(0).delay(50).release(0).build();
        let mut ppc = ProgramBuilder::new().delay(200).acquire(0);
        for l in 0..4 {
            ppc = ppc.read(x.add_lines(l)).delay(16);
        }
        let ppc = ppc.release(0).build();
        let mut sys = presets::instantiate(&spec, Strategy::Proposed, vec![ppc, arm]);
        assert_eq!(sys.run(500_000).outcome, RunOutcome::Completed, "delay {d}");
    }
}
