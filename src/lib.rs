//! # hmp — heterogeneous multiprocessor cache-coherence simulator
//!
//! A Rust reproduction of *"Supporting Cache Coherence in Heterogeneous
//! Multiprocessor Systems"* (Suh, Blough, Lee — DATE 2004): snoop-translation
//! wrappers that reduce mismatched invalidation protocols (MEI, MSI, MESI,
//! MOESI) to their greatest common sub-protocol, TAG-CAM snoop logic with a
//! fast-interrupt drain path for processors without native coherence
//! hardware, and the cycle-level platform (ASB-style bus, caches, in-order
//! cores) needed to evaluate them.
//!
//! This facade crate re-exports the public API of every workspace member so
//! downstream users can depend on a single crate. See the individual crates
//! for detailed documentation:
//!
//! * [`sim`] — simulation kernel (clocks, deterministic RNG, stats, watchdog)
//! * [`mem`] — flat memory, memory map, latency-modelled memory controller
//! * [`bus`] — ASB-style shared bus, arbiter, ARTRY/BOFF, lock register
//! * [`cache`] — set-associative caches and the protocol FSM zoo
//! * [`core`] — the paper's contribution: reduction lattice, wrappers,
//!   TAG-CAM snoop logic, platform classes, deadlock analysis
//! * [`cpu`] — micro-op processor model with ISR and lock clients
//! * [`workloads`] — WCS/TCS/BCS microbenchmarks and shared-data strategies
//! * [`platform`] — system assembly and the cycle loop
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end run of the paper's PF2
//! platform (PowerPC755 + ARM920T) under all three shared-data strategies.

#![forbid(unsafe_code)]

pub use hmp_bus as bus;
pub use hmp_cache as cache;
pub use hmp_core as core;
pub use hmp_cpu as cpu;
pub use hmp_mem as mem;
pub use hmp_platform as platform;
pub use hmp_sim as sim;
pub use hmp_workloads as workloads;
