//! The hardware deadlock of paper Figure 4, live.
//!
//! On a PF2 platform (PowerPC755 + ARM920T) with *cacheable* lock
//! variables, the retry/interrupt protocols can starve each other:
//!
//! 1. the PowerPC holds the lock (the lock line is Modified in its cache)
//!    and touches shared lines the ARM has cached → TAG-CAM hit, the
//!    PowerPC's transaction is killed (ARTRY) and nFIQ is raised;
//! 2. the ARM, before it can take the interrupt, tries to acquire the
//!    lock → its bus transaction snoop-hits the Modified lock line, so
//!    the PowerPC must drain it;
//! 3. but a master granted the bus retries its own killed transaction
//!    *"instead of draining out the lock variables"* — and the ARM,
//!    blocked on its lock access, can never service the nFIQ.
//!
//! Nobody progresses. The simulator's watchdog reports the stall. The
//! fix — either of the paper's two solutions — is to keep lock variables
//! out of the caches.
//!
//! Run with: `cargo run --release --example deadlock_demo`

use hmp::cpu::{LockKind, ProgramBuilder};
use hmp::platform::{presets, RunOutcome, Strategy};
use hmp::workloads::{run, MicrobenchParams, RunSpec, Scenario};

/// One deterministic run of the Figure 4 cast: the ARM caches the shared
/// data, the PowerPC acquires the (cacheable!) lock and walks the shared
/// lines, and the ARM tries to acquire `arm_delay` core cycles after its
/// fills — the knob that decides whether its lock access is in flight at
/// the fatal moment.
fn deadlock_run(cacheable_locks: bool, arm_delay: u32) -> RunOutcome {
    let (mut spec, lay) = presets::ppc_arm(Strategy::Proposed, LockKind::Bakery, cacheable_locks);
    spec.watchdog_window = 10_000;
    // The paper's platform (Figure 2): fixed-priority AMBA arbitration with
    // BOFF back-off after ARTRY. Round-robin arbitration happens to dodge
    // the fatal ordering on a two-master bus.
    spec.arbitration = hmp::bus::ArbitrationPolicy::FixedPriority;
    spec.retry_backoff = 4;
    let x = lay.shared_base;
    // The ARM caches a handful of shared lines (the CAM now guards them),
    // waits `arm_delay` cycles, then goes for the lock.
    let mut arm = ProgramBuilder::new();
    for l in 0..4 {
        arm = arm.read(x.add_lines(l)).write(x.add_lines(l), 0xA0 + l);
    }
    let arm = arm.delay(arm_delay).acquire(0).delay(50).release(0).build();
    // The PowerPC (2× clock: delays are core cycles) lets the ARM finish
    // its fills, acquires the lock — the (cacheable!) lock line is now
    // Modified in its cache — and walks the ARM-cached shared lines.
    let mut ppc = ProgramBuilder::new().delay(200).acquire(0);
    for l in 0..4 {
        ppc = ppc.read(x.add_lines(l)).delay(16);
    }
    let ppc = ppc.release(0).build();
    let mut sys = presets::instantiate(&spec, Strategy::Proposed, vec![ppc, arm]);
    sys.run(500_000).outcome
}

fn main() {
    println!("--- cacheable lock variables (the Figure 4 configuration) ---");
    println!("The deadlock is a race: it needs the ARM's lock access in");
    println!("flight when the PowerPC's snooped transaction is killed.");
    println!("Sweeping the ARM's acquire timing over one window:\n");
    let mut stalls = 0;
    let mut first_stall = None;
    for arm_delay in 0..500 {
        if deadlock_run(true, arm_delay) == RunOutcome::Stalled {
            stalls += 1;
            first_stall.get_or_insert(arm_delay);
        }
    }
    println!("{stalls}/500 interleavings deadlock (first at ARM delay {first_stall:?})");
    assert!(
        stalls > 0,
        "the Figure 4 hardware deadlock must be reachable"
    );

    println!("\n--- solution 1: software lock (Bakery) in uncached memory ---");
    for arm_delay in (0..500).step_by(5) {
        let outcome = deadlock_run(false, arm_delay);
        assert_eq!(outcome, RunOutcome::Completed, "delay {arm_delay}");
    }
    println!("all sampled interleavings complete");

    println!("\n--- solution 2: the 1-bit hardware lock register ---");
    let params = MicrobenchParams {
        lines_per_iter: 8,
        outer_iters: 4,
        ..Default::default()
    };
    // The BCS runner uses the hardware lock register by default.
    let result = run(&RunSpec::new(Scenario::Best, Strategy::Proposed, params));
    println!("outcome: {}", result.outcome);
    assert!(result.is_clean_completion());

    println!("\nCacheable locks deadlock the PF2 platform; both of the");
    println!("paper's remedies (uncached software locks, hardware lock");
    println!("register) complete cleanly.");
}
