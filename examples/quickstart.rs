//! Quickstart: run the paper's platform end-to-end.
//!
//! Builds the DATE 2004 evaluation platform (PowerPC755 + ARM920T on a
//! 50 MHz ASB), runs the worst-case microbenchmark under all three
//! shared-data strategies, and prints the execution-time comparison the
//! paper's Figure 5 is made of.
//!
//! Run with: `cargo run --release --example quickstart`

use hmp::platform::{Report, Strategy};
use hmp::workloads::{run, MicrobenchParams, RunSpec, Scenario};

fn main() {
    let params = MicrobenchParams {
        lines_per_iter: 8,
        exec_time: 1,
        outer_iters: 8,
        ..Default::default()
    };

    println!("PowerPC755 + ARM920T, worst-case scenario, 8 lines/iteration\n");
    let mut baseline = None;
    for strategy in Strategy::ALL {
        let result = run(&RunSpec::new(Scenario::Worst, strategy, params));
        assert!(
            result.is_clean_completion(),
            "run must finish coherently: {result}"
        );
        let cycles = result.cycles_u64();
        let baseline_cycles = *baseline.get_or_insert(cycles);
        println!(
            "{strategy:>14}: {cycles:>8} bus cycles  (ratio vs cache-disabled: {:.3})",
            cycles as f64 / baseline_cycles as f64
        );
        for line in Report::from_result(&result).to_string().lines().skip(1) {
            println!("{:>14}  {line}", "");
        }
    }
    println!("\nBoth cached strategies beat the uncached baseline, and the");
    println!("proposed wrappers beat the software drain loop — without any");
    println!("explicit cache management in the program.");
}
