//! The paper's motivating SoC: a media processor feeding a network
//! processor.
//!
//! The introduction motivates heterogeneous SoCs with exactly this split:
//! "one can employ a media processor or a DSP for the MPEG/audio
//! applications while a different one for the TCP/IP stack processing".
//! This example builds that system as a PF3 platform — a MOESI media
//! engine and a MEI protocol processor — and runs a lock-protected
//! producer/consumer pipeline over a shared frame buffer:
//!
//! * the media core "decodes" frames (writes pseudo-macroblock data into
//!   the shared buffer) under the lock;
//! * the network core packetises them (reads every word back) under the
//!   lock, alternating with the producer.
//!
//! No task ever executes a cache-maintenance instruction: the wrappers
//! reduce MOESI+MEI to MEI and keep the buffer coherent. The golden-model
//! checker verifies every word the consumer reads.
//!
//! Run with: `cargo run --release --example soc_media_net`

use hmp::cache::ProtocolKind;
use hmp::cpu::{LockKind, LockLayout, ProgramBuilder};
use hmp::platform::{layout, CpuSpec, PlatformSpec, Strategy, System};

const FRAMES: u32 = 6;
const FRAME_LINES: u32 = 16; // 512-byte "frames"

fn main() {
    let (lay, map) = layout(2, Strategy::Proposed, LockKind::Turn, false);
    let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 2);
    let mut media = CpuSpec::generic("media-dsp", ProtocolKind::Moesi);
    media.clock_mult = 2; // the DSP runs at twice the bus clock
    let net = CpuSpec::generic("net-proc", ProtocolKind::Mei);
    let spec = PlatformSpec::new(vec![media, net], map, lock);

    let frame_base = |f: u32| lay.shared_base.add_lines(f * FRAME_LINES);

    // Producer: per frame, take the lock, write every word of the frame.
    let mut producer = ProgramBuilder::new();
    for f in 0..FRAMES {
        producer = producer.acquire(0);
        for l in 0..FRAME_LINES {
            for w in 0..8 {
                let addr = frame_base(f).add_lines(l).add_words(w);
                producer = producer.write(addr, (f << 16) | (l << 8) | w);
            }
        }
        producer = producer.release(0).delay(25);
    }
    let producer = producer.build();

    // Consumer: per frame, take the lock, read every word back ("build
    // packets"), with a little compute per line for header processing.
    let mut consumer = ProgramBuilder::new();
    for f in 0..FRAMES {
        consumer = consumer.acquire(0);
        for l in 0..FRAME_LINES {
            for w in 0..8 {
                consumer = consumer.read(frame_base(f).add_lines(l).add_words(w));
            }
            consumer = consumer.delay(4);
        }
        consumer = consumer.release(0).delay(25);
    }
    let consumer = consumer.build();

    let mut sys = System::new(&spec, vec![producer, consumer]);
    assert_eq!(sys.system_protocol(), Some(ProtocolKind::Mei));
    let result = sys.run(10_000_000);

    assert!(
        result.is_clean_completion(),
        "pipeline must stay coherent: {result}"
    );
    // Every frame's data is in memory or cache coherently; spot-check the
    // last frame's last word through memory + caches.
    let last = frame_base(FRAMES - 1)
        .add_lines(FRAME_LINES - 1)
        .add_words(7);
    let expect = ((FRAMES - 1) << 16) | ((FRAME_LINES - 1) << 8) | 7;
    let observed = sys
        .cache(0)
        .peek_word(last)
        .or_else(|| sys.cache(1).peek_word(last))
        .unwrap_or_else(|| sys.memory().read_word(last));
    assert_eq!(observed, expect);

    println!(
        "media→net pipeline: {} frames of {} lines",
        FRAMES, FRAME_LINES
    );
    println!("outcome:   {}", result.outcome);
    println!("cycles:    {}", result.cycles_u64());
    println!(
        "bus:       {} grants, {} retries, {} snoop drains",
        result.bus.grants, result.bus.retries, result.bus.drains
    );
    println!(
        "checker:   {} reads verified, 0 stale",
        sys.checker().map(|c| c.checked_reads()).unwrap_or(0)
    );
    println!("\nMOESI (media DSP) + MEI (network processor) reduced to MEI;");
    println!("the consumer saw every produced word without a single explicit");
    println!("cache flush in either program.");
}
