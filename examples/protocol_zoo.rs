//! Protocol zoo: every heterogeneous pairing from paper §2.
//!
//! For each combination of MEI/MSI/MESI/MOESI this example prints the
//! reduced system protocol, the derived wrapper policies, and then *runs*
//! a lock-free ping-pong workload twice — once with transparent (naive)
//! wrappers, once with the paper's policies — showing the stale reads the
//! wrappers eliminate.
//!
//! Run with: `cargo run --release --example protocol_zoo`

use hmp::cache::ProtocolKind;
use hmp::core::{derive_policy, reduce};
use hmp::cpu::{LockKind, LockLayout, ProgramBuilder};
use hmp::platform::{layout, CpuSpec, PlatformSpec, Strategy, System, WrapperMode};

/// A ping-pong without locks: each CPU repeatedly writes then reads the
/// shared line, interleaved by delays. Under a broken integration the
/// reads observe stale values.
fn violations(a: ProtocolKind, b: ProtocolKind, mode: WrapperMode) -> usize {
    let (lay, map) = layout(2, Strategy::Proposed, LockKind::Turn, false);
    let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 2);
    let mut spec = PlatformSpec::new(
        vec![CpuSpec::generic("a", a), CpuSpec::generic("b", b)],
        map,
        lock,
    );
    spec.wrapper_mode = mode;
    let c = lay.shared_base;
    let p0 = ProgramBuilder::new()
        .repeat(8, |p| p.read(c).delay(97).write(c, 0xAAAA).delay(61))
        .build();
    let p1 = ProgramBuilder::new()
        .delay(31)
        .repeat(8, |p| p.read(c).delay(83).write(c, 0xBBBB).delay(59))
        .build();
    let mut sys = System::new(&spec, vec![p0, p1]);
    let result = sys.run(1_000_000);
    result.violations.len()
}

fn main() {
    use ProtocolKind::*;
    println!(
        "{:<7} {:<7} {:<7} {:<9} {:<9} cpu0 wrapper policy",
        "cpu0", "cpu1", "system", "naive", "wrapped"
    );
    for (a, b) in [
        (Mei, Mei),
        (Mei, Msi),
        (Mei, Mesi),
        (Mei, Moesi),
        (Msi, Msi),
        (Msi, Mesi),
        (Msi, Moesi),
        (Mesi, Mesi),
        (Mesi, Moesi),
        (Moesi, Moesi),
    ] {
        let system = reduce(&[a, b]).expect("valid pair");
        let naive = violations(a, b, WrapperMode::Transparent);
        let wrapped = violations(a, b, WrapperMode::Paper);
        println!(
            "{:<7} {:<7} {:<7} {:<9} {:<9} {}",
            a.to_string(),
            b.to_string(),
            system.to_string(),
            format!("{naive} stale"),
            format!("{wrapped} stale"),
            derive_policy(a, system)
        );
        assert_eq!(wrapped, 0, "paper wrappers must be coherent for {a}+{b}");
    }
    println!("\nEvery pairing is coherent under the derived wrapper policies;");
    println!("the mismatched pairings (MEI+MESI, MSI+MESI, …) read stale data");
    println!("when integrated naively — exactly the paper's Tables 2 and 3.");
}
