//! Edge cases of the hand-rolled JSON machinery that the `hmp-server`
//! wire protocol exercises: escape handling, nesting depth, number
//! formats, and strict whole-document consumption. The canonical
//! serialize → parse → re-serialize fixed point for run *specs* lives in
//! `hmp_workloads::codec`; here we pin the parser the codec builds on.

use hmp_sim::export::{json_escape, parse_json, validate_json, JsonValue};

#[test]
fn escaped_strings_roundtrip() {
    let cases = [
        ("plain", "plain"),
        ("tab\there", "tab\\there"),
        ("new\nline", "new\\nline"),
        ("quote\"backslash\\", "quote\\\"backslash\\\\"),
        ("ctrl\u{1}char", "ctrl\\u0001char"),
        ("naïve-日本語", "naïve-日本語"),
    ];
    for (raw, escaped) in cases {
        assert_eq!(json_escape(raw), escaped, "escape of {raw:?}");
        let doc = format!("\"{escaped}\"");
        match parse_json(&doc).unwrap_or_else(|e| panic!("{doc}: {e}")) {
            JsonValue::Str(s) => assert_eq!(s, raw, "roundtrip of {raw:?}"),
            other => panic!("{doc} parsed to {other:?}"),
        }
    }
}

#[test]
fn unicode_escapes_decode() {
    let doc = r#""Aé☃ \/ \b\f\r""#;
    match parse_json(doc).unwrap() {
        JsonValue::Str(s) => assert_eq!(s, "Aé☃ / \u{8}\u{c}\r"),
        other => panic!("parsed to {other:?}"),
    }
    // Lone surrogates are tolerated as the replacement character, not a
    // parse failure (the workspace never emits them).
    match parse_json(r#""\ud800""#).unwrap() {
        JsonValue::Str(s) => assert_eq!(s, "\u{fffd}"),
        other => panic!("parsed to {other:?}"),
    }
}

#[test]
fn bad_escapes_are_rejected() {
    for doc in [
        r#""\q""#,
        r#""\u12""#,
        r#""\u12zz""#,
        r#""unterminated"#,
        "\"\\",
    ] {
        assert!(parse_json(doc).is_err(), "{doc} should not parse");
    }
    // validate_json only scans string shape (it never decodes escapes),
    // so it rejects unterminated strings but tolerates unknown escapes.
    for doc in [r#""unterminated"#, "\"\\"] {
        assert!(validate_json(doc).is_err(), "{doc} should not validate");
    }
    assert!(validate_json(r#""\q""#).is_ok());
}

#[test]
fn nesting_is_accepted_to_the_cap_and_rejected_past_it() {
    // Depth 256 is the documented cap: [[[...]]] with 256 brackets parses.
    let ok = format!("{}{}", "[".repeat(256), "]".repeat(256));
    assert!(parse_json(&ok).is_ok(), "depth 256 must parse");
    assert!(validate_json(&ok).is_ok(), "depth 256 must validate");

    let too_deep = format!("{}{}", "[".repeat(257), "]".repeat(257));
    let err = parse_json(&too_deep).expect_err("depth 257 must fail");
    assert!(err.contains("nesting too deep"), "{err}");
    assert!(validate_json(&too_deep).is_err());

    // Mixed object/array nesting counts the same way; the innermost
    // scalar occupies a value frame of its own (127·2 + 1 = 255 ≤ 256).
    let mixed_ok = format!(r#"{}1{}"#, r#"{"k":["#.repeat(127), "]}".repeat(127));
    assert!(parse_json(&mixed_ok).is_ok(), "mixed depth 255 must parse");
}

#[test]
fn exponent_and_negative_numbers_parse() {
    let doc = r#"[0, -0, -13, 3.5, -2.25, 1e3, 1E3, 2.5e-2, -1.5E+2, 1e0]"#;
    let JsonValue::Arr(items) = parse_json(doc).unwrap() else {
        panic!("not an array");
    };
    let want = [
        0.0, -0.0, -13.0, 3.5, -2.25, 1000.0, 1000.0, 0.025, -150.0, 1.0,
    ];
    assert_eq!(items.len(), want.len());
    for (item, want) in items.iter().zip(want) {
        assert_eq!(item.as_f64(), Some(want));
    }
}

#[test]
fn malformed_numbers_are_rejected() {
    for doc in ["-", "1e", "--1", "1.2.3", "+1", "0x10"] {
        assert!(parse_json(doc).is_err(), "{doc} should not parse");
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    for doc in [
        "{} extra",
        "[1,2] [3]",
        "1 2",
        "true false",
        r#""a" "b""#,
        "{\"a\":1}x",
        "nullnull",
    ] {
        let err = parse_json(doc).expect_err(doc);
        assert!(err.contains("trailing garbage"), "{doc}: {err}");
        assert!(validate_json(doc).is_err(), "{doc} should not validate");
    }
    // ...but trailing whitespace (including the newline that delimits
    // wire-protocol frames) is fine.
    for doc in ["{} \n", "[1]\t", "42\n"] {
        assert!(parse_json(doc).is_ok(), "{doc} should parse");
    }
}

#[test]
fn structural_errors_are_rejected() {
    for doc in [
        "",
        "   ",
        "{",
        "}",
        "[1,",
        "[1,]2",
        r#"{"a"}"#,
        r#"{"a":}"#,
        r#"{"a":1,}"#,
        r#"{a:1}"#,
        "[,]",
        "tru",
    ] {
        assert!(parse_json(doc).is_err(), "{doc:?} should not parse");
    }
}

#[test]
fn reserialized_values_reparse_identically() {
    // parse → render → parse is a fixed point at the value level: the
    // property the server relies on when it canonicalizes client specs.
    let doc = r#"{"b":[1,2.5,-3e2],"a":{"nested":"va\"l\\ue","t":true,"n":null},"s":"☃"}"#;
    let once = parse_json(doc).unwrap();
    let rendered = render(&once);
    let twice = parse_json(&rendered).unwrap();
    assert_eq!(render(&twice), rendered, "render must be a fixed point");
}

/// A minimal canonical renderer (object key order preserved) used to pin
/// the parse → render fixed point.
fn render(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".into(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        JsonValue::Str(s) => format!("\"{}\"", json_escape(s)),
        JsonValue::Arr(items) => {
            let inner: Vec<String> = items.iter().map(render).collect();
            format!("[{}]", inner.join(","))
        }
        JsonValue::Obj(members) => {
            let inner: Vec<String> = members
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", json_escape(k), render(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}
