//! Property-based tests for the simulation kernel.

// QUARANTINED (PR 1): these property tests depend on the `proptest` crate,
// which the offline build environment cannot fetch (empty cargo registry, no
// network). Enable the `proptests` feature after restoring the `proptest`
// dev-dependency to run them. Tracking: CHANGES.md (PR 1).
#![cfg(feature = "proptests")]

use hmp_sim::{ClockDomain, CoreCycle, Cycle, SplitMix64, Stats, Watchdog, WatchdogVerdict};
use proptest::prelude::*;

proptest! {
    #[test]
    fn gen_range_is_always_in_bounds(seed in any::<u64>(), bound in 1u64..10_000) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.gen_range(bound) < bound);
        }
    }

    #[test]
    fn equal_seeds_equal_streams(seed in any::<u64>()) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_do_not_collide_early(seed in any::<u64>()) {
        let mut parent = SplitMix64::new(seed);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        let s1: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let s2: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        prop_assert_ne!(s1, s2);
    }

    #[test]
    fn clock_domain_round_trip(mult in 1u32..8, bus in 0u64..100_000) {
        let dom = ClockDomain::new(mult);
        let core = dom.to_core(Cycle::new(bus));
        prop_assert_eq!(dom.to_bus_ceil(core), Cycle::new(bus));
        // Ceil rounding never loses time.
        let odd = CoreCycle::new(core.as_u64() + 1);
        prop_assert!(dom.to_bus_ceil(odd) >= Cycle::new(bus));
    }

    #[test]
    fn stats_merge_is_addition(
        pairs in prop::collection::vec(("[a-c]", 0u64..100), 0..20),
    ) {
        let mut left = Stats::new();
        let mut right = Stats::new();
        let mut total = Stats::new();
        for (i, (k, v)) in pairs.iter().enumerate() {
            if i % 2 == 0 {
                left.add(k, *v);
            } else {
                right.add(k, *v);
            }
            total.add(k, *v);
        }
        left.merge(&right);
        for (k, v) in total.iter() {
            prop_assert_eq!(left.get(k), v);
        }
    }

    #[test]
    fn watchdog_trips_iff_window_elapses(
        window in 1u64..100,
        quiet in 0u64..200,
    ) {
        let mut dog = Watchdog::new(Cycle::new(window));
        dog.poll(Cycle::new(0), 0);
        let verdict = dog.poll(Cycle::new(quiet), 0);
        prop_assert_eq!(
            verdict == WatchdogVerdict::Stalled,
            quiet >= window,
            "window {}, quiet {}",
            window,
            quiet
        );
    }

    #[test]
    fn watchdog_never_trips_with_steady_progress(
        window in 1u64..50,
        steps in 1u64..300,
    ) {
        let mut dog = Watchdog::new(Cycle::new(window));
        for t in 0..steps {
            prop_assert_eq!(dog.poll(Cycle::new(t), t), WatchdogVerdict::Healthy);
        }
    }
}
