//! # hmp-sim — simulation kernel for the hmp heterogeneous-coherence simulator
//!
//! This crate holds the domain-neutral plumbing every other `hmp` crate
//! builds on:
//!
//! * [`Cycle`] / [`CoreCycle`] — newtypes for bus-clock and core-clock time,
//!   plus [`ClockDomain`] to relate the two (the reproduced platform runs a
//!   100 MHz PowerPC755 and a 50 MHz ARM920T on a 50 MHz ASB bus).
//! * [`SplitMix64`] — a tiny, deterministic, seedable RNG used for every
//!   randomized decision in the simulator (typical-case workload block
//!   picks, interrupt-response jitter). No global or wall-clock entropy is
//!   ever used, so every run is bit-reproducible.
//! * [`SimEvent`] / [`Observer`] — typed hot-path instrumentation: the bus,
//!   caches, snoop logic and CPUs emit `Copy` events; [`NullObserver`]
//!   compiles to a no-op and [`TraceObserver`] stores events unrendered.
//! * [`CounterBank`] — enum-indexed activity counters ([`CpuCounter`],
//!   [`RetryCause`]) that render to the legacy string-keyed [`Stats`]
//!   registry only when a run finishes.
//! * [`Stats`] — a string-keyed counter registry for reports.
//! * [`Span`] / [`SpanTracker`] — per-transaction lifecycle spans stitched
//!   from the event stream (request → grant → retries → completion).
//! * [`Hist`] — allocation-free log2-bucketed latency histograms.
//! * [`MetricsObserver`] / [`MetricsSnapshot`] — the all-in-one metrics
//!   sink: spans, histograms, per-CPU counters, hot retry addresses.
//! * [`MetricsRegistry`] / [`TimeSeriesSnapshot`] — streaming windowed
//!   time series (utilization, grant share, occupancy, retries) with
//!   decimation-by-merging so memory stays O(capacity) over arbitrarily
//!   long runs, plus [`KernelProfile`] wall-time self-profiling and a
//!   Prometheus-style text [`exposition`].
//! * [`EventSchedule`] — per-node absolute next-event times with dirty
//!   tracking and a lazy min-heap: the O(log N) incremental planner core
//!   of the fast-forward kernel.
//! * [`export`] — Chrome/Perfetto trace-event JSON rendering of a run.
//! * [`Watchdog`] — forward-progress detection, used to turn the paper's
//!   *hardware deadlock* (Figure 4) into a reportable simulation outcome
//!   instead of a hang.
//! * [`FaultPlan`] / [`FaultSpec`] / [`FaultKind`] — deterministic,
//!   seed-reproducible fault schedules for the chaos harness; the
//!   platform layer injects each class at the component boundary it
//!   models.
//!
//! # Examples
//!
//! ```
//! use hmp_sim::{ClockDomain, Cycle, SplitMix64};
//!
//! let ppc = ClockDomain::new(2); // 100 MHz core on a 50 MHz bus
//! assert_eq!(ppc.core_cycles_per_bus_cycle(), 2);
//!
//! let mut rng = SplitMix64::new(42);
//! let a = rng.next_u64();
//! let b = SplitMix64::new(42).next_u64();
//! assert_eq!(a, b); // fully deterministic
//! # let _ = Cycle::ZERO;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod counters;
pub mod digest;
mod event;
pub mod export;
mod fault;
mod hist;
mod kernel;
mod metrics;
mod rng;
mod schedule;
mod span;
mod stats;
mod timeseries;
mod watchdog;

pub use clock::{ClockDomain, CoreCycle, Cycle};
pub use counters::{CounterBank, CpuCounter};
pub use digest::{Fnv64, SIM_EPOCH};
pub use event::{
    BusOpKind, NullObserver, Observer, RetryCause, SimEvent, SnoopActionKind, TraceObserver,
    TracedEvent,
};
pub use fault::{FaultKind, FaultPlan, FaultSpec};
pub use hist::{Hist, BUCKETS as HIST_BUCKETS};
pub use kernel::Kernel;
pub use metrics::{MetricsObserver, MetricsSnapshot};
pub use rng::SplitMix64;
pub use schedule::{EventSchedule, NO_EVENT};
pub use span::{Span, SpanTracker};
pub use stats::Stats;
pub use timeseries::{
    exposition, KernelMix, KernelProfile, MetricsRegistry, TimeSeriesSnapshot, TimeSeriesSpec,
};
pub use watchdog::{Watchdog, WatchdogVerdict};
