//! Simulation-kernel selection.
//!
//! The platform's cycle loop can advance time two ways. The *step* kernel
//! executes every bus cycle, including cycles where every component is
//! merely counting down a known delay (a data phase streaming, a core
//! burning `Delay` cycles, an ISR prologue). The *fast-forward* kernel
//! asks each component for its next event time, bulk-advances the clock
//! and all countdowns to one cycle before the earliest event, and then
//! single-steps that cycle through the ordinary step path — so every
//! grant, snoop, retry and observer event still happens at its true
//! cycle, and the two kernels produce byte-identical results.

/// How the platform's run loop advances simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Kernel {
    /// Execute every bus cycle, one at a time. The reference kernel: the
    /// fast-forward kernel is validated against it.
    Step,
    /// Skip provably-dead cycles between events in O(components), falling
    /// back to single-stepping on any cycle where arbitration, snooping,
    /// a retry, an interrupt delivery or a countdown expiry can occur.
    #[default]
    FastForward,
}

impl core::fmt::Display for Kernel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Kernel::Step => write!(f, "step"),
            Kernel::FastForward => write!(f, "fast-forward"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fast_forward() {
        assert_eq!(Kernel::default(), Kernel::FastForward);
    }

    #[test]
    fn display_names() {
        assert_eq!(Kernel::Step.to_string(), "step");
        assert_eq!(Kernel::FastForward.to_string(), "fast-forward");
    }
}
