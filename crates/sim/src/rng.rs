//! Deterministic pseudo-random number generation.
//!
//! Simulation runs must be bit-reproducible: the typical-case-scenario
//! workload picks shared blocks "randomly among 10 blocks" (paper §4) and
//! the ARM920T interrupt-response time "may or may not respond … depending
//! on the status of the CPU pipeline" (paper §3) — both are modelled with a
//! seeded stream from this generator, never with ambient entropy.

/// SplitMix64 — a tiny, fast, well-distributed 64-bit PRNG.
///
/// This is Sebastiano Vigna's `splitmix64`, the generator used to seed the
/// xoshiro family. It passes BigCrush when used directly, is trivially
/// seedable from a single `u64`, and has no state beyond 8 bytes, which
/// makes simulator snapshots cheap.
///
/// # Examples
///
/// ```
/// use hmp_sim::SplitMix64;
/// let mut rng = SplitMix64::new(7);
/// let x = rng.gen_range(10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns the next 32-bit value in the stream.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed value in `0..bound`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so there is no modulo
    /// bias even for bounds that do not divide `2^64`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire rejection sampling.
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn gen_bool_ratio(&mut self, num: u64, den: u64) -> bool {
        self.gen_range(den) < num
    }

    /// Splits off an independent child generator.
    ///
    /// Each component of the simulator (workload generator, interrupt
    /// jitter, …) gets its own stream so that adding randomness in one
    /// place does not perturb decisions elsewhere.
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

impl Default for SplitMix64 {
    /// Seeds with a fixed constant (`0xC0FFEE`), keeping default
    /// construction deterministic too.
    fn default() -> Self {
        SplitMix64::new(0xC0_FFEE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // First outputs of splitmix64 for seed 0, from Vigna's reference C.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SplitMix64::new(3);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..50 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = SplitMix64::new(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values should appear");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_range_zero_panics() {
        SplitMix64::new(0).gen_range(0);
    }

    #[test]
    fn bool_ratio_extremes() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..20 {
            assert!(rng.gen_bool_ratio(1, 1));
            assert!(!rng.gen_bool_ratio(0, 1));
        }
    }

    #[test]
    fn split_streams_independent() {
        let mut parent = SplitMix64::new(6);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn default_is_fixed() {
        assert_eq!(SplitMix64::default(), SplitMix64::new(0xC0_FFEE));
    }
}
