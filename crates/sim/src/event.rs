//! Typed hot-path instrumentation: [`SimEvent`], [`Observer`] and the
//! built-in observers.
//!
//! The simulator's inner loops (bus arbitration, snoop ports, TAG-CAM
//! lookups, ISR entry) emit [`SimEvent`]s to an [`Observer`] passed down
//! from the platform. Events are plain `Copy` values with domain-neutral
//! payloads — no strings are built at the emission site, so the
//! [`NullObserver`] compiles to a genuine no-op (no allocation, no
//! formatting) and the [`TraceObserver`] stores events as-is and renders
//! them lazily, only when displayed.

use crate::Cycle;
use std::collections::VecDeque;
use std::fmt;

/// The kind of operation on the bus, without its data payload.
///
/// A domain-neutral mirror of `hmp-bus`'s `BusOp` (the kernel crate cannot
/// depend on the bus crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusOpKind {
    /// Burst read of a whole line.
    ReadLine,
    /// Burst read with intent to modify (RWITM).
    ReadLineExcl,
    /// Burst write of a whole line (write-back / drain).
    WriteLine,
    /// Single-word read.
    ReadWord,
    /// Single-word write.
    WriteWord,
    /// Invalidate broadcast.
    Upgrade,
}

impl fmt::Display for BusOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BusOpKind::ReadLine => "ReadLine",
            BusOpKind::ReadLineExcl => "ReadLineExcl",
            BusOpKind::WriteLine => "WriteLine",
            BusOpKind::ReadWord => "ReadWord",
            BusOpKind::WriteWord => "WriteWord",
            BusOpKind::Upgrade => "Upgrade",
        };
        f.write_str(s)
    }
}

/// What a snooping cache did in response to a snooped operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnoopActionKind {
    /// State transition only (possibly asserting SHARED).
    StateOnly,
    /// Dirty line pushed to memory; the snooped transaction is killed.
    Writeback,
    /// Dirty line supplied cache-to-cache (MOESI-style).
    Supply,
}

impl fmt::Display for SnoopActionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SnoopActionKind::StateOnly => "state-only",
            SnoopActionKind::Writeback => "writeback",
            SnoopActionKind::Supply => "supply",
        };
        f.write_str(s)
    }
}

/// Why an address phase was killed with ARTRY.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryCause {
    /// The line sits in some master's write-back buffer.
    WriteBuffer,
    /// A snooping cache is pushing its dirty copy first.
    SnoopDrain,
    /// A TAG-CAM hit on a non-coherent processor awaiting its drain ISR.
    CamHit,
    /// An injected fault (spurious retry or wedged master) killed the
    /// phase; no snoop demanded it.
    Injected,
}

impl RetryCause {
    /// Number of causes (array-index bound for counter banks).
    pub const COUNT: usize = 4;

    /// All causes, in array-index order.
    pub const ALL: [RetryCause; RetryCause::COUNT] = [
        RetryCause::WriteBuffer,
        RetryCause::SnoopDrain,
        RetryCause::CamHit,
        RetryCause::Injected,
    ];

    /// The legacy `Stats` key suffix (`bus.retry.<key>`).
    pub fn key(self) -> &'static str {
        match self {
            RetryCause::WriteBuffer => "wb_buffer",
            RetryCause::SnoopDrain => "snoop_drain",
            RetryCause::CamHit => "cam",
            RetryCause::Injected => "injected",
        }
    }

    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

/// One typed hot-path event.
///
/// Addresses are raw `u64`s and masters/CPUs are plain indices so that the
/// kernel crate stays free of domain types; observers that want pretty
/// output render lazily from these payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// A master queued a transaction on its bus port (emitted by
    /// `hmp-bus`). This opens a transaction lifecycle span: the gap to
    /// the first [`SimEvent::BusGrant`] is the bus-acquire wait.
    BusRequest {
        /// Index of the requesting master.
        master: usize,
        /// Operation to be driven.
        op: BusOpKind,
        /// Target address.
        addr: u64,
        /// `true` for a queued snoop-push / victim write-back.
        is_drain: bool,
    },
    /// The bus granted a transaction (emitted by `hmp-bus`).
    BusGrant {
        /// Index of the granted master.
        master: usize,
        /// Operation on the wire.
        op: BusOpKind,
        /// Target address.
        addr: u64,
        /// `true` if this transaction was previously killed by ARTRY.
        is_retry: bool,
        /// `true` for a snoop-push write-back.
        is_drain: bool,
    },
    /// An address phase was killed with ARTRY (emitted by the platform,
    /// which is the only layer that knows the cause).
    BusRetry {
        /// Index of the master whose transaction was killed.
        master: usize,
        /// Target address.
        addr: u64,
        /// Why the phase retried.
        cause: RetryCause,
    },
    /// A snooping cache replied to a snooped operation (emitted by
    /// `hmp-cache`).
    SnoopHit {
        /// Index of the snooping cache's owner.
        owner: usize,
        /// Snooped address.
        addr: u64,
        /// What the cache did.
        action: SnoopActionKind,
        /// Whether the cache asserted the SHARED signal.
        asserts_shared: bool,
    },
    /// A TAG-CAM matched a remote master's address (emitted by
    /// `hmp-core`); the transaction is killed until the ISR drains.
    CamHit {
        /// Index of the CAM's owner.
        owner: usize,
        /// Matched address.
        addr: u64,
    },
    /// A transaction finished its data phase (emitted by `hmp-bus`).
    /// Closes the lifecycle span opened by [`SimEvent::BusRequest`].
    BusComplete {
        /// Index of the master whose transaction completed.
        master: usize,
        /// Operation that completed.
        op: BusOpKind,
        /// Target address.
        addr: u64,
        /// `true` for a snoop-push / victim write-back.
        is_drain: bool,
    },
    /// A non-coherent CPU entered its snoop-drain ISR (emitted by
    /// `hmp-cpu`).
    IsrEnter {
        /// Index of the CPU.
        cpu: usize,
        /// Line the nFIQ asked it to drain.
        line: u64,
    },
    /// A non-coherent CPU finished its snoop-drain ISR (emitted by
    /// `hmp-cpu`). The gap from [`SimEvent::IsrEnter`] is the ISR drain
    /// latency.
    IsrExit {
        /// Index of the CPU.
        cpu: usize,
        /// Line that was drained.
        line: u64,
    },
    /// A cache line was filled from the bus (emitted by `hmp-cache`).
    CacheFill {
        /// Index of the cache's owner.
        owner: usize,
        /// Line base address.
        addr: u64,
        /// `true` if the SHARED signal forced a shared install.
        shared: bool,
    },
    /// A scheduled fault fired (emitted by the platform's injector).
    FaultInjected {
        /// Fired fault class.
        kind: crate::fault::FaultKind,
        /// Target component index.
        target: usize,
        /// Address scope (0 when the class is not address-scoped).
        addr: u64,
    },
    /// The recovery policy quarantined a master: its CPU-initiated
    /// transactions are excluded from arbitration from here on (drains
    /// still flow, so no dirty data is lost).
    MasterQuarantined {
        /// Index of the quarantined master.
        master: usize,
    },
}

impl fmt::Display for SimEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SimEvent::BusRequest {
                master,
                op,
                addr,
                is_drain,
            } => write!(
                f,
                "request cpu{master} {op} {addr:#x}{}",
                if is_drain { " (drain)" } else { "" },
            ),
            SimEvent::BusGrant {
                master,
                op,
                addr,
                is_retry,
                is_drain,
            } => write!(
                f,
                "grant cpu{master} {op} {addr:#x}{}{}",
                if is_drain { " (drain)" } else { "" },
                if is_retry { " (retry)" } else { "" },
            ),
            SimEvent::BusRetry {
                master,
                addr,
                cause,
            } => write!(f, "ARTRY cpu{master} {addr:#x} ({})", cause.key()),
            SimEvent::SnoopHit {
                owner,
                addr,
                action,
                asserts_shared,
            } => write!(
                f,
                "cpu{owner} snoop hit {addr:#x} {action}{}",
                if asserts_shared { " +shared" } else { "" },
            ),
            SimEvent::CamHit { owner, addr } => {
                write!(f, "cpu{owner} cam hit {addr:#x}")
            }
            SimEvent::BusComplete {
                master,
                op,
                addr,
                is_drain,
            } => write!(
                f,
                "complete cpu{master} {op} {addr:#x}{}",
                if is_drain { " (drain)" } else { "" },
            ),
            SimEvent::IsrEnter { cpu, line } => {
                write!(f, "cpu{cpu} isr enter drain {line:#x}")
            }
            SimEvent::IsrExit { cpu, line } => {
                write!(f, "cpu{cpu} isr exit drain {line:#x}")
            }
            SimEvent::CacheFill {
                owner,
                addr,
                shared,
            } => write!(
                f,
                "cpu{owner} fill {addr:#x}{}",
                if shared { " (shared)" } else { "" },
            ),
            SimEvent::FaultInjected { kind, target, addr } => {
                write!(f, "FAULT {kind} target={target} addr={addr:#x}")
            }
            SimEvent::MasterQuarantined { master } => {
                write!(f, "cpu{master} quarantined by recovery policy")
            }
        }
    }
}

/// A sink for [`SimEvent`]s.
///
/// Passed by `&mut` reference down the hot path; the platform is generic
/// over the observer type, so with [`NullObserver`] the calls inline away
/// entirely.
pub trait Observer {
    /// Called at each instrumented point with the bus-clock time.
    fn on_event(&mut self, at: Cycle, event: SimEvent);
}

/// The zero-cost default observer: discards every event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {
    #[inline(always)]
    fn on_event(&mut self, _at: Cycle, _event: SimEvent) {}
}

/// A timestamped event held by a [`TraceObserver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracedEvent {
    /// Bus-clock time of the event.
    pub at: Cycle,
    /// The event itself, unrendered.
    pub event: SimEvent,
}

impl fmt::Display for TracedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>8}] {}", self.at.as_u64(), self.event)
    }
}

/// A bounded ring of typed events, rendered lazily.
///
/// Recording stores the `Copy` event only — all formatting happens in
/// [`fmt::Display`], after the simulation, so tracing costs no per-event
/// allocation on the hot path. (The stringly-typed `TraceBuffer` this
/// replaced is gone; this ring is the single tracing substrate.)
#[derive(Debug, Clone, Default)]
pub struct TraceObserver {
    capacity: usize,
    events: VecDeque<TracedEvent>,
    dropped: u64,
}

impl TraceObserver {
    /// Creates an observer keeping the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceObserver {
            capacity,
            events: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// Number of events currently stored.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates stored events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TracedEvent> {
        self.events.iter()
    }

    /// Drops all stored events, keeping capacity.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Reinitializes for a fresh run: clears the ring and the dropped
    /// counter, keeping capacity.
    pub fn reset(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

impl Observer for TraceObserver {
    fn on_event(&mut self, at: Cycle, event: SimEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TracedEvent { at, event });
    }
}

impl fmt::Display for TraceObserver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        if self.dropped > 0 {
            writeln!(f, "({} earlier events dropped)", self.dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_discards() {
        let mut o = NullObserver;
        o.on_event(
            Cycle::new(1),
            SimEvent::CamHit {
                owner: 1,
                addr: 0x40,
            },
        );
        // Nothing observable; the call merely must compile and not panic.
    }

    #[test]
    fn trace_observer_stores_and_evicts() {
        let mut t = TraceObserver::new(2);
        for i in 0..3 {
            t.on_event(
                Cycle::new(i),
                SimEvent::BusGrant {
                    master: 0,
                    op: BusOpKind::ReadLine,
                    addr: 0x40 * i,
                    is_retry: false,
                    is_drain: false,
                },
            );
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.iter().next().unwrap().at, Cycle::new(1));
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn zero_capacity_trace_records_nothing() {
        let mut t = TraceObserver::new(0);
        t.on_event(Cycle::new(1), SimEvent::CamHit { owner: 0, addr: 0 });
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn rendering_is_lazy_and_complete() {
        let mut t = TraceObserver::new(8);
        t.on_event(
            Cycle::new(3),
            SimEvent::BusGrant {
                master: 1,
                op: BusOpKind::ReadLineExcl,
                addr: 0x80,
                is_retry: true,
                is_drain: false,
            },
        );
        t.on_event(
            Cycle::new(4),
            SimEvent::BusRetry {
                master: 1,
                addr: 0x80,
                cause: RetryCause::SnoopDrain,
            },
        );
        t.on_event(
            Cycle::new(5),
            SimEvent::SnoopHit {
                owner: 0,
                addr: 0x80,
                action: SnoopActionKind::Writeback,
                asserts_shared: true,
            },
        );
        t.on_event(Cycle::new(6), SimEvent::IsrEnter { cpu: 1, line: 0xc0 });
        let s = t.to_string();
        assert!(s.contains("grant cpu1 ReadLineExcl 0x80 (retry)"));
        assert!(s.contains("ARTRY cpu1 0x80 (snoop_drain)"));
        assert!(s.contains("cpu0 snoop hit 0x80 writeback +shared"));
        assert!(s.contains("cpu1 isr enter drain 0xc0"));
    }

    #[test]
    fn event_kind_displays() {
        assert_eq!(BusOpKind::WriteWord.to_string(), "WriteWord");
        assert_eq!(SnoopActionKind::Supply.to_string(), "supply");
        assert_eq!(RetryCause::CamHit.key(), "cam");
        let e = SimEvent::CamHit {
            owner: 2,
            addr: 0x140,
        };
        assert_eq!(e.to_string(), "cpu2 cam hit 0x140");
    }
}
