//! Enum-indexed platform counters.
//!
//! The hot path used to build string keys (`format!("cpu{i}.read_hit")`)
//! for every increment into [`crate::Stats`]. A [`CounterBank`] replaces
//! that with plain array indexing; the string keys are only materialized
//! when a run finishes, via [`CounterBank::to_stats`] /
//! [`CounterBank::iter`], so report output is unchanged.

use crate::event::RetryCause;
use crate::Stats;

/// A per-CPU activity counter.
///
/// Each variant corresponds to one legacy `cpu{i}.<key>` stats key; see
/// [`CpuCounter::key`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuCounter {
    /// Cached read serviced locally.
    ReadHit,
    /// Cached read that missed and went to the bus.
    ReadMiss,
    /// Cached write serviced locally.
    WriteHit,
    /// Write hit on a Shared line that broadcast an upgrade.
    WriteUpgrade,
    /// Write hit on a write-through line (word also sent to memory).
    WriteThrough,
    /// Cached write that missed and fetched the line RWITM.
    WriteMiss,
    /// Write miss on a no-allocate (write-through) region.
    WriteNoAllocate,
    /// Uncached or device read word.
    UncachedRead,
    /// Uncached or device write word.
    UncachedWrite,
    /// Snoop port matched a remote operation.
    SnoopHit,
    /// Snoop hit that pushed a dirty line to memory.
    SnoopDrain,
    /// Snoop hit that supplied the line cache-to-cache.
    CacheToCache,
    /// TAG-CAM matched a remote operation.
    CamHit,
    /// Flush wrote a dirty line back.
    FlushDirty,
    /// Flush found the line clean or absent.
    FlushClean,
    /// Explicit invalidate.
    Invalidate,
    /// ISR drain that wrote a dirty line back.
    IsrDrainDirty,
    /// ISR drain that found the line clean or absent.
    IsrDrainClean,
    /// Dirty victim written back on eviction.
    VictimWriteback,
    /// Clean victim dropped on eviction.
    VictimClean,
    /// Upgrade completed after the line was snoop-invalidated away.
    UpgradeLost,
}

impl CpuCounter {
    /// Number of counters (array-index bound).
    pub const COUNT: usize = 21;

    /// All counters, in array-index order.
    pub const ALL: [CpuCounter; CpuCounter::COUNT] = [
        CpuCounter::ReadHit,
        CpuCounter::ReadMiss,
        CpuCounter::WriteHit,
        CpuCounter::WriteUpgrade,
        CpuCounter::WriteThrough,
        CpuCounter::WriteMiss,
        CpuCounter::WriteNoAllocate,
        CpuCounter::UncachedRead,
        CpuCounter::UncachedWrite,
        CpuCounter::SnoopHit,
        CpuCounter::SnoopDrain,
        CpuCounter::CacheToCache,
        CpuCounter::CamHit,
        CpuCounter::FlushDirty,
        CpuCounter::FlushClean,
        CpuCounter::Invalidate,
        CpuCounter::IsrDrainDirty,
        CpuCounter::IsrDrainClean,
        CpuCounter::VictimWriteback,
        CpuCounter::VictimClean,
        CpuCounter::UpgradeLost,
    ];

    /// The legacy stats key suffix (`cpu{i}.<key>`).
    pub fn key(self) -> &'static str {
        match self {
            CpuCounter::ReadHit => "read_hit",
            CpuCounter::ReadMiss => "read_miss",
            CpuCounter::WriteHit => "write_hit",
            CpuCounter::WriteUpgrade => "write_upgrade",
            CpuCounter::WriteThrough => "write_through",
            CpuCounter::WriteMiss => "write_miss",
            CpuCounter::WriteNoAllocate => "write_no_allocate",
            CpuCounter::UncachedRead => "uncached_read",
            CpuCounter::UncachedWrite => "uncached_write",
            CpuCounter::SnoopHit => "snoop_hit",
            CpuCounter::SnoopDrain => "snoop_drain",
            CpuCounter::CacheToCache => "cache_to_cache",
            CpuCounter::CamHit => "cam_hit",
            CpuCounter::FlushDirty => "flush_dirty",
            CpuCounter::FlushClean => "flush_clean",
            CpuCounter::Invalidate => "invalidate",
            CpuCounter::IsrDrainDirty => "isr_drain_dirty",
            CpuCounter::IsrDrainClean => "isr_drain_clean",
            CpuCounter::VictimWriteback => "victim_writeback",
            CpuCounter::VictimClean => "victim_clean",
            CpuCounter::UpgradeLost => "upgrade_lost",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Enum-indexed counter arrays for one platform: per-CPU activity plus
/// bus-retry causes.
///
/// Incrementing is a bounds-checked array add — no hashing, no string
/// building. Untouched counters stay at zero and are omitted from
/// [`CounterBank::to_stats`], matching the legacy behaviour where a key
/// existed only once incremented.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterBank {
    retries: [u64; RetryCause::COUNT],
    cpus: Vec<[u64; CpuCounter::COUNT]>,
}

impl CounterBank {
    /// Creates a zeroed bank for `cpus` processors.
    pub fn new(cpus: usize) -> Self {
        CounterBank {
            retries: [0; RetryCause::COUNT],
            cpus: vec![[0; CpuCounter::COUNT]; cpus],
        }
    }

    /// Increments a per-CPU counter.
    #[inline]
    pub fn bump(&mut self, cpu: usize, counter: CpuCounter) {
        self.cpus[cpu][counter.index()] += 1;
    }

    /// Increments a bus-retry cause counter.
    #[inline]
    pub fn bump_retry(&mut self, cause: RetryCause) {
        self.retries[cause.index()] += 1;
    }

    /// Current value of a per-CPU counter.
    pub fn get(&self, cpu: usize, counter: CpuCounter) -> u64 {
        self.cpus[cpu][counter.index()]
    }

    /// Current value of a bus-retry cause counter.
    pub fn retry(&self, cause: RetryCause) -> u64 {
        self.retries[cause.index()]
    }

    /// Number of processors covered.
    pub fn cpus(&self) -> usize {
        self.cpus.len()
    }

    /// Zeroes every counter in place (allocation-free run reuse).
    pub fn reset(&mut self) {
        self.retries = [0; RetryCause::COUNT];
        for bank in &mut self.cpus {
            *bank = [0; CpuCounter::COUNT];
        }
    }

    /// Compatibility iterator over `(legacy key, value)` pairs, skipping
    /// zero-valued counters — the set of pairs the string-keyed path
    /// would have produced. Pairs come out grouped bus-then-CPU; use
    /// [`CounterBank::to_stats`] when the legacy *sorted* order matters.
    pub fn iter(&self) -> impl Iterator<Item = (String, u64)> + '_ {
        let retries = RetryCause::ALL
            .iter()
            .map(move |&c| (format!("bus.retry.{}", c.key()), self.retry(c)));
        let cpus = self.cpus.iter().enumerate().flat_map(|(i, bank)| {
            CpuCounter::ALL
                .iter()
                .map(move |&c| (format!("cpu{i}.{}", c.key()), bank[c.index()]))
        });
        retries.chain(cpus).filter(|&(_, v)| v > 0)
    }

    /// Renders the bank as a legacy [`Stats`] registry (sorted,
    /// zero-valued counters omitted) — byte-identical to what the
    /// string-keyed hot path used to accumulate.
    pub fn to_stats(&self) -> Stats {
        self.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_get() {
        let mut b = CounterBank::new(2);
        b.bump(0, CpuCounter::ReadHit);
        b.bump(0, CpuCounter::ReadHit);
        b.bump(1, CpuCounter::CamHit);
        b.bump_retry(RetryCause::CamHit);
        assert_eq!(b.get(0, CpuCounter::ReadHit), 2);
        assert_eq!(b.get(1, CpuCounter::ReadHit), 0);
        assert_eq!(b.get(1, CpuCounter::CamHit), 1);
        assert_eq!(b.retry(RetryCause::CamHit), 1);
        assert_eq!(b.retry(RetryCause::SnoopDrain), 0);
        assert_eq!(b.cpus(), 2);
    }

    #[test]
    fn to_stats_matches_legacy_keys_and_omits_zeros() {
        let mut b = CounterBank::new(2);
        b.bump(0, CpuCounter::WriteUpgrade);
        b.bump(1, CpuCounter::SnoopDrain);
        b.bump_retry(RetryCause::SnoopDrain);

        let mut legacy = Stats::new();
        legacy.incr("cpu0.write_upgrade");
        legacy.incr("cpu1.snoop_drain");
        legacy.incr("bus.retry.snoop_drain");

        assert_eq!(b.to_stats(), legacy);
        assert_eq!(b.to_stats().to_string(), legacy.to_string());
    }

    #[test]
    fn empty_bank_renders_empty_stats() {
        let b = CounterBank::new(3);
        assert!(b.to_stats().is_empty());
        assert_eq!(b.iter().count(), 0);
    }

    #[test]
    fn every_counter_has_a_distinct_key() {
        let keys: std::collections::BTreeSet<&str> =
            CpuCounter::ALL.iter().map(|c| c.key()).collect();
        assert_eq!(keys.len(), CpuCounter::COUNT);
        let rkeys: std::collections::BTreeSet<&str> =
            RetryCause::ALL.iter().map(|c| c.key()).collect();
        assert_eq!(rkeys.len(), RetryCause::COUNT);
    }

    #[test]
    fn all_is_in_index_order() {
        for (i, c) in CpuCounter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, c) in RetryCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
