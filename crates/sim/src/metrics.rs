//! The all-in-one metrics observer: spans + histograms + event ring.
//!
//! [`MetricsObserver`] composes a [`SpanTracker`], the log2 [`Hist`]ograms
//! the paper's evaluation needs (bus-acquire wait, transaction service
//! time, ISR drain latency, retries per transaction), per-CPU event
//! counters, a fixed-capacity retry-hot-address table and an optional
//! [`TraceObserver`] event ring for timeline export. Everything is
//! preallocated at construction; the steady state allocates nothing.
//! [`MetricsObserver::snapshot`] renders it all into an owned
//! [`MetricsSnapshot`] at end of run.

use crate::event::{Observer, RetryCause, SimEvent, TraceObserver};
use crate::hist::Hist;
use crate::span::SpanTracker;
use crate::Cycle;
use std::fmt;

/// Slots in the retry-hot-address table (open addressing).
const RETRY_TABLE_SLOTS: usize = 1024;
/// Probe limit before an insert is counted as overflow.
const RETRY_TABLE_PROBES: usize = 16;

/// Fixed-capacity open-addressing map from address → retry count.
///
/// Emptiness is encoded as `count == 0`, so no slot metadata is needed;
/// inserts that cannot find a slot within the probe limit are counted in
/// `overflow` rather than growing the table.
#[derive(Debug, Clone)]
struct RetryTable {
    slots: Box<[(u64, u64)]>,
    overflow: u64,
}

impl RetryTable {
    fn new() -> Self {
        RetryTable {
            slots: vec![(0, 0); RETRY_TABLE_SLOTS].into_boxed_slice(),
            overflow: 0,
        }
    }

    fn bump(&mut self, addr: u64) {
        let mask = self.slots.len() - 1;
        let mut i = (addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask;
        for _ in 0..RETRY_TABLE_PROBES {
            let slot = &mut self.slots[i];
            if slot.1 == 0 {
                *slot = (addr, 1);
                return;
            }
            if slot.0 == addr {
                slot.1 += 1;
                return;
            }
            i = (i + 1) & mask;
        }
        self.overflow += 1;
    }

    /// The `n` hottest addresses, most retried first (allocates).
    fn top(&self, n: usize) -> Vec<(u64, u64)> {
        let mut rows: Vec<(u64, u64)> = self.slots.iter().copied().filter(|s| s.1 > 0).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }
}

/// An [`Observer`] that derives spans, histograms and counters from the
/// event stream.
#[derive(Debug, Clone)]
pub struct MetricsObserver {
    spans: SpanTracker,
    events: TraceObserver,
    acquire_wait: Hist,
    service_time: Hist,
    isr_latency: Hist,
    retries_per_txn: Hist,
    retry_by_cause: [u64; RetryCause::COUNT],
    snoop_hits: Vec<u64>,
    cam_hits: Vec<u64>,
    isr_entries: Vec<u64>,
    fills: Vec<u64>,
    open_isr: Vec<Option<Cycle>>,
    retry_addrs: RetryTable,
    grants: u64,
    completions: u64,
    drains_completed: u64,
    retries: u64,
    faults_injected: u64,
    masters_quarantined: u64,
}

impl MetricsObserver {
    /// A metrics observer for `masters` bus masters keeping
    /// `span_capacity` completed spans and `event_capacity` raw events.
    pub fn new(masters: usize, span_capacity: usize, event_capacity: usize) -> Self {
        MetricsObserver {
            spans: SpanTracker::new(masters, span_capacity),
            events: TraceObserver::new(event_capacity),
            acquire_wait: Hist::new(),
            service_time: Hist::new(),
            isr_latency: Hist::new(),
            retries_per_txn: Hist::new(),
            retry_by_cause: [0; RetryCause::COUNT],
            snoop_hits: vec![0; masters],
            cam_hits: vec![0; masters],
            isr_entries: vec![0; masters],
            fills: vec![0; masters],
            open_isr: vec![None; masters],
            retry_addrs: RetryTable::new(),
            grants: 0,
            completions: 0,
            drains_completed: 0,
            retries: 0,
            faults_injected: 0,
            masters_quarantined: 0,
        }
    }

    /// Zeroes every accumulator in place — spans, event ring, histograms,
    /// per-master counts and the retry-address table — keeping all their
    /// storage for allocation-free reuse across runs.
    pub fn reset(&mut self) {
        self.spans.reset();
        self.events.reset();
        self.acquire_wait.reset();
        self.service_time.reset();
        self.isr_latency.reset();
        self.retries_per_txn.reset();
        self.retry_by_cause = [0; RetryCause::COUNT];
        self.snoop_hits.fill(0);
        self.cam_hits.fill(0);
        self.isr_entries.fill(0);
        self.fills.fill(0);
        self.open_isr.fill(None);
        self.retry_addrs.slots.fill((0, 0));
        self.retry_addrs.overflow = 0;
        self.grants = 0;
        self.completions = 0;
        self.drains_completed = 0;
        self.retries = 0;
        self.faults_injected = 0;
        self.masters_quarantined = 0;
    }

    /// The underlying span tracker.
    pub fn spans(&self) -> &SpanTracker {
        &self.spans
    }

    /// The raw event ring (for timeline export).
    pub fn events(&self) -> &TraceObserver {
        &self.events
    }

    /// Bus grants observed (including re-grants after ARTRY).
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Completed data phases observed.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// ARTRY kills observed.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Injected faults observed.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// Master quarantines observed.
    pub fn masters_quarantined(&self) -> u64 {
        self.masters_quarantined
    }

    /// Retry count for one cause.
    pub fn retry_by_cause(&self, cause: RetryCause) -> u64 {
        self.retry_by_cause[cause as usize]
    }

    /// The transaction service-time histogram.
    pub fn service_time(&self) -> &Hist {
        &self.service_time
    }

    /// The bus-acquire wait histogram.
    pub fn acquire_wait(&self) -> &Hist {
        &self.acquire_wait
    }

    /// The ISR drain-latency histogram.
    pub fn isr_latency(&self) -> &Hist {
        &self.isr_latency
    }

    /// Renders everything into an owned snapshot (allocates; end-of-run).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            masters: self.snoop_hits.len(),
            acquire_wait: self.acquire_wait.clone(),
            service_time: self.service_time.clone(),
            isr_latency: self.isr_latency.clone(),
            retries_per_txn: self.retries_per_txn.clone(),
            retry_by_cause: self.retry_by_cause,
            snoop_hits: self.snoop_hits.clone(),
            cam_hits: self.cam_hits.clone(),
            isr_entries: self.isr_entries.clone(),
            fills: self.fills.clone(),
            top_retry_addrs: self.retry_addrs.top(8),
            retry_addr_overflow: self.retry_addrs.overflow,
            grants: self.grants,
            completions: self.completions,
            drains_completed: self.drains_completed,
            retries: self.retries,
            faults_injected: self.faults_injected,
            masters_quarantined: self.masters_quarantined,
            spans_recorded: self.spans.len() as u64 + self.spans.dropped(),
            spans_dropped: self.spans.dropped(),
            span_orphans: self.spans.orphans(),
        }
    }
}

impl Observer for MetricsObserver {
    fn on_event(&mut self, at: Cycle, event: SimEvent) {
        self.events.on_event(at, event);
        match event {
            SimEvent::BusGrant { .. } => self.grants += 1,
            SimEvent::BusRetry { addr, cause, .. } => {
                self.retries += 1;
                self.retry_by_cause[cause as usize] += 1;
                self.retry_addrs.bump(addr);
            }
            SimEvent::SnoopHit { owner, .. } => {
                if let Some(c) = self.snoop_hits.get_mut(owner) {
                    *c += 1;
                }
            }
            SimEvent::CamHit { owner, .. } => {
                if let Some(c) = self.cam_hits.get_mut(owner) {
                    *c += 1;
                }
            }
            SimEvent::CacheFill { owner, .. } => {
                if let Some(c) = self.fills.get_mut(owner) {
                    *c += 1;
                }
            }
            SimEvent::IsrEnter { cpu, .. } => {
                if let Some(slot) = self.open_isr.get_mut(cpu) {
                    *slot = Some(at);
                    self.isr_entries[cpu] += 1;
                }
            }
            SimEvent::IsrExit { cpu, .. } => {
                if let Some(enter) = self.open_isr.get_mut(cpu).and_then(|s| s.take()) {
                    self.isr_latency.record(at.saturating_since(enter).as_u64());
                }
            }
            SimEvent::BusComplete { is_drain, .. } => {
                self.completions += 1;
                if is_drain {
                    self.drains_completed += 1;
                }
            }
            SimEvent::FaultInjected { .. } => self.faults_injected += 1,
            SimEvent::MasterQuarantined { .. } => self.masters_quarantined += 1,
            SimEvent::BusRequest { .. } => {}
        }
        if let Some(closed) = self.spans.track(at, event) {
            if let Some(w) = closed.acquire_wait() {
                self.acquire_wait.record(w);
            }
            if let Some(s) = closed.service_time() {
                self.service_time.record(s);
            }
            self.retries_per_txn.record(u64::from(closed.retries));
        }
    }
}

/// An owned end-of-run rendering of a [`MetricsObserver`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Number of bus masters observed.
    pub masters: usize,
    /// Bus-acquire wait (request → first grant), cycles.
    pub acquire_wait: Hist,
    /// Transaction service time (request → completion), cycles.
    pub service_time: Hist,
    /// ISR drain latency (IsrEnter → IsrExit), cycles.
    pub isr_latency: Hist,
    /// ARTRY kills absorbed per completed transaction.
    pub retries_per_txn: Hist,
    /// Retries by cause, indexed per [`RetryCause::ALL`].
    pub retry_by_cause: [u64; RetryCause::COUNT],
    /// Snoop hits per CPU.
    pub snoop_hits: Vec<u64>,
    /// TAG-CAM conflicts per CPU.
    pub cam_hits: Vec<u64>,
    /// Snoop-drain ISR entries per CPU.
    pub isr_entries: Vec<u64>,
    /// Cache-line fills per CPU.
    pub fills: Vec<u64>,
    /// The hottest retried addresses as `(addr, retries)`, hottest first.
    pub top_retry_addrs: Vec<(u64, u64)>,
    /// Retry-address inserts dropped because the table was full.
    pub retry_addr_overflow: u64,
    /// Bus grants (including re-grants after ARTRY).
    pub grants: u64,
    /// Completed data phases.
    pub completions: u64,
    /// Completed snoop-push / victim drains.
    pub drains_completed: u64,
    /// ARTRY kills.
    pub retries: u64,
    /// Faults injected by the chaos harness (0 on fault-free runs).
    pub faults_injected: u64,
    /// Masters quarantined by the recovery policy.
    pub masters_quarantined: u64,
    /// Spans completed over the whole run (stored + evicted).
    pub spans_recorded: u64,
    /// Completed spans evicted from the ring.
    pub spans_dropped: u64,
    /// Events that could not be matched to an open span.
    pub span_orphans: u64,
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "bus: {} grants, {} completions ({} drains), {} retries",
            self.grants, self.completions, self.drains_completed, self.retries
        )?;
        if self.faults_injected > 0 || self.masters_quarantined > 0 {
            writeln!(
                f,
                "faults: {} injected, {} master(s) quarantined",
                self.faults_injected, self.masters_quarantined
            )?;
        }
        for cause in RetryCause::ALL {
            let n = self.retry_by_cause[cause as usize];
            if n > 0 {
                writeln!(f, "  retry.{}: {n}", cause.key())?;
            }
        }
        writeln!(f, "service time: {}", self.service_time)?;
        writeln!(f, "acquire wait: {}", self.acquire_wait)?;
        if !self.isr_latency.is_empty() {
            writeln!(f, "isr drain latency: {}", self.isr_latency)?;
        }
        writeln!(f, "retries/txn: {}", self.retries_per_txn)?;
        for (i, ((&s, &c), (&isr, &fl))) in self
            .snoop_hits
            .iter()
            .zip(&self.cam_hits)
            .zip(self.isr_entries.iter().zip(&self.fills))
            .enumerate()
        {
            writeln!(
                f,
                "cpu{i}: snoop_hits={s} cam_hits={c} isr_entries={isr} fills={fl}"
            )?;
        }
        if !self.top_retry_addrs.is_empty() {
            writeln!(f, "hot retry addresses:")?;
            for &(addr, n) in &self.top_retry_addrs {
                writeln!(f, "  {addr:#x}: {n}")?;
            }
        }
        write!(
            f,
            "spans: {} recorded ({} dropped, {} orphan events)",
            self.spans_recorded, self.spans_dropped, self.span_orphans
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{BusOpKind, SnoopActionKind};

    fn drive(m: &mut MetricsObserver) {
        // One CPU read with a retry and a snoop hit, then a drain, then an
        // ISR enter/exit pair.
        let ev = |m: &mut MetricsObserver, at: u64, e: SimEvent| m.on_event(Cycle::new(at), e);
        ev(
            m,
            1,
            SimEvent::BusRequest {
                master: 0,
                op: BusOpKind::ReadLine,
                addr: 0x40,
                is_drain: false,
            },
        );
        ev(
            m,
            2,
            SimEvent::BusGrant {
                master: 0,
                op: BusOpKind::ReadLine,
                addr: 0x40,
                is_retry: false,
                is_drain: false,
            },
        );
        ev(
            m,
            2,
            SimEvent::SnoopHit {
                owner: 1,
                addr: 0x40,
                action: SnoopActionKind::Writeback,
                asserts_shared: false,
            },
        );
        ev(
            m,
            2,
            SimEvent::BusRetry {
                master: 0,
                addr: 0x40,
                cause: RetryCause::SnoopDrain,
            },
        );
        ev(
            m,
            3,
            SimEvent::BusRequest {
                master: 1,
                op: BusOpKind::WriteLine,
                addr: 0x40,
                is_drain: true,
            },
        );
        ev(
            m,
            4,
            SimEvent::BusGrant {
                master: 1,
                op: BusOpKind::WriteLine,
                addr: 0x40,
                is_retry: false,
                is_drain: true,
            },
        );
        ev(
            m,
            6,
            SimEvent::BusComplete {
                master: 1,
                op: BusOpKind::WriteLine,
                addr: 0x40,
                is_drain: true,
            },
        );
        ev(
            m,
            7,
            SimEvent::BusGrant {
                master: 0,
                op: BusOpKind::ReadLine,
                addr: 0x40,
                is_retry: true,
                is_drain: false,
            },
        );
        ev(
            m,
            12,
            SimEvent::BusComplete {
                master: 0,
                op: BusOpKind::ReadLine,
                addr: 0x40,
                is_drain: false,
            },
        );
        ev(m, 13, SimEvent::IsrEnter { cpu: 1, line: 0x40 });
        ev(m, 20, SimEvent::IsrExit { cpu: 1, line: 0x40 });
        ev(
            m,
            21,
            SimEvent::CacheFill {
                owner: 0,
                addr: 0x40,
                shared: false,
            },
        );
        ev(
            m,
            22,
            SimEvent::CamHit {
                owner: 1,
                addr: 0x80,
            },
        );
    }

    #[test]
    fn derives_counts_and_histograms() {
        let mut m = MetricsObserver::new(2, 16, 32);
        drive(&mut m);
        assert_eq!(m.grants(), 3);
        assert_eq!(m.completions(), 2);
        assert_eq!(m.retries(), 1);
        assert_eq!(m.retry_by_cause(RetryCause::SnoopDrain), 1);
        assert_eq!(m.service_time().count(), 2);
        assert_eq!(m.acquire_wait().count(), 2);
        assert_eq!(m.isr_latency().count(), 1);
        assert_eq!(m.isr_latency().sum(), 7);
        assert_eq!(m.spans().len(), 2);
        assert_eq!(m.events().len(), 13);
    }

    #[test]
    fn snapshot_renders_everything() {
        let mut m = MetricsObserver::new(2, 16, 32);
        drive(&mut m);
        let s = m.snapshot();
        assert_eq!(s.masters, 2);
        assert_eq!(s.grants, 3);
        assert_eq!(s.completions, 2);
        assert_eq!(s.drains_completed, 1);
        assert_eq!(s.snoop_hits, vec![0, 1]);
        assert_eq!(s.cam_hits, vec![0, 1]);
        assert_eq!(s.isr_entries, vec![0, 1]);
        assert_eq!(s.fills, vec![1, 0]);
        assert_eq!(s.top_retry_addrs, vec![(0x40, 1)]);
        assert_eq!(s.spans_recorded, 2);
        assert_eq!(s.span_orphans, 0);
        // Service-time sum reconciles with the two spans (11 + 3 cycles).
        assert_eq!(s.service_time.sum(), 14);
        let txt = s.to_string();
        assert!(txt.contains("3 grants"), "{txt}");
        assert!(txt.contains("retry.snoop_drain: 1"), "{txt}");
        assert!(txt.contains("hot retry addresses"), "{txt}");
        assert!(txt.contains("cpu1: snoop_hits=1"), "{txt}");
    }

    #[test]
    fn retry_table_accumulates_and_ranks() {
        let mut t = RetryTable::new();
        for _ in 0..5 {
            t.bump(0x100);
        }
        for _ in 0..2 {
            t.bump(0x200);
        }
        t.bump(0x300);
        assert_eq!(t.top(2), vec![(0x100, 5), (0x200, 2)]);
        assert_eq!(t.overflow, 0);
    }

    #[test]
    fn retry_table_handles_collision_chains() {
        let mut t = RetryTable::new();
        // Far more distinct addresses than the probe limit: some overflow,
        // none lost silently.
        for i in 0..(RETRY_TABLE_SLOTS as u64 * 2) {
            t.bump(i * 0x40);
        }
        let stored: u64 = t.slots.iter().map(|s| s.1).sum();
        assert_eq!(stored + t.overflow, RETRY_TABLE_SLOTS as u64 * 2);
        assert!(t.overflow > 0);
    }

    #[test]
    fn out_of_range_indices_are_ignored() {
        let mut m = MetricsObserver::new(1, 4, 4);
        m.on_event(
            Cycle::new(1),
            SimEvent::SnoopHit {
                owner: 9,
                addr: 0x40,
                action: SnoopActionKind::StateOnly,
                asserts_shared: false,
            },
        );
        m.on_event(Cycle::new(2), SimEvent::IsrExit { cpu: 9, line: 0 });
        let s = m.snapshot();
        assert_eq!(s.snoop_hits, vec![0]);
        assert_eq!(s.isr_latency.count(), 0);
    }
}
