//! Transaction lifecycle spans stitched from [`SimEvent`]s.
//!
//! A [`Span`] covers one bus transaction from the cycle its master queued
//! it ([`SimEvent::BusRequest`]) through grants, ARTRY kills and snoop
//! verdicts to its data-phase completion ([`SimEvent::BusComplete`]).
//! The [`SpanTracker`] is an [`Observer`] that maintains the open span per
//! master (plus a small FIFO of queued drains) and a fixed-capacity ring
//! of completed spans — all storage is preallocated, so steady-state
//! tracking allocates nothing.

use crate::event::{Observer, RetryCause, SimEvent};
use crate::{BusOpKind, Cycle};
use std::collections::VecDeque;
use std::fmt;

/// Queued drains tracked per master; overflow is counted, not grown.
const DRAIN_FIFO_CAP: usize = 64;

/// One bus transaction's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Index of the originating master.
    pub master: usize,
    /// Operation driven on the bus.
    pub op: BusOpKind,
    /// Target address.
    pub addr: u64,
    /// `true` for a snoop-push / victim write-back.
    pub is_drain: bool,
    /// Cycle the master queued the transaction.
    pub requested_at: Cycle,
    /// Cycle of the first bus grant (None while still queued).
    pub first_grant_at: Option<Cycle>,
    /// Cycle the data phase completed (None while open).
    pub completed_at: Option<Cycle>,
    /// Number of ARTRY kills this transaction absorbed.
    pub retries: u32,
    /// Snoop hits observed while this transaction held the bus.
    pub snoop_hits: u32,
    /// TAG-CAM conflicts observed while this transaction held the bus.
    pub cam_conflicts: u32,
    /// Cause of the most recent ARTRY, if any.
    pub last_retry: Option<RetryCause>,
}

impl Span {
    fn open(master: usize, op: BusOpKind, addr: u64, is_drain: bool, at: Cycle) -> Self {
        Span {
            master,
            op,
            addr,
            is_drain,
            requested_at: at,
            first_grant_at: None,
            completed_at: None,
            retries: 0,
            snoop_hits: 0,
            cam_conflicts: 0,
            last_retry: None,
        }
    }

    /// `true` once the data phase has completed.
    pub fn is_complete(&self) -> bool {
        self.completed_at.is_some()
    }

    /// Cycles spent queued before the first grant (None if never granted).
    pub fn acquire_wait(&self) -> Option<u64> {
        self.first_grant_at
            .map(|g| g.saturating_since(self.requested_at).as_u64())
    }

    /// Total request-to-completion service time (None while open).
    pub fn service_time(&self) -> Option<u64> {
        self.completed_at
            .map(|c| c.saturating_since(self.requested_at).as_u64())
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cpu{} {} {:#x}{}: req@{}",
            self.master,
            self.op,
            self.addr,
            if self.is_drain { " (drain)" } else { "" },
            self.requested_at.as_u64(),
        )?;
        match (self.acquire_wait(), self.service_time()) {
            (Some(w), Some(s)) => write!(f, " wait={w} svc={s}")?,
            (Some(w), None) => write!(f, " wait={w} open")?,
            _ => write!(f, " queued")?,
        }
        if self.retries > 0 {
            write!(
                f,
                " retries={}{}",
                self.retries,
                self.last_retry
                    .map(|c| format!(" (last {})", c.key()))
                    .unwrap_or_default(),
            )?;
        }
        if self.snoop_hits > 0 {
            write!(f, " snoops={}", self.snoop_hits)?;
        }
        if self.cam_conflicts > 0 {
            write!(f, " cam={}", self.cam_conflicts)?;
        }
        Ok(())
    }
}

/// Stitches the bus event stream into per-transaction [`Span`]s.
///
/// Storage is fixed at construction: one open CPU-transaction slot per
/// master, a bounded drain FIFO per master, and a `capacity`-sized ring of
/// completed spans. Once warmed up, tracking performs zero allocations.
#[derive(Debug, Clone)]
pub struct SpanTracker {
    open_cpu: Vec<Option<Span>>,
    open_drains: Vec<VecDeque<Span>>,
    /// The `(master, is_drain)` of the transaction currently holding the
    /// bus (between its grant and its retry/completion); snoop verdicts
    /// carry the snooper's index, so attribution needs this.
    active: Option<(usize, bool)>,
    completed: VecDeque<Span>,
    capacity: usize,
    dropped: u64,
    orphans: u64,
}

impl SpanTracker {
    /// A tracker for `masters` bus masters keeping the most recent
    /// `capacity` completed spans.
    pub fn new(masters: usize, capacity: usize) -> Self {
        SpanTracker {
            open_cpu: vec![None; masters],
            open_drains: (0..masters)
                .map(|_| VecDeque::with_capacity(DRAIN_FIFO_CAP))
                .collect(),
            active: None,
            completed: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
            orphans: 0,
        }
    }

    /// Number of completed spans currently stored.
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// Returns `true` if no completed span is stored.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }

    /// Completed spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events that could not be matched to an open span (e.g. the tracker
    /// was attached mid-run).
    pub fn orphans(&self) -> u64 {
        self.orphans
    }

    /// Iterates completed spans, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Span> {
        self.completed.iter()
    }

    /// The most recently completed span, if any.
    pub fn last_completed(&self) -> Option<&Span> {
        self.completed.back()
    }

    /// The last `n` completed spans, oldest first (allocates; post-mortem
    /// use only).
    pub fn recent(&self, n: usize) -> Vec<Span> {
        let skip = self.completed.len().saturating_sub(n);
        self.completed.iter().skip(skip).copied().collect()
    }

    /// All currently open (queued or in-flight) spans, masters in index
    /// order, each master's drains in FIFO order (allocates; post-mortem
    /// use only).
    pub fn open_spans(&self) -> Vec<Span> {
        let mut out = Vec::new();
        for (i, slot) in self.open_cpu.iter().enumerate() {
            out.extend(slot.iter().copied());
            out.extend(self.open_drains[i].iter().copied());
        }
        out
    }

    /// Forgets every open and completed span in place, keeping all
    /// storage (ring, per-master slots, drain FIFOs) for reuse.
    pub fn reset(&mut self) {
        self.open_cpu.fill(None);
        for fifo in &mut self.open_drains {
            fifo.clear();
        }
        self.active = None;
        self.completed.clear();
        self.dropped = 0;
        self.orphans = 0;
    }

    fn push_completed(&mut self, span: Span) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.completed.len() == self.capacity {
            self.completed.pop_front();
            self.dropped += 1;
        }
        self.completed.push_back(span);
    }

    fn active_span_mut(&mut self) -> Option<&mut Span> {
        let (master, is_drain) = self.active?;
        if is_drain {
            self.open_drains.get_mut(master)?.front_mut()
        } else {
            self.open_cpu.get_mut(master)?.as_mut()
        }
    }

    /// Feeds one event; returns the span it closed, if any.
    pub fn track(&mut self, at: Cycle, event: SimEvent) -> Option<Span> {
        match event {
            SimEvent::BusRequest {
                master,
                op,
                addr,
                is_drain,
            } => {
                if master >= self.open_cpu.len() {
                    self.orphans += 1;
                    return None;
                }
                let span = Span::open(master, op, addr, is_drain, at);
                if is_drain {
                    let fifo = &mut self.open_drains[master];
                    if fifo.len() == DRAIN_FIFO_CAP {
                        self.orphans += 1;
                    } else {
                        fifo.push_back(span);
                    }
                } else {
                    if self.open_cpu[master].is_some() {
                        self.orphans += 1;
                    }
                    self.open_cpu[master] = Some(span);
                }
                None
            }
            SimEvent::BusGrant {
                master,
                op,
                addr,
                is_drain,
                ..
            } => {
                if master >= self.open_cpu.len() {
                    self.orphans += 1;
                    return None;
                }
                self.active = Some((master, is_drain));
                // Synthesize a span if the request predates the tracker.
                let missing = if is_drain {
                    self.open_drains[master].is_empty()
                } else {
                    self.open_cpu[master].is_none()
                };
                if missing {
                    self.orphans += 1;
                    let span = Span::open(master, op, addr, is_drain, at);
                    if is_drain {
                        self.open_drains[master].push_back(span);
                    } else {
                        self.open_cpu[master] = Some(span);
                    }
                }
                if let Some(span) = self.active_span_mut() {
                    if span.first_grant_at.is_none() {
                        span.first_grant_at = Some(at);
                    }
                }
                None
            }
            SimEvent::BusRetry { cause, .. } => {
                if let Some(span) = self.active_span_mut() {
                    span.retries += 1;
                    span.last_retry = Some(cause);
                } else {
                    self.orphans += 1;
                }
                self.active = None;
                None
            }
            SimEvent::SnoopHit { .. } => {
                if let Some(span) = self.active_span_mut() {
                    span.snoop_hits += 1;
                }
                None
            }
            SimEvent::CamHit { .. } => {
                if let Some(span) = self.active_span_mut() {
                    span.cam_conflicts += 1;
                }
                None
            }
            SimEvent::BusComplete {
                master, is_drain, ..
            } => {
                if master >= self.open_cpu.len() {
                    self.orphans += 1;
                    return None;
                }
                self.active = None;
                let closed = if is_drain {
                    self.open_drains[master].pop_front()
                } else {
                    self.open_cpu[master].take()
                };
                match closed {
                    Some(mut span) => {
                        span.completed_at = Some(at);
                        self.push_completed(span);
                        self.last_completed().copied()
                    }
                    None => {
                        self.orphans += 1;
                        None
                    }
                }
            }
            SimEvent::IsrEnter { .. }
            | SimEvent::IsrExit { .. }
            | SimEvent::CacheFill { .. }
            | SimEvent::FaultInjected { .. }
            | SimEvent::MasterQuarantined { .. } => None,
        }
    }
}

impl Observer for SpanTracker {
    fn on_event(&mut self, at: Cycle, event: SimEvent) {
        let _ = self.track(at, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SnoopActionKind;

    fn req(master: usize, addr: u64, is_drain: bool) -> SimEvent {
        SimEvent::BusRequest {
            master,
            op: if is_drain {
                BusOpKind::WriteLine
            } else {
                BusOpKind::ReadLine
            },
            addr,
            is_drain,
        }
    }

    fn grant(master: usize, addr: u64, is_retry: bool, is_drain: bool) -> SimEvent {
        SimEvent::BusGrant {
            master,
            op: if is_drain {
                BusOpKind::WriteLine
            } else {
                BusOpKind::ReadLine
            },
            addr,
            is_retry,
            is_drain,
        }
    }

    fn complete(master: usize, addr: u64, is_drain: bool) -> SimEvent {
        SimEvent::BusComplete {
            master,
            op: if is_drain {
                BusOpKind::WriteLine
            } else {
                BusOpKind::ReadLine
            },
            addr,
            is_drain,
        }
    }

    /// Full lifecycle state machine: request → grant → ARTRY → re-grant →
    /// snoop verdict → completion, with the timing fields checked at each
    /// transition.
    #[test]
    fn span_lifecycle_state_machine() {
        let mut t = SpanTracker::new(2, 16);
        assert!(t.track(Cycle::new(10), req(0, 0x40, false)).is_none());
        let open = t.open_spans();
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].acquire_wait(), None);

        assert!(t
            .track(Cycle::new(13), grant(0, 0x40, false, false))
            .is_none());
        assert_eq!(t.open_spans()[0].acquire_wait(), Some(3));

        assert!(t
            .track(
                Cycle::new(13),
                SimEvent::BusRetry {
                    master: 0,
                    addr: 0x40,
                    cause: RetryCause::SnoopDrain,
                },
            )
            .is_none());

        assert!(t
            .track(Cycle::new(20), grant(0, 0x40, true, false))
            .is_none());
        assert!(t
            .track(
                Cycle::new(20),
                SimEvent::SnoopHit {
                    owner: 1,
                    addr: 0x40,
                    action: SnoopActionKind::StateOnly,
                    asserts_shared: true,
                },
            )
            .is_none());

        let closed = t.track(Cycle::new(33), complete(0, 0x40, false)).unwrap();
        assert!(closed.is_complete());
        assert_eq!(closed.acquire_wait(), Some(3), "first grant, not re-grant");
        assert_eq!(closed.service_time(), Some(23));
        assert_eq!(closed.retries, 1);
        assert_eq!(closed.last_retry, Some(RetryCause::SnoopDrain));
        assert_eq!(closed.snoop_hits, 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.orphans(), 0);
        assert!(t.open_spans().is_empty());
    }

    #[test]
    fn drains_match_fifo_order() {
        let mut t = SpanTracker::new(1, 16);
        t.track(Cycle::new(1), req(0, 0x100, true));
        t.track(Cycle::new(2), req(0, 0x200, true));
        t.track(Cycle::new(3), grant(0, 0x100, false, true));
        let a = t.track(Cycle::new(5), complete(0, 0x100, true)).unwrap();
        assert_eq!(a.addr, 0x100);
        t.track(Cycle::new(6), grant(0, 0x200, false, true));
        let b = t.track(Cycle::new(8), complete(0, 0x200, true)).unwrap();
        assert_eq!(b.addr, 0x200);
        assert_eq!(b.requested_at, Cycle::new(2));
        assert_eq!(t.orphans(), 0);
    }

    #[test]
    fn ring_evicts_oldest_completed() {
        let mut t = SpanTracker::new(1, 2);
        for i in 0..3u64 {
            t.track(Cycle::new(i * 10), req(0, 0x40 * (i + 1), false));
            t.track(
                Cycle::new(i * 10 + 1),
                grant(0, 0x40 * (i + 1), false, false),
            );
            t.track(Cycle::new(i * 10 + 2), complete(0, 0x40 * (i + 1), false));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.iter().next().unwrap().addr, 0x80);
        assert_eq!(t.last_completed().unwrap().addr, 0xc0);
        assert_eq!(t.recent(1)[0].addr, 0xc0);
    }

    #[test]
    fn orphan_grant_synthesizes_span() {
        // Tracker attached mid-run: a grant with no recorded request still
        // produces a (wait-less) completed span.
        let mut t = SpanTracker::new(1, 4);
        t.track(Cycle::new(5), grant(0, 0x40, false, false));
        let s = t.track(Cycle::new(9), complete(0, 0x40, false)).unwrap();
        assert_eq!(s.requested_at, Cycle::new(5));
        assert_eq!(s.service_time(), Some(4));
        assert_eq!(t.orphans(), 1);
    }

    #[test]
    fn unmatched_complete_counts_orphan() {
        let mut t = SpanTracker::new(1, 4);
        assert!(t.track(Cycle::new(1), complete(0, 0x40, false)).is_none());
        assert_eq!(t.orphans(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn out_of_range_master_is_ignored() {
        let mut t = SpanTracker::new(1, 4);
        t.track(Cycle::new(1), req(7, 0x40, false));
        t.track(Cycle::new(2), grant(7, 0x40, false, false));
        t.track(Cycle::new(3), complete(7, 0x40, false));
        assert_eq!(t.orphans(), 3);
        assert!(t.is_empty());
    }

    #[test]
    fn observer_impl_tracks() {
        let mut t = SpanTracker::new(1, 4);
        t.on_event(Cycle::new(1), req(0, 0x40, false));
        t.on_event(Cycle::new(2), grant(0, 0x40, false, false));
        t.on_event(Cycle::new(4), complete(0, 0x40, false));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn span_display_renders_fields() {
        let mut t = SpanTracker::new(1, 4);
        t.track(Cycle::new(1), req(0, 0x40, false));
        t.track(Cycle::new(2), grant(0, 0x40, false, false));
        t.track(
            Cycle::new(2),
            SimEvent::BusRetry {
                master: 0,
                addr: 0x40,
                cause: RetryCause::CamHit,
            },
        );
        t.track(Cycle::new(6), grant(0, 0x40, true, false));
        t.track(
            Cycle::new(6),
            SimEvent::CamHit {
                owner: 1,
                addr: 0x40,
            },
        );
        let s = t.track(Cycle::new(9), complete(0, 0x40, false)).unwrap();
        let txt = s.to_string();
        assert!(txt.contains("cpu0 ReadLine 0x40"), "{txt}");
        assert!(txt.contains("wait=1"), "{txt}");
        assert!(txt.contains("svc=8"), "{txt}");
        assert!(txt.contains("retries=1 (last cam)"), "{txt}");
        assert!(txt.contains("cam=1"), "{txt}");
    }
}
