//! Fixed-size log2-bucketed latency histograms.
//!
//! A [`Hist`] is a `Copy`-free but allocation-free histogram: 33 buckets
//! covering `0`, `1`, `[2,3]`, `[4,7]`, … up to a catch-all for values
//! `>= 2^31`. Recording is a `leading_zeros` and two adds — cheap enough
//! for the simulator hot path — and the exact `count`/`sum`/`max` are kept
//! alongside the buckets so totals reconcile exactly with the counter
//! bank even though bucket boundaries are coarse.

use std::fmt;

/// Number of buckets in a [`Hist`]: one for zero, one per power of two up
/// to `2^31`, and a catch-all for everything larger.
pub const BUCKETS: usize = 33;

/// A log2-bucketed histogram of `u64` samples (cycle counts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new()
    }
}

impl Hist {
    /// An empty histogram.
    pub const fn new() -> Self {
        Hist {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index a value falls into: `0 → 0`, `1 → 1`, `2..=3 → 2`,
    /// `4..=7 → 3`, …, with everything `>= 2^31` in the last bucket.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Inclusive `(lo, hi)` value bounds of bucket `index`.
    ///
    /// # Panics
    /// Panics if `index >= BUCKETS`.
    pub fn bounds(index: usize) -> (u64, u64) {
        assert!(index < BUCKETS, "bucket index {index} out of range");
        match index {
            0 => (0, 0),
            i if i == BUCKETS - 1 => (1 << (BUCKETS - 2), u64::MAX),
            i => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Empties the histogram in place (no storage to reallocate).
    pub fn reset(&mut self) {
        *self = Hist::new();
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Returns `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Raw bucket counts, index order (see [`Hist::bounds`]).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Iterates the non-empty buckets as `(lo, hi, count)`.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bounds(i);
                (lo, hi, c)
            })
    }
}

impl fmt::Display for Hist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "count={} sum={} mean={:.1} max={}",
            self.count,
            self.sum,
            self.mean(),
            self.max
        )?;
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (lo, hi, c) in self.iter_nonzero() {
            let bar = (c * 40).div_ceil(peak) as usize;
            if hi == u64::MAX {
                writeln!(f, "  [{lo:>10}, ..] {c:>8} {}", "#".repeat(bar))?;
            } else {
                writeln!(f, "  [{lo:>10},{hi:>11}] {c:>8} {}", "#".repeat(bar))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundary_table() {
        // Exhaustive boundary table: every power-of-two edge maps to the
        // expected bucket index.
        let table: &[(u64, usize)] = &[
            (0, 0),
            (1, 1),
            (2, 2),
            (3, 2),
            (4, 3),
            (7, 3),
            (8, 4),
            (15, 4),
            (16, 5),
            (1023, 10),
            (1024, 11),
            (65_535, 16),
            (65_536, 17),
            ((1 << 30) - 1, 30),
            (1 << 30, 31),
            ((1 << 31) - 1, 31),
            (1 << 31, 32),
            (1 << 40, 32),
            (u64::MAX, 32),
        ];
        for &(v, want) in table {
            assert_eq!(Hist::bucket_of(v), want, "bucket_of({v})");
        }
    }

    #[test]
    fn bounds_round_trip() {
        for i in 0..BUCKETS {
            let (lo, hi) = Hist::bounds(i);
            assert_eq!(Hist::bucket_of(lo), i, "lo of bucket {i}");
            assert_eq!(Hist::bucket_of(hi), i, "hi of bucket {i}");
            if i + 1 < BUCKETS {
                assert_eq!(Hist::bucket_of(hi + 1), i + 1, "hi+1 of bucket {i}");
            }
        }
    }

    #[test]
    fn record_tracks_exact_totals() {
        let mut h = Hist::new();
        assert!(h.is_empty());
        for v in [0, 1, 3, 100, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 111);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 22.2).abs() < 1e-9);
        assert!(!h.is_empty());
        let total: u64 = h.buckets().iter().sum();
        assert_eq!(total, h.count());
    }

    #[test]
    fn iter_nonzero_reports_bounds() {
        let mut h = Hist::new();
        h.record(5);
        h.record(6);
        let rows: Vec<_> = h.iter_nonzero().collect();
        assert_eq!(rows, vec![(4, 7, 2)]);
    }

    #[test]
    fn display_shows_counts_and_bars() {
        let mut h = Hist::new();
        for _ in 0..3 {
            h.record(10);
        }
        let s = h.to_string();
        assert!(s.contains("count=3"), "{s}");
        assert!(s.contains('#'), "{s}");
    }

    #[test]
    fn saturating_sum_does_not_overflow() {
        let mut h = Hist::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }
}
