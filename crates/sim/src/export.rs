//! Chrome/Perfetto trace-event JSON export.
//!
//! [`chrome_trace`] renders completed [`Span`]s and the raw event ring
//! into the [Trace Event Format] consumed by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): one track per CPU (its
//! transaction spans and ISR activity), one per snoop port, and one for
//! the bus arbiter. Timestamps are bus cycles reported as microseconds —
//! at the paper's 50 MHz ASB one "µs" on screen is 50 bus cycles, but
//! relative durations (the thing a timeline is for) are exact.
//!
//! The JSON is hand-rolled: the workspace builds against an offline
//! registry, so there is no serde. [`validate_json`] is a minimal
//! syntax checker used by the smoke tests and the `hmp-trace` CLI.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::RetryCause;
use crate::event::{SimEvent, TracedEvent};
use crate::metrics::MetricsSnapshot;
use crate::span::Span;
use crate::timeseries::{KernelProfile, TimeSeriesSnapshot};
use std::fmt::Write as _;

/// Schema version stamped into every machine-readable JSON document the
/// workspace emits (`BENCH_*.json`, timeseries exports). Consumers —
/// the CI validators and the `bench_compare` regression gate — reject
/// unversioned documents, so bump this when a document's shape changes
/// incompatibly.
pub const SCHEMA_VERSION: u32 = 1;

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Thread id of the bus-arbiter track.
const TID_BUS: u64 = 0;

fn tid_cpu(i: usize) -> u64 {
    1 + i as u64
}

fn tid_snoop(i: usize, masters: usize) -> u64 {
    1 + masters as u64 + i as u64
}

fn push_event(out: &mut String, body: &str) {
    if !out.ends_with('[') {
        out.push(',');
    }
    out.push_str("\n  {");
    out.push_str(body);
    out.push('}');
}

fn meta_thread(out: &mut String, tid: u64, name: &str, sort: u64) {
    push_event(
        out,
        &format!(
            r#""name":"thread_name","ph":"M","pid":0,"tid":{tid},"args":{{"name":"{}"}}"#,
            json_escape(name)
        ),
    );
    push_event(
        out,
        &format!(
            r#""name":"thread_sort_index","ph":"M","pid":0,"tid":{tid},"args":{{"sort_index":{sort}}}"#
        ),
    );
}

/// Renders spans and raw events as Chrome trace-event JSON.
///
/// `cpu_names` labels the per-CPU tracks (index order); masters beyond
/// `cpu_names.len()` get a generic label. Incomplete spans are skipped —
/// every emitted `"X"` (complete) event corresponds to one completed bus
/// transaction.
pub fn chrome_trace<'a, S, E>(spans: S, events: E, cpu_names: &[String]) -> String
where
    S: IntoIterator<Item = &'a Span>,
    E: IntoIterator<Item = &'a TracedEvent>,
{
    chrome_trace_with_series(spans, events, cpu_names, None)
}

/// [`chrome_trace`] plus windowed-telemetry counter tracks.
///
/// When `series` is present, each windowed series from the
/// [`TimeSeriesSnapshot`] is rendered as a Perfetto counter track
/// (`"ph":"C"`): bus utilization, per-master grants, per-segment busy
/// cycles, retries and completions, one sample per window at the
/// window's starting cycle. Perfetto draws these as stacked area charts
/// above the span tracks, so a utilization collapse lines up visually
/// with the transactions that caused it.
pub fn chrome_trace_with_series<'a, S, E>(
    spans: S,
    events: E,
    cpu_names: &[String],
    series: Option<&TimeSeriesSnapshot>,
) -> String
where
    S: IntoIterator<Item = &'a Span>,
    E: IntoIterator<Item = &'a TracedEvent>,
{
    let masters = cpu_names.len();
    let mut out = String::from("{\"traceEvents\":[");

    meta_thread(&mut out, TID_BUS, "bus arbiter", 0);
    for (i, name) in cpu_names.iter().enumerate() {
        meta_thread(
            &mut out,
            tid_cpu(i),
            &format!("cpu{i} {name}"),
            1 + i as u64,
        );
        meta_thread(
            &mut out,
            tid_snoop(i, masters),
            &format!("snoop{i} {name}"),
            1 + (masters + i) as u64,
        );
    }

    for span in spans {
        let Some(dur) = span.service_time() else {
            continue;
        };
        let cat = if span.is_drain { "drain" } else { "txn" };
        let wait = span.acquire_wait().unwrap_or(0);
        push_event(
            &mut out,
            &format!(
                concat!(
                    r#""name":"{op} {addr:#x}","cat":"{cat}","ph":"X","ts":{ts},"dur":{dur},"#,
                    r#""pid":0,"tid":{tid},"args":{{"addr":"{addr:#x}","retries":{retries},"#,
                    r#""acquire_wait":{wait},"snoop_hits":{snoops},"cam_conflicts":{cams}}}"#
                ),
                op = span.op,
                addr = span.addr,
                cat = cat,
                ts = span.requested_at.as_u64(),
                dur = dur.max(1),
                tid = tid_cpu(span.master),
                retries = span.retries,
                wait = wait,
                snoops = span.snoop_hits,
                cams = span.cam_conflicts,
            ),
        );
    }

    // ISR activity is paired at export time from the raw event ring.
    let mut open_isr: Vec<Option<(u64, u64)>> = vec![None; masters.max(1)];
    for te in events {
        let ts = te.at.as_u64();
        match te.event {
            SimEvent::BusGrant { .. } | SimEvent::BusRetry { .. } => {
                push_event(
                    &mut out,
                    &format!(
                        r#""name":"{}","cat":"bus","ph":"i","s":"t","ts":{ts},"pid":0,"tid":{TID_BUS}"#,
                        json_escape(&te.event.to_string()),
                    ),
                );
            }
            SimEvent::SnoopHit { owner, .. }
            | SimEvent::CamHit { owner, .. }
            | SimEvent::CacheFill { owner, .. } => {
                if owner < masters {
                    push_event(
                        &mut out,
                        &format!(
                            r#""name":"{}","cat":"snoop","ph":"i","s":"t","ts":{ts},"pid":0,"tid":{}"#,
                            json_escape(&te.event.to_string()),
                            tid_snoop(owner, masters),
                        ),
                    );
                }
            }
            SimEvent::IsrEnter { cpu, line } => {
                if let Some(slot) = open_isr.get_mut(cpu) {
                    *slot = Some((ts, line));
                }
            }
            SimEvent::IsrExit { cpu, .. } => {
                if let Some((enter, line)) = open_isr.get_mut(cpu).and_then(|s| s.take()) {
                    push_event(
                        &mut out,
                        &format!(
                            concat!(
                                r#""name":"ISR drain {line:#x}","cat":"isr","ph":"X","ts":{ts},"#,
                                r#""dur":{dur},"pid":0,"tid":{tid}"#
                            ),
                            line = line,
                            ts = enter,
                            dur = (ts - enter).max(1),
                            tid = tid_cpu(cpu),
                        ),
                    );
                }
            }
            SimEvent::FaultInjected { .. } | SimEvent::MasterQuarantined { .. } => {
                // Chaos markers land on the bus-arbiter track so the
                // injected fault is visible next to its fallout.
                push_event(
                    &mut out,
                    &format!(
                        r#""name":"{}","cat":"fault","ph":"i","s":"g","ts":{ts},"pid":0,"tid":{TID_BUS}"#,
                        json_escape(&te.event.to_string()),
                    ),
                );
            }
            SimEvent::BusRequest { .. } | SimEvent::BusComplete { .. } => {}
        }
    }

    if let Some(snap) = series {
        counter_tracks(&mut out, snap);
    }

    out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"hmp-trace\",\"clock\":\"bus-cycles\"}}");
    out
}

/// Emits one `"ph":"C"` counter event per window per telemetry series.
fn counter_tracks(out: &mut String, snap: &TimeSeriesSnapshot) {
    fn counter(out: &mut String, name: &str, ts: u64, args: &str) {
        push_event(
            out,
            &format!(
                r#""name":"{name}","cat":"telemetry","ph":"C","ts":{ts},"pid":0,"args":{{{args}}}"#
            ),
        );
    }
    for i in 0..snap.samples() {
        let ts = snap.window_start(i);
        counter(
            out,
            "bus utilization %",
            ts,
            &format!(r#""busy":{:.3}"#, 100.0 * snap.utilization(i)),
        );
        let mut grants = String::new();
        for (m, g) in snap.grants.iter().enumerate() {
            if m > 0 {
                grants.push(',');
            }
            let _ = write!(grants, r#""m{m}":{}"#, g[i]);
        }
        counter(out, "grants/window", ts, &grants);
        if snap.segments > 1 {
            let mut occ = String::new();
            for (s, o) in snap.occupancy.iter().enumerate() {
                if s > 0 {
                    occ.push(',');
                }
                let _ = write!(occ, r#""seg{s}":{}"#, o[i]);
            }
            counter(out, "segment busy cycles/window", ts, &occ);
        }
        counter(
            out,
            "retries/window",
            ts,
            &format!(r#""retries":{}"#, snap.retries[i]),
        );
        counter(
            out,
            "completions/window",
            ts,
            &format!(r#""completions":{}"#, snap.completions[i]),
        );
    }
}

/// Renders a [`MetricsSnapshot`] as a JSON object.
pub fn metrics_json(snap: &MetricsSnapshot) -> String {
    fn hist(out: &mut String, name: &str, h: &crate::hist::Hist) {
        let _ = write!(
            out,
            r#""{name}":{{"count":{},"sum":{},"max":{},"buckets":["#,
            h.count(),
            h.sum(),
            h.max()
        );
        for (i, b) in h.buckets().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("]},");
    }
    fn list(out: &mut String, name: &str, xs: &[u64]) {
        let _ = write!(out, r#""{name}":["#);
        for (i, x) in xs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{x}");
        }
        out.push_str("],");
    }

    let mut out = String::from("{");
    let _ = write!(
        out,
        r#""masters":{},"grants":{},"completions":{},"drains_completed":{},"retries":{},"#,
        snap.masters, snap.grants, snap.completions, snap.drains_completed, snap.retries
    );
    let _ = write!(
        out,
        r#""faults_injected":{},"masters_quarantined":{},"#,
        snap.faults_injected, snap.masters_quarantined
    );
    out.push_str("\"retry_by_cause\":{");
    for (i, cause) in RetryCause::ALL.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            r#""{}":{}"#,
            cause.key(),
            snap.retry_by_cause[cause as usize]
        );
    }
    out.push_str("},");
    hist(&mut out, "acquire_wait", &snap.acquire_wait);
    hist(&mut out, "service_time", &snap.service_time);
    hist(&mut out, "isr_latency", &snap.isr_latency);
    hist(&mut out, "retries_per_txn", &snap.retries_per_txn);
    list(&mut out, "snoop_hits", &snap.snoop_hits);
    list(&mut out, "cam_hits", &snap.cam_hits);
    list(&mut out, "isr_entries", &snap.isr_entries);
    list(&mut out, "fills", &snap.fills);
    out.push_str("\"top_retry_addrs\":[");
    for (i, &(addr, n)) in snap.top_retry_addrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, r#"{{"addr":"{addr:#x}","retries":{n}}}"#);
    }
    out.push_str("],");
    let _ = write!(
        out,
        r#""retry_addr_overflow":{},"spans_recorded":{},"spans_dropped":{},"span_orphans":{}}}"#,
        snap.retry_addr_overflow, snap.spans_recorded, snap.spans_dropped, snap.span_orphans
    );
    out
}

/// Renders a [`TimeSeriesSnapshot`] (and optional [`KernelProfile`]) as
/// one JSON document: run-level metadata, one object per window with
/// every deterministic series, and — when present — the kernel
/// self-profile including the per-window warp/cpu-only/full mix.
pub fn timeseries_json(snap: &TimeSeriesSnapshot, profile: Option<&KernelProfile>) -> String {
    fn u64_list(out: &mut String, name: &str, xs: &[u64]) {
        let _ = write!(out, r#""{name}":["#);
        for (i, x) in xs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{x}");
        }
        out.push(']');
    }

    let mut out = String::from("{");
    let _ = write!(
        out,
        concat!(
            r#""schema_version":{},"window_cycles":{},"base_window":{},"scale":{},"#,
            r#""end_cycle":{},"masters":{},"segments":{},"windows":["#
        ),
        SCHEMA_VERSION,
        snap.effective_window(),
        snap.window,
        snap.scale,
        snap.end_cycle,
        snap.masters,
        snap.segments,
    );
    for i in 0..snap.samples() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            concat!(
                r#"{{"start":{},"width":{},"busy":{},"utilization":{:.6},"#,
                r#""retries":{},"quarantines":{},"bridge_crossings":{},"completions":{},"#
            ),
            snap.window_start(i),
            snap.window_width(i),
            snap.busy[i],
            snap.utilization(i),
            snap.retries[i],
            snap.quarantines[i],
            snap.bridge_crossings[i],
            snap.completions[i],
        );
        let grants: Vec<u64> = snap.grants.iter().map(|g| g[i]).collect();
        u64_list(&mut out, "grants", &grants);
        out.push(',');
        let occ: Vec<u64> = snap.occupancy.iter().map(|o| o[i]).collect();
        u64_list(&mut out, "segment_busy", &occ);
        out.push('}');
    }
    out.push_str("],");
    match profile {
        Some(p) => {
            let kernel = match p.kernel {
                crate::Kernel::Step => "step",
                crate::Kernel::FastForward => "fast_forward",
            };
            let _ = write!(
                out,
                concat!(
                    r#""profile":{{"kernel":"{}","wall_ns":{},"plan_ns":{},"warp_ns":{},"#,
                    r#""step_ns":{},"cpu_only_ns":{},"iterations":{},"full_steps":{},"#,
                    r#""cpu_only_steps":{},"warped_cycles":{},"cycles_per_sec":{:.3},"#
                ),
                kernel,
                p.wall_ns,
                p.plan_ns,
                p.warp_ns,
                p.step_ns,
                p.cpu_only_ns,
                p.iterations,
                p.full_steps,
                p.cpu_only_steps,
                p.warped_cycles,
                p.cycles_per_sec,
            );
            match &p.mix {
                Some(mix) => {
                    out.push_str(r#""mix":{"#);
                    u64_list(&mut out, "warped", &mix.warped);
                    out.push(',');
                    u64_list(&mut out, "cpu_only", &mix.cpu_only);
                    out.push(',');
                    u64_list(&mut out, "full", &mix.full);
                    out.push('}');
                }
                None => out.push_str(r#""mix":null"#),
            }
            out.push('}');
        }
        None => out.push_str(r#""profile":null"#),
    }
    out.push('}');
    out
}

/// Minimal JSON syntax validation: checks the input is one complete,
/// well-formed JSON value. Returns the number of *non-whitespace* bytes
/// consumed, which for an object/array is a cheap non-emptiness proxy.
///
/// This is not a full RFC 8259 parser (numbers are accepted loosely);
/// it exists so smoke tests can validate exporter output without an
/// external JSON dependency.
pub fn validate_json(s: &str) -> Result<usize, String> {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
        depth: usize,
    }
    impl P<'_> {
        fn err(&self, msg: &str) -> String {
            format!("{msg} at byte {}", self.i)
        }
        fn ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }
        fn peek(&self) -> Option<u8> {
            self.b.get(self.i).copied()
        }
        fn eat(&mut self, c: u8, what: &str) -> Result<(), String> {
            if self.peek() == Some(c) {
                self.i += 1;
                Ok(())
            } else {
                Err(self.err(what))
            }
        }
        fn value(&mut self) -> Result<(), String> {
            self.depth += 1;
            if self.depth > 256 {
                return Err(self.err("nesting too deep"));
            }
            self.ws();
            let r = match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => self.string(),
                Some(b't') => self.literal("true"),
                Some(b'f') => self.literal("false"),
                Some(b'n') => self.literal("null"),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => Err(self.err("expected a JSON value")),
            };
            self.depth -= 1;
            r
        }
        fn literal(&mut self, lit: &str) -> Result<(), String> {
            if self.b[self.i..].starts_with(lit.as_bytes()) {
                self.i += lit.len();
                Ok(())
            } else {
                Err(self.err("bad literal"))
            }
        }
        fn number(&mut self) -> Result<(), String> {
            let start = self.i;
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                    self.i += 1;
                } else {
                    break;
                }
            }
            if self.i == start {
                Err(self.err("expected a number"))
            } else {
                Ok(())
            }
        }
        fn string(&mut self) -> Result<(), String> {
            self.eat(b'"', "expected '\"'")?;
            while let Some(c) = self.peek() {
                self.i += 1;
                match c {
                    b'"' => return Ok(()),
                    b'\\' => {
                        if self.peek().is_none() {
                            break;
                        }
                        self.i += 1;
                    }
                    _ => {}
                }
            }
            Err(self.err("unterminated string"))
        }
        fn object(&mut self) -> Result<(), String> {
            self.eat(b'{', "expected '{'")?;
            self.ws();
            if self.peek() == Some(b'}') {
                self.i += 1;
                return Ok(());
            }
            loop {
                self.ws();
                self.string()?;
                self.ws();
                self.eat(b':', "expected ':'")?;
                self.value()?;
                self.ws();
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(());
                    }
                    _ => return Err(self.err("expected ',' or '}'")),
                }
            }
        }
        fn array(&mut self) -> Result<(), String> {
            self.eat(b'[', "expected '['")?;
            self.ws();
            if self.peek() == Some(b']') {
                self.i += 1;
                return Ok(());
            }
            loop {
                self.value()?;
                self.ws();
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b']') => {
                        self.i += 1;
                        return Ok(());
                    }
                    _ => return Err(self.err("expected ',' or ']'")),
                }
            }
        }
    }
    let mut p = P {
        b: s.as_bytes(),
        i: 0,
        depth: 0,
    };
    p.value()?;
    let consumed = p.i;
    p.ws();
    if p.i != s.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(consumed)
}

/// A parsed JSON value. Object keys keep insertion order (`Vec` of
/// pairs, not a map) — the documents this workspace emits are small and
/// ordered, and the `bench_compare` gate wants deterministic walks.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`; the workspace's counters fit).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source key order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// One-word JSON type name, for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Num(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Arr(_) => "array",
            JsonValue::Obj(_) => "object",
        }
    }
}

/// Parses one complete JSON document into a [`JsonValue`] tree.
///
/// Same dialect as [`validate_json`] (numbers accepted loosely, depth
/// capped at 256) but builds the value so consumers — chiefly the
/// `bench_compare` regression gate — can walk and diff documents
/// without an external JSON dependency.
pub fn parse_json(s: &str) -> Result<JsonValue, String> {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
        depth: usize,
    }
    impl P<'_> {
        fn err(&self, msg: &str) -> String {
            format!("{msg} at byte {}", self.i)
        }
        fn ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }
        fn peek(&self) -> Option<u8> {
            self.b.get(self.i).copied()
        }
        fn eat(&mut self, c: u8, what: &str) -> Result<(), String> {
            if self.peek() == Some(c) {
                self.i += 1;
                Ok(())
            } else {
                Err(self.err(what))
            }
        }
        fn value(&mut self) -> Result<JsonValue, String> {
            self.depth += 1;
            if self.depth > 256 {
                return Err(self.err("nesting too deep"));
            }
            self.ws();
            let r = match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => self.string().map(JsonValue::Str),
                Some(b't') => self.literal("true").map(|_| JsonValue::Bool(true)),
                Some(b'f') => self.literal("false").map(|_| JsonValue::Bool(false)),
                Some(b'n') => self.literal("null").map(|_| JsonValue::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => Err(self.err("expected a JSON value")),
            };
            self.depth -= 1;
            r
        }
        fn literal(&mut self, lit: &str) -> Result<(), String> {
            if self.b[self.i..].starts_with(lit.as_bytes()) {
                self.i += lit.len();
                Ok(())
            } else {
                Err(self.err("bad literal"))
            }
        }
        fn number(&mut self) -> Result<JsonValue, String> {
            let start = self.i;
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                    self.i += 1;
                } else {
                    break;
                }
            }
            let text =
                std::str::from_utf8(&self.b[start..self.i]).map_err(|_| self.err("bad utf8"))?;
            text.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| self.err("expected a number"))
        }
        fn string(&mut self) -> Result<String, String> {
            self.eat(b'"', "expected '\"'")?;
            let mut out = String::new();
            loop {
                let Some(c) = self.peek() else {
                    return Err(self.err("unterminated string"));
                };
                self.i += 1;
                match c {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let Some(esc) = self.peek() else {
                            return Err(self.err("unterminated escape"));
                        };
                        self.i += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                if self.i + 4 > self.b.len() {
                                    return Err(self.err("truncated \\u escape"));
                                }
                                let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                    .map_err(|_| self.err("bad \\u escape"))?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| self.err("bad \\u escape"))?;
                                self.i += 4;
                                // Surrogate pairs are not decoded — the
                                // workspace never emits them; map to the
                                // replacement character instead of failing.
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                            _ => return Err(self.err("unknown escape")),
                        }
                    }
                    _ => {
                        // Collect the raw UTF-8 run up to the next quote
                        // or backslash.
                        let start = self.i - 1;
                        while let Some(c) = self.peek() {
                            if c == b'"' || c == b'\\' {
                                break;
                            }
                            self.i += 1;
                        }
                        let run = std::str::from_utf8(&self.b[start..self.i])
                            .map_err(|_| self.err("bad utf8 in string"))?;
                        out.push_str(run);
                    }
                }
            }
        }
        fn object(&mut self) -> Result<JsonValue, String> {
            self.eat(b'{', "expected '{'")?;
            self.ws();
            let mut members = Vec::new();
            if self.peek() == Some(b'}') {
                self.i += 1;
                return Ok(JsonValue::Obj(members));
            }
            loop {
                self.ws();
                let key = self.string()?;
                self.ws();
                self.eat(b':', "expected ':'")?;
                let value = self.value()?;
                members.push((key, value));
                self.ws();
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(JsonValue::Obj(members));
                    }
                    _ => return Err(self.err("expected ',' or '}'")),
                }
            }
        }
        fn array(&mut self) -> Result<JsonValue, String> {
            self.eat(b'[', "expected '['")?;
            self.ws();
            let mut items = Vec::new();
            if self.peek() == Some(b']') {
                self.i += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.ws();
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b']') => {
                        self.i += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(self.err("expected ',' or ']'")),
                }
            }
        }
    }
    let mut p = P {
        b: s.as_bytes(),
        i: 0,
        depth: 0,
    };
    let v = p.value()?;
    p.ws();
    if p.i != s.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{BusOpKind, Observer, TraceObserver};
    use crate::metrics::MetricsObserver;
    use crate::Cycle;

    fn names() -> Vec<String> {
        vec!["PowerPC755".to_string(), "ARM920T".to_string()]
    }

    fn sample_ring() -> TraceObserver {
        let mut t = TraceObserver::new(64);
        t.on_event(
            Cycle::new(2),
            SimEvent::BusGrant {
                master: 0,
                op: BusOpKind::ReadLine,
                addr: 0x40,
                is_retry: false,
                is_drain: false,
            },
        );
        t.on_event(
            Cycle::new(3),
            SimEvent::SnoopHit {
                owner: 1,
                addr: 0x40,
                action: crate::event::SnoopActionKind::Writeback,
                asserts_shared: false,
            },
        );
        t.on_event(Cycle::new(5), SimEvent::IsrEnter { cpu: 1, line: 0x40 });
        t.on_event(Cycle::new(9), SimEvent::IsrExit { cpu: 1, line: 0x40 });
        t
    }

    #[test]
    fn chrome_trace_is_valid_json_with_tracks_and_spans() {
        let mut spans = crate::span::SpanTracker::new(2, 8);
        spans.on_event(
            Cycle::new(1),
            SimEvent::BusRequest {
                master: 0,
                op: BusOpKind::ReadLine,
                addr: 0x40,
                is_drain: false,
            },
        );
        spans.on_event(
            Cycle::new(2),
            SimEvent::BusGrant {
                master: 0,
                op: BusOpKind::ReadLine,
                addr: 0x40,
                is_retry: false,
                is_drain: false,
            },
        );
        spans.on_event(
            Cycle::new(15),
            SimEvent::BusComplete {
                master: 0,
                op: BusOpKind::ReadLine,
                addr: 0x40,
                is_drain: false,
            },
        );
        let ring = sample_ring();
        let json = chrome_trace(spans.iter(), ring.iter(), &names());
        let consumed = validate_json(&json).expect("exporter output must parse");
        assert!(consumed > 2, "non-empty");
        assert!(json.contains(r#""name":"thread_name""#), "{json}");
        assert!(json.contains("cpu0 PowerPC755"), "{json}");
        assert!(json.contains("snoop1 ARM920T"), "{json}");
        assert!(json.contains(r#""ph":"X""#), "{json}");
        assert!(json.contains(r#""name":"ReadLine 0x40""#), "{json}");
        assert!(json.contains(r#""name":"ISR drain 0x40""#), "{json}");
        assert!(json.contains(r#""retries":0"#), "{json}");
    }

    #[test]
    fn incomplete_spans_are_skipped() {
        let mut spans = crate::span::SpanTracker::new(1, 8);
        spans.on_event(
            Cycle::new(1),
            SimEvent::BusRequest {
                master: 0,
                op: BusOpKind::ReadLine,
                addr: 0x40,
                is_drain: false,
            },
        );
        let open = spans.open_spans();
        let json = chrome_trace(open.iter(), std::iter::empty(), &names());
        validate_json(&json).unwrap();
        assert!(!json.contains(r#""ph":"X""#), "{json}");
    }

    #[test]
    fn metrics_json_is_valid() {
        let mut m = MetricsObserver::new(2, 8, 8);
        for te in sample_ring().iter() {
            m.on_event(te.at, te.event);
        }
        let json = metrics_json(&m.snapshot());
        validate_json(&json).expect("metrics JSON must parse");
        assert!(json.contains(r#""grants":1"#), "{json}");
        assert!(json.contains(r#""isr_latency""#), "{json}");
    }

    #[test]
    fn json_escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    fn sample_snapshot() -> TimeSeriesSnapshot {
        let mut r = crate::timeseries::MetricsRegistry::new(
            2,
            2,
            &[0, 1],
            crate::timeseries::TimeSeriesSpec {
                window: 10,
                capacity: 8,
            },
        );
        r.record_busy_span(2, 12, Some(1));
        r.record_bridge_crossing(Cycle::new(15));
        r.snapshot(Cycle::new(25))
    }

    #[test]
    fn timeseries_json_roundtrips_through_the_parser() {
        let snap = sample_snapshot();
        let profile = KernelProfile {
            kernel: crate::Kernel::FastForward,
            wall_ns: 1_000_000,
            warped_cycles: 10,
            cycles_per_sec: 25_000_000.0,
            ..Default::default()
        };
        let json = timeseries_json(&snap, Some(&profile));
        validate_json(&json).expect("timeseries JSON must parse");
        let doc = parse_json(&json).unwrap();
        assert_eq!(
            doc.get("schema_version").and_then(JsonValue::as_f64),
            Some(SCHEMA_VERSION as f64)
        );
        assert_eq!(
            doc.get("window_cycles").and_then(JsonValue::as_f64),
            Some(10.0)
        );
        let windows = doc.get("windows").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(windows.len(), 3);
        let w0 = &windows[0];
        assert_eq!(w0.get("busy").and_then(JsonValue::as_f64), Some(8.0));
        assert_eq!(
            w0.get("grants").and_then(JsonValue::as_arr).map(<[_]>::len),
            Some(2)
        );
        let prof = doc.get("profile").unwrap();
        assert_eq!(
            prof.get("kernel").and_then(JsonValue::as_str),
            Some("fast_forward")
        );
        assert_eq!(
            prof.get("warped_cycles").and_then(JsonValue::as_f64),
            Some(10.0)
        );
        assert_eq!(prof.get("mix"), Some(&JsonValue::Null));

        let bare = timeseries_json(&snap, None);
        validate_json(&bare).unwrap();
        assert_eq!(
            parse_json(&bare).unwrap().get("profile"),
            Some(&JsonValue::Null)
        );
    }

    #[test]
    fn counter_tracks_ride_along_in_the_chrome_trace() {
        let snap = sample_snapshot();
        let json = chrome_trace_with_series(
            std::iter::empty(),
            sample_ring().iter(),
            &names(),
            Some(&snap),
        );
        validate_json(&json).expect("trace with counters must parse");
        assert!(json.contains(r#""ph":"C""#), "{json}");
        assert!(json.contains(r#""name":"bus utilization %""#), "{json}");
        assert!(json.contains(r#""name":"grants/window""#), "{json}");
        assert!(
            json.contains(r#""name":"segment busy cycles/window""#),
            "{json}"
        );
        // Without a snapshot the trace stays counter-free.
        let plain = chrome_trace(std::iter::empty(), sample_ring().iter(), &names());
        assert!(!plain.contains(r#""ph":"C""#));
    }

    #[test]
    fn parser_builds_values_and_decodes_escapes() {
        let doc = parse_json(r#"{"a":[1,2.5,-3],"b":"x\"yA\n","c":null,"d":true}"#).unwrap();
        assert_eq!(doc.kind(), "object");
        let a = doc.get("a").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(-3.0));
        assert_eq!(doc.get("b").and_then(JsonValue::as_str), Some("x\"yA\n"));
        assert_eq!(doc.get("c"), Some(&JsonValue::Null));
        assert_eq!(doc.get("d").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(doc.as_obj().map(<[_]>::len), Some(4));
        assert_eq!(
            parse_json(r#""\u0041\t""#).unwrap(),
            JsonValue::Str("A\t".to_string())
        );
        assert!(parse_json("{").is_err());
        assert!(parse_json(r#"{"a":1,}"#).is_err());
        assert!(parse_json("[] junk").is_err());
    }

    #[test]
    fn validator_accepts_and_rejects() {
        assert!(validate_json(r#"{"a":[1,2.5,-3],"b":"x\"y","c":null,"d":true}"#).is_ok());
        assert!(validate_json("  [ ]  ").is_ok());
        assert!(validate_json("").is_err());
        assert!(validate_json("{").is_err());
        assert!(validate_json(r#"{"a":1,}"#).is_err());
        assert!(validate_json(r#"{"a" 1}"#).is_err());
        assert!(validate_json("[1 2]").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("{} extra").is_err());
    }
}
