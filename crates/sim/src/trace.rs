//! Bounded event tracing.

use crate::Cycle;
use std::collections::VecDeque;
use std::fmt;

/// One timestamped trace record.
///
/// The payload is a plain `String`: trace events cross crate boundaries
/// (bus, cache, wrapper, CPU all emit them), and a stringly-typed payload
/// keeps the kernel crate free of domain types. Structured analysis happens
/// on the counters in [`crate::Stats`], not on the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Bus-clock time at which the event occurred.
    pub at: Cycle,
    /// Component that emitted the event, e.g. `"bus"` or `"cpu1"`.
    pub source: String,
    /// Human-readable description of what happened.
    pub what: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>8}] {:<10} {}",
            self.at.as_u64(),
            self.source,
            self.what
        )
    }
}

/// A bounded ring buffer of [`TraceEvent`]s.
///
/// When full, the oldest events are discarded — long simulations keep the
/// most recent window, which is what post-mortem debugging (e.g. of a
/// detected hardware deadlock) needs.
///
/// # Examples
///
/// ```
/// use hmp_sim::{Cycle, TraceBuffer};
/// let mut t = TraceBuffer::new(2);
/// t.record(Cycle::new(1), "bus", "grant cpu0");
/// t.record(Cycle::new(2), "bus", "grant cpu1");
/// t.record(Cycle::new(3), "bus", "retry cpu0");
/// assert_eq!(t.len(), 2); // oldest evicted
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    enabled: bool,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates an enabled buffer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            capacity,
            events: VecDeque::with_capacity(capacity.min(4096)),
            enabled: capacity > 0,
            dropped: 0,
        }
    }

    /// Creates a disabled buffer that records nothing (zero overhead).
    pub fn disabled() -> Self {
        TraceBuffer::new(0)
    }

    /// Returns `true` if the buffer records events.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off without touching stored events.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled && self.capacity > 0;
    }

    /// Records an event, evicting the oldest if at capacity.
    pub fn record(&mut self, at: Cycle, source: &str, what: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            at,
            source: source.to_owned(),
            what: what.into(),
        });
    }

    /// Number of events currently stored.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates stored events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Drops all stored events, keeping capacity and enablement.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl fmt::Display for TraceBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        if self.dropped > 0 {
            writeln!(f, "({} earlier events dropped)", self.dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = TraceBuffer::new(10);
        t.record(Cycle::new(1), "a", "first");
        t.record(Cycle::new(2), "b", "second");
        let whats: Vec<&str> = t.iter().map(|e| e.what.as_str()).collect();
        assert_eq!(whats, vec!["first", "second"]);
        assert!(!t.is_empty());
    }

    #[test]
    fn evicts_oldest_at_capacity() {
        let mut t = TraceBuffer::new(2);
        t.record(Cycle::new(1), "x", "one");
        t.record(Cycle::new(2), "x", "two");
        t.record(Cycle::new(3), "x", "three");
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.iter().next().unwrap().what, "two");
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = TraceBuffer::disabled();
        assert!(!t.is_enabled());
        t.record(Cycle::new(1), "x", "ignored");
        assert!(t.is_empty());
    }

    #[test]
    fn set_enabled_respects_zero_capacity() {
        let mut t = TraceBuffer::disabled();
        t.set_enabled(true);
        assert!(!t.is_enabled(), "zero-capacity buffer cannot be enabled");

        let mut t2 = TraceBuffer::new(4);
        t2.set_enabled(false);
        t2.record(Cycle::new(1), "x", "ignored");
        assert!(t2.is_empty());
        t2.set_enabled(true);
        t2.record(Cycle::new(2), "x", "kept");
        assert_eq!(t2.len(), 1);
    }

    #[test]
    fn clear_keeps_settings() {
        let mut t = TraceBuffer::new(4);
        t.record(Cycle::new(1), "x", "e");
        t.clear();
        assert!(t.is_empty());
        assert!(t.is_enabled());
    }

    #[test]
    fn display_formats_events() {
        let mut t = TraceBuffer::new(4);
        t.record(Cycle::new(12), "bus", "grant cpu0");
        let s = t.to_string();
        assert!(s.contains("12"));
        assert!(s.contains("bus"));
        assert!(s.contains("grant cpu0"));
    }

    #[test]
    fn event_display() {
        let e = TraceEvent {
            at: Cycle::new(7),
            source: "cpu1".into(),
            what: "nFIQ asserted".into(),
        };
        let s = e.to_string();
        assert!(s.contains('7'));
        assert!(s.contains("cpu1"));
        assert!(s.contains("nFIQ asserted"));
    }
}
