//! Forward-progress watchdog.
//!
//! Section 3 of the paper identifies a *hardware deadlock*: with cacheable
//! lock variables on a PF1/PF2 platform, a bus master retrying a snooped
//! transaction and a processor waiting to service the snoop interrupt can
//! block each other forever (Figure 4). The simulator reproduces that
//! situation, so it needs a way to recognise it: the [`Watchdog`] watches a
//! monotone progress measure (committed memory operations) and reports
//! [`WatchdogVerdict::Stalled`] when no progress happens for a configurable
//! number of bus cycles.

use crate::Cycle;

/// Outcome of a watchdog poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WatchdogVerdict {
    /// Progress has been observed within the stall window.
    Healthy,
    /// No progress for at least the stall window — likely deadlock/livelock.
    Stalled,
}

/// Detects lack of forward progress in the simulated platform.
///
/// Feed it the current bus time and a monotone progress counter every cycle
/// (or every polling interval); it reports [`WatchdogVerdict::Stalled`] once
/// the counter has not moved for `window` bus cycles.
///
/// # Examples
///
/// ```
/// use hmp_sim::{Cycle, Watchdog, WatchdogVerdict};
/// let mut dog = Watchdog::new(Cycle::new(100));
/// assert_eq!(dog.poll(Cycle::new(0), 0), WatchdogVerdict::Healthy);
/// assert_eq!(dog.poll(Cycle::new(99), 0), WatchdogVerdict::Healthy);
/// assert_eq!(dog.poll(Cycle::new(100), 0), WatchdogVerdict::Stalled);
/// assert_eq!(dog.poll(Cycle::new(101), 1), WatchdogVerdict::Healthy);
/// ```
#[derive(Debug, Clone)]
pub struct Watchdog {
    window: Cycle,
    last_progress_at: Cycle,
    last_counter: u64,
    started: bool,
}

impl Watchdog {
    /// Creates a watchdog that trips after `window` bus cycles without
    /// progress.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero — a zero window would trip on the very
    /// first poll.
    pub fn new(window: Cycle) -> Self {
        assert!(window > Cycle::ZERO, "watchdog window must be positive");
        Watchdog {
            window,
            last_progress_at: Cycle::ZERO,
            last_counter: 0,
            started: false,
        }
    }

    /// The configured stall window.
    pub fn window(&self) -> Cycle {
        self.window
    }

    /// Polls the watchdog with the current time and progress counter.
    ///
    /// `progress` must be monotone non-decreasing; any increase resets the
    /// stall timer.
    pub fn poll(&mut self, now: Cycle, progress: u64) -> WatchdogVerdict {
        if !self.started {
            self.started = true;
            self.last_progress_at = now;
            self.last_counter = progress;
            return WatchdogVerdict::Healthy;
        }
        if progress != self.last_counter {
            self.last_counter = progress;
            self.last_progress_at = now;
            return WatchdogVerdict::Healthy;
        }
        if now.saturating_since(self.last_progress_at) >= self.window {
            WatchdogVerdict::Stalled
        } else {
            WatchdogVerdict::Healthy
        }
    }

    /// Bus cycles elapsed since progress was last observed.
    pub fn stalled_for(&self, now: Cycle) -> Cycle {
        now.saturating_since(self.last_progress_at)
    }

    /// Re-establishes the progress baseline at `now` without requiring
    /// counter movement.
    ///
    /// Used by recovery escalation: after quarantining a wedged master the
    /// platform grants the survivors a fresh stall window instead of
    /// tripping again on the pre-quarantine silence.
    pub fn rebaseline(&mut self, now: Cycle) {
        self.started = true;
        self.last_progress_at = now;
    }

    /// Reinitializes for a fresh run (same window): forgets the baseline
    /// and all observed progress.
    pub fn reset(&mut self) {
        self.last_progress_at = Cycle::ZERO;
        self.last_counter = 0;
        self.started = false;
    }

    /// The earliest cycle at which a poll could report
    /// [`WatchdogVerdict::Stalled`], or `None` before the first poll has
    /// established its baseline. A fast-forward kernel must not skip past
    /// this cycle: the stall must be detected at exactly the same cycle
    /// the per-cycle polling loop would have detected it.
    pub fn deadline(&self) -> Option<Cycle> {
        self.started.then(|| self.last_progress_at + self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_while_progressing() {
        let mut dog = Watchdog::new(Cycle::new(10));
        for t in 0..100 {
            assert_eq!(
                dog.poll(Cycle::new(t), t), // counter moves every poll
                WatchdogVerdict::Healthy
            );
        }
    }

    #[test]
    fn trips_after_window() {
        let mut dog = Watchdog::new(Cycle::new(10));
        dog.poll(Cycle::new(0), 5);
        assert_eq!(dog.poll(Cycle::new(9), 5), WatchdogVerdict::Healthy);
        assert_eq!(dog.poll(Cycle::new(10), 5), WatchdogVerdict::Stalled);
        assert_eq!(dog.stalled_for(Cycle::new(10)), Cycle::new(10));
    }

    #[test]
    fn progress_resets_timer() {
        let mut dog = Watchdog::new(Cycle::new(10));
        dog.poll(Cycle::new(0), 0);
        assert_eq!(dog.poll(Cycle::new(9), 0), WatchdogVerdict::Healthy);
        assert_eq!(dog.poll(Cycle::new(9), 1), WatchdogVerdict::Healthy);
        assert_eq!(dog.poll(Cycle::new(18), 1), WatchdogVerdict::Healthy);
        assert_eq!(dog.poll(Cycle::new(19), 1), WatchdogVerdict::Stalled);
    }

    #[test]
    fn first_poll_establishes_baseline() {
        let mut dog = Watchdog::new(Cycle::new(5));
        // Even at a late time, the first poll cannot trip.
        assert_eq!(dog.poll(Cycle::new(1000), 0), WatchdogVerdict::Healthy);
        assert_eq!(dog.poll(Cycle::new(1004), 0), WatchdogVerdict::Healthy);
        assert_eq!(dog.poll(Cycle::new(1005), 0), WatchdogVerdict::Stalled);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = Watchdog::new(Cycle::ZERO);
    }

    #[test]
    fn window_accessor() {
        assert_eq!(Watchdog::new(Cycle::new(7)).window(), Cycle::new(7));
    }

    #[test]
    fn rebaseline_grants_a_fresh_window() {
        let mut dog = Watchdog::new(Cycle::new(10));
        dog.poll(Cycle::new(0), 0);
        assert_eq!(dog.poll(Cycle::new(10), 0), WatchdogVerdict::Stalled);
        dog.rebaseline(Cycle::new(10));
        assert_eq!(dog.deadline(), Some(Cycle::new(20)));
        assert_eq!(dog.poll(Cycle::new(19), 0), WatchdogVerdict::Healthy);
        assert_eq!(dog.poll(Cycle::new(20), 0), WatchdogVerdict::Stalled);
    }

    #[test]
    fn deadline_tracks_last_progress() {
        let mut dog = Watchdog::new(Cycle::new(10));
        assert_eq!(dog.deadline(), None, "no baseline before the first poll");
        dog.poll(Cycle::new(3), 0);
        assert_eq!(dog.deadline(), Some(Cycle::new(13)));
        dog.poll(Cycle::new(8), 1); // progress resets the stall timer
        assert_eq!(dog.deadline(), Some(Cycle::new(18)));
        // The deadline is exactly the first cycle a poll trips.
        assert_eq!(dog.poll(Cycle::new(17), 1), WatchdogVerdict::Healthy);
        assert_eq!(dog.poll(Cycle::new(18), 1), WatchdogVerdict::Stalled);
    }
}
