//! Incremental next-event scheduling for the fast-forward kernel.
//!
//! The original planner rescanned every node each iteration to find the
//! earliest next event — O(N) per iteration, which becomes the wall on
//! event-dense workloads and grows with the N-master fabrics. An
//! [`EventSchedule`] keeps one *absolute* next-event time per node plus a
//! dirty set of nodes whose state changed since they were last planned:
//! a plan iteration recomputes only the dirty nodes and reads the
//! earliest time in O(1)/O(log N), because absolute event times are
//! invariant under pure-countdown ticks and warps (they change only at
//! the state transitions that mark a node dirty).
//!
//! Small systems (≤ [`LINEAR_MAX`] nodes) answer "earliest" with a
//! branch-free linear scan over the dense `next` array — faster than any
//! heap at that size. Larger fabrics switch to a lazy binary heap keyed
//! by `(cycle, node)`: [`EventSchedule::record`] pushes without removing
//! the node's previous entry, and stale entries are discarded when they
//! surface at the top (an entry is stale exactly when it disagrees with
//! the dense array, which is always authoritative).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel absolute time for "this node has no pending event".
pub const NO_EVENT: u64 = u64::MAX;

/// Largest node count served by the dense linear scan; beyond this the
/// lazy heap takes over.
const LINEAR_MAX: usize = 8;

/// Per-node next-event times with dirty tracking and an O(log N)
/// earliest-event query. See the module docs for the invariants.
#[derive(Debug, Clone)]
pub struct EventSchedule {
    /// Authoritative absolute next-event bus cycle per node
    /// ([`NO_EVENT`] = none). Only meaningful while the node's dirty bit
    /// is clear.
    next: Vec<u64>,
    /// Dirty bitmask, one bit per node, packed into words.
    dirty: Vec<u64>,
    /// Lazy min-heap over `(cycle, node)`; empty in linear mode.
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    len: usize,
}

impl EventSchedule {
    /// A schedule for `len` nodes, all initially dirty.
    pub fn new(len: usize) -> Self {
        let words = len.div_ceil(64).max(1);
        let mut s = EventSchedule {
            next: vec![NO_EVENT; len],
            dirty: vec![0; words],
            heap: BinaryHeap::new(),
            len,
        };
        s.mark_all_dirty();
        s
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the schedule tracks no nodes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reinitializes in place for reuse across runs: everything dirty,
    /// all event times cleared, heap drained. Keeps every allocation.
    pub fn reset(&mut self) {
        self.next.fill(NO_EVENT);
        self.heap.clear();
        self.mark_all_dirty();
    }

    /// Marks node `i` as needing recomputation before the next plan.
    #[inline]
    pub fn mark_dirty(&mut self, i: usize) {
        self.dirty[i >> 6] |= 1 << (i & 63);
    }

    /// Marks every node dirty (used at construction, reset, kernel or
    /// configuration changes, and fault fire cycles).
    pub fn mark_all_dirty(&mut self) {
        if self.len == 0 {
            return;
        }
        let (full_words, tail) = (self.len >> 6, self.len & 63);
        for w in &mut self.dirty[..full_words] {
            *w = u64::MAX;
        }
        if tail != 0 {
            self.dirty[full_words] = (1u64 << tail) - 1;
        }
    }

    /// Whether node `i` is marked dirty.
    #[inline]
    pub fn is_dirty(&self, i: usize) -> bool {
        self.dirty[i >> 6] & (1 << (i & 63)) != 0
    }

    /// Pops one dirty node index, clearing its bit; `None` when the set
    /// is empty. Callers drain this before querying
    /// [`EventSchedule::earliest`], recording a fresh time for each
    /// popped node.
    #[inline]
    pub fn pop_dirty(&mut self) -> Option<usize> {
        for (w, word) in self.dirty.iter_mut().enumerate() {
            if *word != 0 {
                let b = word.trailing_zeros() as usize;
                *word &= *word - 1;
                return Some((w << 6) | b);
            }
        }
        None
    }

    /// The recorded absolute event time of node `i` ([`NO_EVENT`] if
    /// none). Only meaningful while the node is not dirty.
    #[inline]
    pub fn next_of(&self, i: usize) -> u64 {
        self.next[i]
    }

    /// Records node `i`'s freshly computed absolute event time.
    #[inline]
    pub fn record(&mut self, i: usize, abs: u64) {
        self.next[i] = abs;
        if self.len > LINEAR_MAX && abs != NO_EVENT {
            self.heap.push(Reverse((abs, i as u32)));
            // Stale entries are normally discarded as they surface, but a
            // node that repeatedly re-records far-future times could bury
            // unbounded garbage; rebuild from the dense array if the heap
            // ever grows far past one live entry per node.
            if self.heap.len() > 4 * self.len + 64 {
                self.heap.clear();
                for (j, &t) in self.next.iter().enumerate() {
                    if t != NO_EVENT {
                        self.heap.push(Reverse((t, j as u32)));
                    }
                }
            }
        }
    }

    /// The earliest recorded event time across all nodes ([`NO_EVENT`] if
    /// none). Requires the dirty set to be drained first; heals stale
    /// heap entries as a side effect.
    #[inline]
    pub fn earliest(&mut self) -> u64 {
        if self.len <= LINEAR_MAX {
            self.next.iter().copied().min().unwrap_or(NO_EVENT)
        } else {
            while let Some(&Reverse((abs, i))) = self.heap.peek() {
                if self.next[i as usize] == abs {
                    return abs;
                }
                self.heap.pop();
            }
            NO_EVENT
        }
    }

    /// Collects the bitmask of nodes whose event falls exactly on `abs`,
    /// marking each one dirty (its event is about to be consumed, so its
    /// time must be recomputed). Only valid for `len <= 64` — larger
    /// fabrics full-step every event cycle and never ask for a mask.
    pub fn take_active(&mut self, abs: u64) -> u64 {
        debug_assert!(self.len <= 64);
        let mut mask = 0u64;
        if self.len <= LINEAR_MAX {
            for i in 0..self.len {
                if self.next[i] == abs {
                    mask |= 1 << i;
                    self.mark_dirty(i);
                }
            }
        } else {
            while let Some(&Reverse((t, i))) = self.heap.peek() {
                if t > abs {
                    break;
                }
                self.heap.pop();
                let i = i as usize;
                if t == abs && self.next[i] == abs {
                    mask |= 1 << i;
                    self.mark_dirty(i);
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(s: &mut EventSchedule) -> Vec<usize> {
        let mut v = Vec::new();
        while let Some(i) = s.pop_dirty() {
            v.push(i);
        }
        v
    }

    #[test]
    fn new_schedule_is_all_dirty() {
        let mut s = EventSchedule::new(3);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(s.is_dirty(0) && s.is_dirty(1) && s.is_dirty(2));
        assert_eq!(drain(&mut s), vec![0, 1, 2]);
        assert_eq!(s.pop_dirty(), None);
        assert_eq!(s.earliest(), NO_EVENT);
    }

    #[test]
    fn record_and_earliest_linear() {
        let mut s = EventSchedule::new(4);
        drain(&mut s);
        s.record(0, 100);
        s.record(1, 40);
        s.record(2, NO_EVENT);
        s.record(3, 60);
        assert_eq!(s.earliest(), 40);
        assert_eq!(s.next_of(1), 40);
        s.record(1, 200);
        assert_eq!(s.earliest(), 60);
    }

    #[test]
    fn take_active_collects_ties_and_redirties() {
        let mut s = EventSchedule::new(4);
        drain(&mut s);
        s.record(0, 50);
        s.record(1, 50);
        s.record(2, 51);
        s.record(3, NO_EVENT);
        assert_eq!(s.take_active(50), 0b11);
        assert!(s.is_dirty(0) && s.is_dirty(1));
        assert!(!s.is_dirty(2));
        // A miss returns an empty mask and dirties nothing.
        assert_eq!(s.take_active(49), 0);
    }

    #[test]
    fn heap_mode_heals_stale_entries() {
        let n = 12; // > LINEAR_MAX: heap path
        let mut s = EventSchedule::new(n);
        drain(&mut s);
        for i in 0..n {
            s.record(i, 100 + i as u64);
        }
        assert_eq!(s.earliest(), 100);
        // Re-record node 0 later: its old entry is stale and must heal.
        s.record(0, 500);
        assert_eq!(s.earliest(), 101);
        // Retract node 1 entirely.
        s.record(1, NO_EVENT);
        assert_eq!(s.earliest(), 102);
        assert_eq!(s.take_active(102), 1 << 2);
        assert!(s.is_dirty(2));
        s.record(2, 600);
        assert_eq!(s.earliest(), 103);
    }

    #[test]
    fn heap_mode_take_active_ties() {
        let mut s = EventSchedule::new(16);
        drain(&mut s);
        for i in 0..16 {
            s.record(i, if i % 2 == 0 { 70 } else { 90 });
        }
        let mask = s.take_active(70);
        assert_eq!(mask, 0x5555);
        for i in 0..16 {
            assert_eq!(s.is_dirty(i), i % 2 == 0, "node {i}");
        }
        // The consumed entries are gone; the odd nodes remain.
        for i in (0..16).step_by(2) {
            s.record(i, 200);
        }
        assert_eq!(s.earliest(), 90);
    }

    #[test]
    fn heap_rebuild_bounds_garbage() {
        let mut s = EventSchedule::new(10);
        drain(&mut s);
        for i in 0..10 {
            s.record(i, 1000 + i as u64);
        }
        // Hammer one node with far-future re-records; the heap must stay
        // bounded rather than accumulating one stale entry per record.
        for k in 0..10_000u64 {
            s.record(0, 1_000_000 + k);
        }
        assert!(
            s.heap.len() <= 4 * 10 + 64 + 1,
            "heap {} entries",
            s.heap.len()
        );
        assert_eq!(s.earliest(), 1001);
    }

    #[test]
    fn mark_all_dirty_covers_word_boundaries() {
        for n in [1, 63, 64, 65, 130] {
            let mut s = EventSchedule::new(n);
            let drained = drain(&mut s);
            assert_eq!(drained.len(), n, "n={n}");
            assert_eq!(drained, (0..n).collect::<Vec<_>>());
            s.mark_dirty(n - 1);
            assert!(s.is_dirty(n - 1));
            assert_eq!(drain(&mut s), vec![n - 1]);
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut s = EventSchedule::new(12);
        drain(&mut s);
        for i in 0..12 {
            s.record(i, 10 + i as u64);
        }
        assert_eq!(s.earliest(), 10);
        s.reset();
        assert!((0..12).all(|i| s.is_dirty(i)));
        assert_eq!(drain(&mut s).len(), 12);
        assert_eq!(s.earliest(), NO_EVENT);
    }
}
