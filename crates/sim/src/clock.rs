//! Clock-domain bookkeeping.
//!
//! The simulated platform is stepped at **bus-clock** granularity (the AMBA
//! ASB runs at 50 MHz in the paper's Table 4). Each processor core runs in
//! its own clock domain at an integer multiple of the bus clock: the
//! PowerPC755 at 100 MHz (multiplier 2), the ARM920T at 50 MHz
//! (multiplier 1). [`ClockDomain`] converts between the two time bases.

use core::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in time (or a duration) measured in **bus-clock** cycles.
///
/// This is the master time base of the whole simulation; every latency in
/// the memory system (6-cycle single word, 13-cycle burst, …) is expressed
/// in bus cycles.
///
/// # Examples
///
/// ```
/// use hmp_sim::Cycle;
/// let t = Cycle::new(6) + Cycle::new(7);
/// assert_eq!(t.as_u64(), 13);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero — the simulation reset point.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle count from a raw number of bus cycles.
    pub const fn new(n: u64) -> Self {
        Cycle(n)
    }

    /// Returns the raw bus-cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Advances this time stamp by one bus cycle.
    pub fn tick(&mut self) {
        self.0 += 1;
    }

    /// Saturating difference `self - earlier`, useful for latency
    /// measurements that must not underflow at reset.
    #[must_use]
    pub fn saturating_since(self, earlier: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} bus-cycles", self.0)
    }
}

impl Add for Cycle {
    type Output = Cycle;
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign for Cycle {
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self` (cycle arithmetic underflow).
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl From<u64> for Cycle {
    fn from(n: u64) -> Self {
        Cycle(n)
    }
}

/// A point in time (or a duration) measured in **core-clock** cycles of one
/// particular processor.
///
/// Core cycles from different processors are not comparable; convert
/// through [`ClockDomain`] and [`Cycle`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreCycle(u64);

impl CoreCycle {
    /// Time zero in the core domain.
    pub const ZERO: CoreCycle = CoreCycle(0);

    /// Creates a core-cycle count.
    pub const fn new(n: u64) -> Self {
        CoreCycle(n)
    }

    /// Returns the raw core-cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Advances by one core cycle.
    pub fn tick(&mut self) {
        self.0 += 1;
    }
}

impl fmt::Display for CoreCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} core-cycles", self.0)
    }
}

impl Add for CoreCycle {
    type Output = CoreCycle;
    fn add(self, rhs: CoreCycle) -> CoreCycle {
        CoreCycle(self.0 + rhs.0)
    }
}

impl AddAssign for CoreCycle {
    fn add_assign(&mut self, rhs: CoreCycle) {
        self.0 += rhs.0;
    }
}

/// Relates a processor's core clock to the shared bus clock.
///
/// The multiplier must be a positive integer: the paper's platform uses
/// ratio 2 (PowerPC755, 100 MHz) and ratio 1 (ARM920T, 50 MHz) against the
/// 50 MHz ASB. The platform loop runs `core_cycles_per_bus_cycle()` core
/// ticks for every bus tick.
///
/// # Examples
///
/// ```
/// use hmp_sim::{ClockDomain, Cycle, CoreCycle};
/// let dom = ClockDomain::new(2);
/// assert_eq!(dom.to_core(Cycle::new(3)), CoreCycle::new(6));
/// assert_eq!(dom.to_bus_ceil(CoreCycle::new(5)), Cycle::new(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClockDomain {
    multiplier: u32,
}

impl ClockDomain {
    /// Creates a clock domain running at `multiplier ×` the bus clock.
    ///
    /// # Panics
    ///
    /// Panics if `multiplier` is zero.
    pub fn new(multiplier: u32) -> Self {
        assert!(multiplier > 0, "clock multiplier must be positive");
        ClockDomain { multiplier }
    }

    /// Number of core cycles executed per bus cycle.
    pub fn core_cycles_per_bus_cycle(self) -> u32 {
        self.multiplier
    }

    /// Converts a bus-cycle count into the equivalent core-cycle count.
    pub fn to_core(self, bus: Cycle) -> CoreCycle {
        CoreCycle(bus.as_u64() * u64::from(self.multiplier))
    }

    /// Converts a core-cycle count into bus cycles, rounding up (a partial
    /// bus cycle still occupies the whole cycle).
    pub fn to_bus_ceil(self, core: CoreCycle) -> Cycle {
        let m = u64::from(self.multiplier);
        Cycle(core.as_u64().div_ceil(m))
    }
}

impl Default for ClockDomain {
    /// A 1:1 clock domain (core runs at bus speed).
    fn default() -> Self {
        ClockDomain::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let a = Cycle::new(10);
        let b = Cycle::new(4);
        assert_eq!((a + b).as_u64(), 14);
        assert_eq!((a - b).as_u64(), 6);
        let mut c = Cycle::ZERO;
        c.tick();
        c += Cycle::new(2);
        assert_eq!(c.as_u64(), 3);
    }

    #[test]
    fn cycle_saturating_since() {
        assert_eq!(Cycle::new(3).saturating_since(Cycle::new(10)), Cycle::ZERO);
        assert_eq!(
            Cycle::new(10).saturating_since(Cycle::new(3)),
            Cycle::new(7)
        );
    }

    #[test]
    fn cycle_display_and_from() {
        assert_eq!(Cycle::from(5u64).to_string(), "5 bus-cycles");
        assert_eq!(CoreCycle::new(5).to_string(), "5 core-cycles");
    }

    #[test]
    fn core_cycle_arithmetic() {
        let mut c = CoreCycle::ZERO;
        c.tick();
        c += CoreCycle::new(4);
        assert_eq!((c + CoreCycle::new(1)).as_u64(), 6);
    }

    #[test]
    fn clock_domain_conversions() {
        let d = ClockDomain::new(2);
        assert_eq!(d.to_core(Cycle::new(5)), CoreCycle::new(10));
        assert_eq!(d.to_bus_ceil(CoreCycle::new(10)), Cycle::new(5));
        assert_eq!(d.to_bus_ceil(CoreCycle::new(11)), Cycle::new(6));
        assert_eq!(d.to_bus_ceil(CoreCycle::ZERO), Cycle::ZERO);
    }

    #[test]
    fn clock_domain_default_is_unity() {
        let d = ClockDomain::default();
        assert_eq!(d.core_cycles_per_bus_cycle(), 1);
        assert_eq!(d.to_core(Cycle::new(7)), CoreCycle::new(7));
    }

    #[test]
    #[should_panic(expected = "multiplier must be positive")]
    fn zero_multiplier_panics() {
        let _ = ClockDomain::new(0);
    }

    #[test]
    fn cycle_ordering() {
        assert!(Cycle::new(1) < Cycle::new(2));
        assert_eq!(Cycle::default(), Cycle::ZERO);
    }
}
