//! Streaming windowed time series with bounded memory.
//!
//! The end-of-run totals in [`crate::MetricsSnapshot`] answer *how much*;
//! this module answers *when*. A [`MetricsRegistry`] slices simulated
//! time into fixed-width cycle windows and accumulates one counter per
//! window per channel: bus busy cycles, per-master grants, per-segment
//! occupancy, bridge crossings, retries, quarantines, completions, and
//! the kernel's warp/cpu-only/full-step mix. Everything is preallocated
//! at construction and the hot path is integer adds into a flat array —
//! a run with telemetry armed stays allocation-free in steady state.
//!
//! # Decimation by merging
//!
//! The registry holds at most `capacity` windows per channel. When a run
//! outlives `capacity × window` cycles, adjacent window pairs are merged
//! in place (counts sum) and the effective window width doubles — so an
//! arbitrarily long run always fits in O(capacity) memory and every
//! sample still covers an exact, aligned cycle range. The number of
//! doublings applied is exposed as the snapshot's `scale`.
//!
//! Every decision the registry makes depends only on the cycle stamps it
//! is fed, never on wall time or kernel strategy: the fast-forward
//! kernel bulk-records warped data phases with [`MetricsRegistry::add_span`],
//! which distributes cycles across window boundaries exactly as the step
//! kernel's per-cycle adds would — so the two kernels produce
//! byte-identical [`TimeSeriesSnapshot`]s.

use crate::event::{Observer, SimEvent};
use crate::kernel::Kernel;
use crate::Cycle;
use std::fmt::Write as _;

/// Fixed channel: bus busy cycles (grant cycles + data cycles).
const CH_BUSY: usize = 0;
/// Fixed channel: retried (ARTRY'd) grants.
const CH_RETRIES: usize = 1;
/// Fixed channel: masters quarantined.
const CH_QUARANTINES: usize = 2;
/// Fixed channel: transactions whose data crossed the segment bridge.
const CH_BRIDGE: usize = 3;
/// Fixed channel: completed transactions.
const CH_COMPLETIONS: usize = 4;
/// Fixed channel (kernel mix): cycles skipped by warping.
const CH_WARPED: usize = 5;
/// Fixed channel (kernel mix): reduced CPU-only steps.
const CH_CPU_ONLY: usize = 6;
/// Fixed channel (kernel mix): full bus-cycle steps.
const CH_FULL: usize = 7;
/// Number of fixed channels before the per-master / per-segment blocks.
const FIXED_CHANNELS: usize = 8;

/// Configuration for the windowed telemetry registry.
///
/// `Copy` so it rides along [`RunSpec`-style](crate) builder types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeSeriesSpec {
    /// Base window width in bus cycles. Doubles on every decimation.
    pub window: u64,
    /// Maximum retained windows per channel (must be even and ≥ 2).
    pub capacity: usize,
}

impl Default for TimeSeriesSpec {
    fn default() -> Self {
        TimeSeriesSpec {
            window: 8192,
            capacity: 64,
        }
    }
}

impl TimeSeriesSpec {
    /// A spec with an explicit base window, keeping the default capacity.
    pub fn with_window(window: u64) -> Self {
        TimeSeriesSpec {
            window,
            ..Default::default()
        }
    }
}

/// Preallocated registry of windowed series, fed from the event stream
/// plus a few direct hooks (data-phase spans, bridge crossings, kernel
/// mix) the platform's cycle loop calls.
///
/// Channel layout is flat and channel-major: the fixed channels, then
/// one grants channel per master, then one occupancy channel per
/// segment.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    /// Base window width (cycles) before any decimation.
    window: u64,
    /// Retained windows per channel.
    capacity: usize,
    /// Decimation doublings applied so far.
    scale: u32,
    /// Closed windows currently held (`< capacity`).
    len: usize,
    /// Open-window accumulators, one per channel.
    cur: Box<[u64]>,
    /// Closed-window samples, channel-major: `data[c * capacity + i]`.
    data: Box<[u64]>,
    /// Master count (grants channels).
    masters: usize,
    /// Segment count (occupancy channels).
    segments: usize,
    /// Master → segment map (all zeros on a flat bus).
    segment_map: Box<[u8]>,
}

impl MetricsRegistry {
    /// Builds a registry for `masters` masters on `segments` bus
    /// segments. `segment_map` maps master index → segment (empty means
    /// a flat bus: every master on segment 0). All storage is allocated
    /// here; recording never allocates.
    ///
    /// # Panics
    ///
    /// Panics if the spec's window is zero or its capacity is odd or
    /// less than 2 (decimation halves the capacity, so it must be even).
    pub fn new(masters: usize, segments: usize, segment_map: &[u8], spec: TimeSeriesSpec) -> Self {
        assert!(spec.window > 0, "window width must be nonzero");
        assert!(
            spec.capacity >= 2 && spec.capacity.is_multiple_of(2),
            "capacity must be even and >= 2, got {}",
            spec.capacity
        );
        let channels = FIXED_CHANNELS + masters + segments.max(1);
        let mut map = vec![0u8; masters];
        for (i, s) in segment_map.iter().enumerate().take(masters) {
            map[i] = *s;
        }
        MetricsRegistry {
            window: spec.window,
            capacity: spec.capacity,
            scale: 0,
            len: 0,
            cur: vec![0; channels].into_boxed_slice(),
            data: vec![0; channels * spec.capacity].into_boxed_slice(),
            masters,
            segments: segments.max(1),
            segment_map: map.into_boxed_slice(),
        }
    }

    /// Zeroes every window and accumulator in place for reuse across
    /// runs: base window width restored (decimation undone), all samples
    /// cleared, every allocation kept.
    pub fn reset(&mut self) {
        self.scale = 0;
        self.len = 0;
        self.cur.fill(0);
        self.data.fill(0);
    }

    /// Whether this registry's shape matches the given configuration
    /// (same masters, segments, mapping and spec) — the precondition for
    /// reusing it across runs via [`MetricsRegistry::reset`].
    pub fn shape_matches(
        &self,
        masters: usize,
        segments: usize,
        segment_map: &[u8],
        spec: TimeSeriesSpec,
    ) -> bool {
        let mut map = [0u8; 64];
        let same_map = if masters <= 64 {
            let m = &mut map[..masters];
            for (i, s) in segment_map.iter().enumerate().take(masters) {
                m[i] = *s;
            }
            *self.segment_map == m[..masters]
        } else {
            let mut m = vec![0u8; masters];
            for (i, s) in segment_map.iter().enumerate().take(masters) {
                m[i] = *s;
            }
            *self.segment_map == m[..]
        };
        self.masters == masters
            && self.segments == segments.max(1)
            && same_map
            && self.window == spec.window
            && self.capacity == spec.capacity
    }

    /// Total channel count.
    fn channels(&self) -> usize {
        self.cur.len()
    }

    /// Effective window width after decimation.
    fn eff_window(&self) -> u64 {
        self.window << self.scale
    }

    /// The segment a master drives (0 on a flat bus).
    fn segment_of(&self, master: usize) -> usize {
        usize::from(self.segment_map[master])
    }

    /// Closes windows until the open one covers cycle `at`, merging
    /// adjacent pairs whenever the ring fills.
    fn roll(&mut self, at: u64) {
        let channels = self.channels();
        loop {
            let eff = self.eff_window();
            if at < (self.len as u64 + 1) * eff {
                return;
            }
            for c in 0..channels {
                self.data[c * self.capacity + self.len] = self.cur[c];
                self.cur[c] = 0;
            }
            self.len += 1;
            if self.len == self.capacity {
                for c in 0..channels {
                    let base = c * self.capacity;
                    for i in 0..self.capacity / 2 {
                        self.data[base + i] = self.data[base + 2 * i] + self.data[base + 2 * i + 1];
                    }
                }
                self.scale += 1;
                self.len = self.capacity / 2;
            }
        }
    }

    /// Adds `v` to channel `ch` in the window covering cycle `at`.
    fn add(&mut self, ch: usize, at: u64, v: u64) {
        self.roll(at);
        self.cur[ch] += v;
    }

    /// Adds one count per cycle to channel `ch` over the half-open span
    /// `[from, from + count)`, splitting exactly at window boundaries —
    /// byte-identical to `count` single-cycle [`MetricsRegistry::add`]s.
    fn add_span(&mut self, ch: usize, mut from: u64, mut count: u64) {
        while count > 0 {
            self.roll(from);
            let open_end = (self.len as u64 + 1) * self.eff_window();
            let take = count.min(open_end - from);
            self.cur[ch] += take;
            from += take;
            count -= take;
        }
    }

    /// [`MetricsRegistry::add_span`] over several channels at once. The
    /// windowing state is shared across channels, so two sequential
    /// spans over the same range would mis-bucket the second (rolling is
    /// monotonic); one pass credits every channel per boundary split.
    fn add_span_multi(&mut self, chs: &[usize], mut from: u64, mut count: u64) {
        while count > 0 {
            self.roll(from);
            let open_end = (self.len as u64 + 1) * self.eff_window();
            let take = count.min(open_end - from);
            for &ch in chs {
                self.cur[ch] += take;
            }
            from += take;
            count -= take;
        }
    }

    /// Records `count` bus-busy data cycles starting at cycle `from`,
    /// attributed to `master`'s segment. Called by the platform for both
    /// the per-cycle data-phase step and the fast-forward kernel's bulk
    /// warp through a data phase.
    pub fn record_busy_span(&mut self, from: u64, count: u64, master: Option<usize>) {
        let seg = master.map_or(0, |m| self.segment_of(m));
        self.add_span_multi(&[CH_BUSY, FIXED_CHANNELS + self.masters + seg], from, count);
    }

    /// Records one transaction whose data crossed the segment bridge.
    pub fn record_bridge_crossing(&mut self, at: Cycle) {
        self.add(CH_BRIDGE, at.as_u64(), 1);
    }

    /// Total busy cycles recorded so far — closed windows plus the open
    /// bucket. A cheap read-only liveness probe (the allocation-freedom
    /// tests need to confirm traffic was recorded without taking a
    /// snapshot, which allocates its result vectors).
    pub fn recorded_busy(&self) -> u64 {
        let closed: u64 = self.data[CH_BUSY * self.capacity..CH_BUSY * self.capacity + self.len]
            .iter()
            .sum();
        closed + self.cur[CH_BUSY]
    }

    /// Decimation doublings applied so far (see [`TimeSeriesSnapshot::scale`]).
    pub fn scale(&self) -> u32 {
        self.scale
    }

    /// Records `cycles` warped (event-free, skipped) cycles starting at
    /// `from` in the kernel-mix series. When `busy` is set the bus was
    /// mid-data-phase for the whole window, so the same span also
    /// streams busy/occupancy cycles attributed to `master`'s segment —
    /// one pass, because the shared windowing state rolls monotonically.
    pub fn record_warp(&mut self, from: u64, cycles: u64, busy: bool, master: Option<usize>) {
        if busy {
            let seg = master.map_or(0, |m| self.segment_of(m));
            let occ = FIXED_CHANNELS + self.masters + seg;
            self.add_span_multi(&[CH_WARPED, CH_BUSY, occ], from, cycles);
        } else {
            self.add_span(CH_WARPED, from, cycles);
        }
    }

    /// Records one executed full bus-cycle step at `at`.
    pub fn record_full_step(&mut self, at: Cycle) {
        self.add(CH_FULL, at.as_u64(), 1);
    }

    /// Records one reduced CPU-only step at `at`.
    pub fn record_cpu_only_step(&mut self, at: Cycle) {
        self.add(CH_CPU_ONLY, at.as_u64(), 1);
    }

    /// Freezes the registry into an immutable snapshot covering cycles
    /// `0..=end`, closing any windows the clock ran past without events.
    /// The still-open window is included as the final (partial) sample.
    /// This is the run's only allocating telemetry call.
    pub fn snapshot(&mut self, end: Cycle) -> TimeSeriesSnapshot {
        self.roll(end.as_u64());
        let samples = self.len + 1;
        let series = |ch: usize| -> Vec<u64> {
            let mut v = Vec::with_capacity(samples);
            v.extend_from_slice(&self.data[ch * self.capacity..ch * self.capacity + self.len]);
            v.push(self.cur[ch]);
            v
        };
        TimeSeriesSnapshot {
            window: self.window,
            scale: self.scale,
            end_cycle: end.as_u64(),
            masters: self.masters,
            segments: self.segments,
            busy: series(CH_BUSY),
            retries: series(CH_RETRIES),
            quarantines: series(CH_QUARANTINES),
            bridge_crossings: series(CH_BRIDGE),
            completions: series(CH_COMPLETIONS),
            grants: (0..self.masters)
                .map(|m| series(FIXED_CHANNELS + m))
                .collect(),
            occupancy: (0..self.segments)
                .map(|s| series(FIXED_CHANNELS + self.masters + s))
                .collect(),
        }
    }

    /// Freezes the kernel-mix channels (warped / cpu-only / full-step
    /// counts per window). Split out of [`MetricsRegistry::snapshot`]
    /// because the mix is *kernel-dependent* by construction and must not
    /// take part in kernel-equivalence comparison.
    pub fn snapshot_mix(&mut self, end: Cycle) -> KernelMix {
        self.roll(end.as_u64());
        let samples = self.len + 1;
        let series = |ch: usize| -> Vec<u64> {
            let mut v = Vec::with_capacity(samples);
            v.extend_from_slice(&self.data[ch * self.capacity..ch * self.capacity + self.len]);
            v.push(self.cur[ch]);
            v
        };
        KernelMix {
            warped: series(CH_WARPED),
            cpu_only: series(CH_CPU_ONLY),
            full: series(CH_FULL),
        }
    }
}

impl Observer for MetricsRegistry {
    #[inline]
    fn on_event(&mut self, at: Cycle, event: SimEvent) {
        let t = at.as_u64();
        match event {
            SimEvent::BusGrant { master, .. } => {
                // A grant occupies the bus for its cycle: it counts
                // toward utilization exactly as BusStats does
                // (grants + data_cycles).
                self.add(CH_BUSY, t, 1);
                self.add(FIXED_CHANNELS + master, t, 1);
                let seg = self.segment_of(master);
                self.add(FIXED_CHANNELS + self.masters + seg, t, 1);
            }
            SimEvent::BusRetry { .. } => self.add(CH_RETRIES, t, 1),
            SimEvent::BusComplete { .. } => self.add(CH_COMPLETIONS, t, 1),
            SimEvent::MasterQuarantined { .. } => self.add(CH_QUARANTINES, t, 1),
            _ => {}
        }
    }
}

/// An immutable end-of-run view of every *deterministic* windowed series.
///
/// Two kernels running the same spec must produce equal snapshots — this
/// type takes part in [`PartialEq`] on run results, unlike
/// [`KernelProfile`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesSnapshot {
    /// Base window width in cycles (before decimation).
    pub window: u64,
    /// Decimation doublings applied; effective width is `window << scale`.
    pub scale: u32,
    /// Last simulated cycle the snapshot covers.
    pub end_cycle: u64,
    /// Master count (length of `grants`).
    pub masters: usize,
    /// Segment count (length of `occupancy`).
    pub segments: usize,
    /// Bus busy cycles (grant + data) per window.
    pub busy: Vec<u64>,
    /// Retried grants per window.
    pub retries: Vec<u64>,
    /// Quarantine events per window.
    pub quarantines: Vec<u64>,
    /// Bridge-crossing transactions per window.
    pub bridge_crossings: Vec<u64>,
    /// Completed transactions per window.
    pub completions: Vec<u64>,
    /// Grants per window, one series per master.
    pub grants: Vec<Vec<u64>>,
    /// Busy cycles per window, one series per segment.
    pub occupancy: Vec<Vec<u64>>,
}

impl TimeSeriesSnapshot {
    /// Effective window width after decimation.
    pub fn effective_window(&self) -> u64 {
        self.window << self.scale
    }

    /// Number of samples in every series (the last one may be partial).
    pub fn samples(&self) -> usize {
        self.busy.len()
    }

    /// First cycle window `i` covers.
    pub fn window_start(&self, i: usize) -> u64 {
        i as u64 * self.effective_window()
    }

    /// Cycles window `i` actually covers (the final window is clipped to
    /// the run's end).
    pub fn window_width(&self, i: usize) -> u64 {
        let start = self.window_start(i);
        (start + self.effective_window())
            .min(self.end_cycle + 1)
            .saturating_sub(start)
            .max(1)
    }

    /// Bus utilization in window `i`: busy cycles over the window width.
    pub fn utilization(&self, i: usize) -> f64 {
        self.busy[i] as f64 / self.window_width(i) as f64
    }

    /// Per-master grant shares within window `i`; all zeros if the
    /// window saw no grants.
    pub fn grant_shares(&self, i: usize) -> Vec<f64> {
        let total: u64 = self.grants.iter().map(|g| g[i]).sum();
        if total == 0 {
            return vec![0.0; self.masters];
        }
        self.grants
            .iter()
            .map(|g| g[i] as f64 / total as f64)
            .collect()
    }

    /// Total grants inside window `i` across all masters.
    pub fn window_grants(&self, i: usize) -> u64 {
        self.grants.iter().map(|g| g[i]).sum()
    }

    /// Sum of a whole series (e.g. `snap.total(&snap.busy)`).
    pub fn total(&self, series: &[u64]) -> u64 {
        series.iter().sum()
    }
}

/// Per-window kernel execution mix: how many cycles were warped, and how
/// many event cycles ran through the reduced CPU-only step versus the
/// full bus step. Deliberately *excluded* from result comparison — the
/// step kernel's mix is all full steps by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelMix {
    /// Warped (skipped, provably event-free) cycles per window.
    pub warped: Vec<u64>,
    /// Reduced CPU-only steps per window.
    pub cpu_only: Vec<u64>,
    /// Full bus-cycle steps per window.
    pub full: Vec<u64>,
}

/// Kernel self-profile: where the run loop's wall time went, plus the
/// step/warp mix. Wall-clock numbers are inherently machine- and
/// kernel-dependent, so this type never takes part in run-result
/// equality.
#[derive(Debug, Clone, Default)]
pub struct KernelProfile {
    /// The kernel that produced this profile.
    pub kernel: Kernel,
    /// Total wall time of the run loop, in nanoseconds.
    pub wall_ns: u64,
    /// Wall time spent planning fast-forward horizons.
    pub plan_ns: u64,
    /// Wall time spent bulk-warping dead windows.
    pub warp_ns: u64,
    /// Wall time spent in full bus-cycle steps.
    pub step_ns: u64,
    /// Wall time spent in reduced CPU-only steps.
    pub cpu_only_ns: u64,
    /// Run-loop iterations executed.
    pub iterations: u64,
    /// Full bus-cycle steps executed.
    pub full_steps: u64,
    /// Reduced CPU-only steps executed.
    pub cpu_only_steps: u64,
    /// Cycles skipped by warping.
    pub warped_cycles: u64,
    /// Simulated cycles per wall-clock second (0 when wall time was not
    /// measured).
    pub cycles_per_sec: f64,
    /// Per-window kernel mix, when the timeseries registry was armed.
    pub mix: Option<KernelMix>,
}

/// Writes one exposition series: a `# TYPE` header and one sample line
/// per window, labelled with the window's starting cycle (plus any extra
/// labels already rendered into `extra`).
fn expo_series(out: &mut String, name: &str, extra: &str, snap: &TimeSeriesSnapshot, s: &[u64]) {
    for (i, v) in s.iter().enumerate() {
        let _ = writeln!(
            out,
            "{name}{{{extra}window=\"{}\"}} {v}",
            snap.window_start(i)
        );
    }
}

/// Renders the snapshot (and optional profile) in a hand-rolled,
/// dependency-free Prometheus-style text exposition format: `# TYPE`
/// metadata lines followed by `name{labels} value` samples. Windowed
/// series carry a `window` label holding the window's starting cycle.
pub fn exposition(snap: &TimeSeriesSnapshot, profile: Option<&KernelProfile>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# HELP hmp_window_cycles Effective window width");
    let _ = writeln!(out, "# TYPE hmp_window_cycles gauge");
    let _ = writeln!(out, "hmp_window_cycles {}", snap.effective_window());
    let _ = writeln!(out, "# HELP hmp_run_cycles Last simulated cycle");
    let _ = writeln!(out, "# TYPE hmp_run_cycles counter");
    let _ = writeln!(out, "hmp_run_cycles {}", snap.end_cycle);

    let counters: [(&str, &str, &[u64]); 5] = [
        (
            "hmp_bus_busy_cycles",
            "Bus busy (grant + data) cycles per window",
            &snap.busy,
        ),
        (
            "hmp_bus_retries",
            "Retried (ARTRY) grants per window",
            &snap.retries,
        ),
        (
            "hmp_quarantines",
            "Masters quarantined per window",
            &snap.quarantines,
        ),
        (
            "hmp_bridge_crossings",
            "Bridge-crossing transactions per window",
            &snap.bridge_crossings,
        ),
        (
            "hmp_completions",
            "Completed transactions per window",
            &snap.completions,
        ),
    ];
    for (name, help, series) in counters {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        expo_series(&mut out, name, "", snap, series);
    }

    let _ = writeln!(out, "# HELP hmp_grants Bus grants per master per window");
    let _ = writeln!(out, "# TYPE hmp_grants counter");
    for (m, series) in snap.grants.iter().enumerate() {
        let extra = format!("master=\"{m}\",");
        expo_series(&mut out, "hmp_grants", &extra, snap, series);
    }

    let _ = writeln!(
        out,
        "# HELP hmp_segment_busy_cycles Busy cycles per segment per window"
    );
    let _ = writeln!(out, "# TYPE hmp_segment_busy_cycles counter");
    for (s, series) in snap.occupancy.iter().enumerate() {
        let extra = format!("segment=\"{s}\",");
        expo_series(&mut out, "hmp_segment_busy_cycles", &extra, snap, series);
    }

    if let Some(p) = profile {
        let _ = writeln!(out, "# HELP hmp_kernel_wall_seconds Run-loop wall time");
        let _ = writeln!(out, "# TYPE hmp_kernel_wall_seconds gauge");
        let phases = [
            ("total", p.wall_ns),
            ("plan", p.plan_ns),
            ("warp", p.warp_ns),
            ("step", p.step_ns),
            ("cpu_only", p.cpu_only_ns),
        ];
        for (phase, ns) in phases {
            let _ = writeln!(
                out,
                "hmp_kernel_wall_seconds{{phase=\"{phase}\"}} {:.9}",
                ns as f64 / 1e9
            );
        }
        let _ = writeln!(
            out,
            "# HELP hmp_kernel_cycles_per_sec Simulated cycles per wall second"
        );
        let _ = writeln!(out, "# TYPE hmp_kernel_cycles_per_sec gauge");
        let _ = writeln!(out, "hmp_kernel_cycles_per_sec {:.3}", p.cycles_per_sec);
        let steps = [
            ("full", p.full_steps),
            ("cpu_only", p.cpu_only_steps),
            ("warped_cycles", p.warped_cycles),
            ("iterations", p.iterations),
        ];
        let _ = writeln!(out, "# HELP hmp_kernel_steps Kernel step mix");
        let _ = writeln!(out, "# TYPE hmp_kernel_steps counter");
        for (kind, v) in steps {
            let _ = writeln!(out, "hmp_kernel_steps{{kind=\"{kind}\"}} {v}");
        }
        if let Some(mix) = &p.mix {
            let series = [
                ("warped", &mix.warped),
                ("cpu_only", &mix.cpu_only),
                ("full", &mix.full),
            ];
            let _ = writeln!(out, "# HELP hmp_kernel_mix Kernel step mix per window");
            let _ = writeln!(out, "# TYPE hmp_kernel_mix counter");
            for (kind, s) in series {
                let extra = format!("kind=\"{kind}\",");
                expo_series(&mut out, "hmp_kernel_mix", &extra, snap, s);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(window: u64, capacity: usize) -> MetricsRegistry {
        MetricsRegistry::new(2, 2, &[0, 1], TimeSeriesSpec { window, capacity })
    }

    #[test]
    fn defaults_are_sane() {
        let spec = TimeSeriesSpec::default();
        assert_eq!(spec.window, 8192);
        assert_eq!(spec.capacity, 64);
        assert_eq!(TimeSeriesSpec::with_window(100).window, 100);
    }

    #[test]
    fn windows_split_at_boundaries() {
        let mut r = reg(10, 4);
        r.record_busy_span(8, 4, Some(1)); // cycles 8..11 straddle 10
        let snap = r.snapshot(Cycle::new(11));
        assert_eq!(snap.busy, vec![2, 2]);
        assert_eq!(snap.occupancy[1], vec![2, 2]);
        assert_eq!(snap.occupancy[0], vec![0, 0]);
        assert_eq!(snap.samples(), 2);
    }

    #[test]
    fn span_equals_repeated_adds() {
        let mut a = reg(7, 8);
        let mut b = reg(7, 8);
        a.record_busy_span(3, 40, Some(0));
        for at in 3..43 {
            b.record_busy_span(at, 1, Some(0));
        }
        assert_eq!(a.snapshot(Cycle::new(50)), b.snapshot(Cycle::new(50)));
    }

    #[test]
    fn decimation_halves_samples_and_doubles_width() {
        let mut r = reg(10, 4);
        // One busy cycle in each of 8 base windows → merges twice.
        for w in 0..8u64 {
            r.record_busy_span(w * 10 + 1, 1, Some(0));
        }
        let snap = r.snapshot(Cycle::new(79));
        assert_eq!(snap.scale, 1);
        assert_eq!(snap.effective_window(), 20);
        assert_eq!(snap.busy, vec![2, 2, 2, 2]);
        assert_eq!(snap.total(&snap.busy), 8);
        assert!(snap.samples() <= 4);
    }

    #[test]
    fn memory_stays_bounded_over_long_runs() {
        let mut r = reg(10, 4);
        r.record_busy_span(1, 1_000_000, Some(0));
        let snap = r.snapshot(Cycle::new(1_000_000));
        assert!(snap.samples() <= 4, "{}", snap.samples());
        assert!(snap.scale >= 15, "{}", snap.scale);
        assert_eq!(snap.total(&snap.busy), 1_000_000);
    }

    #[test]
    fn idle_gaps_materialize_empty_windows() {
        let mut r = reg(10, 8);
        r.record_busy_span(5, 1, Some(0));
        let snap = r.snapshot(Cycle::new(45));
        assert_eq!(snap.busy, vec![1, 0, 0, 0, 0]);
    }

    #[test]
    fn grant_events_feed_busy_grants_and_occupancy() {
        let mut r = reg(100, 4);
        r.on_event(
            Cycle::new(5),
            SimEvent::BusGrant {
                master: 1,
                op: crate::BusOpKind::ReadLine,
                addr: 0x100,
                is_retry: false,
                is_drain: false,
            },
        );
        r.on_event(
            Cycle::new(6),
            SimEvent::BusRetry {
                master: 1,
                addr: 0x100,
                cause: crate::RetryCause::SnoopDrain,
            },
        );
        let snap = r.snapshot(Cycle::new(10));
        assert_eq!(snap.busy, vec![1]);
        assert_eq!(snap.grants[1], vec![1]);
        assert_eq!(snap.grants[0], vec![0]);
        assert_eq!(snap.occupancy[1], vec![1]);
        assert_eq!(snap.retries, vec![1]);
        assert_eq!(snap.window_grants(0), 1);
        assert_eq!(snap.grant_shares(0), vec![0.0, 1.0]);
    }

    #[test]
    fn utilization_clips_the_final_window() {
        let mut r = reg(10, 4);
        r.record_busy_span(11, 5, Some(0));
        let snap = r.snapshot(Cycle::new(14));
        assert_eq!(snap.window_width(0), 10);
        assert_eq!(snap.window_width(1), 5);
        assert!((snap.utilization(1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mix_is_split_from_the_deterministic_snapshot() {
        let mut r = reg(10, 4);
        r.record_warp(1, 9, false, None);
        r.record_full_step(Cycle::new(10));
        r.record_cpu_only_step(Cycle::new(11));
        let mix = r.snapshot_mix(Cycle::new(11));
        assert_eq!(mix.warped, vec![9, 0]);
        assert_eq!(mix.full, vec![0, 1]);
        assert_eq!(mix.cpu_only, vec![0, 1]);
        let snap = r.snapshot(Cycle::new(11));
        assert_eq!(snap.total(&snap.busy), 0);
    }

    #[test]
    fn exposition_has_type_lines_and_window_labels() {
        let mut r = reg(10, 4);
        r.record_busy_span(1, 3, Some(0));
        let snap = r.snapshot(Cycle::new(15));
        let text = exposition(&snap, None);
        assert!(text.contains("# TYPE hmp_bus_busy_cycles counter"));
        assert!(text.contains("hmp_bus_busy_cycles{window=\"0\"} 3"));
        assert!(text.contains("hmp_grants{master=\"0\",window=\"10\"}"));
        assert!(text.contains("hmp_segment_busy_cycles{segment=\"1\",window=\"0\"} 0"));
        assert!(!text.contains("hmp_kernel_wall_seconds"));
        let profile = KernelProfile {
            kernel: Kernel::FastForward,
            wall_ns: 1_000_000,
            cycles_per_sec: 5e6,
            ..Default::default()
        };
        let with_prof = exposition(&snap, Some(&profile));
        assert!(with_prof.contains("hmp_kernel_wall_seconds{phase=\"total\"} 0.001000000"));
        assert!(with_prof.contains("hmp_kernel_cycles_per_sec 5000000.000"));
    }

    #[test]
    #[should_panic(expected = "capacity must be even")]
    fn odd_capacity_is_rejected() {
        reg(10, 5);
    }
}
