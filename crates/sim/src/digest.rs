//! Content digests for deterministic run artefacts.
//!
//! Every simulation in this workspace is fully deterministic: the same
//! spec, seed and code version always produce a byte-identical run
//! result. That determinism turns a hash of the *inputs* into a key for
//! the *outputs* — the `hmp-server` daemon's
//! content-addressed run cache stores result JSON under
//! `fnv1a(canonical spec JSON ‖ code fingerprint)` and serves repeat
//! jobs without re-simulating.
//!
//! The hash is FNV-1a (64-bit): dependency-free, stable across
//! platforms, and — like the `TagHasher` on the snoop hot path — a
//! couple of multiplies per byte. It is **not** cryptographic; the cache
//! keys trusted local jobs, not adversarial input.

/// Bumped whenever a change alters simulation *semantics* (cycle counts,
/// event ordering, counter definitions) without a schema change. The
/// server's code fingerprint folds this in, so a bump orphans every
/// previously cached run result instead of serving stale bytes.
pub const SIM_EPOCH: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
///
/// # Examples
///
/// ```
/// use hmp_sim::digest::Fnv64;
///
/// let mut h = Fnv64::new();
/// h.write(b"hello");
/// assert_eq!(h.finish(), Fnv64::hash(b"hello"));
/// ```
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A hasher at the FNV offset basis.
    pub const fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Absorbs `bytes` into the running hash.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut s = self.state;
        for &b in bytes {
            s ^= u64::from(b);
            s = s.wrapping_mul(FNV_PRIME);
        }
        self.state = s;
    }

    /// Absorbs one `u64` in little-endian byte order.
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// One-shot convenience: the FNV-1a hash of `bytes`.
    pub fn hash(bytes: &[u8]) -> u64 {
        let mut h = Fnv64::new();
        h.write(bytes);
        h.finish()
    }
}

/// Renders a digest as the fixed-width lowercase hex used for cache
/// file names and wire protocol job ids.
pub fn hex16(digest: u64) -> String {
    format!("{digest:016x}")
}

/// Parses a [`hex16`]-formatted digest back to its value.
pub fn parse_hex16(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(Fnv64::hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv64::hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv64::hash(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_writes_match_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), Fnv64::hash(b"foobar"));
    }

    #[test]
    fn write_u64_is_order_sensitive() {
        let mut a = Fnv64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_roundtrip() {
        let d = Fnv64::hash(b"spec");
        let hex = hex16(d);
        assert_eq!(hex.len(), 16);
        assert_eq!(parse_hex16(&hex), Some(d));
        assert_eq!(parse_hex16("short"), None);
        assert_eq!(parse_hex16("zzzzzzzzzzzzzzzz"), None);
    }
}
