//! Counter registry for simulator instrumentation.

use std::collections::BTreeMap;
use std::fmt;

/// A string-keyed bag of monotonically increasing counters.
///
/// Every component of the platform (bus, caches, wrappers, snoop logic,
/// CPUs) records its activity here: bus retries, snoop hits, interrupt
/// counts, drained lines, and so on. Keys are free-form but conventionally
/// dotted, e.g. `"bus.retry"` or `"cpu1.isr.drains"`. A `BTreeMap` keeps
/// report output sorted and deterministic.
///
/// # Examples
///
/// ```
/// use hmp_sim::Stats;
/// let mut s = Stats::new();
/// s.add("bus.retry", 1);
/// s.add("bus.retry", 2);
/// assert_eq!(s.get("bus.retry"), 3);
/// assert_eq!(s.get("never.touched"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    counters: BTreeMap<String, u64>,
}

impl Stats {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Adds `delta` to the counter named `key`, creating it at zero first
    /// if it does not exist.
    pub fn add(&mut self, key: &str, delta: u64) {
        *self.counters.entry(key.to_owned()).or_insert(0) += delta;
    }

    /// Increments the counter named `key` by one.
    pub fn incr(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Returns the current value of `key`, or zero if never touched.
    pub fn get(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Iterates over `(key, value)` pairs in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Sums every counter whose key starts with `prefix`.
    ///
    /// Useful for rolling per-CPU counters (`cpu0.miss`, `cpu1.miss`) into a
    /// platform total.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    }

    /// Merges another registry into this one, adding matching counters.
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Number of distinct counters recorded.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Returns `true` if no counter has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.counters.is_empty() {
            return writeln!(f, "(no counters)");
        }
        for (k, v) in &self.counters {
            writeln!(f, "{k:<40} {v}")?;
        }
        Ok(())
    }
}

impl<'a> Extend<(&'a str, u64)> for Stats {
    fn extend<T: IntoIterator<Item = (&'a str, u64)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.add(k, v);
        }
    }
}

impl FromIterator<(String, u64)> for Stats {
    fn from_iter<T: IntoIterator<Item = (String, u64)>>(iter: T) -> Self {
        let mut s = Stats::new();
        for (k, v) in iter {
            s.add(&k, v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut s = Stats::new();
        s.incr("a");
        s.add("a", 4);
        assert_eq!(s.get("a"), 5);
        assert_eq!(s.get("b"), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_behaviour() {
        let s = Stats::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.to_string(), "(no counters)\n");
    }

    #[test]
    fn sum_prefix_rolls_up() {
        let mut s = Stats::new();
        s.add("cpu0.miss", 3);
        s.add("cpu1.miss", 4);
        s.add("bus.retry", 9);
        assert_eq!(s.sum_prefix("cpu"), 7);
        assert_eq!(s.sum_prefix("cpu0"), 3);
        assert_eq!(s.sum_prefix("x"), 0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = Stats::new();
        a.add("k", 1);
        let mut b = Stats::new();
        b.add("k", 2);
        b.add("j", 5);
        a.merge(&b);
        assert_eq!(a.get("k"), 3);
        assert_eq!(a.get("j"), 5);
    }

    #[test]
    fn iter_is_sorted() {
        let mut s = Stats::new();
        s.incr("zeta");
        s.incr("alpha");
        let keys: Vec<&str> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["alpha", "zeta"]);
    }

    #[test]
    fn display_lists_counters() {
        let mut s = Stats::new();
        s.add("bus.retry", 2);
        let out = s.to_string();
        assert!(out.contains("bus.retry"));
        assert!(out.contains('2'));
    }

    #[test]
    fn extend_and_collect() {
        let mut s = Stats::new();
        s.extend([("a", 1u64), ("a", 2), ("b", 3)]);
        assert_eq!(s.get("a"), 3);
        let t: Stats = vec![("x".to_owned(), 7u64)].into_iter().collect();
        assert_eq!(t.get("x"), 7);
    }
}
