//! Deterministic fault injection: [`FaultKind`], [`FaultSpec`] and
//! [`FaultPlan`].
//!
//! The paper's §3 hardware-deadlock analysis shows the retry-vs-interrupt
//! cycle at the heart of PF1/PF2 is the fragile part of the design. This
//! module provides the schedule half of a chaos harness for it: a
//! [`FaultPlan`] is a cycle-ordered list of [`FaultSpec`]s, each naming a
//! fault class, a firing cycle, a target component and an optional
//! address. The platform layer owns the *mechanics* (what each class does
//! at the arbiter / snoop-logic / wrapper / cache boundary it models);
//! this crate only owns the *when* and *what*, so the schedule stays
//! domain-neutral and byte-reproducible.
//!
//! Two properties matter for the rest of the stack:
//!
//! * **Determinism** — plans are either hand-built from specs or sampled
//!   from a seeded [`SplitMix64`]; the same seed always yields the same
//!   plan, and firing is driven purely by the simulated clock.
//! * **Kernel neutrality** — [`FaultPlan::next_fire_at`] exposes the next
//!   firing cycle so the fast-forward kernel can treat fault arrivals as
//!   horizon events and never warp across one. Faults are therefore
//!   *kernel events*, not wall-cycle side effects, and Step /
//!   FastForward runs under the same plan stay byte-identical.
//!
//! All storage is preallocated at construction: consuming due faults in
//! the steady state performs no heap allocation.

use crate::rng::SplitMix64;
use std::fmt;

/// One class of injectable fault, named for the component boundary it
/// corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// The arbiter drops a grant window: no master is granted for
    /// `param` cycles (models a glitched BG line).
    GrantDrop,
    /// The arbiter delays all grants by `param` cycles (models slow
    /// arbitration under electrical noise). Mechanically identical to
    /// [`FaultKind::GrantDrop`] but classified as a delay, not a loss.
    GrantDelay,
    /// The next `param` address phases of master `target` are killed
    /// with ARTRY even though no snoop demanded it.
    SpuriousRetry,
    /// The snoop-logic nFIQ line to CPU `target` is masked for `param`
    /// cycles: the drain ISR fires late.
    NfiqDelay,
    /// The snoop-logic nFIQ line to CPU `target` is cut permanently:
    /// the drain ISR never fires.
    NfiqLost,
    /// The TAG CAM mirror of CPU `target` silently forgets the entry
    /// for `addr`: a stale line in the real cache is no longer snooped.
    CamDesync,
    /// The wrapper of master `target` sees a corrupted SHARED signal on
    /// its next line fill: `param != 0` forces SHARED asserted,
    /// `param == 0` forces it suppressed.
    SharedCorrupt,
    /// Master `target` wedges: every non-drain address phase it drives
    /// is killed with ARTRY forever (models a master stuck in the
    /// paper's permanent-retry failure mode).
    WedgedMaster,
    /// Single-bit line-state corruption in the cache of CPU `target` at
    /// `addr` (shared flips to modified, modified drops its dirty bit).
    LineStateCorrupt,
}

impl FaultKind {
    /// Number of fault classes (array-index bound for coverage matrices).
    pub const COUNT: usize = 9;

    /// All fault classes, in array-index order.
    pub const ALL: [FaultKind; FaultKind::COUNT] = [
        FaultKind::GrantDrop,
        FaultKind::GrantDelay,
        FaultKind::SpuriousRetry,
        FaultKind::NfiqDelay,
        FaultKind::NfiqLost,
        FaultKind::CamDesync,
        FaultKind::SharedCorrupt,
        FaultKind::WedgedMaster,
        FaultKind::LineStateCorrupt,
    ];

    /// Stable snake_case key for JSON artefacts and tables.
    pub fn key(self) -> &'static str {
        match self {
            FaultKind::GrantDrop => "grant_drop",
            FaultKind::GrantDelay => "grant_delay",
            FaultKind::SpuriousRetry => "spurious_retry",
            FaultKind::NfiqDelay => "nfiq_delay",
            FaultKind::NfiqLost => "nfiq_lost",
            FaultKind::CamDesync => "cam_desync",
            FaultKind::SharedCorrupt => "shared_corrupt",
            FaultKind::WedgedMaster => "wedged_master",
            FaultKind::LineStateCorrupt => "line_state_corrupt",
        }
    }

    /// Array index of this class.
    pub fn index(self) -> usize {
        self as usize
    }

    /// `true` for classes that can silently break the coherence
    /// protocol (stale data, lost invalidations). These *must* be caught
    /// by a detector — an undetected protocol-breaking fault is a
    /// finding. Timing-only classes merely delay progress and may be
    /// absorbed without detection.
    pub fn protocol_breaking(self) -> bool {
        matches!(
            self,
            FaultKind::CamDesync | FaultKind::SharedCorrupt | FaultKind::LineStateCorrupt
        )
    }

    /// `true` for classes that can wedge the machine forever (lost
    /// interrupts, permanent retry). These are expected to surface via
    /// the watchdog rather than a data-integrity checker.
    pub fn liveness_breaking(self) -> bool {
        matches!(self, FaultKind::NfiqLost | FaultKind::WedgedMaster)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// One scheduled fault: fire `kind` at bus cycle `at` against component
/// `target`, optionally scoped to `addr`, with a class-specific `param`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Bus cycle at which the fault arms (inclusive).
    pub at: u64,
    /// Fault class.
    pub kind: FaultKind,
    /// Target component index (master / CPU / CAM), where applicable.
    pub target: u32,
    /// Target address for address-scoped classes ([`FaultKind::CamDesync`],
    /// [`FaultKind::LineStateCorrupt`]); `None` lets the injector pick a
    /// live line at fire time.
    pub addr: Option<u64>,
    /// Class-specific magnitude: blackout/mask duration in cycles for the
    /// delay classes, kill count for [`FaultKind::SpuriousRetry`], forced
    /// SHARED value for [`FaultKind::SharedCorrupt`].
    pub param: u64,
}

impl FaultSpec {
    /// A spec firing `kind` at `at` against `target` with no address
    /// scope and the given `param`.
    pub fn new(at: u64, kind: FaultKind, target: u32, param: u64) -> Self {
        FaultSpec {
            at,
            kind,
            target,
            addr: None,
            param,
        }
    }

    /// Same spec scoped to `addr`.
    #[must_use]
    pub fn at_addr(mut self, addr: u64) -> Self {
        self.addr = Some(addr);
        self
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{} {} target={}", self.at, self.kind, self.target)?;
        if let Some(a) = self.addr {
            write!(f, " addr={a:#x}")?;
        }
        write!(f, " param={}", self.param)
    }
}

/// A cycle-ordered, cursor-consumed schedule of faults.
///
/// Built once (from explicit specs or a seeded sample), then consumed in
/// firing order by the platform's injector. Cloning a plan resets
/// nothing — the cursor is part of the value, so a cloned un-consumed
/// plan replays identically, which is what kernel-equivalence tests
/// rely on.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
    cursor: usize,
}

impl FaultPlan {
    /// A plan firing the given specs, sorted by cycle (stable, so specs
    /// sharing a cycle fire in insertion order).
    pub fn from_specs(mut specs: Vec<FaultSpec>) -> Self {
        specs.sort_by_key(|s| s.at);
        FaultPlan { specs, cursor: 0 }
    }

    /// Samples `count` faults of class `kind` uniformly over
    /// `[from, to)` cycles, targeting masters `0..masters` and line
    /// addresses drawn from `addr_base + k * 0x20` for
    /// `k in 0..addr_lines`. Fully determined by `seed`.
    #[allow(clippy::too_many_arguments)]
    pub fn sample(
        seed: u64,
        kind: FaultKind,
        count: u32,
        from: u64,
        to: u64,
        masters: u32,
        addr_base: u64,
        addr_lines: u64,
        param: u64,
    ) -> Self {
        let mut rng = SplitMix64::new(seed);
        let span = to.saturating_sub(from).max(1);
        let mut specs = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let at = from + rng.gen_range(span);
            let target = rng.gen_range(masters.max(1) as u64) as u32;
            let mut spec = FaultSpec::new(at, kind, target, param);
            if addr_lines > 0 {
                spec = spec.at_addr(addr_base + rng.gen_range(addr_lines) * 0x20);
            }
            specs.push(spec);
        }
        FaultPlan::from_specs(specs)
    }

    /// All scheduled specs, fired or not, in firing order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Rewrites every spec to target master `target` — used by chaos
    /// cells that aim a whole sampled batch at one specific endpoint
    /// (e.g. the master behind a fabric bridge) instead of the random
    /// targets [`FaultPlan::sample`] drew.
    pub fn retarget(&mut self, target: u32) {
        for spec in &mut self.specs {
            spec.target = target;
        }
    }

    /// Number of specs not yet consumed.
    pub fn remaining(&self) -> usize {
        self.specs.len() - self.cursor
    }

    /// `true` when every spec has been consumed.
    pub fn exhausted(&self) -> bool {
        self.cursor >= self.specs.len()
    }

    /// The firing cycle of the next unconsumed spec, if any. The
    /// fast-forward kernel folds this into its warp horizon so a fault
    /// never lands mid-warp.
    pub fn next_fire_at(&self) -> Option<u64> {
        self.specs.get(self.cursor).map(|s| s.at)
    }

    /// Consumes and returns the next spec if its firing cycle is due
    /// (`at <= now`). Call in a loop each cycle; specs scheduled in the
    /// past (e.g. before warm-up completed) fire immediately rather
    /// than being lost.
    pub fn pop_due(&mut self, now: u64) -> Option<FaultSpec> {
        let spec = *self.specs.get(self.cursor)?;
        if spec.at <= now {
            self.cursor += 1;
            Some(spec)
        } else {
            None
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fault plan: {} spec(s), {} remaining",
            self.specs.len(),
            self.remaining()
        )?;
        for s in &self.specs {
            writeln!(f, "  {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_index_ordered_with_distinct_keys() {
        let mut keys = Vec::new();
        for (i, k) in FaultKind::ALL.into_iter().enumerate() {
            assert_eq!(k.index(), i);
            keys.push(k.key());
        }
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), FaultKind::COUNT, "keys must be distinct");
    }

    #[test]
    fn classifiers_partition_sanely() {
        for k in FaultKind::ALL {
            assert!(
                !(k.protocol_breaking() && k.liveness_breaking()),
                "{k} cannot be both"
            );
        }
        assert!(FaultKind::CamDesync.protocol_breaking());
        assert!(FaultKind::SharedCorrupt.protocol_breaking());
        assert!(FaultKind::LineStateCorrupt.protocol_breaking());
        assert!(FaultKind::WedgedMaster.liveness_breaking());
        assert!(FaultKind::NfiqLost.liveness_breaking());
        assert!(!FaultKind::GrantDelay.protocol_breaking());
    }

    #[test]
    fn plan_sorts_and_consumes_in_cycle_order() {
        let mut plan = FaultPlan::from_specs(vec![
            FaultSpec::new(50, FaultKind::NfiqDelay, 1, 100),
            FaultSpec::new(10, FaultKind::GrantDrop, 0, 5),
            FaultSpec::new(30, FaultKind::SpuriousRetry, 0, 2),
        ]);
        assert_eq!(plan.next_fire_at(), Some(10));
        assert_eq!(plan.remaining(), 3);
        assert!(plan.pop_due(5).is_none(), "not due yet");
        let first = plan.pop_due(10).unwrap();
        assert_eq!(first.kind, FaultKind::GrantDrop);
        // Catch-up: both remaining specs are due at cycle 60.
        assert_eq!(plan.pop_due(60).unwrap().kind, FaultKind::SpuriousRetry);
        assert_eq!(plan.pop_due(60).unwrap().kind, FaultKind::NfiqDelay);
        assert!(plan.exhausted());
        assert_eq!(plan.next_fire_at(), None);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let a = FaultPlan::sample(42, FaultKind::CamDesync, 8, 100, 1_000, 2, 0x10_0000, 16, 0);
        let b = FaultPlan::sample(42, FaultKind::CamDesync, 8, 100, 1_000, 2, 0x10_0000, 16, 0);
        assert_eq!(a, b);
        let c = FaultPlan::sample(43, FaultKind::CamDesync, 8, 100, 1_000, 2, 0x10_0000, 16, 0);
        assert_ne!(a, c, "different seed, different plan");
        for s in a.specs() {
            assert!((100..1_000).contains(&s.at));
            assert!(s.target < 2);
            let addr = s.addr.unwrap();
            assert!((0x10_0000..0x10_0000 + 16 * 0x20).contains(&addr));
            assert_eq!(addr % 0x20, 0, "line-aligned");
        }
    }

    #[test]
    fn empty_plan_is_exhausted_and_default() {
        let plan = FaultPlan::default();
        assert!(plan.exhausted());
        assert_eq!(plan.next_fire_at(), None);
        assert_eq!(plan, FaultPlan::from_specs(Vec::new()));
    }

    #[test]
    fn specs_display_roundtrips_fields() {
        let s = FaultSpec::new(77, FaultKind::SharedCorrupt, 1, 1).at_addr(0x40);
        let text = s.to_string();
        assert!(text.contains("@77"), "{text}");
        assert!(text.contains("shared_corrupt"), "{text}");
        assert!(text.contains("addr=0x40"), "{text}");
    }
}
