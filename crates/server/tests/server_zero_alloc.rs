//! Extends the platform's counting-allocator bar to the daemon's worker
//! execution path: once a pooled [`Runner`] has warmed (first platform
//! build + first reset), the steady-state simulated stepping inside
//! [`hmp_server::run_cell`] performs zero heap allocations.
//!
//! Allocation belongs to the edges — platform construction, program
//! generation at `prepare`, result assembly and JSON rendering — all of
//! which happen once per cell, outside the cycle loop this test
//! measures. Same structure as `observer_zero_alloc.rs` phase 7 (the
//! sweep paths' reset-don't-drop batching), reached through the server's
//! own primitives.

use hmp_platform::Strategy;
use hmp_server::run_cell;
use hmp_workloads::{MicrobenchParams, RunSpec, Runner, Scenario};
use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates verbatim to the std system allocator; the counter is
// a relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn pooled_runner_execution_path_does_not_allocate_in_steady_state() {
    let spec = RunSpec::new(
        Scenario::Worst,
        Strategy::Proposed,
        MicrobenchParams {
            lines_per_iter: 4,
            exec_time: 1,
            outer_iters: 8,
            seed: 1,
            ..Default::default()
        },
    );

    // One pool worker's runner: first call builds the platform, second
    // call warms the reset-don't-drop reuse path — both outside the
    // measured window, exactly as in a long-lived daemon.
    let mut runner = Runner::new();
    let first = run_cell(&mut runner, &spec);
    let second = run_cell(&mut runner, &spec);
    assert!(first.is_clean_completion());
    assert_eq!(first, second, "the pooled path must be deterministic");
    assert!(runner.reuses() >= 1, "warm-up must exercise the reuse path");

    // The steady state a worker lives in: reset the warm platform
    // (`prepare`, which allocates for program generation — excluded) and
    // then advance the simulated cycle loop, which must not allocate.
    let sys = runner.prepare(&spec);
    for _ in 0..200 {
        sys.step();
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..2_000 {
        sys.step();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state stepping on the server's pooled runner must not allocate"
    );

    // The measured window advanced a live workload, and the runner still
    // produces byte-identical results afterwards.
    let third = run_cell(&mut runner, &spec);
    assert_eq!(first, third);
    assert!(
        runner.rebuilds() <= 1,
        "the pool must never rebuild per cell"
    );
}
