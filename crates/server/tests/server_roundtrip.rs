//! End-to-end daemon tests over real TCP: protocol round-trips, cache
//! tiers (memory within a daemon, disk across a restart), single-flight
//! coalescing of concurrent identical jobs, and byte-identical results
//! for every client.

use hmp_platform::Strategy;
use hmp_server::{Server, ServerConfig};
use hmp_sim::export::{parse_json, JsonValue};
use hmp_workloads::{codec, MicrobenchParams, RunSpec, Scenario};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::PathBuf;

fn start(cache_dir: Option<PathBuf>) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        cache_dir,
        cache_cap: 64,
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.serve());
    (addr, handle)
}

fn stop(addr: &str, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let reply = roundtrip(addr, &[r#"{"op":"shutdown"}"#.to_string()]);
    assert!(reply[0].contains(r#""event":"ok""#), "{reply:?}");
    handle.join().expect("server thread").expect("serve");
}

/// Sends each line, collecting every response line until the expected
/// terminal event for that request arrives.
fn roundtrip(addr: &str, requests: &[String]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);
    let mut replies = Vec::new();
    for request in requests {
        writer.write_all(request.as_bytes()).expect("send");
        writer.write_all(b"\n").expect("send");
        writer.flush().expect("send");
        loop {
            let mut line = String::new();
            assert!(
                reader.read_line(&mut line).expect("recv") > 0,
                "connection closed mid-request"
            );
            let done = {
                let doc = parse_json(&line).unwrap_or_else(|e| panic!("bad event {line:?}: {e}"));
                matches!(
                    doc.get("event").and_then(JsonValue::as_str),
                    Some("done") | Some("pong") | Some("metrics") | Some("ok") | Some("error")
                )
            };
            replies.push(line.trim_end().to_string());
            if done {
                break;
            }
        }
    }
    replies
}

fn spec(seed: u64) -> RunSpec {
    RunSpec::new(
        Scenario::Worst,
        Strategy::Proposed,
        MicrobenchParams {
            lines_per_iter: 2,
            exec_time: 1,
            outer_iters: 2,
            seed,
            ..Default::default()
        },
    )
}

fn run_request(spec: &RunSpec) -> String {
    format!(r#"{{"op":"run","spec":{}}}"#, codec::spec_to_json(spec))
}

fn field_u64(line: &str, key: &str) -> u64 {
    parse_json(line)
        .unwrap()
        .get(key)
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("no {key} in {line}")) as u64
}

fn field_str(line: &str, key: &str) -> String {
    parse_json(line)
        .unwrap()
        .get(key)
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("no {key} in {line}"))
        .to_string()
}

#[test]
fn ping_metrics_and_errors_roundtrip() {
    let (addr, handle) = start(None);
    let replies = roundtrip(
        &addr,
        &[
            r#"{"op":"ping"}"#.to_string(),
            "garbage![".to_string(),
            r#"{"op":"run","spec":{"scenario":"nope","strategy":"proposed"}}"#.to_string(),
            r#"{"op":"metrics"}"#.to_string(),
        ],
    );
    assert!(replies[0].contains(r#""event":"pong""#), "{replies:?}");
    assert!(replies[0].contains("fingerprint"), "{replies:?}");
    assert!(replies[1].contains(r#""event":"error""#), "{replies:?}");
    assert!(replies[2].contains(r#""event":"error""#), "{replies:?}");
    assert!(replies[2].contains("scenario"), "{replies:?}");
    assert!(
        replies[3].contains("hmp_server_errors_total 2"),
        "{replies:?}"
    );
    stop(&addr, handle);
}

#[test]
fn run_executes_then_hits_memory_with_identical_bytes() {
    let (addr, handle) = start(None);
    let request = run_request(&spec(1));

    let first = roundtrip(&addr, std::slice::from_ref(&request));
    let cell1 = first
        .iter()
        .find(|l| l.contains(r#""event":"cell""#))
        .unwrap();
    assert_eq!(field_str(cell1, "source"), "executed");
    let done1 = first.last().unwrap();
    assert_eq!(field_u64(done1, "executed"), 1);
    assert_eq!(field_u64(done1, "hits"), 0);

    // Same job from a new connection: pure memory hit, same bytes.
    let second = roundtrip(&addr, &[request]);
    let cell2 = second
        .iter()
        .find(|l| l.contains(r#""event":"cell""#))
        .unwrap();
    assert_eq!(field_str(cell2, "source"), "memory");
    assert_eq!(field_u64(second.last().unwrap(), "hits"), 1);
    let result = |l: &str| l[l.find(r#""result":"#).unwrap()..].to_string();
    assert_eq!(
        result(cell1),
        result(cell2),
        "cache must serve identical bytes"
    );

    // A semantically different job (new seed) misses.
    let third = roundtrip(&addr, &[run_request(&spec(2))]);
    assert_eq!(field_u64(third.last().unwrap(), "executed"), 1);
    stop(&addr, handle);
}

#[test]
fn sweep_streams_progress_and_dedupes_repeats() {
    let (addr, handle) = start(None);
    let request = format!(
        r#"{{"op":"sweep","specs":[{},{},{}]}}"#,
        codec::spec_to_json(&spec(5)),
        codec::spec_to_json(&spec(6)),
        codec::spec_to_json(&spec(5)), // repeat of the first cell
    );
    let replies = roundtrip(&addr, &[request]);
    assert!(replies[0].contains(r#""event":"accepted""#), "{replies:?}");
    assert!(replies[0].contains(r#""cells":3"#), "{replies:?}");
    let progress = replies
        .iter()
        .filter(|l| l.contains(r#""event":"progress""#))
        .count();
    assert_eq!(progress, 2, "one progress event per unique execution");
    let cells: Vec<&String> = replies
        .iter()
        .filter(|l| l.contains(r#""event":"cell""#))
        .collect();
    assert_eq!(cells.len(), 3);
    // Cells come back in input order with the repeat served from memory.
    assert_eq!(field_u64(cells[0], "index"), 0);
    assert_eq!(field_u64(cells[2], "index"), 2);
    assert_eq!(field_str(cells[0], "digest"), field_str(cells[2], "digest"));
    assert_eq!(field_str(cells[2], "source"), "memory");
    let done = replies.last().unwrap();
    assert_eq!(field_u64(done, "unique"), 2);
    assert_eq!(field_u64(done, "executed"), 2);
    assert_eq!(field_u64(done, "hits"), 1);
    stop(&addr, handle);
}

#[test]
fn concurrent_identical_jobs_execute_once_with_identical_bytes() {
    let (addr, handle) = start(None);
    // A heavier cell so all clients overlap while it runs.
    let heavy = RunSpec::new(
        Scenario::Worst,
        Strategy::SoftwareDrain,
        MicrobenchParams {
            lines_per_iter: 16,
            exec_time: 2,
            outer_iters: 8,
            seed: 77,
            ..Default::default()
        },
    );
    let request = run_request(&heavy);
    const CLIENTS: usize = 4;
    let replies: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| scope.spawn(|| roundtrip(&addr, std::slice::from_ref(&request))))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let executed: u64 = replies
        .iter()
        .map(|r| field_u64(r.last().unwrap(), "executed"))
        .sum();
    assert_eq!(
        executed, 1,
        "N identical concurrent jobs must trigger exactly one execution"
    );
    let results: Vec<String> = replies
        .iter()
        .map(|r| {
            let cell = r.iter().find(|l| l.contains(r#""event":"cell""#)).unwrap();
            cell[cell.find(r#""result":"#).unwrap()..].to_string()
        })
        .collect();
    assert!(
        results.windows(2).all(|w| w[0] == w[1]),
        "every client must receive byte-identical result JSON"
    );
    stop(&addr, handle);
}

#[test]
fn disk_tier_survives_a_daemon_restart() {
    let dir = std::env::temp_dir().join(format!("hmp_server_restart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let request = run_request(&spec(9));

    let (addr, handle) = start(Some(dir.clone()));
    let first = roundtrip(&addr, std::slice::from_ref(&request));
    assert_eq!(field_u64(first.last().unwrap(), "executed"), 1);
    let cell1 = first
        .iter()
        .find(|l| l.contains(r#""event":"cell""#))
        .unwrap();
    stop(&addr, handle);

    // A fresh daemon over the same directory serves the job from disk.
    let (addr, handle) = start(Some(dir.clone()));
    let second = roundtrip(&addr, &[request]);
    let cell2 = second
        .iter()
        .find(|l| l.contains(r#""event":"cell""#))
        .unwrap();
    assert_eq!(field_str(cell2, "source"), "disk");
    assert_eq!(field_u64(second.last().unwrap(), "executed"), 0);
    let result = |l: &str| l[l.find(r#""result":"#).unwrap()..].to_string();
    assert_eq!(
        result(cell1),
        result(cell2),
        "the disk tier must serve the exact bytes the first daemon computed"
    );
    stop(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}
