//! # hmp-server — simulation as a service
//!
//! Every run in this workspace is fully deterministic: the same
//! [`RunSpec`], seed and code version always produce a byte-identical
//! result (the kernel-equivalence suite and the `baselines/` gate pin
//! that). This crate turns that determinism into throughput: a
//! dependency-free daemon that accepts simulation jobs as line-delimited
//! JSON over TCP, canonicalizes each spec into a content digest, answers
//! repeats from an in-memory + on-disk cache, and shards misses across a
//! [`hmp_bench::sweep::par_map_with`] worker pool of reset-don't-drop
//! [`Runner`]s — so the per-worker execution path stays allocation-free
//! in steady state, exactly like the sweep binaries.
//!
//! Concurrent clients submitting the identical job coalesce onto one
//! execution (single-flight); everyone gets the same bytes. Server
//! health — hit ratio, queue depth, queue-wait and service-time
//! histograms — is exported in Prometheus-style exposition via the
//! `metrics` op.
//!
//! The protocol, digest definition and cache-invalidation story are
//! documented in `DESIGN.md` §8; `hmp-server-bench` is the load
//! generator that measures cold vs warm throughput and writes
//! `BENCH_SERVER.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod digest;
pub mod metrics;
pub mod proto;
pub mod server;

pub use cache::{CacheTier, RunCache};
pub use digest::{code_fingerprint, job_digest, spec_digest, spec_digest_hex};
pub use metrics::ServerMetrics;
pub use proto::{parse_request, result_json, Request, PROTO_VERSION};
pub use server::{Server, ServerConfig};

use hmp_platform::RunResult;
use hmp_workloads::{RunSpec, Runner};

/// The worker execution path: one cell on one pooled [`Runner`].
///
/// This is the function the daemon's `par_map_with` pool applies to every
/// cache miss, and the function the counting-allocator test pins: after
/// the pool's runner has warmed (first build + first reset), the
/// steady-state stepping inside this call performs zero heap
/// allocations. Everything allocating — platform construction, program
/// generation, result assembly, JSON rendering — happens outside the
/// simulated cycle loop.
pub fn run_cell(runner: &mut Runner, spec: &RunSpec) -> RunResult {
    runner.run(spec)
}
