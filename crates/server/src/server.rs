//! The daemon: TCP accept loop, per-connection protocol handling,
//! single-flight coalescing, and the sharded execution pool.
//!
//! Each connection gets a thread (jobs are few and heavy; the expensive
//! resource is the worker pool, not connection handlers). Job handling:
//!
//! 1. canonicalize + digest every spec ([`crate::digest`]);
//! 2. resolve each unique digest under one registry lock — cache hit,
//!    follower of an in-flight execution, or leader of a new one;
//! 3. shard leader cells across [`par_map_with`] workers, each carrying
//!    a reset-don't-drop [`Runner`], streaming a `progress` event per
//!    completed cell;
//! 4. answer every input cell in order with the cached bytes.
//!
//! The registry lock makes hit-or-lead atomic: between N concurrent
//! clients submitting an identical job, exactly one becomes leader per
//! cell and everyone receives the same `Arc<String>` bytes.

use crate::cache::{CacheTier, RunCache};
use crate::digest::{code_fingerprint, job_digest, spec_digest};
use crate::metrics::ServerMetrics;
use crate::proto::{parse_request, result_json, Request, PROTO_VERSION};
use crate::run_cell;
use hmp_bench::sweep::{default_workers, par_map_with};
use hmp_sim::digest::hex16;
use hmp_sim::export::json_escape;
use hmp_workloads::{RunSpec, Runner};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

/// Daemon configuration; see the `hmp-server` binary for the CLI.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7077` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads for cache-miss execution.
    pub workers: usize,
    /// On-disk cache directory; `None` disables the disk tier.
    pub cache_dir: Option<PathBuf>,
    /// In-memory cache entry cap (0 = unbounded).
    pub cache_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7077".to_string(),
            workers: default_workers(),
            cache_dir: None,
            cache_cap: 1024,
        }
    }
}

enum FlightState {
    Pending,
    Done(Arc<String>),
    /// The leader died before publishing; followers must not wait forever.
    Abandoned,
}

/// One in-flight execution that followers block on.
struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Arc<Flight> {
        Arc::new(Flight {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        })
    }

    fn publish(&self, state: FlightState) {
        *self.state.lock().expect("flight lock") = state;
        self.cv.notify_all();
    }

    fn wait(&self) -> Option<Arc<String>> {
        let mut state = self.state.lock().expect("flight lock");
        loop {
            match &*state {
                FlightState::Pending => state = self.cv.wait(state).expect("flight lock"),
                FlightState::Done(json) => return Some(json.clone()),
                FlightState::Abandoned => return None,
            }
        }
    }
}

/// Cache and single-flight table behind one lock, so "hit, follow, or
/// lead" is a single atomic decision per digest.
struct Registry {
    cache: RunCache,
    flights: HashMap<u64, Arc<Flight>>,
}

struct Shared {
    registry: Mutex<Registry>,
    metrics: ServerMetrics,
    workers: usize,
    stop: AtomicBool,
    addr: SocketAddr,
}

/// A bound daemon, ready to [`serve`](Server::serve).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and opens the cache. Fails with a plain
    /// [`io::Error`] on an unusable address or cache directory.
    pub fn bind(config: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let cache = RunCache::new(config.cache_dir.clone(), config.cache_cap)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                registry: Mutex::new(Registry {
                    cache,
                    flights: HashMap::new(),
                }),
                metrics: ServerMetrics::new(),
                workers: config.workers.max(1),
                stop: AtomicBool::new(false),
                addr,
            }),
        })
    }

    /// The actually bound address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Server health counters.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// Accepts connections until a client sends `shutdown`. Each
    /// connection is handled on its own thread; this call only returns
    /// after shutdown (or a fatal accept error).
    pub fn serve(&self) -> io::Result<()> {
        for conn in self.listener.incoming() {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = conn?;
            let shared = self.shared.clone();
            std::thread::spawn(move || {
                // A dropped connection mid-job is the client's problem,
                // not the daemon's: errors end this handler only.
                let _ = handle_connection(&shared, stream);
            });
        }
        Ok(())
    }
}

fn write_event(w: &mut impl Write, line: &str) -> io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // EOF: client done
        }
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Err(e) => {
                shared.metrics.error();
                write_event(
                    &mut writer,
                    &format!(r#"{{"event":"error","message":"{}"}}"#, json_escape(&e)),
                )?;
            }
            Ok(Request::Ping) => write_event(
                &mut writer,
                &format!(
                    r#"{{"event":"pong","proto":{PROTO_VERSION},"fingerprint":"{}"}}"#,
                    json_escape(&code_fingerprint())
                ),
            )?,
            Ok(Request::Metrics) => write_event(
                &mut writer,
                &format!(
                    r#"{{"event":"metrics","exposition":"{}"}}"#,
                    json_escape(&shared.metrics.exposition())
                ),
            )?,
            Ok(Request::Shutdown) => {
                shared.stop.store(true, Ordering::SeqCst);
                write_event(&mut writer, r#"{"event":"ok"}"#)?;
                // Wake the accept loop so it observes the stop flag.
                let _ = TcpStream::connect(shared.addr);
                return Ok(());
            }
            Ok(Request::Run(spec)) => run_job(shared, &mut writer, &[spec])?,
            Ok(Request::Sweep(specs)) => run_job(shared, &mut writer, &specs)?,
        }
    }
}

/// How one unique digest was resolved for this job.
enum Resolution {
    /// Served from cache.
    Ready(Arc<String>, CacheTier),
    /// Another client is executing it; wait on its flight.
    Follow(Arc<Flight>),
    /// This job executes it (index into `to_run`).
    Lead(usize),
}

fn source_name(r: &Resolution) -> &'static str {
    match r {
        Resolution::Ready(_, CacheTier::Memory) => "memory",
        Resolution::Ready(_, CacheTier::Disk) => "disk",
        Resolution::Follow(_) => "coalesced",
        Resolution::Lead(_) => "executed",
    }
}

fn run_job(shared: &Arc<Shared>, writer: &mut impl Write, specs: &[RunSpec]) -> io::Result<()> {
    shared.metrics.job(specs.len() as u64);
    let digests: Vec<u64> = specs.iter().map(spec_digest).collect();
    let job = hex16(job_digest(&digests));
    write_event(
        writer,
        &format!(
            r#"{{"event":"accepted","job":"{job}","cells":{},"proto":{PROTO_VERSION}}}"#,
            specs.len()
        ),
    )?;

    // Resolve each unique digest exactly once, atomically per digest:
    // cache hit, follower of an in-flight execution, or new leader.
    let mut resolution: HashMap<u64, Resolution> = HashMap::new();
    let mut to_run: Vec<(u64, Arc<Flight>, RunSpec)> = Vec::new();
    for (spec, &digest) in specs.iter().zip(&digests) {
        if resolution.contains_key(&digest) {
            continue;
        }
        let mut reg = shared.registry.lock().expect("registry lock");
        let r = if let Some((json, tier)) = reg.cache.get(digest) {
            match tier {
                CacheTier::Memory => shared.metrics.hit_memory(),
                CacheTier::Disk => shared.metrics.hit_disk(),
            }
            Resolution::Ready(json, tier)
        } else if let Some(flight) = reg.flights.get(&digest) {
            shared.metrics.coalesced();
            Resolution::Follow(flight.clone())
        } else {
            let flight = Flight::new();
            reg.flights.insert(digest, flight.clone());
            to_run.push((digest, flight, *spec));
            Resolution::Lead(to_run.len() - 1)
        };
        resolution.insert(digest, r);
    }

    // Shard the leader cells across the worker pool, streaming one
    // progress event per completed cell while the pool runs.
    let mut executed: Vec<(u64, Arc<String>)> = Vec::new();
    if !to_run.is_empty() {
        shared.metrics.enqueued(to_run.len() as u64);
        let admitted = Instant::now();
        let (tx, rx) = mpsc::channel::<()>();
        let pool = std::thread::scope(|scope| {
            let to_run = &to_run;
            let handle = scope.spawn(move || {
                // The sender lives (wrapped for `Sync`) inside this
                // thread, so every sender is gone once the pool returns —
                // even on a worker panic — and the drain loop below can
                // never block forever.
                let tx = Mutex::new(tx);
                par_map_with(
                    to_run,
                    shared.workers,
                    || (Runner::new(), tx.lock().expect("sender lock").clone()),
                    |(runner, tx), (digest, flight, spec)| {
                        let queue_wait = admitted.elapsed().as_micros() as u64;
                        let started = Instant::now();
                        let result = run_cell(runner, spec);
                        let service = started.elapsed().as_micros() as u64;
                        let json = Arc::new(result_json(&result));
                        {
                            let mut reg = shared.registry.lock().expect("registry lock");
                            reg.cache.insert(*digest, json.clone());
                            reg.flights.remove(digest);
                        }
                        flight.publish(FlightState::Done(json.clone()));
                        shared.metrics.executed(queue_wait, service);
                        let _ = tx.send(());
                        (*digest, json)
                    },
                )
            });
            let total = to_run.len();
            let mut done = 0usize;
            let mut io_result = Ok(());
            while done < total {
                match rx.recv() {
                    Ok(()) => {
                        done += 1;
                        if io_result.is_ok() {
                            // Keep draining on a write failure so the pool
                            // finishes and flights publish either way.
                            io_result = write_event(
                                writer,
                                &format!(r#"{{"event":"progress","done":{done},"total":{total}}}"#),
                            );
                        }
                    }
                    Err(_) => break, // pool died; join below reports it
                }
            }
            (handle.join(), io_result)
        });
        match pool {
            (Ok(results), io_result) => {
                io_result?;
                executed = results;
            }
            (Err(_), _) => {
                // A worker panicked mid-pool. Wake every follower before
                // reporting, or they would wait forever.
                let mut reg = shared.registry.lock().expect("registry lock");
                for (digest, flight, _) in &to_run {
                    reg.flights.remove(digest);
                    flight.publish(FlightState::Abandoned);
                }
                drop(reg);
                write_event(
                    writer,
                    r#"{"event":"error","message":"worker pool panicked"}"#,
                )?;
                return Err(io::Error::other("worker pool panicked"));
            }
        }
    }
    let executed: HashMap<u64, Arc<String>> = executed.into_iter().collect();

    // Answer every input cell in order. Repeated digests within one job
    // resolve once; the repeats are memory hits on the shared bytes.
    let mut counts: HashMap<&'static str, u64> = HashMap::new();
    let mut first_seen: HashMap<u64, ()> = HashMap::new();
    for (index, &digest) in digests.iter().enumerate() {
        let r = &resolution[&digest];
        let source = if first_seen.insert(digest, ()).is_none() {
            source_name(r)
        } else {
            shared.metrics.hit_memory();
            "memory"
        };
        *counts.entry(source).or_insert(0) += 1;
        let json: Arc<String> = match r {
            Resolution::Ready(json, _) => json.clone(),
            Resolution::Lead(i) => executed
                .get(&digest)
                .unwrap_or_else(|| panic!("leader cell {i} missing its result"))
                .clone(),
            Resolution::Follow(flight) => match flight.wait() {
                Some(json) => json,
                None => {
                    write_event(
                        writer,
                        r#"{"event":"error","message":"coalesced execution was abandoned"}"#,
                    )?;
                    return Ok(());
                }
            },
        };
        write_event(
            writer,
            &format!(
                r#"{{"event":"cell","index":{index},"digest":"{}","source":"{source}","result":{json}}}"#,
                hex16(digest)
            ),
        )?;
    }
    write_event(
        writer,
        &format!(
            concat!(
                r#"{{"event":"done","job":"{}","cells":{},"unique":{},"executed":{},"#,
                r#""hits":{},"coalesced":{}}}"#
            ),
            job,
            specs.len(),
            resolution.len(),
            counts.get("executed").copied().unwrap_or(0),
            counts.get("memory").copied().unwrap_or(0) + counts.get("disk").copied().unwrap_or(0),
            counts.get("coalesced").copied().unwrap_or(0),
        ),
    )
}
