//! `hmp-server` — the simulation job daemon.
//!
//! Accepts line-delimited JSON jobs over TCP, serves repeats from the
//! content-addressed run cache, and shards misses across the worker
//! pool. See `DESIGN.md` §8 for the protocol.

use hmp_server::{Server, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
hmp-server — simulation-as-a-service job daemon

USAGE:
    hmp-server [OPTIONS]

OPTIONS:
    --addr HOST:PORT    Bind address (default 127.0.0.1:7077; port 0 picks a free port)
    --workers N         Worker threads for cache-miss execution
                        (default: HMP_BENCH_WORKERS or the machine's parallelism)
    --cache-dir DIR     On-disk cache directory (default: memory-only)
    --cache-cap N       In-memory cache entry cap, 0 = unbounded (default 1024)
    -h, --help          Print this help

PROTOCOL (one JSON object per line):
    {\"op\":\"ping\"}
    {\"op\":\"run\",\"spec\":{\"scenario\":\"worst\",\"strategy\":\"proposed\"}}
    {\"op\":\"sweep\",\"specs\":[ ... ]}
    {\"op\":\"metrics\"}
    {\"op\":\"shutdown\"}
";

fn parse_args() -> Result<ServerConfig, String> {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => {
                config.workers = value("--workers")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--workers needs a positive integer")?;
            }
            "--cache-dir" => config.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--cache-cap" => {
                config.cache_cap = value("--cache-cap")?
                    .parse::<usize>()
                    .map_err(|_| "--cache-cap needs a non-negative integer")?;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("hmp-server: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let server = match Server::bind(&config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hmp-server: cannot start on {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "hmp-server listening on {} ({} workers, cache {}, cap {})",
        server.local_addr(),
        config.workers,
        config
            .cache_dir
            .as_ref()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "memory-only".to_string()),
        config.cache_cap,
    );
    if let Err(e) = server.serve() {
        eprintln!("hmp-server: accept loop failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("hmp-server: shut down");
    ExitCode::SUCCESS
}
