//! `hmp-server-bench` — load generator for the job daemon.
//!
//! Replays a figure grid against a running daemon (or a self-hosted
//! in-process one) from K concurrent connections, twice: a **cold** pass
//! that executes every cell and a **warm** pass served entirely from the
//! content-addressed cache. A third phase has all K clients submit one
//! identical fresh cell concurrently, pinning single-flight coalescing:
//! exactly one execution, byte-identical bytes for everyone.
//!
//! Writes `BENCH_SERVER.json` (schema-versioned; wall-clock fields use
//! the `_ns`/`_cps` suffixes and the `speedup` key that `bench_compare`
//! ignores, so the committed baseline gates only deterministic fields).
//! Exits nonzero when warm throughput is below 20× cold, the second
//! pass hit ratio is below 0.5, results differ between clients, or the
//! coalesce phase executed more than once.

use hmp_platform::Strategy;
use hmp_sim::export::{parse_json, validate_json, JsonValue, SCHEMA_VERSION};
use hmp_workloads::{codec, MicrobenchParams, RunSpec, Scenario};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "\
hmp-server-bench — cold/warm load generator for hmp-server

USAGE:
    hmp-server-bench [OPTIONS]

OPTIONS:
    --addr HOST:PORT    Daemon to drive (default: self-host one in-process)
    --clients K         Concurrent connections per pass (default 2)
    --grid full|reduced Grid size: 54 cells or 6 cells (default reduced)
    --scenario NAME     worst | typical | best (default worst)
    --out FILE          Where to write BENCH_SERVER.json
                        (default: $HMP_BENCH_JSON dir or current directory)
    -h, --help          Print this help
";

struct Args {
    addr: Option<String>,
    clients: usize,
    full_grid: bool,
    scenario: Scenario,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        addr: None,
        clients: 2,
        full_grid: false,
        scenario: Scenario::Worst,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => parsed.addr = Some(value("--addr")?),
            "--clients" => {
                parsed.clients = value("--clients")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--clients needs a positive integer")?;
            }
            "--grid" => {
                parsed.full_grid = match value("--grid")?.as_str() {
                    "full" => true,
                    "reduced" => false,
                    other => return Err(format!("unknown grid {other:?}")),
                };
            }
            "--scenario" => {
                parsed.scenario = match value("--scenario")?.as_str() {
                    "worst" => Scenario::Worst,
                    "typical" => Scenario::Typical,
                    "best" => Scenario::Best,
                    other => return Err(format!("unknown scenario {other:?}")),
                };
            }
            "--out" => parsed.out = Some(value("--out")?),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(parsed)
}

fn grid_specs(scenario: Scenario, full: bool) -> Vec<RunSpec> {
    let (lines, execs): (&[u32], &[u32]) = if full {
        (&MicrobenchParams::LINE_SWEEP, &MicrobenchParams::EXEC_SWEEP)
    } else {
        (&[4, 16], &[1])
    };
    // Enough outer iterations that a cell costs milliseconds to execute:
    // the cold/warm ratio should measure simulation avoided by the
    // cache, not connection and JSON overhead shared by both passes.
    let outer_iters = if full { 8 } else { 64 };
    let mut specs = Vec::new();
    for &exec_time in execs {
        for &lines_per_iter in lines {
            for strategy in Strategy::ALL {
                specs.push(RunSpec::new(
                    scenario,
                    strategy,
                    MicrobenchParams {
                        lines_per_iter,
                        exec_time,
                        outer_iters,
                        seed: 1,
                        ..Default::default()
                    },
                ));
            }
        }
    }
    specs
}

/// What one client saw for one job.
struct JobReport {
    /// Raw result JSON per cell, in input order.
    results: Vec<String>,
    executed: u64,
    hits: u64,
    coalesced: u64,
}

fn connect(addr: &str) -> TcpStream {
    // The daemon may still be starting (CI launches it in the
    // background); retry briefly before giving up.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(e) => {
                if Instant::now() >= deadline {
                    panic!("cannot connect to {addr}: {e}");
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

fn submit_sweep(addr: &str, specs: &[RunSpec]) -> JobReport {
    let stream = connect(addr);
    let mut writer = BufWriter::new(stream.try_clone().expect("clone stream"));
    let mut reader = BufReader::new(stream);

    let mut request = String::from(r#"{"op":"sweep","specs":["#);
    for (i, spec) in specs.iter().enumerate() {
        if i > 0 {
            request.push(',');
        }
        request.push_str(&codec::spec_to_json(spec));
    }
    request.push_str("]}\n");
    writer.write_all(request.as_bytes()).expect("send job");
    writer.flush().expect("send job");

    let mut report = JobReport {
        results: Vec::new(),
        executed: 0,
        hits: 0,
        coalesced: 0,
    };
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).expect("read event") == 0 {
            panic!("server closed the connection before `done`");
        }
        let doc = parse_json(&line).unwrap_or_else(|e| panic!("bad event {line:?}: {e}"));
        match doc.get("event").and_then(JsonValue::as_str) {
            Some("accepted") | Some("progress") => {}
            Some("cell") => {
                // The raw result bytes are the trailing field; split them
                // off unparsed so byte-identity checks compare exactly
                // what the server sent.
                let at = line.find(r#""result":"#).expect("cell event has a result") + 9;
                let result = line[at..].trim_end().trim_end_matches('}');
                report.results.push(format!("{result}}}"));
            }
            Some("done") => {
                let count = |key: &str| {
                    doc.get(key)
                        .and_then(JsonValue::as_f64)
                        .unwrap_or_else(|| panic!("done event missing {key}: {line}"))
                        as u64
                };
                report.executed = count("executed");
                report.hits = count("hits");
                report.coalesced = count("coalesced");
                return report;
            }
            Some("error") => panic!("server error: {line}"),
            other => panic!("unexpected event {other:?}: {line}"),
        }
    }
}

/// Runs one pass: K concurrent clients all submitting `specs`. Returns
/// the per-client reports and the pass wall time.
fn run_pass(addr: &str, clients: usize, specs: &[RunSpec]) -> (Vec<JobReport>, Duration) {
    let started = Instant::now();
    let reports = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| scope.spawn(|| submit_sweep(addr, specs)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect::<Vec<_>>()
    });
    (reports, started.elapsed())
}

fn assert_byte_identical(label: &str, reports: &[JobReport]) {
    let first = &reports[0].results;
    for (i, r) in reports.iter().enumerate().skip(1) {
        assert_eq!(
            &r.results, first,
            "{label}: client {i} received different bytes than client 0"
        );
    }
}

fn shutdown(addr: &str) {
    let stream = connect(addr);
    let mut writer = BufWriter::new(stream.try_clone().expect("clone stream"));
    let mut reader = BufReader::new(stream);
    writer
        .write_all(b"{\"op\":\"shutdown\"}\n")
        .and_then(|_| writer.flush())
        .expect("send shutdown");
    let mut line = String::new();
    let _ = reader.read_line(&mut line);
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("hmp-server-bench: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    // Without --addr, self-host a daemon in-process (memory-only cache):
    // the local path for regenerating the committed baseline.
    let mut self_hosted = None;
    let addr = match &args.addr {
        Some(a) => a.clone(),
        None => {
            let config = hmp_server::ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                ..Default::default()
            };
            let server = match hmp_server::Server::bind(&config) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("hmp-server-bench: cannot self-host: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let addr = server.local_addr().to_string();
            self_hosted = Some(std::thread::spawn(move || server.serve()));
            addr
        }
    };

    let specs = grid_specs(args.scenario, args.full_grid);
    let cells = specs.len() as u64;
    let clients = args.clients as u64;
    println!(
        "server bench — {} cells × {} clients against {addr}",
        cells, clients
    );

    let (cold, cold_wall) = run_pass(&addr, args.clients, &specs);
    assert_byte_identical("cold pass", &cold);
    let cold_executed: u64 = cold.iter().map(|r| r.executed).sum();
    let cold_served = clients * cells;
    // Single-flight + cache: every unique cell executes exactly once no
    // matter how many clients race, the rest are hits or coalesced.
    assert_eq!(
        cold_executed, cells,
        "cold pass must execute each unique cell exactly once"
    );
    let cold_shared = cold_served - cold_executed;

    let (warm, warm_wall) = run_pass(&addr, args.clients, &specs);
    assert_byte_identical("warm pass", &warm);
    assert_byte_identical(
        "cold vs warm",
        &[
            JobReport {
                results: cold[0].results.clone(),
                executed: 0,
                hits: 0,
                coalesced: 0,
            },
            JobReport {
                results: warm[0].results.clone(),
                executed: 0,
                hits: 0,
                coalesced: 0,
            },
        ],
    );
    let warm_executed: u64 = warm.iter().map(|r| r.executed).sum();
    let warm_hits: u64 = warm.iter().map(|r| r.hits + r.coalesced).sum();
    assert_eq!(warm_executed, 0, "warm pass must be fully cached");
    let warm_hit_ratio = warm_hits as f64 / (clients * cells) as f64;

    // Coalesce phase: every client submits the same single fresh cell
    // (a seed outside the grid) at once — one execution total.
    let mut fresh = specs[specs.len() - 1];
    fresh.params.seed = 424_242;
    let coalesce_specs = [fresh];
    let (coal, _) = run_pass(&addr, args.clients, &coalesce_specs);
    assert_byte_identical("coalesce phase", &coal);
    let coal_executed: u64 = coal.iter().map(|r| r.executed).sum();
    assert_eq!(
        coal_executed, 1,
        "identical concurrent jobs must coalesce onto one execution"
    );

    let cold_cps = cold_served as f64 / cold_wall.as_secs_f64();
    let warm_cps = (clients * cells) as f64 / warm_wall.as_secs_f64();
    let speedup = warm_cps / cold_cps;
    println!(
        "cold: {} served / {} executed in {:?} ({cold_cps:.0} cells/s)",
        cold_served, cold_executed, cold_wall
    );
    println!(
        "warm: {} served / {} executed in {:?} ({warm_cps:.0} cells/s, {speedup:.1}x)",
        clients * cells,
        warm_executed,
        warm_wall
    );
    println!(
        "coalesce: {} clients, {} execution(s)",
        clients, coal_executed
    );

    let mut json = String::with_capacity(1024);
    let _ = write!(
        json,
        concat!(
            r#"{{"schema_version":{},"figure":"server","scenario":"{:?}","clients":{},"#,
            r#""grid":{{"cells":{},"unique":{}}},"#,
            r#""cold":{{"served":{},"executed":{},"shared":{},"wall_ns":{},"cells_cps":{:.3}}},"#,
            r#""warm":{{"served":{},"executed":{},"hits":{},"hit_ratio":{:.6},"wall_ns":{},"cells_cps":{:.3}}},"#,
            r#""coalesce":{{"clients":{},"executed":{},"byte_identical":true}},"#,
            r#""speedup":{:.3},"byte_identical":true}}"#
        ),
        SCHEMA_VERSION,
        args.scenario,
        clients,
        cells,
        cells,
        cold_served,
        cold_executed,
        cold_shared,
        cold_wall.as_nanos(),
        cold_cps,
        clients * cells,
        warm_executed,
        warm_hits,
        warm_hit_ratio,
        warm_wall.as_nanos(),
        warm_cps,
        clients,
        coal_executed,
        speedup,
    );
    validate_json(&json).unwrap_or_else(|e| panic!("malformed BENCH_SERVER.json: {e}"));
    let path = match &args.out {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            let dir = hmp_bench::json::bench_json_dir().unwrap_or_else(|| ".".into());
            std::fs::create_dir_all(&dir)
                .unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
            dir.join("BENCH_SERVER.json")
        }
    };
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("wrote {}", path.display());

    if self_hosted.is_some() {
        shutdown(&addr);
    }
    if let Some(handle) = self_hosted {
        handle.join().expect("server thread").expect("server exit");
    }

    // The gates: these are the acceptance criteria, enforced at exit.
    assert!(
        warm_hit_ratio >= 0.5,
        "second-pass hit ratio {warm_hit_ratio:.2} below 0.5"
    );
    assert!(
        speedup >= 20.0,
        "warm throughput only {speedup:.1}x cold (need >= 20x)"
    );
    ExitCode::SUCCESS
}
