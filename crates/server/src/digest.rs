//! Job digests: the content address of a run.
//!
//! A digest is `fnv1a(canonical spec JSON ‖ 0x00 ‖ code fingerprint)`.
//! The canonical JSON comes from [`hmp_workloads::spec_to_json`], so two
//! clients spelling the same job differently (key order, omitted
//! defaults) land on the same digest; the fingerprint folds in the crate
//! version, the export schema version and [`hmp_sim::SIM_EPOCH`], so any
//! release that could change simulated results — or how they serialize —
//! orphans every previously cached entry instead of serving stale bytes.

use hmp_sim::digest::{hex16, Fnv64};
use hmp_sim::export::SCHEMA_VERSION;
use hmp_sim::SIM_EPOCH;
use hmp_workloads::{spec_to_json, RunSpec};

/// The code-version fingerprint folded into every job digest.
///
/// Stable within a build, different across releases, schema revisions and
/// simulation-semantics epochs.
pub fn code_fingerprint() -> String {
    format!(
        "{}+schema{}+epoch{}",
        env!("CARGO_PKG_VERSION"),
        SCHEMA_VERSION,
        SIM_EPOCH
    )
}

/// Digest of an already-canonicalized spec JSON string.
pub fn digest_canonical(canonical_json: &str) -> u64 {
    let mut h = Fnv64::new();
    h.write(canonical_json.as_bytes());
    h.write(&[0]);
    h.write(code_fingerprint().as_bytes());
    h.finish()
}

/// Canonicalizes `spec` and digests it. The cache key of one cell.
pub fn spec_digest(spec: &RunSpec) -> u64 {
    digest_canonical(&spec_to_json(spec))
}

/// [`spec_digest`] rendered as the fixed-width hex used in the wire
/// protocol and for on-disk cache file names.
pub fn spec_digest_hex(spec: &RunSpec) -> String {
    hex16(spec_digest(spec))
}

/// Digest of a whole job (one or many cells): order-sensitive fold of the
/// per-cell digests. Used only as the job id in protocol events.
pub fn job_digest(cells: &[u64]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(cells.len() as u64);
    for &c in cells {
        h.write_u64(c);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmp_platform::{Kernel, Strategy};
    use hmp_workloads::{spec_from_json, MicrobenchParams, RunSpec, Scenario};

    fn base() -> RunSpec {
        RunSpec::new(
            Scenario::Worst,
            Strategy::Proposed,
            MicrobenchParams::default(),
        )
    }

    #[test]
    fn digest_is_stable_across_serialize_parse_roundtrips() {
        let spec = base();
        let d = spec_digest(&spec);
        let rt = spec_from_json(&spec_to_json(&spec)).unwrap();
        assert_eq!(spec_digest(&rt), d, "round-trip must not move the digest");
        // Spelling the same job minimally (defaults omitted, shuffled
        // keys) also lands on the same digest after canonicalization.
        let minimal = spec_from_json(r#"{"strategy":"proposed","scenario":"worst"}"#).unwrap();
        assert_eq!(spec_digest(&minimal), d);
    }

    #[test]
    fn semantic_changes_move_the_digest() {
        let d = spec_digest(&base());
        let mut seeded = base();
        seeded.params.seed = 2;
        assert_ne!(spec_digest(&seeded), d);
        assert_ne!(spec_digest(&base().with_kernel(Kernel::Step)), d);
        assert_ne!(spec_digest(&base().with_burst_penalty(14)), d);
    }

    #[test]
    fn code_version_bump_moves_the_digest() {
        let canon = spec_to_json(&base());
        let now = digest_canonical(&canon);
        // Simulate a SIM_EPOCH bump by hashing with a different
        // fingerprint: same construction, different trailer.
        let mut h = Fnv64::new();
        h.write(canon.as_bytes());
        h.write(&[0]);
        h.write(
            format!(
                "{}+schema{}+epoch{}",
                env!("CARGO_PKG_VERSION"),
                hmp_sim::export::SCHEMA_VERSION,
                SIM_EPOCH + 1
            )
            .as_bytes(),
        );
        assert_ne!(h.finish(), now, "an epoch bump must orphan cached entries");
    }

    #[test]
    fn job_digest_is_order_and_length_sensitive() {
        let a = spec_digest(&base());
        let mut other = base();
        other.params.seed = 7;
        let b = spec_digest(&other);
        assert_ne!(job_digest(&[a, b]), job_digest(&[b, a]));
        assert_ne!(job_digest(&[a]), job_digest(&[a, a]));
    }

    #[test]
    fn hex_form_matches_value() {
        let spec = base();
        assert_eq!(spec_digest_hex(&spec), hex16(spec_digest(&spec)));
    }
}
