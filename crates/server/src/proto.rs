//! The wire protocol: one JSON object per line, in both directions.
//!
//! Requests (`op` selects the verb):
//!
//! | op         | payload                        | response stream                 |
//! |------------|--------------------------------|---------------------------------|
//! | `ping`     | —                              | one `pong` event                |
//! | `metrics`  | —                              | one `metrics` event             |
//! | `run`      | `"spec": {…}`                  | `accepted`, `progress`*, `cell`, `done` |
//! | `sweep`    | `"specs": [{…}, …]`            | `accepted`, `progress`*, `cell`*, `done` |
//! | `shutdown` | —                              | one `ok` event, then the daemon stops accepting |
//!
//! Specs use the canonical dialect of [`hmp_workloads::codec`]; the
//! server canonicalizes whatever spelling the client sends before
//! digesting, so key order and omitted defaults never split the cache.
//! Responses for a job always end with a `done` event; malformed
//! requests produce one `error` event and leave the connection open.

use hmp_platform::{RunOutcome, RunResult};
use hmp_sim::export::{json_escape, JsonValue};
use hmp_workloads::{codec, RunSpec};
use std::fmt::Write as _;

/// Version of the wire protocol; reported by `ping` and stamped into
/// every `accepted` event.
pub const PROTO_VERSION: u32 = 1;

/// A parsed client request.
#[derive(Debug)]
pub enum Request {
    /// Liveness + identity probe.
    Ping,
    /// Prometheus-style exposition of server health.
    Metrics,
    /// Stop accepting connections after this one.
    Shutdown,
    /// One simulation cell.
    Run(RunSpec),
    /// A grid of cells, answered in input order.
    Sweep(Vec<RunSpec>),
}

/// Parses one request line. Errors are human-readable and safe to echo
/// back to the client in an `error` event.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = hmp_sim::export::parse_json(line)?;
    let op = doc
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or("request needs an \"op\" string")?;
    match op {
        "ping" => Ok(Request::Ping),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        "run" => {
            let spec = doc.get("spec").ok_or("\"run\" needs a \"spec\" object")?;
            Ok(Request::Run(codec::spec_from_value(spec)?))
        }
        "sweep" => {
            let specs = doc
                .get("specs")
                .and_then(JsonValue::as_arr)
                .ok_or("\"sweep\" needs a \"specs\" array")?;
            if specs.is_empty() {
                return Err("\"specs\" must not be empty".into());
            }
            specs
                .iter()
                .enumerate()
                .map(|(i, s)| codec::spec_from_value(s).map_err(|e| format!("specs[{i}]: {e}")))
                .collect::<Result<Vec<_>, _>>()
                .map(Request::Sweep)
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

fn outcome_key(outcome: RunOutcome) -> &'static str {
    match outcome {
        RunOutcome::Completed => "completed",
        RunOutcome::Stalled => "stalled",
        RunOutcome::CycleLimit => "cycle_limit",
        RunOutcome::InvariantViolation => "invariant_violation",
        RunOutcome::Degraded { .. } => "degraded",
    }
}

/// Renders the **deterministic** portion of a [`RunResult`] as canonical
/// JSON — the bytes the content-addressed cache stores and every client
/// receives.
///
/// Covers exactly the fields `RunResult::eq` compares that are cheap to
/// ship (outcome, cycles, bus stats, per-CPU counters, the full stats
/// registry in its sorted order, violation count, faults injected) and
/// deliberately excludes the kernel self-profile, which is wall-clock-
/// and machine-dependent by construction. Two runs of the same digest on
/// any machine render to identical bytes.
pub fn result_json(r: &RunResult) -> String {
    let mut out = String::with_capacity(512);
    let (quarantined, absorbed) = match r.outcome {
        RunOutcome::Degraded {
            quarantined,
            faults_absorbed,
        } => (quarantined, faults_absorbed),
        _ => (0, 0),
    };
    let _ = write!(
        out,
        concat!(
            r#"{{"outcome":"{}","cycles":{},"quarantined":{},"faults_absorbed":{},"#,
            r#""bus":{{"grants":{},"retries":{},"completions":{},"drains":{},"data_cycles":{}}},"#,
            r#""cpus":["#
        ),
        outcome_key(r.outcome),
        r.cycles_u64(),
        quarantined,
        absorbed,
        r.bus.grants,
        r.bus.retries,
        r.bus.completions,
        r.bus.drains,
        r.bus.data_cycles,
    );
    for (i, c) in r.cpus.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            concat!(
                r#"{{"reads":{},"writes":{},"maintenance":{},"lock_acquires":{},"#,
                r#""lock_releases":{},"lock_mem_ops":{},"isr_entries":{},"isr_cycles":{}}}"#
            ),
            c.reads,
            c.writes,
            c.maintenance,
            c.lock_acquires,
            c.lock_releases,
            c.lock_mem_ops,
            c.isr_entries,
            c.isr_cycles,
        );
    }
    out.push_str("],\"stats\":{");
    for (i, (key, value)) in r.stats.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(key), value);
    }
    let _ = write!(
        out,
        r#"}},"violations":{},"faults_injected":{}}}"#,
        r.violations.len(),
        r.faults_injected,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmp_platform::Strategy;
    use hmp_sim::export::validate_json;
    use hmp_workloads::{MicrobenchParams, RunSpec, Runner, Scenario};

    fn small_spec() -> RunSpec {
        RunSpec::new(
            Scenario::Worst,
            Strategy::Proposed,
            MicrobenchParams {
                lines_per_iter: 2,
                exec_time: 1,
                outer_iters: 2,
                seed: 3,
                ..Default::default()
            },
        )
    }

    #[test]
    fn requests_parse_and_reject_with_context() {
        assert!(matches!(
            parse_request(r#"{"op":"ping"}"#),
            Ok(Request::Ping)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"metrics"}"#),
            Ok(Request::Metrics)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#),
            Ok(Request::Shutdown)
        ));
        let run =
            parse_request(r#"{"op":"run","spec":{"scenario":"worst","strategy":"proposed"}}"#)
                .unwrap();
        assert!(matches!(run, Request::Run(s) if s.scenario == Scenario::Worst));
        let sweep = parse_request(
            r#"{"op":"sweep","specs":[{"scenario":"worst","strategy":"proposed"},
                                      {"scenario":"best","strategy":"proposed"}]}"#,
        )
        .unwrap();
        assert!(matches!(sweep, Request::Sweep(v) if v.len() == 2));

        for (line, needle) in [
            ("totally not json", "bad literal"),
            (r#"{"verb":"ping"}"#, "op"),
            (r#"{"op":"dance"}"#, "unknown op"),
            (r#"{"op":"run"}"#, "spec"),
            (r#"{"op":"sweep","specs":[]}"#, "empty"),
            (
                r#"{"op":"sweep","specs":[{"scenario":"worst"}]}"#,
                "specs[0]",
            ),
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.contains(needle), "{line}: {err:?} lacks {needle:?}");
        }
    }

    #[test]
    fn result_json_is_valid_deterministic_and_profile_free() {
        let spec = small_spec().with_profile();
        let mut runner = Runner::new();
        let a = result_json(&runner.run(&spec));
        validate_json(&a).unwrap_or_else(|e| panic!("{e}\n{a}"));
        // Same digest, different runner, different wall time — same bytes.
        let b = result_json(&Runner::new().run(&spec));
        assert_eq!(a, b, "result JSON must be byte-deterministic");
        assert!(a.contains(r#""outcome":"completed""#), "{a}");
        assert!(a.contains(r#""stats":{"#), "{a}");
        assert!(!a.contains("wall_ns"), "profile leaked into cached bytes");
    }

    #[test]
    fn degraded_outcomes_carry_their_fields() {
        let mut r = Runner::new().run(&small_spec());
        r.outcome = RunOutcome::Degraded {
            quarantined: 2,
            faults_absorbed: 5,
        };
        let json = result_json(&r);
        validate_json(&json).unwrap();
        assert!(json.contains(r#""outcome":"degraded""#), "{json}");
        assert!(json.contains(r#""quarantined":2"#), "{json}");
        assert!(json.contains(r#""faults_absorbed":5"#), "{json}");
    }
}
