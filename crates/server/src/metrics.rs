//! Daemon health counters and their Prometheus-style exposition.
//!
//! Counters are relaxed atomics (every connection thread and worker
//! bumps them); the queue-wait and service-time histograms reuse the
//! simulator's allocation-free log2-bucketed [`Hist`] behind one mutex —
//! they are touched once per executed cell, not per simulated cycle, so
//! the lock is nowhere near any hot path.

use hmp_sim::Hist;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

#[derive(Default)]
struct Hists {
    /// Microseconds from job admission to a cell starting execution.
    queue_wait_us: Hist,
    /// Microseconds of simulation per executed cell.
    service_us: Hist,
}

/// Shared server health state.
#[derive(Default)]
pub struct ServerMetrics {
    jobs: AtomicU64,
    cells: AtomicU64,
    hits_memory: AtomicU64,
    hits_disk: AtomicU64,
    executed: AtomicU64,
    coalesced: AtomicU64,
    errors: AtomicU64,
    queue_depth: AtomicU64,
    hists: Mutex<Hists>,
}

impl ServerMetrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        ServerMetrics::default()
    }

    /// Records an admitted job of `cells` cells.
    pub fn job(&self, cells: u64) {
        self.jobs.fetch_add(1, Ordering::Relaxed);
        self.cells.fetch_add(cells, Ordering::Relaxed);
    }

    /// Records a malformed request.
    pub fn error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an in-memory cache hit.
    pub fn hit_memory(&self) {
        self.hits_memory.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an on-disk cache hit.
    pub fn hit_disk(&self) {
        self.hits_disk.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cell that coalesced onto another client's execution.
    pub fn coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` cells entering the execution queue.
    pub fn enqueued(&self, n: u64) {
        self.queue_depth.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one executed cell leaving the queue, with its queue wait
    /// and service time in microseconds.
    pub fn executed(&self, queue_wait_us: u64, service_us: u64) {
        self.executed.fetch_add(1, Ordering::Relaxed);
        // Saturating: a shutdown race must not wrap the gauge.
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(1))
            });
        let mut h = self.hists.lock().expect("metrics lock");
        h.queue_wait_us.record(queue_wait_us);
        h.service_us.record(service_us);
    }

    /// Cells waiting for or undergoing execution right now.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Cells served (any tier, coalesced included) so far.
    pub fn served(&self) -> u64 {
        self.hits_memory.load(Ordering::Relaxed)
            + self.hits_disk.load(Ordering::Relaxed)
            + self.executed.load(Ordering::Relaxed)
            + self.coalesced.load(Ordering::Relaxed)
    }

    /// Fraction of served cells answered without executing (cache hits +
    /// coalesced followers). 0.0 before anything is served.
    pub fn hit_ratio(&self) -> f64 {
        let served = self.served();
        if served == 0 {
            return 0.0;
        }
        let avoided = served - self.executed.load(Ordering::Relaxed);
        avoided as f64 / served as f64
    }

    /// Renders every counter, the gauge and both histograms in
    /// Prometheus-style text exposition.
    pub fn exposition(&self) -> String {
        let mut out = String::with_capacity(2048);
        let counters = [
            ("hmp_server_jobs_total", "Jobs admitted", &self.jobs),
            ("hmp_server_cells_total", "Cells requested", &self.cells),
            (
                "hmp_server_hits_memory_total",
                "Cells served from the in-memory cache",
                &self.hits_memory,
            ),
            (
                "hmp_server_hits_disk_total",
                "Cells served from the on-disk cache",
                &self.hits_disk,
            ),
            (
                "hmp_server_executed_total",
                "Cells actually simulated",
                &self.executed,
            ),
            (
                "hmp_server_coalesced_total",
                "Cells coalesced onto another client's execution",
                &self.coalesced,
            ),
            (
                "hmp_server_errors_total",
                "Malformed requests rejected",
                &self.errors,
            ),
        ];
        for (name, help, value) in counters {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", value.load(Ordering::Relaxed));
        }
        let _ = writeln!(
            out,
            "# HELP hmp_server_queue_depth Cells queued or executing"
        );
        let _ = writeln!(out, "# TYPE hmp_server_queue_depth gauge");
        let _ = writeln!(out, "hmp_server_queue_depth {}", self.queue_depth());
        let _ = writeln!(
            out,
            "# HELP hmp_server_hit_ratio Fraction of cells served without executing"
        );
        let _ = writeln!(out, "# TYPE hmp_server_hit_ratio gauge");
        let _ = writeln!(out, "hmp_server_hit_ratio {:.6}", self.hit_ratio());

        let h = self.hists.lock().expect("metrics lock");
        expo_hist(
            &mut out,
            "hmp_server_queue_wait_us",
            "Microseconds from admission to execution start",
            &h.queue_wait_us,
        );
        expo_hist(
            &mut out,
            "hmp_server_service_us",
            "Microseconds of simulation per executed cell",
            &h.service_us,
        );
        out
    }
}

fn expo_hist(out: &mut String, name: &str, help: &str, h: &Hist) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (i, &count) in h.buckets().iter().enumerate() {
        if count == 0 {
            continue;
        }
        cumulative += count;
        let (_, hi) = Hist::bounds(i);
        let _ = writeln!(out, "{name}_bucket{{le=\"{hi}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{name}_sum {}", h.sum());
    let _ = writeln!(out, "{name}_count {}", h.count());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_counts_every_avoided_execution() {
        let m = ServerMetrics::new();
        assert_eq!(m.hit_ratio(), 0.0);
        m.job(4);
        m.hit_memory();
        m.hit_disk();
        m.coalesced();
        m.enqueued(1);
        m.executed(10, 2_000);
        assert_eq!(m.served(), 4);
        assert_eq!(m.hit_ratio(), 0.75);
        assert_eq!(m.queue_depth(), 0);
    }

    #[test]
    fn queue_depth_never_wraps() {
        let m = ServerMetrics::new();
        m.executed(1, 1); // dequeue without an enqueue
        assert_eq!(m.queue_depth(), 0);
    }

    #[test]
    fn exposition_is_well_formed() {
        let m = ServerMetrics::new();
        m.job(2);
        m.hit_memory();
        m.enqueued(1);
        m.executed(100, 5_000);
        let text = m.exposition();
        for needle in [
            "# TYPE hmp_server_jobs_total counter",
            "hmp_server_jobs_total 1",
            "hmp_server_cells_total 2",
            "hmp_server_hits_memory_total 1",
            "hmp_server_executed_total 1",
            "# TYPE hmp_server_queue_depth gauge",
            "hmp_server_queue_depth 0",
            "hmp_server_hit_ratio 0.5",
            "# TYPE hmp_server_queue_wait_us histogram",
            "hmp_server_queue_wait_us_count 1",
            "hmp_server_service_us_sum 5000",
            "le=\"+Inf\"",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Every line is either a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "malformed exposition line: {line:?}"
            );
        }
    }
}
