//! The content-addressed run cache: an in-memory LRU map in front of an
//! optional on-disk tier.
//!
//! Keys are job digests ([`crate::digest`]); values are the canonical
//! result JSON from [`crate::proto::result_json`]. Because the digest
//! folds in the code fingerprint, a new release simply *misses* on every
//! old key — stale entries are orphaned on disk, never served, and can
//! be garbage-collected by deleting the directory.
//!
//! Disk writes go through a temp file + rename so a crashed daemon never
//! leaves a half-written entry a future daemon would serve; disk reads
//! are validated and a corrupt file is treated as a miss and removed.

use hmp_sim::digest::hex16;
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// Which tier answered a cache hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// The in-memory map.
    Memory,
    /// The on-disk store (the entry is promoted to memory on the way out).
    Disk,
}

struct Entry {
    json: Arc<String>,
    last_used: u64,
}

/// A two-tier content-addressed store of result JSON.
pub struct RunCache {
    mem: HashMap<u64, Entry>,
    /// Memory entries retained; 0 = unlimited.
    cap: usize,
    tick: u64,
    dir: Option<PathBuf>,
}

impl RunCache {
    /// Opens a cache. `dir` enables the disk tier (created if missing);
    /// `cap` bounds the in-memory tier (0 = unbounded).
    pub fn new(dir: Option<PathBuf>, cap: usize) -> io::Result<Self> {
        if let Some(d) = &dir {
            std::fs::create_dir_all(d)?;
        }
        Ok(RunCache {
            mem: HashMap::new(),
            cap,
            tick: 0,
            dir,
        })
    }

    /// Entries currently held in memory.
    pub fn len(&self) -> usize {
        self.mem.len()
    }

    /// `true` when the memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    fn entry_path(&self, digest: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{}.json", hex16(digest))))
    }

    /// Looks `digest` up, memory first, then disk. A disk hit is promoted
    /// into memory. Returns the cached bytes and the tier that answered.
    pub fn get(&mut self, digest: u64) -> Option<(Arc<String>, CacheTier)> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.mem.get_mut(&digest) {
            e.last_used = tick;
            return Some((e.json.clone(), CacheTier::Memory));
        }
        let path = self.entry_path(digest)?;
        let text = std::fs::read_to_string(&path).ok()?;
        if hmp_sim::export::validate_json(&text).is_err() {
            // A torn or corrupt entry: treat as a miss and drop the file
            // so it cannot confuse a later daemon either.
            let _ = std::fs::remove_file(&path);
            return None;
        }
        let json = Arc::new(text);
        self.insert_mem(digest, json.clone());
        Some((json, CacheTier::Disk))
    }

    /// Stores `json` under `digest` in both tiers.
    pub fn insert(&mut self, digest: u64, json: Arc<String>) {
        if let Some(path) = self.entry_path(digest) {
            // Temp-then-rename keeps the entry atomic under crashes and
            // concurrent writers (both would write identical bytes, but a
            // reader must never see a prefix).
            let tmp = path.with_extension(format!("tmp{}", std::process::id()));
            if std::fs::write(&tmp, json.as_bytes()).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
        }
        self.insert_mem(digest, json);
    }

    fn insert_mem(&mut self, digest: u64, json: Arc<String>) {
        self.tick += 1;
        let tick = self.tick;
        self.mem.insert(
            digest,
            Entry {
                json,
                last_used: tick,
            },
        );
        if self.cap > 0 && self.mem.len() > self.cap {
            // O(n) LRU scan — the map is at most `cap + 1` entries and
            // eviction only runs on insert past capacity.
            if let Some(&victim) = self
                .mem
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                self.mem.remove(&victim);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hmp_server_cache_test_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_roundtrip_and_tiers() {
        let mut c = RunCache::new(None, 0).unwrap();
        assert!(c.is_empty());
        assert!(c.get(1).is_none());
        c.insert(1, Arc::new("{}".to_string()));
        let (json, tier) = c.get(1).unwrap();
        assert_eq!(*json, "{}");
        assert_eq!(tier, CacheTier::Memory);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn disk_tier_survives_a_new_cache_and_promotes() {
        let dir = tmpdir("disk");
        {
            let mut c = RunCache::new(Some(dir.clone()), 0).unwrap();
            c.insert(7, Arc::new(r#"{"cycles":42}"#.to_string()));
        }
        // A fresh cache (fresh daemon) over the same directory hits disk.
        let mut c = RunCache::new(Some(dir.clone()), 0).unwrap();
        let (json, tier) = c.get(7).unwrap();
        assert_eq!(tier, CacheTier::Disk);
        assert!(json.contains("42"));
        // ...and the promoted entry answers from memory next time.
        assert_eq!(c.get(7).unwrap().1, CacheTier::Memory);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entries_miss_and_are_removed() {
        let dir = tmpdir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}.json", hex16(9)));
        std::fs::write(&path, "{\"truncated\":").unwrap();
        let mut c = RunCache::new(Some(dir.clone()), 0).unwrap();
        assert!(c.get(9).is_none());
        assert!(!path.exists(), "corrupt entry must be dropped");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_keeps_recently_used_entries() {
        let mut c = RunCache::new(None, 2).unwrap();
        c.insert(1, Arc::new("\"one\"".into()));
        c.insert(2, Arc::new("\"two\"".into()));
        let _ = c.get(1); // 1 is now more recent than 2
        c.insert(3, Arc::new("\"three\"".into()));
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_some(), "recently used entry must survive");
        assert!(c.get(2).is_none(), "LRU entry must be evicted");
        assert!(c.get(3).is_some());
    }
}
