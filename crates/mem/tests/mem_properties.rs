//! Property-based tests for the memory subsystem.

// QUARANTINED (PR 1): these property tests depend on the `proptest` crate,
// which the offline build environment cannot fetch (empty cargo registry, no
// network). Enable the `proptests` feature after restoring the `proptest`
// dev-dependency to run them. Tracking: CHANGES.md (PR 1).
#![cfg(feature = "proptests")]

use hmp_mem::{Addr, LatencyModel, MemAttr, Memory, MemoryMap, Region, LINE_BYTES, LINE_WORDS};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #[test]
    fn memory_matches_a_word_map(
        writes in prop::collection::vec((0u32..256, any::<u32>()), 0..200),
    ) {
        let mut mem = Memory::new(1024);
        let mut model: HashMap<u32, u32> = HashMap::new();
        for (word, value) in writes {
            let addr = Addr::new(word * 4);
            mem.write_word(addr, value);
            model.insert(word, value);
        }
        for word in 0..256u32 {
            prop_assert_eq!(
                mem.read_word(Addr::new(word * 4)),
                *model.get(&word).unwrap_or(&0)
            );
        }
    }

    #[test]
    fn line_ops_agree_with_word_ops(line in 0u32..32, data in any::<[u32; 8]>()) {
        let mut mem = Memory::new(1024);
        mem.write_line(Addr::new(line * LINE_BYTES), &data);
        for w in 0..LINE_WORDS {
            prop_assert_eq!(
                mem.read_word(Addr::new(line * LINE_BYTES + w * 4)),
                data[w as usize]
            );
        }
        prop_assert_eq!(mem.read_line(Addr::new(line * LINE_BYTES + 12)), data);
    }

    #[test]
    fn addr_alignment_laws(a in any::<u32>()) {
        let addr = Addr::new(a & !0x3); // word aligned inputs
        prop_assert!(addr.line_base().is_line_aligned());
        prop_assert!(addr.line_base() <= addr);
        prop_assert!(addr.same_line(addr.line_base()));
        prop_assert_eq!(
            addr.line_base().add_words(addr.word_offset_in_line()),
            addr.word_base()
        );
    }

    #[test]
    fn burst_latency_is_affine(n in 1u32..=8, first in 1u64..200, per in 1u64..8) {
        let lat = LatencyModel {
            single_word: first,
            burst_first: first,
            burst_next: per,
        };
        prop_assert_eq!(lat.burst(n).as_u64(), first + per * u64::from(n - 1));
        prop_assert!(lat.line_burst() >= lat.burst(n));
    }

    #[test]
    fn scaled_burst_round_trips(total in 8u64..500) {
        let lat = LatencyModel::scaled_to_burst(total);
        prop_assert_eq!(lat.line_burst().as_u64(), total);
    }

    #[test]
    fn map_classification_is_stable_and_region_local(
        region_idx in 0usize..3,
        offset in 0u32..0x100,
    ) {
        let mut map = MemoryMap::new();
        let regions = [
            Region::new(Addr::new(0x0000), 0x100, MemAttr::CachedWriteBack),
            Region::new(Addr::new(0x1000), 0x100, MemAttr::CachedWriteThrough),
            Region::new(Addr::new(0x2000), 0x100, MemAttr::Device(1)),
        ];
        for r in regions {
            map.add(r).unwrap();
        }
        let r = regions[region_idx];
        let addr = Addr::new(r.base.as_u32() + offset);
        prop_assert_eq!(map.classify(addr), r.attr);
        // Outside every region: uncached.
        prop_assert_eq!(map.classify(Addr::new(0x9000 + offset)), MemAttr::Uncached);
    }

    #[test]
    fn overlapping_regions_always_rejected(
        base in 0u32..0x80,
        size in 1u32..0x80,
    ) {
        let mut map = MemoryMap::new();
        map.add(Region::new(Addr::new(0x40), 0x40, MemAttr::Uncached)).unwrap();
        let candidate = Region::new(Addr::new(base), size, MemAttr::Uncached);
        let overlaps = base < 0x80 && base + size > 0x40;
        prop_assert_eq!(map.add(candidate).is_err(), overlaps, "{}", candidate);
    }
}
