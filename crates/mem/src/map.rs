//! Address-space classification.

use crate::{Addr, LINE_BYTES};
use core::fmt;

/// How accesses to an address window behave.
///
/// The paper's three evaluated configurations are expressed entirely
/// through this attribute:
///
/// * *proposed* / *software solution*: shared data in a
///   [`MemAttr::CachedWriteBack`] window;
/// * *cache disabled*: shared data in an [`MemAttr::Uncached`] window;
/// * lock variables: always [`MemAttr::Uncached`] (or a
///   [`MemAttr::Device`] window for the hardware lock register), because
///   cacheable locks cause the hardware deadlock of Figure 4.
///
/// [`MemAttr::CachedWriteThrough`] models the Intel486's write-through
/// lines, whose coherence protocol degenerates to SI (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemAttr {
    /// Cacheable, write-back allocation (MEI/MSI/MESI/MOESI lines).
    CachedWriteBack,
    /// Cacheable, write-through allocation (SI lines on the Intel486).
    CachedWriteThrough,
    /// Not cached; every access is a single-word bus transaction.
    Uncached,
    /// A memory-mapped device (bus slave) identified by its device index,
    /// e.g. the 1-bit hardware lock register of paper §3.
    Device(u32),
}

impl MemAttr {
    /// Returns `true` for attributes that allocate into a data cache.
    pub fn is_cacheable(self) -> bool {
        matches!(self, MemAttr::CachedWriteBack | MemAttr::CachedWriteThrough)
    }
}

impl fmt::Display for MemAttr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemAttr::CachedWriteBack => write!(f, "cached/write-back"),
            MemAttr::CachedWriteThrough => write!(f, "cached/write-through"),
            MemAttr::Uncached => write!(f, "uncached"),
            MemAttr::Device(id) => write!(f, "device#{id}"),
        }
    }
}

/// A half-open address window `[base, base + size)` with one attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// First byte of the window.
    pub base: Addr,
    /// Size of the window in bytes.
    pub size: u32,
    /// Behaviour of accesses inside the window.
    pub attr: MemAttr,
}

impl Region {
    /// Creates a region.
    pub fn new(base: Addr, size: u32, attr: MemAttr) -> Self {
        Region { base, size, attr }
    }

    /// Returns `true` if `addr` falls inside this window.
    pub fn contains(&self, addr: Addr) -> bool {
        let a = addr.as_u32();
        let b = self.base.as_u32();
        a >= b && (a - b) < self.size
    }

    /// Exclusive end address of the window.
    pub fn end(&self) -> u32 {
        self.base.as_u32() + self.size
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:#010x}..{:#010x}) {}",
            self.base.as_u32(),
            self.end(),
            self.attr
        )
    }
}

/// Classifies every address into a [`MemAttr`].
///
/// Regions are non-overlapping; addresses outside every region fall back to
/// [`MemAttr::Uncached`], the conservative choice for an embedded platform.
///
/// # Examples
///
/// ```
/// use hmp_mem::{Addr, MemAttr, MemoryMap, Region};
/// let mut map = MemoryMap::new();
/// map.add(Region::new(Addr::new(0x0000), 0x1000, MemAttr::CachedWriteBack)).unwrap();
/// assert_eq!(map.classify(Addr::new(0x10)), MemAttr::CachedWriteBack);
/// assert_eq!(map.classify(Addr::new(0x2000)), MemAttr::Uncached);
/// ```
#[derive(Debug, Default, PartialEq, Eq)]
pub struct MemoryMap {
    regions: Vec<Region>,
}

impl Clone for MemoryMap {
    fn clone(&self) -> Self {
        MemoryMap {
            regions: self.regions.clone(),
        }
    }

    /// Reuses the destination's region buffer — the cross-run reset path
    /// re-applies a map of the same cardinality without allocating.
    fn clone_from(&mut self, source: &Self) {
        self.regions.clone_from(&source.regions);
    }
}

/// Error returned by [`MemoryMap::add`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The new region overlaps an existing one.
    Overlap {
        /// The region being added.
        new: Region,
        /// The already-present region it collides with.
        existing: Region,
    },
    /// A cacheable region must be line-aligned so that no cache line
    /// straddles an attribute boundary.
    Misaligned(Region),
    /// The region is empty or wraps past the end of the address space.
    BadExtent(Region),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Overlap { new, existing } => {
                write!(f, "region {new} overlaps {existing}")
            }
            MapError::Misaligned(r) => {
                write!(f, "cacheable region {r} is not line-aligned")
            }
            MapError::BadExtent(r) => write!(f, "region {r} has a bad extent"),
        }
    }
}

impl std::error::Error for MapError {}

impl MemoryMap {
    /// Creates an empty map (everything uncached).
    pub fn new() -> Self {
        MemoryMap::default()
    }

    /// Adds a region.
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] if the region is empty, wraps around the address
    /// space, overlaps an existing region, or is a cacheable region that is
    /// not cache-line aligned.
    pub fn add(&mut self, region: Region) -> Result<(), MapError> {
        if region.size == 0 || region.base.as_u32().checked_add(region.size).is_none() {
            return Err(MapError::BadExtent(region));
        }
        if region.attr.is_cacheable()
            && (!region.base.as_u32().is_multiple_of(LINE_BYTES)
                || !region.size.is_multiple_of(LINE_BYTES))
        {
            return Err(MapError::Misaligned(region));
        }
        for &existing in &self.regions {
            let disjoint =
                region.end() <= existing.base.as_u32() || existing.end() <= region.base.as_u32();
            if !disjoint {
                return Err(MapError::Overlap {
                    new: region,
                    existing,
                });
            }
        }
        self.regions.push(region);
        Ok(())
    }

    /// Returns the attribute governing `addr` ([`MemAttr::Uncached`] if no
    /// region matches).
    pub fn classify(&self, addr: Addr) -> MemAttr {
        self.regions
            .iter()
            .find(|r| r.contains(addr))
            .map(|r| r.attr)
            .unwrap_or(MemAttr::Uncached)
    }

    /// Iterates the registered regions in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Region> {
        self.regions.iter()
    }

    /// Number of registered regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Returns `true` if no region is registered.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wb(base: u32, size: u32) -> Region {
        Region::new(Addr::new(base), size, MemAttr::CachedWriteBack)
    }

    #[test]
    fn classify_hits_and_default() {
        let mut map = MemoryMap::new();
        map.add(wb(0x0, 0x100)).unwrap();
        map.add(Region::new(Addr::new(0x1000), 0x20, MemAttr::Device(3)))
            .unwrap();
        assert_eq!(map.classify(Addr::new(0x0)), MemAttr::CachedWriteBack);
        assert_eq!(map.classify(Addr::new(0xFF)), MemAttr::CachedWriteBack);
        assert_eq!(map.classify(Addr::new(0x100)), MemAttr::Uncached);
        assert_eq!(map.classify(Addr::new(0x1004)), MemAttr::Device(3));
        assert_eq!(map.len(), 2);
        assert!(!map.is_empty());
    }

    #[test]
    fn overlap_rejected() {
        let mut map = MemoryMap::new();
        map.add(wb(0x0, 0x100)).unwrap();
        let err = map.add(wb(0xE0, 0x40)).unwrap_err();
        assert!(matches!(err, MapError::Overlap { .. }));
        // Adjacent is fine.
        map.add(wb(0x100, 0x40)).unwrap();
    }

    #[test]
    fn cacheable_must_be_line_aligned() {
        let mut map = MemoryMap::new();
        assert!(matches!(
            map.add(wb(0x10, 0x100)),
            Err(MapError::Misaligned(_))
        ));
        assert!(matches!(
            map.add(wb(0x0, 0x30)),
            Err(MapError::Misaligned(_))
        ));
        // Uncached regions may be byte-granular.
        map.add(Region::new(Addr::new(0x10), 4, MemAttr::Uncached))
            .unwrap();
    }

    #[test]
    fn bad_extent_rejected() {
        let mut map = MemoryMap::new();
        assert!(matches!(map.add(wb(0x0, 0)), Err(MapError::BadExtent(_))));
        assert!(matches!(
            map.add(Region::new(Addr::new(u32::MAX - 3), 8, MemAttr::Uncached)),
            Err(MapError::BadExtent(_))
        ));
    }

    #[test]
    fn attr_helpers() {
        assert!(MemAttr::CachedWriteBack.is_cacheable());
        assert!(MemAttr::CachedWriteThrough.is_cacheable());
        assert!(!MemAttr::Uncached.is_cacheable());
        assert!(!MemAttr::Device(0).is_cacheable());
        assert_eq!(MemAttr::Device(2).to_string(), "device#2");
    }

    #[test]
    fn error_display() {
        let e = MapError::Misaligned(wb(0x10, 0x20));
        assert!(e.to_string().contains("not line-aligned"));
    }

    #[test]
    fn region_display() {
        let r = wb(0x100, 0x40);
        assert_eq!(r.to_string(), "[0x00000100..0x00000140) cached/write-back");
    }
}
