//! Byte addresses and the platform's fixed word/line geometry.

use core::fmt;

/// Bytes per machine word. The reproduced processors (PowerPC755, ARM920T,
/// Intel486) are all 32-bit machines.
pub const WORD_BYTES: u32 = 4;

/// Words per cache line. Table 4 of the paper specifies 8-word bursts,
/// i.e. 32-byte lines — which is also the native line size of all three
/// commercial cores the paper integrates.
pub const LINE_WORDS: u32 = 8;

/// Bytes per cache line.
pub const LINE_BYTES: u32 = WORD_BYTES * LINE_WORDS;

/// A 32-bit physical byte address.
///
/// All simulator traffic is word-granular; `Addr` values handed to caches
/// and the bus are expected to be word-aligned (the micro-op interpreter
/// only generates aligned accesses), and line operations align down
/// internally.
///
/// # Examples
///
/// ```
/// use hmp_mem::Addr;
/// let a = Addr::new(0x1234);
/// assert_eq!(a.line_base().as_u32(), 0x1220);
/// assert_eq!(a.word_offset_in_line(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u32);

impl Addr {
    /// Creates an address from a raw 32-bit byte address.
    pub const fn new(a: u32) -> Self {
        Addr(a)
    }

    /// The raw byte address.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Index of the word containing this address in a flat word array.
    pub const fn word_index(self) -> usize {
        (self.0 / WORD_BYTES) as usize
    }

    /// The address rounded down to its word boundary.
    #[must_use]
    pub const fn word_base(self) -> Addr {
        Addr(self.0 & !(WORD_BYTES - 1))
    }

    /// The address rounded down to its cache-line boundary.
    #[must_use]
    pub const fn line_base(self) -> Addr {
        Addr(self.0 & !(LINE_BYTES - 1))
    }

    /// Returns `true` if this address is the first byte of a cache line.
    pub const fn is_line_aligned(self) -> bool {
        self.0.is_multiple_of(LINE_BYTES)
    }

    /// Returns `true` if this address is word-aligned.
    pub const fn is_word_aligned(self) -> bool {
        self.0.is_multiple_of(WORD_BYTES)
    }

    /// Offset of the containing word within its cache line, in words
    /// (`0..LINE_WORDS`).
    pub const fn word_offset_in_line(self) -> u32 {
        (self.0 % LINE_BYTES) / WORD_BYTES
    }

    /// The address `n` words after this one.
    ///
    /// # Panics
    ///
    /// Panics on 32-bit address overflow.
    #[must_use]
    pub fn add_words(self, n: u32) -> Addr {
        Addr(
            self.0
                .checked_add(n * WORD_BYTES)
                .expect("address overflow"),
        )
    }

    /// The address `n` lines after this one.
    ///
    /// # Panics
    ///
    /// Panics on 32-bit address overflow.
    #[must_use]
    pub fn add_lines(self, n: u32) -> Addr {
        Addr(
            self.0
                .checked_add(n * LINE_BYTES)
                .expect("address overflow"),
        )
    }

    /// Returns `true` if `self` and `other` fall in the same cache line.
    pub const fn same_line(self, other: Addr) -> bool {
        self.line_base().0 == other.line_base().0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<u32> for Addr {
    fn from(a: u32) -> Self {
        Addr(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants_consistent() {
        assert_eq!(LINE_BYTES, 32);
        assert_eq!(LINE_WORDS * WORD_BYTES, LINE_BYTES);
    }

    #[test]
    fn alignment_helpers() {
        let a = Addr::new(0x1237);
        assert_eq!(a.word_base(), Addr::new(0x1234));
        assert_eq!(a.line_base(), Addr::new(0x1220));
        assert!(!a.is_word_aligned());
        assert!(Addr::new(0x1234).is_word_aligned());
        assert!(Addr::new(0x1220).is_line_aligned());
        assert!(!Addr::new(0x1224).is_line_aligned());
    }

    #[test]
    fn word_indexing() {
        assert_eq!(Addr::new(0).word_index(), 0);
        assert_eq!(Addr::new(4).word_index(), 1);
        assert_eq!(Addr::new(0x20).word_offset_in_line(), 0);
        assert_eq!(Addr::new(0x24).word_offset_in_line(), 1);
        assert_eq!(Addr::new(0x3C).word_offset_in_line(), 7);
    }

    #[test]
    fn address_stepping() {
        let a = Addr::new(0x100);
        assert_eq!(a.add_words(3), Addr::new(0x10C));
        assert_eq!(a.add_lines(2), Addr::new(0x140));
    }

    #[test]
    #[should_panic(expected = "address overflow")]
    fn overflow_panics() {
        let _ = Addr::new(u32::MAX - 4).add_lines(1);
    }

    #[test]
    fn same_line_predicate() {
        assert!(Addr::new(0x100).same_line(Addr::new(0x11C)));
        assert!(!Addr::new(0x100).same_line(Addr::new(0x120)));
    }

    #[test]
    fn formatting() {
        let a = Addr::new(0xBEEF);
        assert_eq!(a.to_string(), "0x0000beef");
        assert_eq!(format!("{a:x}"), "beef");
        assert_eq!(format!("{a:X}"), "BEEF");
        assert_eq!(Addr::from(0xBEEFu32), a);
    }
}
