//! Memory controller with the paper's latency model.

use crate::{Addr, Memory, LINE_WORDS};
use hmp_sim::Cycle;

/// Main-memory access latencies, in bus cycles.
///
/// Table 4 of the paper: 6 cycles for a single word; for a burst, 6 cycles
/// for the first word and 1 cycle for each subsequent word, giving the
/// 13-cycle 8-word line fill the paper quotes as its baseline *miss
/// penalty*. Figure 8 sweeps this penalty up to 96 cycles;
/// [`LatencyModel::scaled_to_burst`] builds the swept configurations.
///
/// # Examples
///
/// ```
/// use hmp_mem::LatencyModel;
/// let lat = LatencyModel::default();
/// assert_eq!(lat.single().as_u64(), 6);
/// assert_eq!(lat.burst(8).as_u64(), 13);
/// let slow = LatencyModel::scaled_to_burst(96);
/// assert_eq!(slow.burst(8).as_u64(), 96);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatencyModel {
    /// Cycles for a stand-alone single-word access.
    pub single_word: u64,
    /// Cycles until the first word of a burst is delivered.
    pub burst_first: u64,
    /// Cycles for each subsequent word of a burst.
    pub burst_next: u64,
}

impl LatencyModel {
    /// The paper's Table 4 configuration: 6 / 6 / 1.
    pub const TABLE4: LatencyModel = LatencyModel {
        single_word: 6,
        burst_first: 6,
        burst_next: 1,
    };

    /// Latency of a single-word access.
    pub fn single(&self) -> Cycle {
        Cycle::new(self.single_word)
    }

    /// Latency of an `n`-word burst.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn burst(&self, n: u32) -> Cycle {
        assert!(n > 0, "burst length must be positive");
        Cycle::new(self.burst_first + self.burst_next * u64::from(n - 1))
    }

    /// Latency of a full cache-line (8-word) burst — the *miss penalty* in
    /// the paper's terminology.
    pub fn line_burst(&self) -> Cycle {
        self.burst(LINE_WORDS)
    }

    /// Builds a model whose 8-word burst costs exactly `burst_total` cycles,
    /// scaling the first-word latency and keeping the 1-cycle-per-word
    /// streaming rate; the single-word latency scales with the first-word
    /// latency, as it does in the underlying DRAM timing.
    ///
    /// This reproduces the Figure 8 x-axis: burst penalties of 13, 24, 48
    /// and 96 cycles.
    ///
    /// # Panics
    ///
    /// Panics if `burst_total` is less than the 8 cycles needed to stream 8
    /// words.
    pub fn scaled_to_burst(burst_total: u64) -> LatencyModel {
        let streaming = u64::from(LINE_WORDS) - 1;
        assert!(
            burst_total > streaming,
            "burst penalty too small to stream a line"
        );
        let first = burst_total - streaming;
        LatencyModel {
            single_word: first,
            burst_first: first,
            burst_next: 1,
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::TABLE4
    }
}

/// The bus slave that owns main memory.
///
/// The controller is *passive*: the bus FSM asks it for the latency of an
/// operation when the data phase starts, counts the cycles down itself, and
/// applies the data movement on completion. (The paper notes the memory
/// controller must see the *actual* operation — wrappers convert reads to
/// writes only on the snoop path, never on the path to memory; this is why
/// data movement lives here and translation lives in `hmp-core`.)
///
/// # Examples
///
/// ```
/// use hmp_mem::{Addr, LatencyModel, Memory, MemoryController};
/// let mut ctrl = MemoryController::new(Memory::new(4096), LatencyModel::default());
/// ctrl.write_word(Addr::new(0), 9);
/// assert_eq!(ctrl.read_word(Addr::new(0)), 9);
/// assert_eq!(ctrl.line_fill_latency().as_u64(), 13);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    memory: Memory,
    latency: LatencyModel,
}

impl MemoryController {
    /// Creates a controller over `memory` with the given timing.
    pub fn new(memory: Memory, latency: LatencyModel) -> Self {
        MemoryController { memory, latency }
    }

    /// The timing model in force.
    pub fn latency(&self) -> LatencyModel {
        self.latency
    }

    /// Replaces the timing model (used by the Figure 8 sweep).
    pub fn set_latency(&mut self, latency: LatencyModel) {
        self.latency = latency;
    }

    /// Cross-run reset: zeroes the backing memory in place and installs
    /// the next run's timing model. No allocation.
    pub fn reset(&mut self, latency: LatencyModel) {
        self.memory.reset();
        self.latency = latency;
    }

    /// Latency of a single-word access.
    pub fn word_latency(&self) -> Cycle {
        self.latency.single()
    }

    /// Latency of a full line fill or write-back burst.
    pub fn line_fill_latency(&self) -> Cycle {
        self.latency.line_burst()
    }

    /// Reads one word (data movement only; timing is the bus's job).
    pub fn read_word(&self, addr: Addr) -> u32 {
        self.memory.read_word(addr)
    }

    /// Writes one word.
    pub fn write_word(&mut self, addr: Addr, value: u32) {
        self.memory.write_word(addr, value);
    }

    /// Reads the line containing `addr`.
    pub fn read_line(&self, addr: Addr) -> [u32; LINE_WORDS as usize] {
        self.memory.read_line(addr)
    }

    /// Writes the line containing `addr` (write-back / drain path).
    pub fn write_line(&mut self, addr: Addr, data: &[u32; LINE_WORDS as usize]) {
        self.memory.write_line(addr, data);
    }

    /// Shared view of the backing memory (golden-model checks, tests).
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable view of the backing memory (test fixtures).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_defaults() {
        let lat = LatencyModel::default();
        assert_eq!(lat, LatencyModel::TABLE4);
        assert_eq!(lat.single().as_u64(), 6);
        assert_eq!(lat.burst(1).as_u64(), 6);
        assert_eq!(lat.burst(8).as_u64(), 13);
        assert_eq!(lat.line_burst().as_u64(), 13);
    }

    #[test]
    fn figure8_sweep_points() {
        for total in [13u64, 24, 48, 96] {
            let lat = LatencyModel::scaled_to_burst(total);
            assert_eq!(lat.line_burst().as_u64(), total);
            assert_eq!(lat.burst_next, 1);
            assert_eq!(lat.single_word, lat.burst_first);
        }
        assert_eq!(LatencyModel::scaled_to_burst(13), LatencyModel::TABLE4);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn scaled_burst_too_small_panics() {
        let _ = LatencyModel::scaled_to_burst(7);
    }

    #[test]
    #[should_panic(expected = "burst length must be positive")]
    fn zero_burst_panics() {
        LatencyModel::default().burst(0);
    }

    #[test]
    fn controller_moves_data() {
        let mut ctrl = MemoryController::new(Memory::new(1024), LatencyModel::default());
        let line = [9u32; 8];
        ctrl.write_line(Addr::new(0x20), &line);
        assert_eq!(ctrl.read_line(Addr::new(0x2C)), line);
        ctrl.write_word(Addr::new(0x20), 1);
        assert_eq!(ctrl.read_word(Addr::new(0x20)), 1);
        assert_eq!(ctrl.memory().read_word(Addr::new(0x24)), 9);
        ctrl.memory_mut().fill(0);
        assert_eq!(ctrl.read_word(Addr::new(0x20)), 0);
    }

    #[test]
    fn latency_swap() {
        let mut ctrl = MemoryController::new(Memory::new(64), LatencyModel::default());
        assert_eq!(ctrl.line_fill_latency().as_u64(), 13);
        ctrl.set_latency(LatencyModel::scaled_to_burst(48));
        assert_eq!(ctrl.line_fill_latency().as_u64(), 48);
        assert_eq!(ctrl.word_latency().as_u64(), 41);
        assert_eq!(ctrl.latency().burst_next, 1);
    }
}
