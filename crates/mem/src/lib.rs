//! # hmp-mem — memory subsystem for the hmp simulator
//!
//! Models the main-memory side of the reproduced platform:
//!
//! * [`Addr`] — byte addresses with word/line alignment helpers. The
//!   platform is word-oriented (32-bit words, 8-word / 32-byte cache lines,
//!   matching the paper's "burst (8 words)" in Table 4).
//! * [`Memory`] — a flat, word-addressed physical memory that stores real
//!   data values. Storing data (rather than only modelling timing) is what
//!   lets the test suite *detect stale reads* — the exact failure the
//!   paper's Tables 2 and 3 illustrate.
//! * [`MemoryMap`] — classifies addresses into cacheable write-back,
//!   cacheable write-through, uncached, and device windows. The paper's
//!   evaluation hinges on this: lock variables are always placed in an
//!   uncached window, and the *cache-disabled* baseline puts the shared
//!   data there too.
//! * [`LatencyModel`] / [`MemoryController`] — Table 4 timing: 6 bus cycles
//!   for a single word, 6 + 1·(n−1) for an n-word burst (13 cycles for the
//!   8-word line fill), sweepable for the Figure 8 miss-penalty experiment.
//!
//! # Examples
//!
//! ```
//! use hmp_mem::{Addr, LatencyModel, Memory};
//!
//! let mut mem = Memory::new(64 * 1024);
//! mem.write_word(Addr::new(0x100), 0xDEAD_BEEF);
//! assert_eq!(mem.read_word(Addr::new(0x100)), 0xDEAD_BEEF);
//!
//! let lat = LatencyModel::default(); // Table 4 defaults
//! assert_eq!(lat.burst(8).as_u64(), 13);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod controller;
mod map;
mod memory;

pub use addr::{Addr, LINE_BYTES, LINE_WORDS, WORD_BYTES};
pub use controller::{LatencyModel, MemoryController};
pub use map::{MapError, MemAttr, MemoryMap, Region};
pub use memory::Memory;
