//! Flat physical memory with real data storage.

use crate::{Addr, LINE_WORDS};

/// A flat, word-addressed physical memory.
///
/// The simulator stores *actual data values*, not just timing state. That is
/// deliberate: the correctness property the paper's wrappers exist to
/// protect is "no processor ever reads a stale value", and the test suite
/// checks it by comparing every committed read against a golden memory
/// image. Tables 2 and 3 of the paper are reproduced as data-value
/// divergence, not just as state-machine traces.
///
/// # Examples
///
/// ```
/// use hmp_mem::{Addr, Memory};
/// let mut mem = Memory::new(4096);
/// mem.write_word(Addr::new(8), 7);
/// assert_eq!(mem.read_word(Addr::new(8)), 7);
/// assert_eq!(mem.read_word(Addr::new(12)), 0); // zero-initialised
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    words: Vec<u32>,
}

impl Memory {
    /// Creates a zero-initialised memory of `size_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is not a multiple of the line size.
    pub fn new(size_bytes: u32) -> Self {
        assert!(
            size_bytes.is_multiple_of(crate::LINE_BYTES),
            "memory size must be a whole number of cache lines"
        );
        Memory {
            words: vec![0; (size_bytes / crate::WORD_BYTES) as usize],
        }
    }

    /// Zeroes every word in place for a cross-run reset, reusing the
    /// backing allocation.
    pub fn reset(&mut self) {
        self.words.fill(0);
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> u32 {
        (self.words.len() as u32) * crate::WORD_BYTES
    }

    /// Returns `true` if `addr`'s word lies inside this memory.
    pub fn contains(&self, addr: Addr) -> bool {
        addr.word_index() < self.words.len()
    }

    /// Reads the word containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read_word(&self, addr: Addr) -> u32 {
        self.words[addr.word_index()]
    }

    /// Writes the word containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write_word(&mut self, addr: Addr, value: u32) {
        let i = addr.word_index();
        self.words[i] = value;
    }

    /// Reads the whole cache line containing `addr` (aligned down).
    ///
    /// # Panics
    ///
    /// Panics if the line is out of range.
    pub fn read_line(&self, addr: Addr) -> [u32; LINE_WORDS as usize] {
        let base = addr.line_base().word_index();
        let mut out = [0u32; LINE_WORDS as usize];
        out.copy_from_slice(&self.words[base..base + LINE_WORDS as usize]);
        out
    }

    /// Writes a whole cache line at the line containing `addr` (aligned
    /// down). This is the write-back (drain) path.
    ///
    /// # Panics
    ///
    /// Panics if the line is out of range.
    pub fn write_line(&mut self, addr: Addr, data: &[u32; LINE_WORDS as usize]) {
        let base = addr.line_base().word_index();
        self.words[base..base + LINE_WORDS as usize].copy_from_slice(data);
    }

    /// Fills every word with `value` — handy for test fixtures.
    pub fn fill(&mut self, value: u32) {
        self.words.fill(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let mem = Memory::new(1024);
        assert_eq!(mem.size_bytes(), 1024);
        assert_eq!(mem.read_word(Addr::new(0)), 0);
        assert_eq!(mem.read_word(Addr::new(1020)), 0);
    }

    #[test]
    fn word_round_trip() {
        let mut mem = Memory::new(1024);
        mem.write_word(Addr::new(100), 42); // unaligned byte addr → same word
        assert_eq!(mem.read_word(Addr::new(100)), 42);
        assert_eq!(mem.read_word(Addr::new(103)), 42);
        assert_eq!(mem.read_word(Addr::new(104)), 0);
    }

    #[test]
    fn line_round_trip() {
        let mut mem = Memory::new(1024);
        let line: [u32; 8] = [1, 2, 3, 4, 5, 6, 7, 8];
        mem.write_line(Addr::new(0x40), &line);
        assert_eq!(mem.read_line(Addr::new(0x44)), line); // any addr in line
        assert_eq!(mem.read_word(Addr::new(0x40)), 1);
        assert_eq!(mem.read_word(Addr::new(0x5C)), 8);
    }

    #[test]
    fn contains_bounds() {
        let mem = Memory::new(64);
        assert!(mem.contains(Addr::new(60)));
        assert!(!mem.contains(Addr::new(64)));
    }

    #[test]
    #[should_panic]
    fn out_of_range_read_panics() {
        Memory::new(64).read_word(Addr::new(64));
    }

    #[test]
    #[should_panic(expected = "whole number of cache lines")]
    fn ragged_size_panics() {
        let _ = Memory::new(100);
    }

    #[test]
    fn fill_sets_everything() {
        let mut mem = Memory::new(64);
        mem.fill(0xAB);
        assert_eq!(mem.read_word(Addr::new(0)), 0xAB);
        assert_eq!(mem.read_word(Addr::new(60)), 0xAB);
    }
}
