//! Property-based tests for the data cache.
//!
//! A single cache is driven with random processor-side and snoop-side
//! operations against a reference flat memory. Data values must always be
//! consistent (the cache never invents or loses a committed byte), and
//! structural invariants must hold after every step.

// QUARANTINED (PR 1): these property tests depend on the `proptest` crate,
// which the offline build environment cannot fetch (empty cargo registry, no
// network). Enable the `proptests` feature after restoring the `proptest`
// dev-dependency to run them. Tracking: CHANGES.md (PR 1).
#![cfg(feature = "proptests")]

use hmp_cache::{
    Access, CacheConfig, DataCache, LruOrder, ProtocolKind, ReadProbe, SnoopAction, SnoopOp,
    WriteProbe,
};
use hmp_mem::{Addr, LINE_BYTES, LINE_WORDS};
use proptest::prelude::*;
use std::collections::HashMap;

const POOL_LINES: u32 = 12;

#[derive(Debug, Clone)]
enum Step {
    Read { line: u32, word: u32 },
    Write { line: u32, word: u32 },
    Snoop { line: u32, op: u8 },
    Flush { line: u32 },
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..POOL_LINES, 0..LINE_WORDS).prop_map(|(line, word)| Step::Read { line, word }),
        (0..POOL_LINES, 0..LINE_WORDS).prop_map(|(line, word)| Step::Write { line, word }),
        (0..POOL_LINES, 0..3u8).prop_map(|(line, op)| Step::Snoop { line, op }),
        (0..POOL_LINES).prop_map(|line| Step::Flush { line }),
    ]
}

fn protocol() -> impl Strategy<Value = ProtocolKind> {
    prop::sample::select(ProtocolKind::WRITE_BACK.to_vec())
}

/// Reference memory: the authoritative value of every word, updated on
/// every committed write and on every write-back the cache emits.
struct RefMem(HashMap<u32, u32>);

impl RefMem {
    fn read_line(&self, line: Addr) -> [u32; LINE_WORDS as usize] {
        let mut out = [0u32; LINE_WORDS as usize];
        for (w, slot) in out.iter_mut().enumerate() {
            *slot = *self.0.get(&line.add_words(w as u32).as_u32()).unwrap_or(&0);
        }
        out
    }
    fn write_line(&mut self, line: Addr, data: &[u32; LINE_WORDS as usize]) {
        for (w, v) in data.iter().enumerate() {
            self.0.insert(line.add_words(w as u32).as_u32(), *v);
        }
    }
}

/// The authoritative current value of a word: the cache's copy if the
/// line is dirty, memory otherwise. (For clean lines both must agree.)
fn authoritative(cache: &DataCache, mem: &RefMem, addr: Addr) -> u32 {
    match cache.line_state(addr) {
        Some(s) if s.is_dirty() => cache.peek_word(addr).expect("dirty line present"),
        _ => *mem.0.get(&addr.as_u32()).unwrap_or(&0),
    }
}

fn evict_to_mem(mem: &mut RefMem, victim: Option<hmp_cache::EvictedLine>) {
    if let Some(v) = victim {
        if v.dirty {
            mem.write_line(v.addr, &v.data);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn single_cache_never_corrupts_data(
        kind in protocol(),
        steps in prop::collection::vec(step(), 1..120),
    ) {
        let base = Addr::new(0x1000);
        let mut cache = DataCache::new(CacheConfig { sets: 4, ways: 2 }, kind);
        let mut mem = RefMem(HashMap::new());
        let mut next_value = 1u32;

        for s in steps {
            match s {
                Step::Read { line, word } => {
                    let addr = base.add_lines(line).add_words(word);
                    let expect = authoritative(&cache, &mem, addr);
                    match cache.probe_read(addr, false) {
                        ReadProbe::Hit(v) => prop_assert_eq!(v, expect, "read hit {}", addr),
                        ReadProbe::Miss { victim } => {
                            evict_to_mem(&mut mem, victim);
                            let data = mem.read_line(addr.line_base());
                            cache.fill(addr.line_base(), data, Access::Read, false, false);
                            let v = cache.peek_word(addr).expect("just filled");
                            prop_assert_eq!(v, expect, "fill {}", addr);
                        }
                    }
                }
                Step::Write { line, word } => {
                    let addr = base.add_lines(line).add_words(word);
                    let value = next_value;
                    next_value += 1;
                    match cache.probe_write(addr, value, false) {
                        WriteProbe::Hit => {}
                        WriteProbe::HitNeedsUpgrade => {
                            prop_assert!(cache.complete_upgrade(addr, value));
                        }
                        WriteProbe::HitWriteThrough => {
                            // Write-back pool: SI lines never appear here.
                            prop_assert!(false, "unexpected write-through");
                        }
                        WriteProbe::Miss { victim } => {
                            evict_to_mem(&mut mem, victim);
                            let data = mem.read_line(addr.line_base());
                            cache.fill(addr.line_base(), data, Access::Write, false, false);
                            cache.commit_write(addr, value);
                        }
                        WriteProbe::MissNoAllocate => {
                            prop_assert!(false, "write-back protocols allocate");
                        }
                    }
                    prop_assert_eq!(cache.peek_word(addr), Some(value));
                    prop_assert!(cache.line_state(addr).unwrap().is_dirty());
                }
                Step::Snoop { line, op } => {
                    let addr = base.add_lines(line);
                    let op = match op {
                        0 => SnoopOp::Read,
                        1 => SnoopOp::Write,
                        _ => SnoopOp::Upgrade,
                    };
                    if let Some(reply) = cache.snoop(addr, op) {
                        match reply.action {
                            SnoopAction::WritebackLine => {
                                mem.write_line(addr, &reply.data.expect("wb data"));
                            }
                            SnoopAction::SupplyLine => {
                                // Supplied data must be the authoritative copy.
                                let data = reply.data.expect("supply data");
                                for w in 0..LINE_WORDS {
                                    let a = addr.add_words(w);
                                    prop_assert_eq!(
                                        data[w as usize],
                                        authoritative(&cache, &mem, a)
                                    );
                                }
                            }
                            SnoopAction::None => {}
                        }
                        // A snoop never leaves dirty data unreachable: if the
                        // new state is Invalid the data either went to memory
                        // (write-back) or was clean.
                        if reply.old_state.is_dirty()
                            && !cache.contains(addr)
                            && reply.action == SnoopAction::None
                        {
                            // Only legal for Owned lines dropped on Upgrade
                            // (the upgrader holds identical data).
                            prop_assert_eq!(op, SnoopOp::Upgrade);
                        }
                    }
                }
                Step::Flush { line } => {
                    let addr = base.add_lines(line);
                    if let Some((dirty, data)) = cache.flush_line(addr) {
                        if dirty {
                            mem.write_line(addr, &data);
                        }
                        prop_assert!(!cache.contains(addr));
                    }
                }
            }

            // Structural invariants after every step.
            prop_assert!(cache.valid_lines() <= 4 * 2, "over capacity");
            prop_assert!(cache.dirty_lines() <= cache.valid_lines());
            for (line_addr, state) in cache.iter_lines() {
                prop_assert!(state.is_valid());
                prop_assert!(
                    ProtocolKind::WRITE_BACK
                        .iter()
                        .any(|k| *k == kind && k.has_state(state)),
                    "{kind} line in foreign state {state}"
                );
                prop_assert!(line_addr.is_line_aligned());
            }
        }
    }

    #[test]
    fn lru_matches_reference_model(
        ways in 1..6u32,
        touches in prop::collection::vec(0..6u32, 0..60),
    ) {
        let mut lru = LruOrder::new(ways);
        // Reference: most-recent-first vector.
        let mut reference: Vec<u32> = (0..ways).collect();
        for t in touches {
            let way = t % ways;
            lru.touch(way);
            reference.retain(|&w| w != way);
            reference.insert(0, way);
            prop_assert_eq!(lru.victim(), *reference.last().unwrap());
            prop_assert_eq!(lru.position(way), 0);
        }
    }

    #[test]
    fn set_index_and_tag_partition_the_address(line in 0u32..100_000) {
        // Any two distinct line addresses must differ in (set, tag).
        let cache = DataCache::new(CacheConfig { sets: 16, ways: 2 }, ProtocolKind::Mesi);
        let a = Addr::new(line * LINE_BYTES);
        let b = Addr::new((line + 1) * LINE_BYTES);
        // Indirectly observable: filling `a` must not make `b` visible.
        let mut c = cache.clone();
        c.fill(a, [7; 8], Access::Read, false, false);
        prop_assert!(c.contains(a));
        prop_assert!(!c.contains(b));
    }
}
