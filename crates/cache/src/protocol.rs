//! The [`Protocol`] trait and the protocol registry.

use crate::event::{Access, SnoopOp, WriteHitOutcome};
use crate::state::LineState;
use crate::{Mei, Mesi, Moesi, Msi, Si};
use core::fmt;

/// A transition *request* produced by a protocol's snoop function.
///
/// Unlike [`crate::SnoopReply`] (which a [`crate::DataCache`] returns with
/// data attached), this is the pure FSM answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SnoopTransition {
    /// The state the line moves to.
    pub next: LineState,
    /// Required data movement.
    pub action: crate::SnoopAction,
    /// Whether the controller drives the bus shared signal.
    pub asserts_shared: bool,
}

/// An invalidation-based cache-coherence protocol FSM.
///
/// Implementations are stateless lookup tables; one `'static` instance per
/// protocol is reachable through [`ProtocolKind::protocol`]. The trait is
/// object-safe so heterogeneous platforms can hold `&'static dyn Protocol`
/// per processor.
///
/// The three functions correspond to the three stimulus classes of a bus
/// snooping controller:
///
/// * [`fill_state`](Protocol::fill_state) — what state a miss fill lands
///   in, given the sampled *shared* signal;
/// * [`write_hit`](Protocol::write_hit) — what a local store to a valid
///   line requires;
/// * [`snoop`](Protocol::snoop) — how a valid line reacts to an observed
///   (possibly wrapper-translated) bus operation.
pub trait Protocol: fmt::Debug + Send + Sync {
    /// Which protocol this is.
    fn kind(&self) -> ProtocolKind;

    /// The states this protocol can ever place a line in (always includes
    /// `Invalid`).
    fn states(&self) -> &'static [LineState];

    /// State in which a miss fill completes. `shared_signal` is the value
    /// sampled on the bus shared line during the fill (always `false` for
    /// protocols without an E/S distinction driver).
    fn fill_state(&self, access: Access, shared_signal: bool) -> LineState;

    /// Reaction to a processor write hitting a line in state `state`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called with a state outside
    /// [`states`](Protocol::states) — that would be a simulator bug.
    fn write_hit(&self, state: LineState) -> WriteHitOutcome;

    /// Reaction of a line in state `state` to an observed bus operation.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called with a state outside
    /// [`states`](Protocol::states).
    fn snoop(&self, state: LineState, op: SnoopOp) -> SnoopTransition;

    /// `true` if this protocol supplies data cache-to-cache (the paper
    /// assumes only MOESI implementations do).
    fn supplies_cache_to_cache(&self) -> bool {
        false
    }

    /// `true` if a write miss allocates a line (write-allocate). The
    /// write-through SI protocol does not: a write miss goes straight to
    /// memory as a single-word bus write.
    fn allocates_on_write(&self) -> bool {
        true
    }

    /// `true` if this protocol's controller can drive the bus shared
    /// signal. MEI and MSI controllers have no shared-signal output — the
    /// paper's Table 3 failure stems from exactly this.
    fn drives_shared_signal(&self) -> bool;
}

/// Identifies one of the five modelled protocols.
///
/// # Examples
///
/// ```
/// use hmp_cache::{Protocol, ProtocolKind};
/// assert!(ProtocolKind::Moesi.protocol().supplies_cache_to_cache());
/// assert!(!ProtocolKind::Mesi.protocol().supplies_cache_to_cache());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProtocolKind {
    /// Modified / Exclusive / Invalid (PowerPC755).
    Mei,
    /// Modified / Shared / Invalid.
    Msi,
    /// Modified / Exclusive / Shared / Invalid (Pentium class; also the
    /// write-back half of the Intel486).
    Mesi,
    /// Modified / Owned / Exclusive / Shared / Invalid (UltraSPARC, AMD64).
    Moesi,
    /// Shared / Invalid — write-through lines (Intel486 write-through half).
    Si,
}

impl ProtocolKind {
    /// All five protocol kinds, for exhaustive tests and sweeps.
    pub const ALL: [ProtocolKind; 5] = [
        ProtocolKind::Mei,
        ProtocolKind::Msi,
        ProtocolKind::Mesi,
        ProtocolKind::Moesi,
        ProtocolKind::Si,
    ];

    /// The write-back protocols a whole processor can be configured with
    /// (SI only ever governs individual write-through lines).
    pub const WRITE_BACK: [ProtocolKind; 4] = [
        ProtocolKind::Mei,
        ProtocolKind::Msi,
        ProtocolKind::Mesi,
        ProtocolKind::Moesi,
    ];

    /// Returns the singleton FSM for this kind.
    pub fn protocol(self) -> &'static dyn Protocol {
        match self {
            ProtocolKind::Mei => &Mei,
            ProtocolKind::Msi => &Msi,
            ProtocolKind::Mesi => &Mesi,
            ProtocolKind::Moesi => &Moesi,
            ProtocolKind::Si => &Si,
        }
    }

    /// Returns `true` if this protocol ever uses the given state.
    pub fn has_state(self, state: LineState) -> bool {
        self.protocol().states().contains(&state)
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProtocolKind::Mei => "MEI",
            ProtocolKind::Msi => "MSI",
            ProtocolKind::Mesi => "MESI",
            ProtocolKind::Moesi => "MOESI",
            ProtocolKind::Si => "SI",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trip() {
        for kind in ProtocolKind::ALL {
            assert_eq!(kind.protocol().kind(), kind);
        }
    }

    #[test]
    fn state_sets_match_names() {
        use LineState::*;
        assert_eq!(
            ProtocolKind::Mei.protocol().states(),
            &[Modified, Exclusive, Invalid]
        );
        assert_eq!(
            ProtocolKind::Msi.protocol().states(),
            &[Modified, Shared, Invalid]
        );
        assert_eq!(
            ProtocolKind::Mesi.protocol().states(),
            &[Modified, Exclusive, Shared, Invalid]
        );
        assert_eq!(
            ProtocolKind::Moesi.protocol().states(),
            &[Modified, Owned, Exclusive, Shared, Invalid]
        );
        assert_eq!(ProtocolKind::Si.protocol().states(), &[Shared, Invalid]);
    }

    #[test]
    fn every_protocol_has_invalid() {
        for kind in ProtocolKind::ALL {
            assert!(kind.has_state(LineState::Invalid), "{kind} missing I");
        }
    }

    #[test]
    fn only_moesi_supplies_cache_to_cache() {
        for kind in ProtocolKind::ALL {
            let expect = kind == ProtocolKind::Moesi;
            assert_eq!(kind.protocol().supplies_cache_to_cache(), expect, "{kind}");
        }
    }

    #[test]
    fn shared_signal_drivers() {
        // MEI and MSI controllers cannot drive the shared wire (paper §2.2).
        assert!(!ProtocolKind::Mei.protocol().drives_shared_signal());
        assert!(!ProtocolKind::Msi.protocol().drives_shared_signal());
        assert!(ProtocolKind::Mesi.protocol().drives_shared_signal());
        assert!(ProtocolKind::Moesi.protocol().drives_shared_signal());
        assert!(ProtocolKind::Si.protocol().drives_shared_signal());
    }

    #[test]
    fn only_si_skips_write_allocate() {
        for kind in ProtocolKind::ALL {
            let expect = kind != ProtocolKind::Si;
            assert_eq!(kind.protocol().allocates_on_write(), expect, "{kind}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ProtocolKind::Mei.to_string(), "MEI");
        assert_eq!(ProtocolKind::Moesi.to_string(), "MOESI");
    }
}
