//! Least-recently-used ordering for one cache set.

/// Tracks the recency order of the ways in one cache set.
///
/// The order vector holds way indices from most- to least-recently used.
/// All three commercial caches the paper integrates use LRU (or
/// pseudo-LRU) replacement; true LRU keeps the simulator deterministic and
/// is what "cache line replacements" in the paper's Figure 8 discussion
/// refers to.
///
/// # Examples
///
/// ```
/// use hmp_cache::LruOrder;
/// let mut lru = LruOrder::new(4);
/// lru.touch(2);
/// assert_eq!(lru.victim(), 3); // 2 is now MRU; 3 the coldest remaining
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LruOrder {
    // order[0] is most recently used.
    order: Vec<u32>,
}

impl LruOrder {
    /// Creates an order over `ways` ways; initially way 0 is MRU and the
    /// highest way index is the first victim.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(ways: u32) -> Self {
        assert!(ways > 0, "a cache set needs at least one way");
        LruOrder {
            order: (0..ways).collect(),
        }
    }

    /// Number of ways tracked.
    pub fn ways(&self) -> u32 {
        self.order.len() as u32
    }

    /// Restores the construction order in place (way 0 MRU, highest way
    /// the first victim) without reallocating.
    pub fn reset(&mut self) {
        for (i, w) in self.order.iter_mut().enumerate() {
            *w = i as u32;
        }
    }

    /// Marks `way` most recently used.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn touch(&mut self, way: u32) {
        let pos = self
            .order
            .iter()
            .position(|&w| w == way)
            .expect("way out of range");
        let w = self.order.remove(pos);
        self.order.insert(0, w);
    }

    /// The least recently used way — the replacement victim.
    pub fn victim(&self) -> u32 {
        *self.order.last().expect("non-empty by construction")
    }

    /// Recency position of `way` (0 = MRU). Used by the snoop-logic CAM to
    /// mirror the cache's replacement decisions exactly.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn position(&self, way: u32) -> usize {
        self.order
            .iter()
            .position(|&w| w == way)
            .expect("way out of range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_victim_is_last_way() {
        let lru = LruOrder::new(4);
        assert_eq!(lru.victim(), 3);
        assert_eq!(lru.ways(), 4);
    }

    #[test]
    fn touch_promotes_to_mru() {
        let mut lru = LruOrder::new(4);
        lru.touch(3);
        assert_eq!(lru.position(3), 0);
        assert_eq!(lru.victim(), 2);
    }

    #[test]
    fn full_rotation() {
        let mut lru = LruOrder::new(3);
        lru.touch(2); // order 2,0,1
        lru.touch(1); // order 1,2,0
        assert_eq!(lru.victim(), 0);
        lru.touch(0); // order 0,1,2
        assert_eq!(lru.victim(), 2);
    }

    #[test]
    fn repeated_touch_is_stable() {
        let mut lru = LruOrder::new(2);
        lru.touch(0);
        lru.touch(0);
        assert_eq!(lru.victim(), 1);
    }

    #[test]
    fn single_way_set() {
        let mut lru = LruOrder::new(1);
        assert_eq!(lru.victim(), 0);
        lru.touch(0);
        assert_eq!(lru.victim(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        let _ = LruOrder::new(0);
    }

    #[test]
    #[should_panic(expected = "way out of range")]
    fn touch_out_of_range_panics() {
        LruOrder::new(2).touch(5);
    }
}
