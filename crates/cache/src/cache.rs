//! The set-associative data cache.

use crate::event::{Access, SnoopAction, SnoopOp, SnoopReply, WriteHitOutcome};
use crate::lru::LruOrder;
use crate::protocol::{Protocol, ProtocolKind};
use crate::state::LineState;
use hmp_mem::{Addr, LINE_BYTES, LINE_WORDS};
use hmp_sim::{Cycle, Observer, SimEvent, SnoopActionKind};

/// Geometry of a data cache. Line size is fixed at the platform's 32
/// bytes; sets and ways are configurable.
///
/// The default (128 sets × 4 ways = 16 KiB) approximates the ARM920T's
/// 16 KiB data cache; the PowerPC755's 32 KiB / 8-way cache is
/// `CacheConfig { sets: 128, ways: 8 }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
}

impl CacheConfig {
    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u32 {
        self.sets * self.ways * LINE_BYTES
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { sets: 128, ways: 4 }
    }
}

/// A line evicted to make room for a fill. If `dirty`, the platform must
/// write it back to memory before (or while) the fill proceeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictedLine {
    /// Line-aligned base address of the victim.
    pub addr: Addr,
    /// Whether the data is newer than memory.
    pub dirty: bool,
    /// The line contents.
    pub data: [u32; LINE_WORDS as usize],
}

/// Outcome of a processor-side read probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadProbe {
    /// The word was found; no bus traffic needed.
    Hit(u32),
    /// Line absent: the platform must fetch it (line fill for cacheable
    /// regions). A victim may have been evicted to free the way.
    Miss {
        /// Evicted line, if the set was full.
        victim: Option<EvictedLine>,
    },
}

/// Outcome of a processor-side write probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteProbe {
    /// The write committed locally (line was M or E).
    Hit,
    /// The line is present but shared: an upgrade (invalidate) broadcast
    /// must complete on the bus, then [`DataCache::complete_upgrade`].
    HitNeedsUpgrade,
    /// Write-through line: the word was written locally and must also be
    /// written to memory as a single-word bus write.
    HitWriteThrough,
    /// Write-allocate miss: fetch the line with write intent, then
    /// [`DataCache::commit_write`]. A victim may have been evicted.
    Miss {
        /// Evicted line, if the set was full.
        victim: Option<EvictedLine>,
    },
    /// No-write-allocate miss (write-through regions): the word goes to
    /// memory as a single-word bus write; the cache is untouched.
    MissNoAllocate,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Line {
    tag: u32,
    state: LineState,
    data: [u32; LINE_WORDS as usize],
    /// Write-through lines follow the SI protocol regardless of the
    /// cache's main protocol (Intel486 behaviour, paper §3).
    write_through: bool,
}

#[derive(Debug, Clone)]
struct CacheSet {
    ways: Vec<Option<Line>>,
    lru: LruOrder,
}

/// A snooping, set-associative, LRU data cache with real data storage.
///
/// The cache is a passive state container. Methods fall into three groups:
///
/// * **processor side** — [`probe_read`](DataCache::probe_read),
///   [`probe_write`](DataCache::probe_write), completed by
///   [`fill`](DataCache::fill), [`commit_write`](DataCache::commit_write)
///   and [`complete_upgrade`](DataCache::complete_upgrade) once the bus has
///   done its part;
/// * **snoop side** — [`snoop`](DataCache::snoop), fed by the wrapper with
///   the (possibly translated) bus operation;
/// * **maintenance** — [`flush_line`](DataCache::flush_line) /
///   [`invalidate_line`](DataCache::invalidate_line), used by the software
///   solution's explicit drain loop and by the ARM920T's snoop ISR.
///
/// # Examples
///
/// ```
/// use hmp_cache::{Access, CacheConfig, DataCache, ProtocolKind, ReadProbe, LineState};
/// use hmp_mem::Addr;
/// use hmp_sim::{Cycle, NullObserver};
///
/// let mut c = DataCache::new(CacheConfig::default(), ProtocolKind::Mesi);
/// let a = Addr::new(0x100);
/// assert!(matches!(c.probe_read(a, false), ReadProbe::Miss { victim: None }));
/// c.fill(a, [7; 8], Access::Read, false, false, Cycle::ZERO, &mut NullObserver);
/// assert_eq!(c.line_state(a), Some(LineState::Exclusive));
/// assert!(matches!(c.probe_read(a, false), ReadProbe::Hit(7)));
/// ```
#[derive(Debug, Clone)]
pub struct DataCache {
    config: CacheConfig,
    protocol: ProtocolKind,
    sets: Vec<CacheSet>,
    /// Index of the owning processor, carried in emitted [`SimEvent`]s.
    owner: usize,
    /// Per-bucket valid-line counts for the occupancy filter
    /// ([`DataCache::may_hold`]): maintained at the only insert point
    /// ([`DataCache::fill`]) and every removal point, so a zero count is
    /// a *guarantee* of absence for all lines hashing to that bucket.
    occupancy: [u32; FILTER_BUCKETS],
    /// Summary mask over `occupancy`: bit `b` set iff `occupancy[b] > 0`.
    occupied: u64,
}

/// Bucket count of the cache occupancy filter (one summary-mask bit each).
const FILTER_BUCKETS: usize = 64;

impl DataCache {
    /// Creates an empty cache with the given geometry and (write-back)
    /// protocol.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two, if `ways` is zero, or if the
    /// protocol is [`ProtocolKind::Si`] (SI governs individual
    /// write-through *lines*, not whole caches).
    pub fn new(config: CacheConfig, protocol: ProtocolKind) -> Self {
        assert!(
            config.sets.is_power_of_two(),
            "set count must be a power of two"
        );
        assert!(config.ways > 0, "associativity must be positive");
        assert!(
            protocol != ProtocolKind::Si,
            "SI is a per-line policy, not a cache protocol"
        );
        let sets = (0..config.sets)
            .map(|_| CacheSet {
                ways: (0..config.ways).map(|_| None).collect(),
                lru: LruOrder::new(config.ways),
            })
            .collect();
        DataCache {
            config,
            protocol,
            sets,
            owner: 0,
            occupancy: [0; FILTER_BUCKETS],
            occupied: 0,
        }
    }

    /// Empties the cache in place — every line invalid, LRU orders back
    /// to construction state, occupancy filter zeroed — reusing all
    /// storage. Dirty data is dropped without write-back: this is a
    /// cross-run reset, not a coherence operation.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            for way in &mut set.ways {
                *way = None;
            }
            set.lru.reset();
        }
        self.occupancy = [0; FILTER_BUCKETS];
        self.occupied = 0;
    }

    /// Tags the cache with its owning processor's index; the tag only
    /// labels emitted [`SimEvent`]s.
    #[must_use]
    pub fn with_owner(mut self, owner: usize) -> Self {
        self.owner = owner;
        self
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// The write-back protocol this cache speaks.
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    fn set_index(&self, addr: Addr) -> usize {
        ((addr.line_base().as_u32() / LINE_BYTES) % self.config.sets) as usize
    }

    fn tag(&self, addr: Addr) -> u32 {
        addr.line_base().as_u32() / LINE_BYTES / self.config.sets
    }

    fn line_proto(&self, write_through: bool) -> &'static dyn Protocol {
        if write_through {
            ProtocolKind::Si.protocol()
        } else {
            self.protocol.protocol()
        }
    }

    /// The occupancy-filter bucket a line hashes to.
    fn filter_bucket(addr: Addr) -> usize {
        (((addr.line_base().as_u32() / LINE_BYTES).wrapping_mul(0x9E37_79B9)) >> 26) as usize
    }

    fn filter_add(&mut self, addr: Addr) {
        let b = Self::filter_bucket(addr);
        self.occupancy[b] += 1;
        self.occupied |= 1 << b;
    }

    fn filter_remove(&mut self, addr: Addr) {
        let b = Self::filter_bucket(addr);
        debug_assert!(self.occupancy[b] > 0, "filter underflow at {addr}");
        self.occupancy[b] -= 1;
        if self.occupancy[b] == 0 {
            self.occupied &= !(1 << b);
        }
    }

    /// O(1) absence filter for the snoop fast path: `false` *guarantees*
    /// the cache does not hold the line containing `addr` (no tag lookup
    /// needed); `true` means it might (hash-bucket occupancy, so false
    /// positives occur, never false negatives).
    #[inline]
    pub fn may_hold(&self, addr: Addr) -> bool {
        self.occupied & (1 << Self::filter_bucket(addr)) != 0
    }

    fn find_way(&self, addr: Addr) -> Option<u32> {
        let tag = self.tag(addr);
        let set = &self.sets[self.set_index(addr)];
        set.ways
            .iter()
            .enumerate()
            .find_map(|(i, l)| l.as_ref().filter(|l| l.tag == tag).map(|_| i as u32))
    }

    /// Evicts to guarantee a free way in `addr`'s set; returns the victim
    /// if a valid line had to leave.
    fn make_room(&mut self, addr: Addr) -> Option<EvictedLine> {
        let si = self.set_index(addr);
        let sets_count = self.config.sets;
        let set = &mut self.sets[si];
        if set.ways.iter().any(|w| w.is_none()) {
            return None;
        }
        let victim_way = set.lru.victim();
        let line = set.ways[victim_way as usize]
            .take()
            .expect("victim way is occupied when the set is full");
        let base = (line.tag * sets_count + si as u32) * LINE_BYTES;
        self.filter_remove(Addr::new(base));
        Some(EvictedLine {
            addr: Addr::new(base),
            dirty: line.state.is_dirty(),
            data: line.data,
        })
    }

    /// Processor-side read. `write_through` gives the region's line policy
    /// in case the access misses and a later [`fill`](DataCache::fill)
    /// allocates.
    pub fn probe_read(&mut self, addr: Addr, write_through: bool) -> ReadProbe {
        let _ = write_through; // policy only matters at fill time
        if let Some(way) = self.find_way(addr) {
            let si = self.set_index(addr);
            let set = &mut self.sets[si];
            set.lru.touch(way);
            let line = set.ways[way as usize].as_ref().expect("found way");
            return ReadProbe::Hit(line.data[addr.word_offset_in_line() as usize]);
        }
        ReadProbe::Miss {
            victim: self.make_room(addr),
        }
    }

    /// Processor-side write of `value` to the word at `addr`.
    pub fn probe_write(&mut self, addr: Addr, value: u32, write_through: bool) -> WriteProbe {
        if let Some(way) = self.find_way(addr) {
            let si = self.set_index(addr);
            let wt = self.sets[si].ways[way as usize]
                .as_ref()
                .expect("found way")
                .write_through;
            let state = self.sets[si].ways[way as usize]
                .as_ref()
                .expect("found way")
                .state;
            match self.line_proto(wt).write_hit(state) {
                WriteHitOutcome::Local(next) => {
                    let set = &mut self.sets[si];
                    set.lru.touch(way);
                    let line = set.ways[way as usize].as_mut().expect("found way");
                    line.data[addr.word_offset_in_line() as usize] = value;
                    line.state = next;
                    WriteProbe::Hit
                }
                WriteHitOutcome::NeedsUpgrade(_) => WriteProbe::HitNeedsUpgrade,
                WriteHitOutcome::WriteThrough(next) => {
                    let set = &mut self.sets[si];
                    set.lru.touch(way);
                    let line = set.ways[way as usize].as_mut().expect("found way");
                    line.data[addr.word_offset_in_line() as usize] = value;
                    line.state = next;
                    WriteProbe::HitWriteThrough
                }
            }
        } else if write_through || !self.protocol.protocol().allocates_on_write() {
            WriteProbe::MissNoAllocate
        } else {
            WriteProbe::Miss {
                victim: self.make_room(addr),
            }
        }
    }

    /// Installs a line after the bus fetched it. `access` and
    /// `shared_signal` determine the fill state through the line's
    /// protocol; `write_through` selects SI line policy. The install is
    /// reported to `obs` as [`SimEvent::CacheFill`].
    ///
    /// # Panics
    ///
    /// Panics if the line is already present or no way is free (the probe
    /// that reported the miss guarantees a free way).
    #[allow(clippy::too_many_arguments)]
    pub fn fill(
        &mut self,
        addr: Addr,
        data: [u32; LINE_WORDS as usize],
        access: Access,
        shared_signal: bool,
        write_through: bool,
        at: Cycle,
        obs: &mut impl Observer,
    ) {
        assert!(
            self.find_way(addr).is_none(),
            "fill of already-present line {addr}"
        );
        let state = self
            .line_proto(write_through)
            .fill_state(access, shared_signal);
        let tag = self.tag(addr);
        let si = self.set_index(addr);
        let set = &mut self.sets[si];
        let way = set
            .ways
            .iter()
            .position(|w| w.is_none())
            .expect("a free way must exist at fill time") as u32;
        set.ways[way as usize] = Some(Line {
            tag,
            state,
            data,
            write_through,
        });
        set.lru.touch(way);
        self.filter_add(addr);
        obs.on_event(
            at,
            SimEvent::CacheFill {
                owner: self.owner,
                addr: u64::from(addr.line_base().as_u32()),
                shared: shared_signal,
            },
        );
    }

    /// Writes the word of a line that was just filled with write intent.
    ///
    /// # Panics
    ///
    /// Panics if the line is absent.
    pub fn commit_write(&mut self, addr: Addr, value: u32) {
        let way = self.find_way(addr).expect("commit_write on absent line");
        let si = self.set_index(addr);
        let line = self.sets[si].ways[way as usize]
            .as_mut()
            .expect("found way");
        line.data[addr.word_offset_in_line() as usize] = value;
    }

    /// Finishes a [`WriteProbe::HitNeedsUpgrade`] after the upgrade
    /// broadcast completed on the bus.
    ///
    /// Returns `false` if the line was snoop-invalidated while the upgrade
    /// was waiting for the bus — the caller must restart the store as a
    /// write miss.
    pub fn complete_upgrade(&mut self, addr: Addr, value: u32) -> bool {
        let Some(way) = self.find_way(addr) else {
            return false;
        };
        let si = self.set_index(addr);
        let wt = self.sets[si].ways[way as usize]
            .as_ref()
            .expect("found way")
            .write_through;
        let state = self.sets[si].ways[way as usize]
            .as_ref()
            .expect("found way")
            .state;
        match self.line_proto(wt).write_hit(state) {
            WriteHitOutcome::NeedsUpgrade(next) => {
                let set = &mut self.sets[si];
                set.lru.touch(way);
                let line = set.ways[way as usize].as_mut().expect("found way");
                line.state = next;
                line.data[addr.word_offset_in_line() as usize] = value;
                true
            }
            // The line state changed (e.g. someone drained us to a state
            // that can now take the write silently) — commit directly.
            WriteHitOutcome::Local(next) | WriteHitOutcome::WriteThrough(next) => {
                let set = &mut self.sets[si];
                set.lru.touch(way);
                let line = set.ways[way as usize].as_mut().expect("found way");
                line.state = next;
                line.data[addr.word_offset_in_line() as usize] = value;
                true
            }
        }
    }

    /// Presents a (wrapper-translated) bus operation to the snoop port.
    ///
    /// Returns `None` if the cache does not hold the line. Otherwise the
    /// state transition is applied immediately and the reply carries any
    /// data the platform must move (write-back or cache-to-cache supply).
    /// Lines whose next state is Invalid are removed.
    pub fn snoop(
        &mut self,
        addr: Addr,
        op: SnoopOp,
        at: Cycle,
        obs: &mut impl Observer,
    ) -> Option<SnoopReply> {
        let way = self.find_way(addr)?;
        let si = self.set_index(addr);
        let (old_state, wt, data) = {
            let line = self.sets[si].ways[way as usize]
                .as_ref()
                .expect("found way");
            (line.state, line.write_through, line.data)
        };
        let t = self.line_proto(wt).snoop(old_state, op);
        let set = &mut self.sets[si];
        if t.next == LineState::Invalid {
            set.ways[way as usize] = None;
            self.filter_remove(addr);
        } else {
            set.ways[way as usize].as_mut().expect("found way").state = t.next;
        }
        let carries_data = !matches!(t.action, SnoopAction::None);
        obs.on_event(
            at,
            SimEvent::SnoopHit {
                owner: self.owner,
                addr: u64::from(addr.as_u32()),
                action: match t.action {
                    SnoopAction::None => SnoopActionKind::StateOnly,
                    SnoopAction::WritebackLine => SnoopActionKind::Writeback,
                    SnoopAction::SupplyLine => SnoopActionKind::Supply,
                },
                asserts_shared: t.asserts_shared,
            },
        );
        Some(SnoopReply {
            old_state,
            new_state: t.next,
            action: t.action,
            asserts_shared: t.asserts_shared,
            data: carries_data.then_some(data),
        })
    }

    /// Drains a line: removes it and returns `(was_dirty, data)` so the
    /// caller can write dirty data back. Returns `None` if absent.
    ///
    /// This is the PowerPC `dcbf`-style operation the software solution and
    /// the ARM920T's snoop ISR use.
    pub fn flush_line(&mut self, addr: Addr) -> Option<(bool, [u32; LINE_WORDS as usize])> {
        let way = self.find_way(addr)?;
        let si = self.set_index(addr);
        let line = self.sets[si].ways[way as usize].take().expect("found way");
        self.filter_remove(addr);
        Some((line.state.is_dirty(), line.data))
    }

    /// Invalidates a line without returning data.
    ///
    /// # Panics
    ///
    /// Panics if the line is dirty — silently dropping dirty data is a
    /// coherence bug; use [`flush_line`](DataCache::flush_line).
    pub fn invalidate_line(&mut self, addr: Addr) {
        if let Some(way) = self.find_way(addr) {
            let si = self.set_index(addr);
            let line = self.sets[si].ways[way as usize].take().expect("found way");
            assert!(
                !line.state.is_dirty(),
                "invalidate_line would drop dirty data at {addr}"
            );
            self.filter_remove(addr);
        }
    }

    /// Fault injection: flips the state bit of the line containing
    /// `addr`, returning `(before, after)` if the line was present.
    ///
    /// The flip models single-event upsets in the state RAM: a clean
    /// line (`Shared`/`Exclusive`) is promoted to `Modified` (the cache
    /// now claims ownership it never acquired — a protocol break other
    /// caches cannot see), and a dirty line (`Modified`/`Owned`) decays
    /// to `Shared` (its dirty bit is lost, so the write-back never
    /// happens). Deterministic: the same state always flips the same way.
    pub fn corrupt_line_state(&mut self, addr: Addr) -> Option<(LineState, LineState)> {
        let way = self.find_way(addr)?;
        let si = self.set_index(addr);
        let line = self.sets[si].ways[way as usize]
            .as_mut()
            .expect("found way");
        let before = line.state;
        // The decayed clean state must be one the protocol's state RAM
        // can encode: MEI has no Shared, so its dirty lines decay to
        // Exclusive (equally clean, equally wrong).
        let clean = if self.protocol.has_state(LineState::Shared) {
            LineState::Shared
        } else {
            LineState::Exclusive
        };
        let after = match before {
            LineState::Shared | LineState::Exclusive => LineState::Modified,
            LineState::Modified | LineState::Owned => clean,
            LineState::Invalid => return None,
        };
        line.state = after;
        Some((before, after))
    }

    /// Coherence state of the line containing `addr`, if present.
    pub fn line_state(&self, addr: Addr) -> Option<LineState> {
        self.find_way(addr).map(|way| {
            self.sets[self.set_index(addr)].ways[way as usize]
                .as_ref()
                .expect("found way")
                .state
        })
    }

    /// Returns `true` if the line containing `addr` is present.
    pub fn contains(&self, addr: Addr) -> bool {
        self.find_way(addr).is_some()
    }

    /// Reads a word without touching LRU or state — for checkers and tests.
    pub fn peek_word(&self, addr: Addr) -> Option<u32> {
        self.find_way(addr).map(|way| {
            self.sets[self.set_index(addr)].ways[way as usize]
                .as_ref()
                .expect("found way")
                .data[addr.word_offset_in_line() as usize]
        })
    }

    /// Iterates `(line_base, state)` over all valid lines.
    pub fn iter_lines(&self) -> impl Iterator<Item = (Addr, LineState)> + '_ {
        let sets_count = self.config.sets;
        self.sets.iter().enumerate().flat_map(move |(si, set)| {
            set.ways.iter().filter_map(move |l| {
                l.as_ref().map(|l| {
                    let base = (l.tag * sets_count + si as u32) * LINE_BYTES;
                    (Addr::new(base), l.state)
                })
            })
        })
    }

    /// Number of valid lines currently held.
    pub fn valid_lines(&self) -> usize {
        self.iter_lines().count()
    }

    /// Number of dirty (M or O) lines currently held.
    pub fn dirty_lines(&self) -> usize {
        self.iter_lines().filter(|(_, s)| s.is_dirty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmp_sim::NullObserver;

    fn cache(kind: ProtocolKind) -> DataCache {
        DataCache::new(CacheConfig { sets: 4, ways: 2 }, kind)
    }

    fn filled_line(v: u32) -> [u32; 8] {
        [v; 8]
    }

    #[test]
    fn corrupt_line_state_flips_deterministically() {
        let mut c = cache(ProtocolKind::Mesi);
        let a = Addr::new(0x40);
        assert_eq!(c.corrupt_line_state(a), None, "absent line: no flip");
        c.fill(
            a,
            filled_line(5),
            Access::Read,
            true,
            false,
            Cycle::ZERO,
            &mut NullObserver,
        );
        assert_eq!(c.line_state(a), Some(LineState::Shared));
        assert_eq!(
            c.corrupt_line_state(a),
            Some((LineState::Shared, LineState::Modified)),
            "clean line promotes to a phantom Modified"
        );
        assert_eq!(c.line_state(a), Some(LineState::Modified));
        assert_eq!(
            c.corrupt_line_state(a),
            Some((LineState::Modified, LineState::Shared)),
            "dirty line loses its dirty bit"
        );
    }

    #[test]
    fn read_miss_then_hit() {
        let mut c = cache(ProtocolKind::Mesi);
        let a = Addr::new(0x40);
        assert_eq!(c.probe_read(a, false), ReadProbe::Miss { victim: None });
        c.fill(
            a,
            filled_line(5),
            Access::Read,
            false,
            false,
            Cycle::ZERO,
            &mut NullObserver,
        );
        assert_eq!(c.line_state(a), Some(LineState::Exclusive));
        assert_eq!(c.probe_read(a.add_words(3), false), ReadProbe::Hit(5));
        assert_eq!(c.valid_lines(), 1);
    }

    #[test]
    fn write_allocate_flow() {
        let mut c = cache(ProtocolKind::Mesi);
        let a = Addr::new(0x80);
        assert_eq!(
            c.probe_write(a, 9, false),
            WriteProbe::Miss { victim: None }
        );
        c.fill(
            a,
            filled_line(0),
            Access::Write,
            false,
            false,
            Cycle::ZERO,
            &mut NullObserver,
        );
        c.commit_write(a, 9);
        assert_eq!(c.line_state(a), Some(LineState::Modified));
        assert_eq!(c.peek_word(a), Some(9));
        assert_eq!(c.peek_word(a.add_words(1)), Some(0));
        assert_eq!(c.dirty_lines(), 1);
    }

    #[test]
    fn write_hit_on_exclusive_is_silent() {
        let mut c = cache(ProtocolKind::Mesi);
        let a = Addr::new(0x40);
        c.fill(
            a,
            filled_line(1),
            Access::Read,
            false,
            false,
            Cycle::ZERO,
            &mut NullObserver,
        );
        assert_eq!(c.probe_write(a, 2, false), WriteProbe::Hit);
        assert_eq!(c.line_state(a), Some(LineState::Modified));
        assert_eq!(c.peek_word(a), Some(2));
    }

    #[test]
    fn write_hit_on_shared_needs_upgrade() {
        let mut c = cache(ProtocolKind::Mesi);
        let a = Addr::new(0x40);
        c.fill(
            a,
            filled_line(1),
            Access::Read,
            true,
            false,
            Cycle::ZERO,
            &mut NullObserver,
        );
        assert_eq!(c.line_state(a), Some(LineState::Shared));
        assert_eq!(c.probe_write(a, 2, false), WriteProbe::HitNeedsUpgrade);
        // Value must NOT be committed before the upgrade completes.
        assert_eq!(c.peek_word(a), Some(1));
        assert!(c.complete_upgrade(a, 2));
        assert_eq!(c.line_state(a), Some(LineState::Modified));
        assert_eq!(c.peek_word(a), Some(2));
    }

    #[test]
    fn complete_upgrade_after_snoop_invalidate_fails() {
        let mut c = cache(ProtocolKind::Mesi);
        let a = Addr::new(0x40);
        c.fill(
            a,
            filled_line(1),
            Access::Read,
            true,
            false,
            Cycle::ZERO,
            &mut NullObserver,
        );
        assert_eq!(c.probe_write(a, 2, false), WriteProbe::HitNeedsUpgrade);
        // A remote upgrade sneaks in first.
        let reply = c
            .snoop(a, SnoopOp::Upgrade, Cycle::ZERO, &mut NullObserver)
            .expect("line present");
        assert_eq!(reply.new_state, LineState::Invalid);
        assert!(!c.complete_upgrade(a, 2), "line was lost");
        assert!(!c.contains(a));
    }

    #[test]
    fn write_through_line_flow() {
        let mut c = cache(ProtocolKind::Mesi);
        let a = Addr::new(0xC0);
        // Read-allocate a write-through line: SI protocol → Shared.
        c.fill(
            a,
            filled_line(3),
            Access::Read,
            false,
            true,
            Cycle::ZERO,
            &mut NullObserver,
        );
        assert_eq!(c.line_state(a), Some(LineState::Shared));
        // Write hits store locally and demand a bus word-write.
        assert_eq!(c.probe_write(a, 4, true), WriteProbe::HitWriteThrough);
        assert_eq!(c.peek_word(a), Some(4));
        assert_eq!(c.line_state(a), Some(LineState::Shared));
        // Write misses in write-through space do not allocate.
        assert_eq!(
            c.probe_write(Addr::new(0x100), 1, true),
            WriteProbe::MissNoAllocate
        );
        assert_eq!(c.valid_lines(), 1);
    }

    #[test]
    fn eviction_prefers_free_way_then_lru() {
        let mut c = cache(ProtocolKind::Mesi); // 4 sets × 2 ways
                                               // Three different tags mapping to set 0 (stride = sets × 32 = 128).
        let a = Addr::new(0x000);
        let b = Addr::new(0x080);
        let d = Addr::new(0x100);
        c.fill(
            a,
            filled_line(1),
            Access::Read,
            false,
            false,
            Cycle::ZERO,
            &mut NullObserver,
        );
        assert_eq!(c.probe_read(b, false), ReadProbe::Miss { victim: None });
        c.fill(
            b,
            filled_line(2),
            Access::Read,
            false,
            false,
            Cycle::ZERO,
            &mut NullObserver,
        );
        // Touch `a` so `b` becomes LRU.
        assert!(matches!(c.probe_read(a, false), ReadProbe::Hit(_)));
        let ReadProbe::Miss { victim } = c.probe_read(d, false) else {
            panic!("expected miss");
        };
        let victim = victim.expect("set was full");
        assert_eq!(victim.addr, b);
        assert!(!victim.dirty);
        assert_eq!(victim.data, filled_line(2));
        assert!(!c.contains(b));
        c.fill(
            d,
            filled_line(3),
            Access::Read,
            false,
            false,
            Cycle::ZERO,
            &mut NullObserver,
        );
        assert!(c.contains(a) && c.contains(d));
    }

    #[test]
    fn dirty_victim_reports_dirty() {
        let mut c = cache(ProtocolKind::Mei);
        let a = Addr::new(0x000);
        let b = Addr::new(0x080);
        let d = Addr::new(0x100);
        c.fill(
            a,
            filled_line(1),
            Access::Write,
            false,
            false,
            Cycle::ZERO,
            &mut NullObserver,
        );
        c.commit_write(a, 42);
        c.fill(
            b,
            filled_line(2),
            Access::Read,
            false,
            false,
            Cycle::ZERO,
            &mut NullObserver,
        );
        // `a` is LRU? No: LRU is `a` touched first then `b` — victim is `a`.
        let WriteProbe::Miss { victim } = c.probe_write(d, 9, false) else {
            panic!("expected write miss");
        };
        let victim = victim.expect("set full");
        assert_eq!(victim.addr, a);
        assert!(victim.dirty);
        assert_eq!(victim.data[0], 42);
    }

    #[test]
    fn snoop_read_on_modified_mesi() {
        let mut c = cache(ProtocolKind::Mesi);
        let a = Addr::new(0x40);
        c.fill(
            a,
            filled_line(0),
            Access::Write,
            false,
            false,
            Cycle::ZERO,
            &mut NullObserver,
        );
        c.commit_write(a, 7);
        let r = c
            .snoop(a, SnoopOp::Read, Cycle::ZERO, &mut NullObserver)
            .expect("present");
        assert_eq!(r.old_state, LineState::Modified);
        assert_eq!(r.new_state, LineState::Shared);
        assert_eq!(r.action, SnoopAction::WritebackLine);
        assert!(r.asserts_shared);
        assert_eq!(r.data.expect("carries data")[0], 7);
        assert_eq!(c.line_state(a), Some(LineState::Shared));
    }

    #[test]
    fn snoop_write_removes_line() {
        let mut c = cache(ProtocolKind::Mesi);
        let a = Addr::new(0x40);
        c.fill(
            a,
            filled_line(1),
            Access::Read,
            false,
            false,
            Cycle::ZERO,
            &mut NullObserver,
        );
        let r = c
            .snoop(a, SnoopOp::Write, Cycle::ZERO, &mut NullObserver)
            .expect("present");
        assert_eq!(r.new_state, LineState::Invalid);
        assert!(!c.contains(a));
        assert_eq!(
            c.snoop(a, SnoopOp::Write, Cycle::ZERO, &mut NullObserver),
            None,
            "second snoop misses"
        );
    }

    #[test]
    fn snoop_absent_line_is_none() {
        let mut c = cache(ProtocolKind::Msi);
        assert_eq!(
            c.snoop(
                Addr::new(0x40),
                SnoopOp::Read,
                Cycle::ZERO,
                &mut NullObserver
            ),
            None
        );
    }

    #[test]
    fn flush_line_returns_dirty_data() {
        let mut c = cache(ProtocolKind::Mei);
        let a = Addr::new(0x40);
        c.fill(
            a,
            filled_line(0),
            Access::Write,
            false,
            false,
            Cycle::ZERO,
            &mut NullObserver,
        );
        c.commit_write(a, 5);
        let (dirty, data) = c.flush_line(a).expect("present");
        assert!(dirty);
        assert_eq!(data[0], 5);
        assert!(!c.contains(a));
        assert_eq!(c.flush_line(a), None);
    }

    #[test]
    fn invalidate_clean_line() {
        let mut c = cache(ProtocolKind::Mesi);
        let a = Addr::new(0x40);
        c.fill(
            a,
            filled_line(1),
            Access::Read,
            false,
            false,
            Cycle::ZERO,
            &mut NullObserver,
        );
        c.invalidate_line(a);
        assert!(!c.contains(a));
        c.invalidate_line(a); // absent → no-op
    }

    #[test]
    #[should_panic(expected = "drop dirty data")]
    fn invalidate_dirty_line_panics() {
        let mut c = cache(ProtocolKind::Mesi);
        let a = Addr::new(0x40);
        c.fill(
            a,
            filled_line(1),
            Access::Write,
            false,
            false,
            Cycle::ZERO,
            &mut NullObserver,
        );
        c.invalidate_line(a);
    }

    #[test]
    #[should_panic(expected = "already-present")]
    fn double_fill_panics() {
        let mut c = cache(ProtocolKind::Mesi);
        let a = Addr::new(0x40);
        c.fill(
            a,
            filled_line(1),
            Access::Read,
            false,
            false,
            Cycle::ZERO,
            &mut NullObserver,
        );
        c.fill(
            a,
            filled_line(2),
            Access::Read,
            false,
            false,
            Cycle::ZERO,
            &mut NullObserver,
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = DataCache::new(CacheConfig { sets: 3, ways: 2 }, ProtocolKind::Mesi);
    }

    #[test]
    #[should_panic(expected = "per-line policy")]
    fn si_cache_protocol_panics() {
        let _ = DataCache::new(CacheConfig::default(), ProtocolKind::Si);
    }

    #[test]
    fn iter_lines_reconstructs_addresses() {
        let mut c = cache(ProtocolKind::Mesi);
        for (i, base) in [0x000u32, 0x040, 0x080, 0x1C0].iter().enumerate() {
            c.fill(
                Addr::new(*base),
                filled_line(i as u32),
                Access::Read,
                false,
                false,
                Cycle::ZERO,
                &mut NullObserver,
            );
        }
        let mut lines: Vec<u32> = c.iter_lines().map(|(a, _)| a.as_u32()).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![0x000, 0x040, 0x080, 0x1C0]);
        assert_eq!(c.config().capacity_bytes(), 4 * 2 * 32);
        assert_eq!(c.protocol(), ProtocolKind::Mesi);
    }

    #[test]
    fn msi_read_fill_is_shared_and_write_needs_upgrade() {
        let mut c = cache(ProtocolKind::Msi);
        let a = Addr::new(0x40);
        c.fill(
            a,
            filled_line(1),
            Access::Read,
            false,
            false,
            Cycle::ZERO,
            &mut NullObserver,
        );
        assert_eq!(c.line_state(a), Some(LineState::Shared));
        assert_eq!(c.probe_write(a, 2, false), WriteProbe::HitNeedsUpgrade);
    }

    /// `may_hold` must never report a false negative: every resident line
    /// is claimed by the filter.
    fn assert_filter_covers(c: &DataCache) {
        for (base, _) in c.iter_lines() {
            assert!(c.may_hold(base), "filter lost resident line {base}");
        }
    }

    #[test]
    fn filter_tracks_fills_and_evictions() {
        let mut c = cache(ProtocolKind::Mesi);
        let a = Addr::new(0x40);
        assert!(!c.may_hold(a), "empty cache claims nothing");
        // Fill three lines mapping to the same set (sets=4, so stride 0x80).
        for i in 0..3u32 {
            let addr = Addr::new(0x40 + i * 0x80);
            // probe_read on a miss evicts to guarantee a free way.
            let _ = c.probe_read(addr, false);
            c.fill(
                addr,
                filled_line(i),
                Access::Read,
                false,
                false,
                Cycle::ZERO,
                &mut NullObserver,
            );
            assert!(c.may_hold(addr));
            assert_filter_covers(&c);
        }
        // Only two ways: the first line was evicted and its filter count
        // dropped, so unless its bucket collides it is no longer claimed.
        assert_eq!(c.valid_lines(), 2);
        assert_filter_covers(&c);
    }

    #[test]
    fn filter_clears_on_snoop_invalidate_flush_and_invalidate() {
        let mut c = cache(ProtocolKind::Mesi);
        let a = Addr::new(0x40);
        let b = Addr::new(0x80);
        let d = Addr::new(0xC0);
        for (addr, v) in [(a, 1), (b, 2), (d, 3)] {
            c.fill(
                addr,
                filled_line(v),
                Access::Read,
                false,
                false,
                Cycle::ZERO,
                &mut NullObserver,
            );
        }
        assert_filter_covers(&c);
        // Snoop-to-Invalid removes `a` from the filter.
        let reply = c.snoop(a, SnoopOp::Write, Cycle::ZERO, &mut NullObserver);
        assert!(reply.is_some());
        assert!(!c.contains(a));
        assert!(!c.may_hold(a), "snoop invalidate must release the filter");
        // flush_line removes `b`.
        assert!(c.flush_line(b).is_some());
        assert!(!c.may_hold(b), "flush must release the filter");
        // invalidate_line removes `d` (clean, so no dirty-drop panic).
        c.invalidate_line(d);
        assert!(!c.may_hold(d), "invalidate must release the filter");
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    fn filter_survives_corruption_and_clear() {
        let mut c = cache(ProtocolKind::Mesi);
        let a = Addr::new(0x40);
        c.fill(
            a,
            filled_line(7),
            Access::Read,
            false,
            false,
            Cycle::ZERO,
            &mut NullObserver,
        );
        // corrupt_line_state flips state but preserves presence.
        assert!(c.corrupt_line_state(a).is_some());
        assert!(c.may_hold(a));
        assert_filter_covers(&c);
        c.clear();
        assert_eq!(c.valid_lines(), 0);
        assert!(!c.may_hold(a), "clear must empty the filter");
    }

    #[test]
    fn filter_counts_collisions_without_false_negatives() {
        // Two addresses in different sets may share a filter bucket; the
        // counted filter must keep claiming the survivor after one leaves.
        let mut c = DataCache::new(CacheConfig { sets: 8, ways: 2 }, ProtocolKind::Mesi);
        let addrs: Vec<Addr> = (0..16u32).map(|i| Addr::new(i * 0x20)).collect();
        for (i, &addr) in addrs.iter().enumerate() {
            let _ = c.probe_read(addr, false);
            c.fill(
                addr,
                filled_line(i as u32),
                Access::Read,
                false,
                false,
                Cycle::ZERO,
                &mut NullObserver,
            );
            assert_filter_covers(&c);
        }
        // Flush everything still resident; the filter must end empty-handed
        // for every flushed line while never dropping a resident one.
        let resident: Vec<Addr> = c.iter_lines().map(|(base, _)| base).collect();
        for addr in resident {
            assert!(c.flush_line(addr).is_some());
            assert_filter_covers(&c);
        }
        assert_eq!(c.valid_lines(), 0);
    }
}
