//! Events exchanged between processors, caches and the snoop path.

use crate::LineState;
use core::fmt;
use hmp_mem::LINE_WORDS;

/// A processor-side access kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Access::Read => write!(f, "read"),
            Access::Write => write!(f, "write"),
        }
    }
}

/// What a snooping cache controller observes on the bus — *after* wrapper
/// translation.
///
/// The paper's central trick lives in the gap between the operation on the
/// wire and the operation a snooper sees: a wrapper may convert an observed
/// [`SnoopOp::Read`] into a [`SnoopOp::Write`] (equivalently, assert the
/// Intel486's INV pin on a read snoop) so the snooping cache invalidates or
/// drains instead of transitioning toward Shared/Owned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnoopOp {
    /// Another master reads a line.
    Read,
    /// Another master writes (or read-with-intent-to-modify).
    Write,
    /// Another master upgrades Shared → Modified (invalidate broadcast,
    /// no data transfer).
    Upgrade,
}

impl fmt::Display for SnoopOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnoopOp::Read => write!(f, "bus-read"),
            SnoopOp::Write => write!(f, "bus-write"),
            SnoopOp::Upgrade => write!(f, "bus-upgrade"),
        }
    }
}

/// Side effect a snoop hit demands from the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnoopAction {
    /// No data movement; at most a local state change.
    None,
    /// The snooped line was dirty: it must be written back to memory before
    /// the snooped transaction can complete. On the reproduced platform
    /// this is the ARTRY/HITM path — the original master retries while the
    /// owner drains.
    WritebackLine,
    /// Cache-to-cache supply (MOESI only): the owner forwards the line to
    /// the requester directly, memory is *not* updated.
    SupplyLine,
}

impl fmt::Display for SnoopAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnoopAction::None => write!(f, "none"),
            SnoopAction::WritebackLine => write!(f, "writeback"),
            SnoopAction::SupplyLine => write!(f, "supply"),
        }
    }
}

/// Outcome of presenting a snoop to a cache that holds the line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnoopReply {
    /// State before the snoop was applied.
    pub old_state: LineState,
    /// State after the snoop was applied.
    pub new_state: LineState,
    /// Required data movement.
    pub action: SnoopAction,
    /// Whether this cache drives the bus *shared* signal in response
    /// (MSI and MEI controllers never do — the root cause of the paper's
    /// Table 3 failure).
    pub asserts_shared: bool,
    /// Line data accompanying a [`SnoopAction::WritebackLine`] or
    /// [`SnoopAction::SupplyLine`]; `None` otherwise.
    pub data: Option<[u32; LINE_WORDS as usize]>,
}

/// How a protocol handles a processor write that *hits* in the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteHitOutcome {
    /// The write completes locally; the line moves to the given state.
    Local(LineState),
    /// An invalidate (upgrade) broadcast must complete on the bus first;
    /// the line then moves to the given state.
    NeedsUpgrade(LineState),
    /// Write-through: the word is written locally *and* must be written to
    /// memory on the bus; the line stays in the given state.
    WriteThrough(LineState),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings() {
        assert_eq!(Access::Read.to_string(), "read");
        assert_eq!(Access::Write.to_string(), "write");
        assert_eq!(SnoopOp::Read.to_string(), "bus-read");
        assert_eq!(SnoopOp::Write.to_string(), "bus-write");
        assert_eq!(SnoopOp::Upgrade.to_string(), "bus-upgrade");
        assert_eq!(SnoopAction::None.to_string(), "none");
        assert_eq!(SnoopAction::WritebackLine.to_string(), "writeback");
        assert_eq!(SnoopAction::SupplyLine.to_string(), "supply");
    }

    #[test]
    fn write_hit_outcome_carries_state() {
        match WriteHitOutcome::NeedsUpgrade(LineState::Modified) {
            WriteHitOutcome::NeedsUpgrade(s) => assert_eq!(s, LineState::Modified),
            _ => unreachable!(),
        }
    }
}
