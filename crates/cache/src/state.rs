//! Cache-line coherence states.

use core::fmt;

/// The union of all line states used by the protocol zoo (MOESI naming).
///
/// Individual protocols use a subset: MEI uses {M, E, I}, MSI uses
/// {M, S, I}, MESI adds E, MOESI adds O, and the write-through SI protocol
/// uses {S, I}. The paper's wrappers work precisely by steering every cache
/// away from the states its *neighbours* lack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LineState {
    /// Line not present (or invalidated).
    Invalid,
    /// Valid, clean, possibly present in other caches.
    Shared,
    /// Valid, clean, guaranteed absent from other caches.
    Exclusive,
    /// Valid, dirty, *and* possibly present (clean) in other caches —
    /// this cache is responsible for supplying/writing back the data.
    Owned,
    /// Valid, dirty, guaranteed absent from other caches.
    Modified,
}

impl LineState {
    /// Returns `true` if a line in this state holds data newer than memory.
    pub fn is_dirty(self) -> bool {
        matches!(self, LineState::Modified | LineState::Owned)
    }

    /// Returns `true` if the line may be read locally without a bus access.
    pub fn is_valid(self) -> bool {
        self != LineState::Invalid
    }

    /// Returns `true` if the line may be *written* locally without any bus
    /// transaction (i.e. this cache is the sole owner of a writable copy).
    pub fn is_writable_silently(self) -> bool {
        matches!(self, LineState::Modified | LineState::Exclusive)
    }

    /// One-letter mnemonic used in trace output and the Table 2/3
    /// reproductions (`M`, `O`, `E`, `S`, `I`).
    pub fn letter(self) -> char {
        match self {
            LineState::Invalid => 'I',
            LineState::Shared => 'S',
            LineState::Exclusive => 'E',
            LineState::Owned => 'O',
            LineState::Modified => 'M',
        }
    }
}

impl fmt::Display for LineState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

impl Default for LineState {
    /// Lines power up Invalid.
    fn default() -> Self {
        LineState::Invalid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirtiness() {
        assert!(LineState::Modified.is_dirty());
        assert!(LineState::Owned.is_dirty());
        assert!(!LineState::Exclusive.is_dirty());
        assert!(!LineState::Shared.is_dirty());
        assert!(!LineState::Invalid.is_dirty());
    }

    #[test]
    fn validity() {
        assert!(!LineState::Invalid.is_valid());
        for s in [
            LineState::Shared,
            LineState::Exclusive,
            LineState::Owned,
            LineState::Modified,
        ] {
            assert!(s.is_valid());
        }
    }

    #[test]
    fn silent_writability() {
        assert!(LineState::Modified.is_writable_silently());
        assert!(LineState::Exclusive.is_writable_silently());
        assert!(!LineState::Shared.is_writable_silently());
        assert!(!LineState::Owned.is_writable_silently());
        assert!(!LineState::Invalid.is_writable_silently());
    }

    #[test]
    fn letters_and_display() {
        assert_eq!(LineState::Modified.to_string(), "M");
        assert_eq!(LineState::Owned.letter(), 'O');
        assert_eq!(LineState::Exclusive.letter(), 'E');
        assert_eq!(LineState::Shared.letter(), 'S');
        assert_eq!(LineState::Invalid.letter(), 'I');
    }

    #[test]
    fn default_is_invalid() {
        assert_eq!(LineState::default(), LineState::Invalid);
    }
}
