//! # hmp-cache — set-associative caches and the coherence-protocol zoo
//!
//! The paper integrates processors whose cache controllers speak different
//! invalidation-based protocols:
//!
//! * **MEI** — PowerPC755 (no Shared state at all);
//! * **MSI** — the classic three-state protocol (no Exclusive state, and no
//!   shared-signal output, which is what breaks the naive MSI+MESI
//!   integration in the paper's Table 3);
//! * **MESI** — Intel Pentium-class; the Write-back Enhanced Intel486's
//!   "modified MESI" is MEI for write-back lines plus [`ProtocolKind::Si`]
//!   for write-through lines (paper §3);
//! * **MOESI** — UltraSPARC/AMD64 style, the only protocol family assumed
//!   to do cache-to-cache supply (paper §2);
//! * **SI** — the degenerate write-through protocol.
//!
//! This crate provides each FSM behind one [`Protocol`] trait, plus
//! [`DataCache`], a set-associative, LRU, write-back/write-through cache
//! that stores real data so stale reads are observable. The cache is a
//! *passive* state container: it never talks to a bus itself. The platform
//! crate orchestrates probe → bus transaction → fill, and the wrapper
//! (in `hmp-core`) decides what each snoop port actually observes.
//!
//! # Examples
//!
//! ```
//! use hmp_cache::{Access, LineState, Protocol, ProtocolKind};
//!
//! let mesi = ProtocolKind::Mesi.protocol();
//! // A read miss with the shared signal deasserted fills Exclusive...
//! assert_eq!(mesi.fill_state(Access::Read, false), LineState::Exclusive);
//! // ...and with it asserted fills Shared. The paper's wrappers exploit
//! // exactly this pair of behaviours.
//! assert_eq!(mesi.fill_state(Access::Read, true), LineState::Shared);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod event;
mod lru;
mod protocol;
mod protocols;
mod state;

pub use cache::{CacheConfig, DataCache, EvictedLine, ReadProbe, WriteProbe};
pub use event::{Access, SnoopAction, SnoopOp, SnoopReply, WriteHitOutcome};
pub use lru::LruOrder;
pub use protocol::{Protocol, ProtocolKind};
pub use protocols::{Mei, Mesi, Moesi, Msi, Si};
pub use state::LineState;
