//! MOESI — the five-state protocol with cache-to-cache supply.

use crate::protocol::{Protocol, ProtocolKind, SnoopTransition};
use crate::{Access, LineState, SnoopAction, SnoopOp, WriteHitOutcome};

/// Modified / Owned / Exclusive / Shared / Invalid.
///
/// Following the paper's assumption (§2), MOESI is the only protocol whose
/// implementations do cache-to-cache sharing: a snooped read of a dirty
/// line moves it `M → O` and the owner supplies the data directly, without
/// updating memory. The paper's wrappers must therefore suppress the `M→O`
/// transition (read→write conversion) when a MOESI processor shares a bus
/// with processors whose protocols cannot accept supplied data.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Moesi;

impl Protocol for Moesi {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Moesi
    }

    fn states(&self) -> &'static [LineState] {
        &[
            LineState::Modified,
            LineState::Owned,
            LineState::Exclusive,
            LineState::Shared,
            LineState::Invalid,
        ]
    }

    fn fill_state(&self, access: Access, shared_signal: bool) -> LineState {
        match access {
            Access::Read if shared_signal => LineState::Shared,
            Access::Read => LineState::Exclusive,
            Access::Write => LineState::Modified,
        }
    }

    fn write_hit(&self, state: LineState) -> WriteHitOutcome {
        match state {
            LineState::Shared | LineState::Owned => {
                WriteHitOutcome::NeedsUpgrade(LineState::Modified)
            }
            LineState::Exclusive | LineState::Modified => {
                WriteHitOutcome::Local(LineState::Modified)
            }
            other => panic!("MOESI write hit in impossible state {other}"),
        }
    }

    fn snoop(&self, state: LineState, op: SnoopOp) -> SnoopTransition {
        match (state, op) {
            // Dirty lines answer reads by supplying data and keeping
            // ownership — memory stays stale, that is the point of O.
            (LineState::Modified | LineState::Owned, SnoopOp::Read) => SnoopTransition {
                next: LineState::Owned,
                action: SnoopAction::SupplyLine,
                asserts_shared: true,
            },
            (LineState::Exclusive | LineState::Shared, SnoopOp::Read) => SnoopTransition {
                next: LineState::Shared,
                action: SnoopAction::None,
                asserts_shared: true,
            },
            (LineState::Modified | LineState::Owned, SnoopOp::Write) => SnoopTransition {
                next: LineState::Invalid,
                action: SnoopAction::WritebackLine,
                asserts_shared: false,
            },
            (LineState::Exclusive | LineState::Shared, SnoopOp::Write) => SnoopTransition {
                next: LineState::Invalid,
                action: SnoopAction::None,
                asserts_shared: false,
            },
            // An upgrade means some sharer writes; every copy it invalidates
            // is identical to the upgrader's, so even an O copy can drop
            // without a writeback — the new M owner carries the data.
            (_, SnoopOp::Upgrade) if state.is_valid() => SnoopTransition {
                next: LineState::Invalid,
                action: SnoopAction::None,
                asserts_shared: false,
            },
            (other, _) => panic!("MOESI snoop in impossible state {other}"),
        }
    }

    fn supplies_cache_to_cache(&self) -> bool {
        true
    }

    fn drives_shared_signal(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LineState::*;

    #[test]
    fn fill_obeys_shared_signal() {
        assert_eq!(Moesi.fill_state(Access::Read, false), Exclusive);
        assert_eq!(Moesi.fill_state(Access::Read, true), Shared);
        assert_eq!(Moesi.fill_state(Access::Write, false), Modified);
    }

    #[test]
    fn write_hits() {
        assert_eq!(
            Moesi.write_hit(Shared),
            WriteHitOutcome::NeedsUpgrade(Modified)
        );
        assert_eq!(
            Moesi.write_hit(Owned),
            WriteHitOutcome::NeedsUpgrade(Modified)
        );
        assert_eq!(Moesi.write_hit(Exclusive), WriteHitOutcome::Local(Modified));
        assert_eq!(Moesi.write_hit(Modified), WriteHitOutcome::Local(Modified));
    }

    #[test]
    fn m_to_o_supplies_data() {
        let t = Moesi.snoop(Modified, SnoopOp::Read);
        assert_eq!((t.next, t.action), (Owned, SnoopAction::SupplyLine));
        assert!(t.asserts_shared);
        // O keeps supplying on further reads.
        let t = Moesi.snoop(Owned, SnoopOp::Read);
        assert_eq!((t.next, t.action), (Owned, SnoopAction::SupplyLine));
    }

    #[test]
    fn clean_lines_share_on_snooped_read() {
        for s in [Exclusive, Shared] {
            let t = Moesi.snoop(s, SnoopOp::Read);
            assert_eq!((t.next, t.action), (Shared, SnoopAction::None));
            assert!(t.asserts_shared);
        }
    }

    #[test]
    fn snooped_writes_drain_dirty_lines() {
        for s in [Modified, Owned] {
            let t = Moesi.snoop(s, SnoopOp::Write);
            assert_eq!((t.next, t.action), (Invalid, SnoopAction::WritebackLine));
        }
        for s in [Exclusive, Shared] {
            let t = Moesi.snoop(s, SnoopOp::Write);
            assert_eq!((t.next, t.action), (Invalid, SnoopAction::None));
        }
    }

    #[test]
    fn upgrade_invalidates_without_writeback() {
        for s in [Owned, Shared, Exclusive, Modified] {
            let t = Moesi.snoop(s, SnoopOp::Upgrade);
            assert_eq!((t.next, t.action), (Invalid, SnoopAction::None), "{s}");
        }
    }

    #[test]
    fn capabilities() {
        assert!(Moesi.supplies_cache_to_cache());
        assert!(Moesi.drives_shared_signal());
        assert!(Moesi.allocates_on_write());
    }
}
