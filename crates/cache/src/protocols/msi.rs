//! MSI — the classic three-state invalidation protocol.

use crate::protocol::{Protocol, ProtocolKind, SnoopTransition};
use crate::{Access, LineState, SnoopAction, SnoopOp, WriteHitOutcome};

/// Modified / Shared / Invalid.
///
/// MSI has no Exclusive state, so every read miss fills Shared and every
/// first store to a Shared line costs an upgrade (invalidate) broadcast.
///
/// Crucially for the paper's Table 3: an MSI controller has **no
/// shared-signal output**. When an MSI cache holds a line in S and another
/// (MESI) master reads it, the MSI side stays silent, the MESI side fills
/// Exclusive, and its next store is silent too — leaving the MSI copy
/// stale. The paper's fix is to *force* the shared signal in the wrapper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Msi;

impl Protocol for Msi {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Msi
    }

    fn states(&self) -> &'static [LineState] {
        &[LineState::Modified, LineState::Shared, LineState::Invalid]
    }

    fn fill_state(&self, access: Access, _shared_signal: bool) -> LineState {
        match access {
            Access::Read => LineState::Shared,
            Access::Write => LineState::Modified,
        }
    }

    fn write_hit(&self, state: LineState) -> WriteHitOutcome {
        match state {
            LineState::Shared => WriteHitOutcome::NeedsUpgrade(LineState::Modified),
            LineState::Modified => WriteHitOutcome::Local(LineState::Modified),
            other => panic!("MSI write hit in impossible state {other}"),
        }
    }

    fn snoop(&self, state: LineState, op: SnoopOp) -> SnoopTransition {
        match (state, op) {
            (LineState::Shared, SnoopOp::Read) => SnoopTransition {
                next: LineState::Shared,
                action: SnoopAction::None,
                asserts_shared: false, // no shared-signal output!
            },
            (LineState::Shared, SnoopOp::Write | SnoopOp::Upgrade) => SnoopTransition {
                next: LineState::Invalid,
                action: SnoopAction::None,
                asserts_shared: false,
            },
            (LineState::Modified, SnoopOp::Read) => SnoopTransition {
                next: LineState::Shared,
                action: SnoopAction::WritebackLine,
                asserts_shared: false,
            },
            (LineState::Modified, SnoopOp::Write | SnoopOp::Upgrade) => SnoopTransition {
                // Upgrade cannot legally hit M, but a *misintegrated*
                // heterogeneous platform (the very bug the paper fixes) can
                // produce it; drain defensively rather than corrupt data.
                next: LineState::Invalid,
                action: SnoopAction::WritebackLine,
                asserts_shared: false,
            },
            (other, _) => panic!("MSI snoop in impossible state {other}"),
        }
    }

    fn drives_shared_signal(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LineState::*;

    #[test]
    fn read_miss_always_fills_shared() {
        for shared in [false, true] {
            assert_eq!(Msi.fill_state(Access::Read, shared), Shared);
        }
        assert_eq!(Msi.fill_state(Access::Write, false), Modified);
    }

    #[test]
    fn shared_write_needs_upgrade() {
        assert_eq!(
            Msi.write_hit(Shared),
            WriteHitOutcome::NeedsUpgrade(Modified)
        );
        assert_eq!(Msi.write_hit(Modified), WriteHitOutcome::Local(Modified));
    }

    #[test]
    #[should_panic(expected = "impossible state")]
    fn write_hit_in_exclusive_is_a_bug() {
        let _ = Msi.write_hit(Exclusive);
    }

    #[test]
    fn snoop_read_keeps_shared_silently() {
        let t = Msi.snoop(Shared, SnoopOp::Read);
        assert_eq!(t.next, Shared);
        assert_eq!(t.action, SnoopAction::None);
        assert!(!t.asserts_shared, "MSI has no shared-signal output");
    }

    #[test]
    fn snoop_write_invalidates_shared() {
        for op in [SnoopOp::Write, SnoopOp::Upgrade] {
            let t = Msi.snoop(Shared, op);
            assert_eq!(t.next, Invalid);
            assert_eq!(t.action, SnoopAction::None);
        }
    }

    #[test]
    fn snoop_read_on_modified_drains_to_shared() {
        let t = Msi.snoop(Modified, SnoopOp::Read);
        assert_eq!(t.next, Shared);
        assert_eq!(t.action, SnoopAction::WritebackLine);
    }

    #[test]
    fn snoop_write_on_modified_drains_to_invalid() {
        let t = Msi.snoop(Modified, SnoopOp::Write);
        assert_eq!(t.next, Invalid);
        assert_eq!(t.action, SnoopAction::WritebackLine);
    }

    #[test]
    fn capabilities() {
        assert!(!Msi.drives_shared_signal());
        assert!(!Msi.supplies_cache_to_cache());
        assert!(Msi.allocates_on_write());
    }
}
