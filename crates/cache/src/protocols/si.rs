//! SI — the write-through protocol of the Intel486's write-through lines.

use crate::protocol::{Protocol, ProtocolKind, SnoopTransition};
use crate::{Access, LineState, SnoopAction, SnoopOp, WriteHitOutcome};

/// Shared / Invalid.
///
/// In the Write-back Enhanced Intel486, "only write-through lines can have
/// the S state … the protocol for write-through lines is the SI protocol"
/// (paper §3). Writes always go to memory (no dirty state exists), write
/// misses do not allocate, and a snooped write — or a snooped read with the
/// INV pin asserted, which the wrapper models as a converted write —
/// invalidates the line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Si;

impl Protocol for Si {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Si
    }

    fn states(&self) -> &'static [LineState] {
        &[LineState::Shared, LineState::Invalid]
    }

    fn fill_state(&self, access: Access, _shared_signal: bool) -> LineState {
        match access {
            Access::Read => LineState::Shared,
            // Write misses never allocate; a fill on write is a simulator
            // bug because `allocates_on_write` is false.
            Access::Write => panic!("SI lines do not write-allocate"),
        }
    }

    fn write_hit(&self, state: LineState) -> WriteHitOutcome {
        match state {
            LineState::Shared => WriteHitOutcome::WriteThrough(LineState::Shared),
            other => panic!("SI write hit in impossible state {other}"),
        }
    }

    fn snoop(&self, state: LineState, op: SnoopOp) -> SnoopTransition {
        match (state, op) {
            (LineState::Shared, SnoopOp::Read) => SnoopTransition {
                next: LineState::Shared,
                action: SnoopAction::None,
                asserts_shared: true,
            },
            (LineState::Shared, SnoopOp::Write | SnoopOp::Upgrade) => SnoopTransition {
                next: LineState::Invalid,
                action: SnoopAction::None,
                asserts_shared: false,
            },
            (other, _) => panic!("SI snoop in impossible state {other}"),
        }
    }

    fn allocates_on_write(&self) -> bool {
        false
    }

    fn drives_shared_signal(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LineState::*;

    #[test]
    fn read_fill_is_shared() {
        assert_eq!(Si.fill_state(Access::Read, false), Shared);
        assert_eq!(Si.fill_state(Access::Read, true), Shared);
    }

    #[test]
    #[should_panic(expected = "do not write-allocate")]
    fn write_fill_is_a_bug() {
        let _ = Si.fill_state(Access::Write, false);
    }

    #[test]
    fn writes_go_through() {
        assert_eq!(Si.write_hit(Shared), WriteHitOutcome::WriteThrough(Shared));
    }

    #[test]
    fn snooped_read_keeps_line_and_asserts_shared() {
        let t = Si.snoop(Shared, SnoopOp::Read);
        assert_eq!((t.next, t.action), (Shared, SnoopAction::None));
        assert!(t.asserts_shared);
    }

    #[test]
    fn snooped_write_invalidates() {
        for op in [SnoopOp::Write, SnoopOp::Upgrade] {
            let t = Si.snoop(Shared, op);
            assert_eq!((t.next, t.action), (Invalid, SnoopAction::None));
            assert!(!t.asserts_shared);
        }
    }

    #[test]
    fn capabilities() {
        assert!(!Si.allocates_on_write());
        assert!(Si.drives_shared_signal());
        assert!(!Si.supplies_cache_to_cache());
        assert_eq!(Si.kind(), ProtocolKind::Si);
    }

    #[test]
    #[should_panic(expected = "impossible state")]
    fn snoop_modified_is_a_bug() {
        let _ = Si.snoop(Modified, SnoopOp::Read);
    }
}
