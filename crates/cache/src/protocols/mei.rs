//! MEI — the PowerPC755's three-state protocol.

use crate::protocol::{Protocol, ProtocolKind, SnoopTransition};
use crate::{Access, LineState, SnoopAction, SnoopOp, WriteHitOutcome};

/// Modified / Exclusive / Invalid.
///
/// MEI has no notion of sharing: any snoop hit gives the line away. A
/// snooped *read* of an Exclusive line invalidates it (there is no Shared
/// state to retreat to), and a snooped hit on a Modified line raises
/// ARTRY so the line can be drained to memory first (paper §3, PowerPC755
/// behaviour).
///
/// Because MEI never shares, its controller has no shared-signal output
/// and ignores the shared signal on fills.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mei;

impl Protocol for Mei {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Mei
    }

    fn states(&self) -> &'static [LineState] {
        &[
            LineState::Modified,
            LineState::Exclusive,
            LineState::Invalid,
        ]
    }

    fn fill_state(&self, access: Access, _shared_signal: bool) -> LineState {
        match access {
            Access::Read => LineState::Exclusive,
            Access::Write => LineState::Modified,
        }
    }

    fn write_hit(&self, state: LineState) -> WriteHitOutcome {
        match state {
            LineState::Exclusive | LineState::Modified => {
                WriteHitOutcome::Local(LineState::Modified)
            }
            other => panic!("MEI write hit in impossible state {other}"),
        }
    }

    fn snoop(&self, state: LineState, op: SnoopOp) -> SnoopTransition {
        let action = match state {
            LineState::Modified => SnoopAction::WritebackLine,
            LineState::Exclusive => SnoopAction::None,
            other => panic!("MEI snoop in impossible state {other}"),
        };
        // Reads, writes and upgrades all take the line away: MEI cannot
        // retain a copy alongside another cache.
        let _ = op;
        SnoopTransition {
            next: LineState::Invalid,
            action,
            asserts_shared: false,
        }
    }

    fn drives_shared_signal(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LineState::*;

    #[test]
    fn fills_ignore_shared_signal() {
        for shared in [false, true] {
            assert_eq!(Mei.fill_state(Access::Read, shared), Exclusive);
            assert_eq!(Mei.fill_state(Access::Write, shared), Modified);
        }
    }

    #[test]
    fn write_hits_are_silent() {
        assert_eq!(Mei.write_hit(Exclusive), WriteHitOutcome::Local(Modified));
        assert_eq!(Mei.write_hit(Modified), WriteHitOutcome::Local(Modified));
    }

    #[test]
    #[should_panic(expected = "impossible state")]
    fn write_hit_in_shared_is_a_bug() {
        let _ = Mei.write_hit(Shared);
    }

    #[test]
    fn snoop_always_invalidates() {
        for op in [SnoopOp::Read, SnoopOp::Write, SnoopOp::Upgrade] {
            let t = Mei.snoop(Exclusive, op);
            assert_eq!(t.next, Invalid);
            assert_eq!(t.action, SnoopAction::None);
            assert!(!t.asserts_shared);
        }
    }

    #[test]
    fn snoop_on_modified_drains() {
        for op in [SnoopOp::Read, SnoopOp::Write] {
            let t = Mei.snoop(Modified, op);
            assert_eq!(t.next, Invalid);
            assert_eq!(t.action, SnoopAction::WritebackLine);
            assert!(!t.asserts_shared);
        }
    }

    #[test]
    fn never_drives_shared() {
        assert!(!Mei.drives_shared_signal());
        assert!(!Mei.supplies_cache_to_cache());
        assert!(Mei.allocates_on_write());
    }
}
