//! MESI — the Pentium-class four-state protocol.

use crate::protocol::{Protocol, ProtocolKind, SnoopTransition};
use crate::{Access, LineState, SnoopAction, SnoopOp, WriteHitOutcome};

/// Modified / Exclusive / Shared / Invalid.
///
/// The three routes into S that the paper's §2.1.2 enumerates — and that a
/// wrapper must close off to integrate with MEI — are all present here:
///
/// 1. `I → S`: a read miss with the shared signal asserted
///    ([`Protocol::fill_state`] with `shared_signal == true`);
/// 2. `E → S`: a snooped read of a clean exclusive line;
/// 3. `M → S`: a snooped read of a dirty line (after draining).
///
/// Deasserting the shared signal kills route 1; converting snooped reads
/// to writes kills routes 2 and 3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mesi;

impl Protocol for Mesi {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Mesi
    }

    fn states(&self) -> &'static [LineState] {
        &[
            LineState::Modified,
            LineState::Exclusive,
            LineState::Shared,
            LineState::Invalid,
        ]
    }

    fn fill_state(&self, access: Access, shared_signal: bool) -> LineState {
        match access {
            Access::Read if shared_signal => LineState::Shared,
            Access::Read => LineState::Exclusive,
            Access::Write => LineState::Modified,
        }
    }

    fn write_hit(&self, state: LineState) -> WriteHitOutcome {
        match state {
            LineState::Shared => WriteHitOutcome::NeedsUpgrade(LineState::Modified),
            LineState::Exclusive | LineState::Modified => {
                WriteHitOutcome::Local(LineState::Modified)
            }
            other => panic!("MESI write hit in impossible state {other}"),
        }
    }

    fn snoop(&self, state: LineState, op: SnoopOp) -> SnoopTransition {
        match (state, op) {
            (LineState::Shared, SnoopOp::Read) => SnoopTransition {
                next: LineState::Shared,
                action: SnoopAction::None,
                asserts_shared: true,
            },
            (LineState::Exclusive, SnoopOp::Read) => SnoopTransition {
                next: LineState::Shared,
                action: SnoopAction::None,
                asserts_shared: true,
            },
            (LineState::Modified, SnoopOp::Read) => SnoopTransition {
                next: LineState::Shared,
                action: SnoopAction::WritebackLine,
                asserts_shared: true,
            },
            (LineState::Modified, SnoopOp::Write | SnoopOp::Upgrade) => SnoopTransition {
                next: LineState::Invalid,
                action: SnoopAction::WritebackLine,
                asserts_shared: false,
            },
            (LineState::Shared | LineState::Exclusive, SnoopOp::Write | SnoopOp::Upgrade) => {
                SnoopTransition {
                    next: LineState::Invalid,
                    action: SnoopAction::None,
                    asserts_shared: false,
                }
            }
            (other, _) => panic!("MESI snoop in impossible state {other}"),
        }
    }

    fn drives_shared_signal(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LineState::*;

    #[test]
    fn fill_obeys_shared_signal() {
        assert_eq!(Mesi.fill_state(Access::Read, false), Exclusive);
        assert_eq!(Mesi.fill_state(Access::Read, true), Shared);
        assert_eq!(Mesi.fill_state(Access::Write, true), Modified);
    }

    #[test]
    fn write_hits() {
        assert_eq!(
            Mesi.write_hit(Shared),
            WriteHitOutcome::NeedsUpgrade(Modified)
        );
        assert_eq!(Mesi.write_hit(Exclusive), WriteHitOutcome::Local(Modified));
        assert_eq!(Mesi.write_hit(Modified), WriteHitOutcome::Local(Modified));
    }

    #[test]
    fn all_three_routes_into_shared() {
        // Route 1: I → S on fill (tested in fill_obeys_shared_signal).
        // Route 2: E → S on snooped read.
        let t = Mesi.snoop(Exclusive, SnoopOp::Read);
        assert_eq!((t.next, t.action), (Shared, SnoopAction::None));
        assert!(t.asserts_shared);
        // Route 3: M → S on snooped read, draining first.
        let t = Mesi.snoop(Modified, SnoopOp::Read);
        assert_eq!((t.next, t.action), (Shared, SnoopAction::WritebackLine));
        assert!(t.asserts_shared);
    }

    #[test]
    fn snooped_writes_invalidate() {
        for s in [Shared, Exclusive] {
            for op in [SnoopOp::Write, SnoopOp::Upgrade] {
                let t = Mesi.snoop(s, op);
                assert_eq!((t.next, t.action), (Invalid, SnoopAction::None));
                assert!(!t.asserts_shared);
            }
        }
        let t = Mesi.snoop(Modified, SnoopOp::Write);
        assert_eq!((t.next, t.action), (Invalid, SnoopAction::WritebackLine));
    }

    #[test]
    fn shared_line_stays_shared_on_snooped_read() {
        let t = Mesi.snoop(Shared, SnoopOp::Read);
        assert_eq!(t.next, Shared);
        assert!(t.asserts_shared);
    }

    #[test]
    #[should_panic(expected = "impossible state")]
    fn snoop_owned_is_a_bug() {
        let _ = Mesi.snoop(Owned, SnoopOp::Read);
    }

    #[test]
    fn capabilities() {
        assert!(Mesi.drives_shared_signal());
        assert!(!Mesi.supplies_cache_to_cache());
        assert!(Mesi.allocates_on_write());
    }
}
