//! The five protocol FSM implementations.

mod mei;
mod mesi;
mod moesi;
mod msi;
mod si;

pub use mei::Mei;
pub use mesi::Mesi;
pub use moesi::Moesi;
pub use msi::Msi;
pub use si::Si;
