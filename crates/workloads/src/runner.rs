//! One-call microbenchmark execution.

use crate::{build_programs_for, scenario_lock_kind, MicrobenchParams, Scenario};
use hmp_bus::{ArbitrationPolicy, RecoveryPolicy};
use hmp_cache::ProtocolKind;
use hmp_mem::LatencyModel;
use hmp_platform::{
    presets, Kernel, MemLayout, PlatformSpec, RunResult, Strategy, System, Topology,
};
use hmp_sim::{FaultKind, FaultPlan, TimeSeriesSpec};

/// Which hardware platform to run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformPick {
    /// PowerPC755 + ARM920T (PF2) — the paper's measured platform.
    PpcArm,
    /// Intel486 + PowerPC755 (PF3) — the paper's other case study.
    I486Ppc,
    /// Two non-coherent processors behind TAG CAMs (PF1).
    Pf1Dual,
    /// Two generic processors with the given protocols (PF3).
    Pair(ProtocolKind, ProtocolKind),
    /// An N-master homogeneous fabric ([`Topology::uniform`]): `masters`
    /// generic processors speaking `protocol`, split contiguously over
    /// `segments` bridged bus segments.
    Fabric {
        /// Protocol every master speaks.
        protocol: ProtocolKind,
        /// Number of masters (≥ 2 — the workloads need a peer).
        masters: u8,
        /// Number of bus segments (1 = flat bus, no bridge).
        segments: u8,
    },
}

/// A seed-reproducible fault batch, sampled into a concrete
/// [`FaultPlan`] when the platform is prepared (so [`RunSpec`] stays
/// `Copy`). Addresses are drawn from the prepared layout's shared window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDirective {
    /// Fault class to inject.
    pub kind: FaultKind,
    /// Sampling seed — same seed, same concrete plan.
    pub seed: u64,
    /// Number of faults to sample.
    pub count: u32,
    /// Earliest fire cycle (inclusive).
    pub from: u64,
    /// Latest fire cycle (exclusive).
    pub to: u64,
    /// Shared-window lines addresses are drawn from.
    pub addr_lines: u64,
    /// Class-specific knob (blackout/delay length, armed retry count,
    /// forced SHARED value).
    pub param: u64,
    /// Pin every sampled fault on one bus master instead of spreading
    /// targets pseudo-randomly — used by the bridge chaos cells to aim
    /// at a specific bridge endpoint.
    pub target: Option<u32>,
}

impl FaultDirective {
    /// A directive with a workable mid-run window for `count` faults of
    /// `kind`.
    pub fn new(kind: FaultKind, seed: u64, count: u32) -> Self {
        FaultDirective {
            kind,
            seed,
            count,
            from: 200,
            to: 4_000,
            addr_lines: 8,
            param: 50,
            target: None,
        }
    }

    /// Same directive with every fault pinned on one master.
    #[must_use]
    pub fn aimed_at(mut self, target: u32) -> Self {
        self.target = Some(target);
        self
    }

    /// Samples the concrete plan for a platform with `masters` masters
    /// and its shared window at `addr_base`.
    pub fn sample(&self, masters: u32, addr_base: u64) -> FaultPlan {
        let mut plan = FaultPlan::sample(
            self.seed,
            self.kind,
            self.count,
            self.from,
            self.to,
            masters,
            addr_base,
            self.addr_lines,
            self.param,
        );
        if let Some(target) = self.target {
            plan.retarget(target);
        }
        plan
    }
}

/// Everything one simulation run needs.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    /// Which microbenchmark.
    pub scenario: Scenario,
    /// Which shared-data strategy.
    pub strategy: Strategy,
    /// Workload knobs.
    pub params: MicrobenchParams,
    /// Hardware platform (default: the paper's PowerPC755 + ARM920T).
    pub platform: PlatformPick,
    /// Burst miss penalty in bus cycles (Table 4 default 13; Figure 8
    /// sweeps 13 → 96).
    pub burst_penalty: u64,
    /// Whether lock variables are cacheable — `true` reproduces the
    /// hardware deadlock of paper Figure 4.
    pub cacheable_locks: bool,
    /// Simulation cycle budget.
    pub max_cycles: u64,
    /// Completed-span ring capacity for the metrics layer (0 = off).
    pub span_capacity: usize,
    /// Enforce line invariants live, failing the run fast on a break.
    pub check_invariants: bool,
    /// How the run loop advances time. [`Kernel::FastForward`] (the
    /// default) skips provably-dead cycles; [`Kernel::Step`] executes
    /// every cycle. Results are byte-identical either way.
    pub kernel: Kernel,
    /// Seed-reproducible fault injection (`None` = fault-free).
    pub faults: Option<FaultDirective>,
    /// Bus arbitration discipline (default round-robin, the paper's ASB).
    pub arbitration: ArbitrationPolicy,
    /// Arbiter retry-escalation / quarantine policy.
    pub recovery: RecoveryPolicy,
    /// Watchdog stall window override in bus cycles (0 keeps the
    /// platform default).
    pub watchdog_window: u64,
    /// Windowed-telemetry registry configuration (`None` = off).
    pub timeseries: Option<TimeSeriesSpec>,
    /// Measure the kernel's wall-time split into the result's profile.
    pub profile: bool,
}

impl RunSpec {
    /// A spec with the paper's defaults for everything but the triple that
    /// identifies a data point.
    pub fn new(scenario: Scenario, strategy: Strategy, params: MicrobenchParams) -> Self {
        RunSpec {
            scenario,
            strategy,
            params,
            platform: PlatformPick::PpcArm,
            burst_penalty: 13,
            cacheable_locks: false,
            max_cycles: 50_000_000,
            span_capacity: 0,
            check_invariants: false,
            kernel: Kernel::FastForward,
            faults: None,
            arbitration: ArbitrationPolicy::RoundRobin,
            recovery: RecoveryPolicy::default(),
            watchdog_window: 0,
            timeseries: None,
            profile: false,
        }
    }

    /// Same spec on a different platform.
    #[must_use]
    pub fn on(mut self, platform: PlatformPick) -> Self {
        self.platform = platform;
        self
    }

    /// Same spec with a different burst miss penalty.
    #[must_use]
    pub fn with_burst_penalty(mut self, cycles: u64) -> Self {
        self.burst_penalty = cycles;
        self
    }

    /// Same spec with the metrics layer keeping `capacity` spans.
    #[must_use]
    pub fn with_spans(mut self, capacity: usize) -> Self {
        self.span_capacity = capacity;
        self
    }

    /// Same spec with live invariant checking on.
    #[must_use]
    pub fn with_invariants(mut self) -> Self {
        self.check_invariants = true;
        self
    }

    /// Same spec under a different simulation kernel.
    #[must_use]
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Same spec with a fault directive armed.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultDirective) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Same spec under a different bus arbitration discipline.
    #[must_use]
    pub fn with_arbitration(mut self, arbitration: ArbitrationPolicy) -> Self {
        self.arbitration = arbitration;
        self
    }

    /// Same spec with a recovery policy armed.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Same spec with a reduced watchdog window (chaos runs shrink it so
    /// liveness faults report in bounded time).
    #[must_use]
    pub fn with_watchdog_window(mut self, cycles: u64) -> Self {
        self.watchdog_window = cycles;
        self
    }

    /// Same spec with the windowed-telemetry registry armed.
    #[must_use]
    pub fn with_timeseries(mut self, ts: TimeSeriesSpec) -> Self {
        self.timeseries = Some(ts);
        self
    }

    /// Same spec with kernel wall-time self-profiling on.
    #[must_use]
    pub fn with_profile(mut self) -> Self {
        self.profile = true;
        self
    }
}

/// Resolves `spec` into the concrete [`PlatformSpec`] and memory layout
/// that [`prepare`] (and [`Runner::prepare`]) instantiate.
fn platform_spec(spec: &RunSpec) -> (PlatformSpec, MemLayout) {
    let lock_kind = scenario_lock_kind(spec.scenario);
    let (mut pspec, lay) = match spec.platform {
        PlatformPick::PpcArm => presets::ppc_arm(spec.strategy, lock_kind, spec.cacheable_locks),
        PlatformPick::I486Ppc => presets::i486_ppc(spec.strategy, lock_kind),
        PlatformPick::Pf1Dual => presets::pf1_dual(spec.strategy, lock_kind),
        PlatformPick::Pair(a, b) => presets::protocol_pair(a, b, spec.strategy, lock_kind),
        PlatformPick::Fabric {
            protocol,
            masters,
            segments,
        } => Topology::uniform(protocol, masters as usize, segments as usize).spec(
            spec.strategy,
            lock_kind,
            spec.cacheable_locks,
        ),
    };
    pspec.arbitration = spec.arbitration;
    pspec.latency = LatencyModel::scaled_to_burst(spec.burst_penalty);
    pspec.span_capacity = spec.span_capacity;
    pspec.check_invariants = spec.check_invariants;
    pspec.recovery = spec.recovery;
    pspec.timeseries = spec.timeseries;
    pspec.profile = spec.profile;
    if spec.watchdog_window > 0 {
        pspec.watchdog_window = spec.watchdog_window;
    }
    if let Some(directive) = &spec.faults {
        pspec.faults =
            Some(directive.sample(pspec.cpus.len() as u32, u64::from(lay.shared_base.as_u32())));
    }
    (pspec, lay)
}

/// Builds the platform and programs for `spec` without running — useful
/// for tests that want to inspect intermediate state.
pub fn prepare(spec: &RunSpec) -> System {
    let (pspec, lay) = platform_spec(spec);
    let programs = build_programs_for(
        spec.scenario,
        spec.strategy,
        &spec.params,
        &lay,
        pspec.cpus.len(),
    );
    let mut sys = presets::instantiate(&pspec, spec.strategy, programs);
    sys.set_kernel(spec.kernel);
    sys
}

/// Runs one microbenchmark to completion and returns its result.
///
/// This is the primitive every figure-regeneration binary is built on:
/// the paper's data points are ratios of the `cycles` field between
/// strategies.
pub fn run(spec: &RunSpec) -> RunResult {
    prepare(spec).run(spec.max_cycles)
}

/// Reset-don't-drop run batching: a [`Runner`] keeps one [`System`] alive
/// across calls and rebuilds it in place via [`System::try_reset`]
/// whenever the next spec has the same platform shape, so a sweep over
/// thousands of cells pays the constructor's allocations once per
/// platform instead of once per cell. Results are byte-identical to the
/// one-shot [`run`] path — `kernel_equivalence.rs` pins that.
///
/// # Examples
///
/// ```
/// use hmp_workloads::{MicrobenchParams, Runner, RunSpec, Scenario};
/// use hmp_platform::Strategy;
///
/// let mut runner = Runner::new();
/// let params = MicrobenchParams { outer_iters: 2, ..Default::default() };
/// for strategy in Strategy::ALL {
///     let r = runner.run(&RunSpec::new(Scenario::Worst, strategy, params));
///     assert!(r.is_clean_completion());
/// }
/// assert!(runner.reuses() >= Strategy::ALL.len() as u64 - 1);
/// ```
#[derive(Default)]
pub struct Runner {
    sys: Option<System>,
    reuses: u64,
    rebuilds: u64,
}

impl Runner {
    /// A runner with no platform built yet.
    pub fn new() -> Self {
        Runner::default()
    }

    /// How many runs reused the live platform's allocations.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// How many runs had to construct a platform from scratch (the first
    /// run, and any platform-shape change).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Builds or resets the platform for `spec` and returns it ready to
    /// run — the reuse-path analogue of [`prepare`].
    pub fn prepare(&mut self, spec: &RunSpec) -> &mut System {
        let (pspec, lay) = platform_spec(spec);
        let programs = build_programs_for(
            spec.scenario,
            spec.strategy,
            &spec.params,
            &lay,
            pspec.cpus.len(),
        );
        let reused = match &mut self.sys {
            Some(sys) => sys.try_reset(&pspec, programs),
            None => false,
        };
        if reused {
            self.reuses += 1;
        } else {
            // Shape changed (or first run): the programs above are gone
            // either way — consumed by the refused reset or unusable past
            // the match — so rebuild them along with the platform. Rare
            // by design; the steady state is the reuse arm.
            let programs = build_programs_for(
                spec.scenario,
                spec.strategy,
                &spec.params,
                &lay,
                pspec.cpus.len(),
            );
            self.sys = Some(System::new(&pspec, programs));
            self.rebuilds += 1;
        }
        let sys = self.sys.as_mut().expect("platform just built or reset");
        sys.set_snoop_logic_enabled(spec.strategy == Strategy::Proposed);
        sys.set_kernel(spec.kernel);
        sys
    }

    /// Runs one microbenchmark on the reused platform and returns its
    /// result — the reuse-path analogue of [`run`].
    pub fn run(&mut self, spec: &RunSpec) -> RunResult {
        let max_cycles = spec.max_cycles;
        self.prepare(spec).run(max_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MicrobenchParams {
        MicrobenchParams {
            lines_per_iter: 2,
            exec_time: 1,
            outer_iters: 2,
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn runner_reuse_is_byte_identical_to_one_shot() {
        let mut runner = Runner::new();
        for scenario in [Scenario::Worst, Scenario::Best] {
            for strategy in Strategy::ALL {
                let spec = RunSpec::new(scenario, strategy, small());
                let one_shot = run(&spec);
                let reused = runner.run(&spec);
                assert_eq!(one_shot, reused, "{scenario}/{strategy}");
            }
        }
        // Within a scenario every strategy flip reuses the live platform
        // (the map attribute change is not a shape change); the scenario
        // switch changes the lock layout and forces one rebuild.
        assert_eq!(runner.rebuilds(), 2);
        assert_eq!(runner.reuses(), 2 * (Strategy::ALL.len() as u64) - 2);
    }

    #[test]
    fn wcs_all_strategies_complete_cleanly() {
        for strategy in Strategy::ALL {
            let r = run(&RunSpec::new(Scenario::Worst, strategy, small()));
            assert!(r.is_clean_completion(), "{strategy}: {r}");
        }
    }

    #[test]
    fn bcs_all_strategies_complete_cleanly() {
        for strategy in Strategy::ALL {
            let r = run(&RunSpec::new(Scenario::Best, strategy, small()));
            assert!(r.is_clean_completion(), "{strategy}: {r}");
        }
    }

    #[test]
    fn tcs_all_strategies_complete_cleanly() {
        for strategy in Strategy::ALL {
            let r = run(&RunSpec::new(Scenario::Typical, strategy, small()));
            assert!(r.is_clean_completion(), "{strategy}: {r}");
        }
    }

    #[test]
    fn proposed_beats_cache_disabled_in_wcs() {
        let mut p = small();
        p.lines_per_iter = 8;
        p.exec_time = 4;
        p.outer_iters = 4;
        let disabled = run(&RunSpec::new(Scenario::Worst, Strategy::CacheDisabled, p));
        let proposed = run(&RunSpec::new(Scenario::Worst, Strategy::Proposed, p));
        assert!(
            proposed.cycles_u64() < disabled.cycles_u64(),
            "proposed {} vs disabled {}",
            proposed.cycles_u64(),
            disabled.cycles_u64()
        );
    }

    #[test]
    fn proposed_beats_software_in_bcs() {
        let mut p = small();
        p.lines_per_iter = 16;
        p.outer_iters = 4;
        let software = run(&RunSpec::new(Scenario::Best, Strategy::SoftwareDrain, p));
        let proposed = run(&RunSpec::new(Scenario::Best, Strategy::Proposed, p));
        assert!(
            proposed.cycles_u64() < software.cycles_u64(),
            "proposed {} vs software {}",
            proposed.cycles_u64(),
            software.cycles_u64()
        );
    }

    #[test]
    fn i486_platform_runs_wcs() {
        let r =
            run(&RunSpec::new(Scenario::Worst, Strategy::Proposed, small())
                .on(PlatformPick::I486Ppc));
        assert!(r.is_clean_completion(), "{r}");
    }

    #[test]
    fn pf1_platform_runs_wcs() {
        let r =
            run(&RunSpec::new(Scenario::Worst, Strategy::Proposed, small())
                .on(PlatformPick::Pf1Dual));
        assert!(r.is_clean_completion(), "{r}");
    }

    #[test]
    fn generic_pairs_run_wcs() {
        use ProtocolKind::*;
        for (a, b) in [(Mei, Mesi), (Msi, Moesi), (Mesi, Moesi), (Moesi, Moesi)] {
            let r = run(&RunSpec::new(Scenario::Worst, Strategy::Proposed, small())
                .on(PlatformPick::Pair(a, b)));
            assert!(r.is_clean_completion(), "{a}+{b}: {r}");
        }
    }

    #[test]
    fn fabric_platforms_run_wcs() {
        for (masters, segments) in [(3u8, 1u8), (4, 2), (6, 2)] {
            let r = run(
                &RunSpec::new(Scenario::Worst, Strategy::Proposed, small()).on(
                    PlatformPick::Fabric {
                        protocol: ProtocolKind::Mesi,
                        masters,
                        segments,
                    },
                ),
            );
            assert!(r.is_clean_completion(), "{masters}x{segments}: {r}");
        }
    }

    #[test]
    fn fabric_kernels_agree_under_every_arbitration() {
        let pick = PlatformPick::Fabric {
            protocol: ProtocolKind::Mesi,
            masters: 4,
            segments: 2,
        };
        for arb in [
            ArbitrationPolicy::RoundRobin,
            ArbitrationPolicy::FixedPriority,
            ArbitrationPolicy::Fcfs,
        ] {
            let mut spec = RunSpec::new(Scenario::Worst, Strategy::Proposed, small())
                .on(pick)
                .with_arbitration(arb);
            if arb == ArbitrationPolicy::FixedPriority {
                // Fixed priority starves the low-priority masters out of
                // the turn lock entirely — the run never completes, which
                // is itself the behaviour the fairness sweep measures.
                // Cap it and compare the truncated trajectories.
                spec.max_cycles = 100_000;
            }
            let step = run(&spec.with_kernel(Kernel::Step));
            let ff = run(&spec.with_kernel(Kernel::FastForward));
            if arb != ArbitrationPolicy::FixedPriority {
                assert!(step.is_clean_completion(), "{arb:?}: {step}");
            }
            assert_eq!(step, ff, "{arb:?}: kernels diverged");
        }
    }

    #[test]
    fn bridge_latency_costs_cycles() {
        let base = RunSpec::new(Scenario::Worst, Strategy::Proposed, small());
        let flat = run(&base.on(PlatformPick::Fabric {
            protocol: ProtocolKind::Mesi,
            masters: 4,
            segments: 1,
        }));
        let bridged = run(&base.on(PlatformPick::Fabric {
            protocol: ProtocolKind::Mesi,
            masters: 4,
            segments: 2,
        }));
        assert!(
            bridged.cycles_u64() > flat.cycles_u64(),
            "bridge crossings should cost data cycles: flat {} vs bridged {}",
            flat.cycles_u64(),
            bridged.cycles_u64()
        );
    }

    #[test]
    fn burst_penalty_slows_execution() {
        let fast = run(&RunSpec::new(Scenario::Worst, Strategy::Proposed, small()));
        let slow =
            run(&RunSpec::new(Scenario::Worst, Strategy::Proposed, small()).with_burst_penalty(96));
        assert!(slow.cycles_u64() > fast.cycles_u64());
    }
}
