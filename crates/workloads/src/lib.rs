//! # hmp-workloads — the paper's microbenchmarks
//!
//! Section 4 of the paper evaluates its coherence scheme with three
//! lock-protected microbenchmarks, each run under three shared-data
//! strategies (cache disabled / software drain / proposed):
//!
//! * **WCS** (worst case) — both tasks repeatedly enter the critical
//!   section and read-modify the *same* `lines_per_iter` cache lines,
//!   acquiring the lock strictly alternately;
//! * **TCS** (typical case) — each task randomly picks one of **10**
//!   shared blocks per iteration and works on that block's lines;
//! * **BCS** (best case) — only the ARM-side task enters the critical
//!   section; the other processor never touches the shared data, so all
//!   coherence work (the software solution's drain loop in particular) is
//!   pure overhead.
//!
//! [`build_programs`] generates the per-CPU [`hmp_cpu::Program`]s for a
//! scenario/strategy pair; [`RunSpec`] + [`run`] wrap program generation,
//! platform instantiation (PowerPC755 + ARM920T by default, per the
//! paper) and simulation into one call, which is what the figure
//! regeneration binaries in `hmp-bench` use.
//!
//! # Examples
//!
//! ```
//! use hmp_platform::Strategy;
//! use hmp_workloads::{run, MicrobenchParams, RunSpec, Scenario};
//!
//! let mut params = MicrobenchParams::default();
//! params.lines_per_iter = 2;
//! params.outer_iters = 2;
//! let result = run(&RunSpec::new(Scenario::Worst, Strategy::Proposed, params));
//! assert!(result.is_clean_completion());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod generate;
mod params;
mod runner;

pub use codec::{spec_from_json, spec_from_value, spec_to_json};
pub use generate::{build_programs, build_programs_for, scenario_lock_kind};
pub use params::{MicrobenchParams, Scenario};
pub use runner::{prepare, run, FaultDirective, PlatformPick, RunSpec, Runner};

pub use hmp_platform::Kernel;
