//! Canonical JSON serialization of [`RunSpec`] — the wire format of the
//! `hmp-server` job protocol and the input of its content-addressed run
//! cache.
//!
//! [`spec_to_json`] renders a spec with a **fixed key order and fixed
//! formatting**, so equal specs always serialize to equal bytes;
//! [`spec_from_json`] accepts the same document with keys in any order
//! and optional fields omitted (they take the [`RunSpec::new`] defaults).
//! The pair is a fixed point: `serialize → parse → serialize` reproduces
//! the canonical bytes exactly, which is what lets the server digest a
//! client-supplied spec by canonicalizing it first — two clients spelling
//! the same job differently still land on the same cache key.
//!
//! The JSON is hand-rolled on top of [`hmp_sim::export`]'s value parser;
//! the workspace builds against an offline registry, so there is no
//! serde.

use crate::{FaultDirective, MicrobenchParams, PlatformPick, RunSpec, Scenario};
use hmp_bus::{ArbitrationPolicy, RecoveryPolicy};
use hmp_cache::ProtocolKind;
use hmp_platform::{Kernel, Strategy};
use hmp_sim::export::{parse_json, JsonValue};
use hmp_sim::{FaultKind, TimeSeriesSpec};
use std::fmt::Write as _;

/// Renders `spec` as canonical JSON: every field, fixed key order, no
/// whitespace. Equal specs produce byte-equal strings.
pub fn spec_to_json(spec: &RunSpec) -> String {
    let mut out = String::with_capacity(512);
    out.push('{');
    let _ = write!(
        out,
        r#""scenario":"{}","strategy":"{}","#,
        scenario_key(spec.scenario),
        strategy_key(spec.strategy)
    );
    let p = &spec.params;
    let _ = write!(
        out,
        concat!(
            r#""params":{{"lines_per_iter":{},"exec_time":{},"outer_iters":{},"#,
            r#""words_per_line":{},"overhead_per_word":{},"seed":{}}},"#
        ),
        p.lines_per_iter, p.exec_time, p.outer_iters, p.words_per_line, p.overhead_per_word, p.seed
    );
    out.push_str("\"platform\":");
    platform_json(&mut out, spec.platform);
    let _ = write!(
        out,
        concat!(
            r#","burst_penalty":{},"cacheable_locks":{},"max_cycles":{},"#,
            r#""span_capacity":{},"check_invariants":{},"kernel":"{}","#
        ),
        spec.burst_penalty,
        spec.cacheable_locks,
        spec.max_cycles,
        spec.span_capacity,
        spec.check_invariants,
        kernel_key(spec.kernel),
    );
    out.push_str("\"faults\":");
    match &spec.faults {
        Some(f) => {
            let _ = write!(
                out,
                concat!(
                    r#"{{"kind":"{}","seed":{},"count":{},"from":{},"to":{},"#,
                    r#""addr_lines":{},"param":{},"target":"#
                ),
                fault_key(f.kind),
                f.seed,
                f.count,
                f.from,
                f.to,
                f.addr_lines,
                f.param,
            );
            match f.target {
                Some(t) => {
                    let _ = write!(out, "{t}");
                }
                None => out.push_str("null"),
            }
            out.push('}');
        }
        None => out.push_str("null"),
    }
    let _ = write!(
        out,
        concat!(
            r#","arbitration":"{}","recovery":{{"retry_budget":{},"#,
            r#""escalation_backoff":{},"quarantine_after":{}}},"watchdog_window":{},"#
        ),
        arbitration_key(spec.arbitration),
        spec.recovery.retry_budget,
        spec.recovery.escalation_backoff,
        spec.recovery.quarantine_after,
        spec.watchdog_window,
    );
    out.push_str("\"timeseries\":");
    match &spec.timeseries {
        Some(ts) => {
            let _ = write!(
                out,
                r#"{{"window":{},"capacity":{}}}"#,
                ts.window, ts.capacity
            );
        }
        None => out.push_str("null"),
    }
    let _ = write!(out, r#","profile":{}}}"#, spec.profile);
    out
}

fn platform_json(out: &mut String, platform: PlatformPick) {
    match platform {
        PlatformPick::PpcArm => out.push_str(r#"{"kind":"ppc_arm"}"#),
        PlatformPick::I486Ppc => out.push_str(r#"{"kind":"i486_ppc"}"#),
        PlatformPick::Pf1Dual => out.push_str(r#"{"kind":"pf1_dual"}"#),
        PlatformPick::Pair(a, b) => {
            let _ = write!(
                out,
                r#"{{"kind":"pair","a":"{}","b":"{}"}}"#,
                protocol_key(a),
                protocol_key(b)
            );
        }
        PlatformPick::Fabric {
            protocol,
            masters,
            segments,
        } => {
            let _ = write!(
                out,
                r#"{{"kind":"fabric","protocol":"{}","masters":{},"segments":{}}}"#,
                protocol_key(protocol),
                masters,
                segments
            );
        }
    }
}

/// Parses a spec from its JSON text (any key order, optional fields
/// defaulted). The inverse of [`spec_to_json`].
pub fn spec_from_json(text: &str) -> Result<RunSpec, String> {
    spec_from_value(&parse_json(text)?)
}

/// Parses a spec from an already-parsed [`JsonValue`] object.
pub fn spec_from_value(doc: &JsonValue) -> Result<RunSpec, String> {
    let obj = doc
        .as_obj()
        .ok_or_else(|| format!("spec must be an object, got {}", doc.kind()))?;
    let _ = obj;
    let scenario = match doc.get("scenario") {
        Some(v) => scenario_from(req_str(v, "scenario")?)?,
        None => return Err("spec is missing \"scenario\"".into()),
    };
    let strategy = match doc.get("strategy") {
        Some(v) => strategy_from(req_str(v, "strategy")?)?,
        None => return Err("spec is missing \"strategy\"".into()),
    };
    let mut params = MicrobenchParams::default();
    if let Some(pv) = doc.get("params") {
        if pv.as_obj().is_none() {
            return Err(format!("\"params\" must be an object, got {}", pv.kind()));
        }
        params.lines_per_iter = num_or(pv, "lines_per_iter", params.lines_per_iter as u64)? as u32;
        params.exec_time = num_or(pv, "exec_time", params.exec_time as u64)? as u32;
        params.outer_iters = num_or(pv, "outer_iters", params.outer_iters as u64)? as u32;
        params.words_per_line = num_or(pv, "words_per_line", params.words_per_line as u64)? as u32;
        params.overhead_per_word =
            num_or(pv, "overhead_per_word", params.overhead_per_word as u64)? as u32;
        params.seed = num_or(pv, "seed", params.seed)?;
    }

    let mut spec = RunSpec::new(scenario, strategy, params);
    if let Some(pv) = doc.get("platform") {
        spec.platform = platform_from(pv)?;
    }
    spec.burst_penalty = num_or(doc, "burst_penalty", spec.burst_penalty)?;
    spec.cacheable_locks = bool_or(doc, "cacheable_locks", spec.cacheable_locks)?;
    spec.max_cycles = num_or(doc, "max_cycles", spec.max_cycles)?;
    spec.span_capacity = num_or(doc, "span_capacity", spec.span_capacity as u64)? as usize;
    spec.check_invariants = bool_or(doc, "check_invariants", spec.check_invariants)?;
    if let Some(v) = doc.get("kernel") {
        spec.kernel = kernel_from(req_str(v, "kernel")?)?;
    }
    if let Some(v) = doc.get("faults") {
        spec.faults = faults_from(v)?;
    }
    if let Some(v) = doc.get("arbitration") {
        spec.arbitration = arbitration_from(req_str(v, "arbitration")?)?;
    }
    if let Some(v) = doc.get("recovery") {
        if v.as_obj().is_none() {
            return Err(format!("\"recovery\" must be an object, got {}", v.kind()));
        }
        spec.recovery = RecoveryPolicy {
            retry_budget: num_or(v, "retry_budget", 0)? as u32,
            escalation_backoff: num_or(v, "escalation_backoff", 0)?,
            quarantine_after: num_or(v, "quarantine_after", 0)? as u32,
        };
    }
    spec.watchdog_window = num_or(doc, "watchdog_window", spec.watchdog_window)?;
    if let Some(v) = doc.get("timeseries") {
        spec.timeseries = match v {
            JsonValue::Null => None,
            _ => Some(TimeSeriesSpec {
                window: num_or(v, "window", TimeSeriesSpec::default().window)?,
                capacity: num_or(v, "capacity", TimeSeriesSpec::default().capacity as u64)?
                    as usize,
            }),
        };
    }
    spec.profile = bool_or(doc, "profile", spec.profile)?;

    // Reject specs the workload generator would panic on — a wire
    // protocol reports bad input, it does not abort the daemon.
    if spec.params.lines_per_iter < 1 || spec.params.lines_per_iter > 32 {
        return Err(format!(
            "params.lines_per_iter {} outside 1..=32",
            spec.params.lines_per_iter
        ));
    }
    if spec.params.exec_time < 1 || spec.params.outer_iters < 1 {
        return Err("params.exec_time and params.outer_iters must be >= 1".into());
    }
    if !(1..=8).contains(&spec.params.words_per_line) {
        return Err(format!(
            "params.words_per_line {} outside 1..=8",
            spec.params.words_per_line
        ));
    }
    if spec.max_cycles == 0 {
        return Err("max_cycles must be >= 1".into());
    }
    Ok(spec)
}

fn platform_from(v: &JsonValue) -> Result<PlatformPick, String> {
    let kind = v
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("platform needs a \"kind\" string")?;
    match kind {
        "ppc_arm" => Ok(PlatformPick::PpcArm),
        "i486_ppc" => Ok(PlatformPick::I486Ppc),
        "pf1_dual" => Ok(PlatformPick::Pf1Dual),
        "pair" => {
            let a = v
                .get("a")
                .and_then(JsonValue::as_str)
                .ok_or("pair platform needs \"a\"")?;
            let b = v
                .get("b")
                .and_then(JsonValue::as_str)
                .ok_or("pair platform needs \"b\"")?;
            Ok(PlatformPick::Pair(protocol_from(a)?, protocol_from(b)?))
        }
        "fabric" => {
            let protocol = v
                .get("protocol")
                .and_then(JsonValue::as_str)
                .ok_or("fabric platform needs \"protocol\"")?;
            let masters = num_or(v, "masters", 0)?;
            let segments = num_or(v, "segments", 1)?;
            if !(2..=255).contains(&masters) {
                return Err(format!("fabric masters {masters} outside 2..=255"));
            }
            if !(1..=255).contains(&segments) || segments > masters {
                return Err(format!(
                    "fabric segments {segments} outside 1..=masters ({masters})"
                ));
            }
            Ok(PlatformPick::Fabric {
                protocol: protocol_from(protocol)?,
                masters: masters as u8,
                segments: segments as u8,
            })
        }
        other => Err(format!("unknown platform kind {other:?}")),
    }
}

fn faults_from(v: &JsonValue) -> Result<Option<FaultDirective>, String> {
    if matches!(v, JsonValue::Null) {
        return Ok(None);
    }
    let kind = v
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("faults needs a \"kind\" string")?;
    let mut f = FaultDirective::new(fault_from(kind)?, 0, 1);
    f.seed = num_or(v, "seed", f.seed)?;
    f.count = num_or(v, "count", f.count as u64)? as u32;
    f.from = num_or(v, "from", f.from)?;
    f.to = num_or(v, "to", f.to)?;
    f.addr_lines = num_or(v, "addr_lines", f.addr_lines)?;
    f.param = num_or(v, "param", f.param)?;
    f.target = match v.get("target") {
        None | Some(JsonValue::Null) => None,
        Some(t) => Some(
            t.as_f64()
                .ok_or_else(|| format!("faults.target must be a number, got {}", t.kind()))?
                as u32,
        ),
    };
    Ok(Some(f))
}

fn req_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    v.as_str()
        .ok_or_else(|| format!("\"{key}\" must be a string, got {}", v.kind()))
}

fn num_or(doc: &JsonValue, key: &str, default: u64) -> Result<u64, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => {
            let n = v
                .as_f64()
                .ok_or_else(|| format!("\"{key}\" must be a number, got {}", v.kind()))?;
            if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
                return Err(format!("\"{key}\" must be a non-negative integer, got {n}"));
            }
            Ok(n as u64)
        }
    }
}

fn bool_or(doc: &JsonValue, key: &str, default: bool) -> Result<bool, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| format!("\"{key}\" must be a boolean, got {}", v.kind())),
    }
}

fn scenario_key(s: Scenario) -> &'static str {
    match s {
        Scenario::Worst => "worst",
        Scenario::Typical => "typical",
        Scenario::Best => "best",
    }
}

fn scenario_from(s: &str) -> Result<Scenario, String> {
    match s {
        "worst" => Ok(Scenario::Worst),
        "typical" => Ok(Scenario::Typical),
        "best" => Ok(Scenario::Best),
        other => Err(format!("unknown scenario {other:?}")),
    }
}

fn strategy_key(s: Strategy) -> &'static str {
    match s {
        Strategy::CacheDisabled => "cache_disabled",
        Strategy::SoftwareDrain => "software_drain",
        Strategy::Proposed => "proposed",
    }
}

fn strategy_from(s: &str) -> Result<Strategy, String> {
    match s {
        "cache_disabled" => Ok(Strategy::CacheDisabled),
        "software_drain" => Ok(Strategy::SoftwareDrain),
        "proposed" => Ok(Strategy::Proposed),
        other => Err(format!("unknown strategy {other:?}")),
    }
}

fn kernel_key(k: Kernel) -> &'static str {
    match k {
        Kernel::Step => "step",
        Kernel::FastForward => "fast_forward",
    }
}

fn kernel_from(s: &str) -> Result<Kernel, String> {
    match s {
        "step" => Ok(Kernel::Step),
        "fast_forward" => Ok(Kernel::FastForward),
        other => Err(format!("unknown kernel {other:?}")),
    }
}

fn arbitration_key(a: ArbitrationPolicy) -> &'static str {
    match a {
        ArbitrationPolicy::RoundRobin => "round_robin",
        ArbitrationPolicy::FixedPriority => "fixed_priority",
        ArbitrationPolicy::Fcfs => "fcfs",
    }
}

fn arbitration_from(s: &str) -> Result<ArbitrationPolicy, String> {
    match s {
        "round_robin" => Ok(ArbitrationPolicy::RoundRobin),
        "fixed_priority" => Ok(ArbitrationPolicy::FixedPriority),
        "fcfs" => Ok(ArbitrationPolicy::Fcfs),
        other => Err(format!("unknown arbitration {other:?}")),
    }
}

fn protocol_key(p: ProtocolKind) -> &'static str {
    match p {
        ProtocolKind::Mei => "mei",
        ProtocolKind::Msi => "msi",
        ProtocolKind::Mesi => "mesi",
        ProtocolKind::Moesi => "moesi",
        ProtocolKind::Si => "si",
    }
}

fn protocol_from(s: &str) -> Result<ProtocolKind, String> {
    match s {
        "mei" => Ok(ProtocolKind::Mei),
        "msi" => Ok(ProtocolKind::Msi),
        "mesi" => Ok(ProtocolKind::Mesi),
        "moesi" => Ok(ProtocolKind::Moesi),
        "si" => Ok(ProtocolKind::Si),
        other => Err(format!("unknown protocol {other:?}")),
    }
}

fn fault_key(f: FaultKind) -> &'static str {
    match f {
        FaultKind::GrantDrop => "grant_drop",
        FaultKind::GrantDelay => "grant_delay",
        FaultKind::SpuriousRetry => "spurious_retry",
        FaultKind::NfiqDelay => "nfiq_delay",
        FaultKind::NfiqLost => "nfiq_lost",
        FaultKind::CamDesync => "cam_desync",
        FaultKind::SharedCorrupt => "shared_corrupt",
        FaultKind::WedgedMaster => "wedged_master",
        FaultKind::LineStateCorrupt => "line_state_corrupt",
    }
}

fn fault_from(s: &str) -> Result<FaultKind, String> {
    match s {
        "grant_drop" => Ok(FaultKind::GrantDrop),
        "grant_delay" => Ok(FaultKind::GrantDelay),
        "spurious_retry" => Ok(FaultKind::SpuriousRetry),
        "nfiq_delay" => Ok(FaultKind::NfiqDelay),
        "nfiq_lost" => Ok(FaultKind::NfiqLost),
        "cam_desync" => Ok(FaultKind::CamDesync),
        "shared_corrupt" => Ok(FaultKind::SharedCorrupt),
        "wedged_master" => Ok(FaultKind::WedgedMaster),
        "line_state_corrupt" => Ok(FaultKind::LineStateCorrupt),
        other => Err(format!("unknown fault kind {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmp_sim::export::validate_json;

    fn sample_specs() -> Vec<RunSpec> {
        let base = RunSpec::new(
            Scenario::Worst,
            Strategy::Proposed,
            MicrobenchParams::default(),
        );
        vec![
            base,
            RunSpec::new(
                Scenario::Typical,
                Strategy::SoftwareDrain,
                MicrobenchParams {
                    lines_per_iter: 4,
                    exec_time: 2,
                    outer_iters: 3,
                    words_per_line: 4,
                    overhead_per_word: 1,
                    seed: 99,
                },
            )
            .on(PlatformPick::Pair(ProtocolKind::Mei, ProtocolKind::Moesi))
            .with_burst_penalty(96)
            .with_kernel(Kernel::Step),
            base.on(PlatformPick::Fabric {
                protocol: ProtocolKind::Mesi,
                masters: 6,
                segments: 2,
            })
            .with_arbitration(ArbitrationPolicy::Fcfs)
            .with_faults(FaultDirective::new(FaultKind::GrantDrop, 7, 3).aimed_at(2))
            .with_recovery(RecoveryPolicy {
                retry_budget: 8,
                escalation_backoff: 32,
                quarantine_after: 64,
            })
            .with_timeseries(TimeSeriesSpec {
                window: 1024,
                capacity: 32,
            })
            .with_spans(128)
            .with_invariants(),
        ]
    }

    #[test]
    fn canonical_serialization_is_a_fixed_point() {
        for spec in sample_specs() {
            let canon = spec_to_json(&spec);
            validate_json(&canon).unwrap_or_else(|e| panic!("{e}\n{canon}"));
            let parsed = spec_from_json(&canon).expect("canonical JSON must parse back");
            let again = spec_to_json(&parsed);
            assert_eq!(canon, again, "serialize → parse → serialize must not drift");
        }
    }

    #[test]
    fn parsing_is_key_order_insensitive_and_defaults_optionals() {
        let minimal = r#"{"strategy":"proposed","scenario":"worst"}"#;
        let spec = spec_from_json(minimal).unwrap();
        assert_eq!(spec.scenario, Scenario::Worst);
        assert_eq!(spec.strategy, Strategy::Proposed);
        assert_eq!(spec.params, MicrobenchParams::default());
        assert_eq!(spec.platform, PlatformPick::PpcArm);
        assert_eq!(spec.burst_penalty, 13);
        assert_eq!(spec.kernel, Kernel::FastForward);
        // Canonicalizing the shuffled minimal form equals canonicalizing
        // the explicit default spec: same job, same cache key.
        let explicit = RunSpec::new(
            Scenario::Worst,
            Strategy::Proposed,
            MicrobenchParams::default(),
        );
        assert_eq!(spec_to_json(&spec), spec_to_json(&explicit));
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        let cases = [
            (r#"{"strategy":"proposed"}"#, "scenario"),
            (r#"{"scenario":"worst"}"#, "strategy"),
            (r#"{"scenario":"worse","strategy":"proposed"}"#, "scenario"),
            (
                r#"{"scenario":"worst","strategy":"proposed","params":{"lines_per_iter":0}}"#,
                "lines_per_iter",
            ),
            (
                r#"{"scenario":"worst","strategy":"proposed","params":{"lines_per_iter":40}}"#,
                "lines_per_iter",
            ),
            (
                r#"{"scenario":"worst","strategy":"proposed","burst_penalty":-3}"#,
                "burst_penalty",
            ),
            (
                r#"{"scenario":"worst","strategy":"proposed","max_cycles":0}"#,
                "max_cycles",
            ),
            (
                r#"{"scenario":"worst","strategy":"proposed","kernel":"warp"}"#,
                "kernel",
            ),
            (
                r#"{"scenario":"worst","strategy":"proposed","platform":{"kind":"fabric","protocol":"mesi","masters":1}}"#,
                "masters",
            ),
            (
                r#"{"scenario":"worst","strategy":"proposed","platform":{"kind":"quantum"}}"#,
                "platform",
            ),
            (r#"[1,2,3]"#, "object"),
        ];
        for (text, needle) in cases {
            let err = spec_from_json(text).expect_err(text);
            assert!(
                err.contains(needle),
                "{text}: error {err:?} lacks {needle:?}"
            );
        }
    }

    #[test]
    fn every_enum_key_roundtrips() {
        for s in Scenario::ALL {
            assert_eq!(scenario_from(scenario_key(s)).unwrap(), s);
        }
        for s in Strategy::ALL {
            assert_eq!(strategy_from(strategy_key(s)).unwrap(), s);
        }
        for p in ProtocolKind::ALL {
            assert_eq!(protocol_from(protocol_key(p)).unwrap(), p);
        }
        for a in [
            ArbitrationPolicy::RoundRobin,
            ArbitrationPolicy::FixedPriority,
            ArbitrationPolicy::Fcfs,
        ] {
            assert_eq!(arbitration_from(arbitration_key(a)).unwrap(), a);
        }
        for k in [Kernel::Step, Kernel::FastForward] {
            assert_eq!(kernel_from(kernel_key(k)).unwrap(), k);
        }
        for f in [
            FaultKind::GrantDrop,
            FaultKind::GrantDelay,
            FaultKind::SpuriousRetry,
            FaultKind::NfiqDelay,
            FaultKind::NfiqLost,
            FaultKind::CamDesync,
            FaultKind::SharedCorrupt,
            FaultKind::WedgedMaster,
            FaultKind::LineStateCorrupt,
        ] {
            assert_eq!(fault_from(fault_key(f)).unwrap(), f);
        }
    }

    #[test]
    fn semantic_changes_change_the_canonical_bytes() {
        let base = RunSpec::new(
            Scenario::Worst,
            Strategy::Proposed,
            MicrobenchParams::default(),
        );
        let canon = spec_to_json(&base);
        let mut seed_changed = base;
        seed_changed.params.seed = 2;
        assert_ne!(canon, spec_to_json(&seed_changed));
        assert_ne!(canon, spec_to_json(&base.with_burst_penalty(14)));
        assert_ne!(canon, spec_to_json(&base.with_kernel(Kernel::Step)));
        assert_ne!(canon, spec_to_json(&base.on(PlatformPick::Pf1Dual)));
    }
}
