//! Microbenchmark parameters.

use core::fmt;

/// The three evaluation scenarios of paper §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// WCS: both tasks hammer the same blocks, alternating the lock.
    Worst,
    /// TCS: each task picks randomly among 10 shared blocks.
    Typical,
    /// BCS: only the second (ARM-side) task uses the critical section.
    Best,
}

impl Scenario {
    /// All scenarios in the paper's figure order (5, 7, 6).
    pub const ALL: [Scenario; 3] = [Scenario::Worst, Scenario::Typical, Scenario::Best];
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scenario::Worst => write!(f, "WCS"),
            Scenario::Typical => write!(f, "TCS"),
            Scenario::Best => write!(f, "BCS"),
        }
    }
}

/// Knobs of the paper's microbenchmarks.
///
/// The paper sweeps `lines_per_iter` over {1, 2, 4, 8, 16, 32} (the
/// x-axis of Figures 5–7) and `exec_time` over {1, 2, 4}; `outer_iters`
/// fixes the amount of work so execution-time *ratios* are meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MicrobenchParams {
    /// Cache lines accessed (read + modified) per critical-section
    /// iteration — "# of accessed cache lines per iteration".
    pub lines_per_iter: u32,
    /// Times the line set is re-read/re-modified inside one critical
    /// section — the paper's `exec_time`.
    pub exec_time: u32,
    /// Critical-section entries per task.
    pub outer_iters: u32,
    /// Words touched (read + written) per accessed line. The paper's
    /// tasks "access a number of cache lines and modify them", i.e. whole
    /// lines — 8 words. Reducing this thins the per-line work.
    pub words_per_line: u32,
    /// Core cycles of loop/address-arithmetic overhead modelled after
    /// each word's read-modify-write (the instructions a real task would
    /// spend besides the loads/stores themselves).
    pub overhead_per_word: u32,
    /// Seed for the TCS block picks.
    pub seed: u64,
}

impl MicrobenchParams {
    /// The paper's x-axis sweep for Figures 5–7.
    pub const LINE_SWEEP: [u32; 6] = [1, 2, 4, 8, 16, 32];
    /// The paper's exec_time values.
    pub const EXEC_SWEEP: [u32; 3] = [1, 2, 4];
    /// Number of shared blocks the TCS picks from (paper: "among 10
    /// blocks").
    pub const TCS_BLOCKS: u32 = 10;

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or `lines_per_iter` exceeds a block
    /// (32 lines).
    pub fn validate(&self) {
        assert!(self.lines_per_iter >= 1, "need at least one line");
        assert!(self.lines_per_iter <= 32, "a shared block holds 32 lines");
        assert!(self.exec_time >= 1, "exec_time starts at 1");
        assert!(self.outer_iters >= 1, "need at least one iteration");
        assert!(
            (1..=8).contains(&self.words_per_line),
            "a line holds 1..=8 words"
        );
    }
}

impl Default for MicrobenchParams {
    /// 8 lines, exec_time 1, 6 critical sections per task, whole-line
    /// accesses with 2 cycles of loop overhead per word, seed 1.
    fn default() -> Self {
        MicrobenchParams {
            lines_per_iter: 8,
            exec_time: 1,
            outer_iters: 6,
            words_per_line: 8,
            overhead_per_word: 2,
            seed: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(Scenario::Worst.to_string(), "WCS");
        assert_eq!(Scenario::Typical.to_string(), "TCS");
        assert_eq!(Scenario::Best.to_string(), "BCS");
        assert_eq!(Scenario::ALL.len(), 3);
    }

    #[test]
    fn default_is_valid() {
        MicrobenchParams::default().validate();
    }

    #[test]
    fn sweeps_match_paper() {
        assert_eq!(MicrobenchParams::LINE_SWEEP, [1, 2, 4, 8, 16, 32]);
        assert_eq!(MicrobenchParams::EXEC_SWEEP, [1, 2, 4]);
        assert_eq!(MicrobenchParams::TCS_BLOCKS, 10);
    }

    #[test]
    #[should_panic(expected = "32 lines")]
    fn too_many_lines_rejected() {
        let p = MicrobenchParams {
            lines_per_iter: 33,
            ..Default::default()
        };
        p.validate();
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_lines_rejected() {
        let p = MicrobenchParams {
            lines_per_iter: 0,
            ..Default::default()
        };
        p.validate();
    }
}
