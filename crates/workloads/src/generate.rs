//! Program generation for the three scenarios.

use crate::{MicrobenchParams, Scenario};
use hmp_cpu::{LockKind, Program, ProgramBuilder};
use hmp_mem::Addr;
use hmp_platform::{MemLayout, Strategy};
use hmp_sim::SplitMix64;

/// Bytes per shared block: 32 lines of 32 bytes, big enough for the
/// largest `lines_per_iter` the paper sweeps.
pub(crate) const BLOCK_BYTES: u32 = 32 * 32;

/// The lock mechanism each scenario uses.
///
/// WCS and TCS follow the paper's "each task acquiring the lock
/// alternatively" with the turn lock; BCS has a single, uncontended lock
/// user, for which the paper's hardware lock register is the natural fit
/// (a turn lock cannot be re-acquired by the same party without the
/// other's participation).
pub fn scenario_lock_kind(scenario: Scenario) -> LockKind {
    match scenario {
        Scenario::Worst | Scenario::Typical => LockKind::Turn,
        Scenario::Best => LockKind::HardwareRegister,
    }
}

/// A value unique to each store, so the coherence checker can tell every
/// write apart (identical values would mask stale reads).
fn store_value(cpu: u32, outer: u32, rep: u32, line: u32) -> u32 {
    ((cpu + 1) << 28) | ((outer & 0xFF) << 20) | ((rep & 0xF) << 16) | (line & 0xFFFF)
}

fn block_base(lay: &MemLayout, block: u32) -> Addr {
    Addr::new(lay.shared_base.as_u32() + block * BLOCK_BYTES)
}

/// Appends one critical-section entry: acquire, `exec_time` read-modify
/// sweeps over `n` lines of `block`, the software drain loop if the
/// strategy needs it, release, and a short think delay.
#[allow(clippy::too_many_arguments)]
fn cs_iteration(
    mut b: ProgramBuilder,
    lay: &MemLayout,
    strategy: Strategy,
    params: &MicrobenchParams,
    block: u32,
    cpu: u32,
    outer: u32,
) -> ProgramBuilder {
    let n = params.lines_per_iter;
    let exec_time = params.exec_time;
    let base = block_base(lay, block);
    b = b.acquire(0);
    for rep in 0..exec_time {
        for l in 0..n {
            let line = base.add_lines(l);
            // "accesses a number of cache lines and modifies them" (§4):
            // read-modify-write every touched word of the line, with the
            // loop-instruction overhead a real task pays per word.
            for w in 0..params.words_per_line {
                let addr = line.add_words(w);
                b = b
                    .read(addr)
                    .write(addr, store_value(cpu, outer, rep, l * 8 + w));
                if params.overhead_per_word > 0 {
                    b = b.delay(params.overhead_per_word);
                }
            }
        }
    }
    if strategy.needs_software_drain() {
        // "the programmer should make sure to drain/invalidate all the
        // used cache lines in the critical section before exiting" (§4).
        // The drain loop pays the same per-element instruction overhead
        // as the access loop.
        for l in 0..n {
            b = b.flush(base.add_lines(l));
            if params.overhead_per_word > 0 {
                b = b.delay(params.overhead_per_word);
            }
        }
    }
    b = b.release(0);
    b.delay(10)
}

/// Builds the two task programs for a scenario/strategy pair on the
/// standard address map. Index 0 is the first platform CPU (the
/// PowerPC755 on the paper's platform), index 1 the second (the ARM920T).
///
/// # Panics
///
/// Panics if the parameters are invalid (see
/// [`MicrobenchParams::validate`]).
pub fn build_programs(
    scenario: Scenario,
    strategy: Strategy,
    params: &MicrobenchParams,
    lay: &MemLayout,
) -> Vec<Program> {
    build_programs_for(scenario, strategy, params, lay, 2)
}

/// [`build_programs`] generalised to `cpus` processors — the paper's
/// approach "can be easily extended to platforms with more than two
/// processors" (§2), and this is the workload side of that extension:
/// WCS rotates the turn lock through all parties, TCS gives each party
/// its own block stream, and BCS keeps a single critical-section user
/// (the last CPU) with everyone else idle.
///
/// # Panics
///
/// Panics if `cpus < 2` or the parameters are invalid.
pub fn build_programs_for(
    scenario: Scenario,
    strategy: Strategy,
    params: &MicrobenchParams,
    lay: &MemLayout,
    cpus: usize,
) -> Vec<Program> {
    params.validate();
    assert!(cpus >= 2, "microbenchmarks need at least two processors");
    let cpus = cpus as u32;
    match scenario {
        Scenario::Worst => {
            // Every task, the same block, strict lock rotation.
            let mut progs = Vec::new();
            for cpu in 0..cpus {
                let mut b = ProgramBuilder::new();
                for outer in 0..params.outer_iters {
                    b = cs_iteration(b, lay, strategy, params, 0, cpu, outer);
                }
                progs.push(b.build());
            }
            progs
        }
        Scenario::Typical => {
            // Each task draws its block per iteration from 10 blocks.
            let mut progs = Vec::new();
            for cpu in 0..cpus {
                let mut rng = SplitMix64::new(params.seed ^ (u64::from(cpu) << 32));
                let mut b = ProgramBuilder::new();
                for outer in 0..params.outer_iters {
                    let block = rng.gen_range(u64::from(MicrobenchParams::TCS_BLOCKS)) as u32;
                    b = cs_iteration(b, lay, strategy, params, block, cpu, outer);
                }
                progs.push(b.build());
            }
            progs
        }
        Scenario::Best => {
            // Only the last task runs the critical section.
            let mut b = ProgramBuilder::new();
            for outer in 0..params.outer_iters {
                b = cs_iteration(b, lay, strategy, params, 0, cpus - 1, outer);
            }
            let mut progs = vec![Program::empty(); (cpus - 1) as usize];
            progs.push(b.build());
            progs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmp_cpu::Op;

    fn lay() -> MemLayout {
        MemLayout::default()
    }

    fn params(n: u32, et: u32, outer: u32) -> MicrobenchParams {
        // One word per line and no overhead keeps op counts easy to state.
        MicrobenchParams {
            lines_per_iter: n,
            exec_time: et,
            outer_iters: outer,
            words_per_line: 1,
            overhead_per_word: 0,
            seed: 7,
        }
    }

    #[test]
    fn lock_kinds_per_scenario() {
        assert_eq!(scenario_lock_kind(Scenario::Worst), LockKind::Turn);
        assert_eq!(scenario_lock_kind(Scenario::Typical), LockKind::Turn);
        assert_eq!(
            scenario_lock_kind(Scenario::Best),
            LockKind::HardwareRegister
        );
    }

    #[test]
    fn wcs_op_counts() {
        let p = build_programs(
            Scenario::Worst,
            Strategy::Proposed,
            &params(4, 2, 3),
            &lay(),
        );
        assert_eq!(p.len(), 2);
        // Per iteration: acquire + 2×4×(read+write) + release + delay = 19.
        assert_eq!(p[0].op_count(), 3 * (1 + 2 * 4 * 2 + 1 + 1));
        assert_eq!(p[0].op_count(), p[1].op_count());
    }

    #[test]
    fn software_strategy_adds_drains() {
        let base = build_programs(
            Scenario::Worst,
            Strategy::Proposed,
            &params(4, 1, 2),
            &lay(),
        );
        let sw = build_programs(
            Scenario::Worst,
            Strategy::SoftwareDrain,
            &params(4, 1, 2),
            &lay(),
        );
        assert_eq!(sw[0].op_count(), base[0].op_count() + 2 * 4);
        let flushes = sw[0]
            .flatten()
            .iter()
            .filter(|op| matches!(op, Op::FlushLine(_)))
            .count();
        assert_eq!(flushes, 8);
    }

    #[test]
    fn cache_disabled_has_no_drains() {
        let p = build_programs(
            Scenario::Worst,
            Strategy::CacheDisabled,
            &params(2, 1, 1),
            &lay(),
        );
        assert!(p[0]
            .flatten()
            .iter()
            .all(|op| !matches!(op, Op::FlushLine(_))));
    }

    #[test]
    fn wcs_both_tasks_same_lines_distinct_values() {
        let p = build_programs(
            Scenario::Worst,
            Strategy::Proposed,
            &params(2, 1, 1),
            &lay(),
        );
        let addr_of = |prog: &hmp_cpu::Program| -> Vec<u32> {
            prog.flatten()
                .iter()
                .filter_map(|op| match op {
                    Op::Read(a) => Some(a.as_u32()),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(addr_of(&p[0]), addr_of(&p[1]), "same blocks in WCS");
        let vals = |prog: &hmp_cpu::Program| -> Vec<u32> {
            prog.flatten()
                .iter()
                .filter_map(|op| match op {
                    Op::Write(_, v) => Some(*v),
                    _ => None,
                })
                .collect()
        };
        assert_ne!(vals(&p[0]), vals(&p[1]), "distinct store values per CPU");
    }

    #[test]
    fn tcs_picks_blocks_within_pool_and_is_seeded() {
        let a = build_programs(
            Scenario::Typical,
            Strategy::Proposed,
            &params(1, 1, 16),
            &lay(),
        );
        let b = build_programs(
            Scenario::Typical,
            Strategy::Proposed,
            &params(1, 1, 16),
            &lay(),
        );
        assert_eq!(a[0], b[0], "same seed, same program");
        // All touched addresses must fall inside the 10-block pool.
        let pool_end = lay().shared_base.as_u32() + MicrobenchParams::TCS_BLOCKS * BLOCK_BYTES;
        for op in a[0].flatten() {
            if let Op::Read(addr) = op {
                assert!(addr.as_u32() >= lay().shared_base.as_u32());
                assert!(addr.as_u32() < pool_end);
            }
        }
        // With 16 draws from 10 blocks, both tasks must visit >1 block.
        let blocks: std::collections::HashSet<u32> = a[1]
            .flatten()
            .iter()
            .filter_map(|op| match op {
                Op::Read(addr) => Some((addr.as_u32() - lay().shared_base.as_u32()) / BLOCK_BYTES),
                _ => None,
            })
            .collect();
        assert!(blocks.len() > 1, "TCS should wander across blocks");
    }

    #[test]
    fn bcs_first_cpu_is_idle() {
        let p = build_programs(Scenario::Best, Strategy::Proposed, &params(4, 1, 2), &lay());
        assert_eq!(p[0].op_count(), 0, "PowerPC-side task never runs the CS");
        assert!(p[1].op_count() > 0);
    }

    #[test]
    #[should_panic(expected = "32 lines")]
    fn invalid_params_rejected() {
        let bad = MicrobenchParams {
            lines_per_iter: 64,
            ..Default::default()
        };
        let _ = build_programs(Scenario::Worst, Strategy::Proposed, &bad, &lay());
    }
}
