//! # hmp-bus — an ASB-style shared system bus
//!
//! Models the AMBA **Advanced System Bus** as the paper's platform uses it
//! (§3): a single shared, arbitrated bus connecting processor wrappers, the
//! memory controller and simple slaves. The coherence-relevant signal
//! behaviour is reproduced:
//!
//! * **BREQ/BGNT arbitration** — round-robin among masters with pending
//!   work ([`Bus::try_grant`]);
//! * **ARTRY / BOFF retry** — a transaction observed in the address phase
//!   can be killed by a snooper (dirty line elsewhere, pending write-back
//!   buffer, or a TAG-CAM hit awaiting the ARM's drain ISR); the master
//!   re-arbitrates and retries ([`AddressOutcome::Retry`]);
//! * **snoop-push write-backs (drains)** — a snooper that must push a
//!   dirty line queues it on its own master port
//!   ([`Bus::submit_drain`]); when granted, a master sends its *retried*
//!   transaction first, then queued drains, then fresh requests. That
//!   ordering is exactly what makes the paper's *hardware deadlock*
//!   (Figure 4) reproducible: a master with a retried transaction never
//!   gets around to draining the lock line everyone else is spinning on.
//!
//! The bus is deliberately un-opinionated about *why* a transaction
//! retries: the wrapper/snoop logic in `hmp-core` decides, and the
//! platform crate feeds the verdict back through [`Bus::resolve`].
//!
//! The crate also hosts [`BusDevice`] slaves, including the paper's 1-bit
//! [`LockRegister`] (§3, solution 2 to the hardware deadlock).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
mod bus;
mod device;
mod transaction;

pub use arbiter::{Arbiter, ArbitrationPolicy};
pub use bus::{AddressOutcome, Bus, BusPhase, BusStats, CompletedTxn, GrantedTxn, RecoveryPolicy};
pub use device::{BusDevice, LockRegister};
pub use transaction::{BusOp, MasterId};
