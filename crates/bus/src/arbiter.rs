//! Bus arbitration policies.

use crate::MasterId;

/// How the arbiter picks among requesting masters.
///
/// AMBA ASB arbiters are commonly **fixed-priority** (lowest master index
/// wins), which is what the paper's Figure 2/3 platform implies — and
/// which, combined with retry back-off (BOFF), is what makes the paper's
/// Figure 4 hardware deadlock reachable. **Round-robin** is the fairer
/// default for performance studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ArbitrationPolicy {
    /// Rotate priority after each grant (fair).
    #[default]
    RoundRobin,
    /// Master 0 always beats master 1, and so on.
    FixedPriority,
    /// First-come-first-served: oldest outstanding request wins, ties
    /// broken by master index. This is the "FCFS service discipline" of
    /// arXiv:1004.3560, whose analytical model predicts near-equal grant
    /// shares under symmetric load — the fairness baseline the
    /// `fabric_sweep` benchmark compares against.
    Fcfs,
}

/// A fair round-robin arbiter over a fixed set of masters.
///
/// The AMBA ASB leaves the arbitration algorithm to the implementation;
/// round-robin is the usual choice and the one that makes the paper's
/// snoop-push sequencing work: after a master's transaction is killed by
/// ARTRY, the *other* master (which queued the drain write-back) wins the
/// next grant, pushes the dirty line, and only then does the first master's
/// retry succeed.
///
/// # Examples
///
/// ```
/// use hmp_bus::{Arbiter, MasterId};
/// let mut arb = Arbiter::new(2);
/// assert_eq!(arb.grant(&[true, true]), Some(MasterId(0)));
/// assert_eq!(arb.grant(&[true, true]), Some(MasterId(1)));
/// assert_eq!(arb.grant(&[true, true]), Some(MasterId(0)));
/// assert_eq!(arb.grant(&[false, false]), None);
/// ```
#[derive(Debug, Clone)]
pub struct Arbiter {
    masters: usize,
    policy: ArbitrationPolicy,
    /// Index of the master that was granted most recently.
    last: usize,
}

impl Arbiter {
    /// Creates a round-robin arbiter for `masters` bus masters.
    ///
    /// # Panics
    ///
    /// Panics if `masters` is zero.
    pub fn new(masters: usize) -> Self {
        Arbiter::with_policy(masters, ArbitrationPolicy::RoundRobin)
    }

    /// Creates an arbiter with an explicit policy.
    ///
    /// # Panics
    ///
    /// Panics if `masters` is zero.
    pub fn with_policy(masters: usize, policy: ArbitrationPolicy) -> Self {
        assert!(masters > 0, "a bus needs at least one master");
        Arbiter {
            masters,
            policy,
            last: masters - 1, // so master 0 wins the first round
        }
    }

    /// Number of masters attached.
    pub fn masters(&self) -> usize {
        self.masters
    }

    /// Cross-run reset: restores the grant rotation to its power-on
    /// position (master 0 wins the first round). The policy stays.
    pub fn reset(&mut self) {
        self.last = self.masters - 1;
    }

    /// The active policy.
    pub fn policy(&self) -> ArbitrationPolicy {
        self.policy
    }

    /// Grants the bus to the next requesting master after the previous
    /// grantee, if any is requesting. `requesting[i]` is master *i*'s BREQ.
    ///
    /// # Panics
    ///
    /// Panics if `requesting.len()` differs from the master count.
    pub fn grant(&mut self, requesting: &[bool]) -> Option<MasterId> {
        self.grant_stamped(requesting, &[])
    }

    /// [`Arbiter::grant`] with per-master request timestamps for the
    /// [`ArbitrationPolicy::Fcfs`] queue discipline: `stamps[i]` is the
    /// cycle master *i* raised its (still outstanding) BREQ. Round-robin
    /// and fixed-priority ignore the stamps, so callers without timestamp
    /// tracking may pass `&[]`.
    ///
    /// # Panics
    ///
    /// Panics if `requesting.len()` differs from the master count, or if
    /// the policy is FCFS and `stamps` is not the same width.
    pub fn grant_stamped(&mut self, requesting: &[bool], stamps: &[u64]) -> Option<MasterId> {
        assert_eq!(requesting.len(), self.masters, "BREQ vector width mismatch");
        match self.policy {
            ArbitrationPolicy::RoundRobin => {
                for off in 1..=self.masters {
                    let idx = (self.last + off) % self.masters;
                    if requesting[idx] {
                        self.last = idx;
                        return Some(MasterId(idx));
                    }
                }
                None
            }
            ArbitrationPolicy::FixedPriority => {
                let idx = requesting.iter().position(|&r| r)?;
                self.last = idx;
                Some(MasterId(idx))
            }
            ArbitrationPolicy::Fcfs => {
                assert_eq!(
                    stamps.len(),
                    self.masters,
                    "FCFS stamp vector width mismatch"
                );
                let idx = requesting
                    .iter()
                    .enumerate()
                    .filter(|&(_, &r)| r)
                    .min_by_key(|&(i, _)| (stamps[i], i))?
                    .0;
                self.last = idx;
                Some(MasterId(idx))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_alternates() {
        let mut arb = Arbiter::new(3);
        assert_eq!(arb.grant(&[true, true, true]), Some(MasterId(0)));
        assert_eq!(arb.grant(&[true, true, true]), Some(MasterId(1)));
        assert_eq!(arb.grant(&[true, true, true]), Some(MasterId(2)));
        assert_eq!(arb.grant(&[true, true, true]), Some(MasterId(0)));
    }

    #[test]
    fn skips_idle_masters() {
        let mut arb = Arbiter::new(3);
        assert_eq!(arb.grant(&[false, true, false]), Some(MasterId(1)));
        assert_eq!(arb.grant(&[true, false, false]), Some(MasterId(0)));
        // Pointer sits at 0; with all requesting, 1 is next.
        assert_eq!(arb.grant(&[true, true, true]), Some(MasterId(1)));
    }

    #[test]
    fn no_requests_no_grant() {
        let mut arb = Arbiter::new(2);
        assert_eq!(arb.grant(&[false, false]), None);
        // A no-grant round must not move the pointer.
        assert_eq!(arb.grant(&[true, true]), Some(MasterId(0)));
    }

    #[test]
    fn same_master_can_hold_the_bus_alone() {
        let mut arb = Arbiter::new(2);
        assert_eq!(arb.grant(&[true, false]), Some(MasterId(0)));
        assert_eq!(arb.grant(&[true, false]), Some(MasterId(0)));
    }

    #[test]
    #[should_panic(expected = "at least one master")]
    fn zero_masters_panics() {
        let _ = Arbiter::new(0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        Arbiter::new(2).grant(&[true]);
    }

    #[test]
    fn masters_accessor() {
        let arb = Arbiter::new(4);
        assert_eq!(arb.masters(), 4);
        assert_eq!(arb.policy(), ArbitrationPolicy::RoundRobin);
    }

    #[test]
    fn fixed_priority_always_favors_lowest_index() {
        let mut arb = Arbiter::with_policy(3, ArbitrationPolicy::FixedPriority);
        assert_eq!(arb.grant(&[true, true, true]), Some(MasterId(0)));
        assert_eq!(arb.grant(&[true, true, true]), Some(MasterId(0)));
        assert_eq!(arb.grant(&[false, true, true]), Some(MasterId(1)));
        assert_eq!(arb.grant(&[false, false, true]), Some(MasterId(2)));
        assert_eq!(arb.grant(&[false, false, false]), None);
    }

    #[test]
    fn policy_default_is_round_robin() {
        assert_eq!(ArbitrationPolicy::default(), ArbitrationPolicy::RoundRobin);
    }

    #[test]
    fn fcfs_simultaneous_requests_grant_in_index_order() {
        let mut arb = Arbiter::with_policy(3, ArbitrationPolicy::Fcfs);
        // All three raised BREQ at cycle 10: ties break by index.
        assert_eq!(
            arb.grant_stamped(&[true, true, true], &[10, 10, 10]),
            Some(MasterId(0))
        );
        assert_eq!(
            arb.grant_stamped(&[false, true, true], &[10, 10, 10]),
            Some(MasterId(1))
        );
        assert_eq!(
            arb.grant_stamped(&[false, false, true], &[10, 10, 10]),
            Some(MasterId(2))
        );
    }

    #[test]
    fn fcfs_staggered_requests_grant_oldest_first() {
        let mut arb = Arbiter::with_policy(3, ArbitrationPolicy::Fcfs);
        // Master 2 asked at cycle 5, master 0 at 7, master 1 at 9.
        assert_eq!(
            arb.grant_stamped(&[true, true, true], &[7, 9, 5]),
            Some(MasterId(2))
        );
        assert_eq!(
            arb.grant_stamped(&[true, true, false], &[7, 9, 5]),
            Some(MasterId(0))
        );
        // Master 2 re-requests later (cycle 20) — it now queues behind 1.
        assert_eq!(
            arb.grant_stamped(&[false, true, true], &[7, 9, 20]),
            Some(MasterId(1))
        );
        assert_eq!(
            arb.grant_stamped(&[false, false, true], &[7, 9, 20]),
            Some(MasterId(2))
        );
    }

    #[test]
    fn fcfs_no_requests_no_grant() {
        let mut arb = Arbiter::with_policy(2, ArbitrationPolicy::Fcfs);
        assert_eq!(arb.grant_stamped(&[false, false], &[0, 0]), None);
    }

    #[test]
    #[should_panic(expected = "stamp vector width mismatch")]
    fn fcfs_missing_stamps_panics() {
        let mut arb = Arbiter::with_policy(2, ArbitrationPolicy::Fcfs);
        let _ = arb.grant(&[true, true]);
    }

    #[test]
    fn non_fcfs_policies_ignore_stamps() {
        let mut arb = Arbiter::new(2);
        // Stamps favour master 1, but round-robin still rotates from 0.
        assert_eq!(
            arb.grant_stamped(&[true, true], &[100, 1]),
            Some(MasterId(0))
        );
        let mut fp = Arbiter::with_policy(2, ArbitrationPolicy::FixedPriority);
        assert_eq!(
            fp.grant_stamped(&[true, true], &[100, 1]),
            Some(MasterId(0))
        );
    }
}
