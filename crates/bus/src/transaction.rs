//! Bus masters and transaction kinds.

use core::fmt;
use hmp_mem::LINE_WORDS;

/// Identifies one bus master (a processor wrapper). Values are dense
/// indices assigned by the platform builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MasterId(pub usize);

impl MasterId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for MasterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// One bus transaction kind, with its payload for writes.
///
/// * Line-granular operations are 8-word bursts (cache fills and
///   write-backs);
/// * word-granular operations serve uncached regions, write-through
///   stores, and device slaves;
/// * [`BusOp::Upgrade`] is the address-only invalidate broadcast an
///   MSI/MESI/MOESI cache issues to write a Shared line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusOp {
    /// Burst read of a whole cache line (read-miss fill).
    ReadLine,
    /// Burst read with intent to modify (write-miss fill, "RWITM"): the
    /// memory controller services it as a read, but every snooper must
    /// treat it as a write and give the line up.
    ReadLineExcl,
    /// Burst write of a whole cache line (write-back / drain).
    WriteLine([u32; LINE_WORDS as usize]),
    /// Single-word read (uncached load or device read).
    ReadWord,
    /// Single-word write (uncached store, write-through store, device
    /// write).
    WriteWord(u32),
    /// Invalidate broadcast; no data phase beyond the address cycle.
    Upgrade,
}

impl BusOp {
    /// Returns `true` for operations that modify memory or a device — the
    /// operation class a snooping cache must treat as a write. Note that
    /// [`BusOp::Upgrade`] is *not* a write on the wire (no data moves);
    /// protocols handle it through `hmp_cache::SnoopOp::Upgrade`.
    pub fn is_write(&self) -> bool {
        matches!(self, BusOp::WriteLine(_) | BusOp::WriteWord(_))
    }

    /// Returns `true` for line-granular (burst) operations.
    pub fn is_burst(&self) -> bool {
        matches!(
            self,
            BusOp::ReadLine | BusOp::ReadLineExcl | BusOp::WriteLine(_)
        )
    }

    /// The payload-free event kind for [`hmp_sim::SimEvent`] emission.
    pub fn kind(&self) -> hmp_sim::BusOpKind {
        match self {
            BusOp::ReadLine => hmp_sim::BusOpKind::ReadLine,
            BusOp::ReadLineExcl => hmp_sim::BusOpKind::ReadLineExcl,
            BusOp::WriteLine(_) => hmp_sim::BusOpKind::WriteLine,
            BusOp::ReadWord => hmp_sim::BusOpKind::ReadWord,
            BusOp::WriteWord(_) => hmp_sim::BusOpKind::WriteWord,
            BusOp::Upgrade => hmp_sim::BusOpKind::Upgrade,
        }
    }

    /// Short mnemonic for traces.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            BusOp::ReadLine => "RDL",
            BusOp::ReadLineExcl => "RDX",
            BusOp::WriteLine(_) => "WRL",
            BusOp::ReadWord => "RDW",
            BusOp::WriteWord(_) => "WRW",
            BusOp::Upgrade => "UPG",
        }
    }
}

impl fmt::Display for BusOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn master_id_display() {
        assert_eq!(MasterId(1).to_string(), "cpu1");
        assert_eq!(MasterId(2).index(), 2);
    }

    #[test]
    fn write_classification() {
        assert!(BusOp::WriteLine([0; 8]).is_write());
        assert!(BusOp::WriteWord(1).is_write());
        assert!(!BusOp::ReadLine.is_write());
        assert!(!BusOp::ReadLineExcl.is_write(), "RWITM reads memory");
        assert!(!BusOp::ReadWord.is_write());
        assert!(!BusOp::Upgrade.is_write());
    }

    #[test]
    fn burst_classification() {
        assert!(BusOp::ReadLine.is_burst());
        assert!(BusOp::ReadLineExcl.is_burst());
        assert!(BusOp::WriteLine([0; 8]).is_burst());
        assert!(!BusOp::ReadWord.is_burst());
        assert!(!BusOp::WriteWord(0).is_burst());
        assert!(!BusOp::Upgrade.is_burst());
    }

    #[test]
    fn mnemonics() {
        assert_eq!(BusOp::ReadLine.to_string(), "RDL");
        assert_eq!(BusOp::Upgrade.to_string(), "UPG");
    }
}
