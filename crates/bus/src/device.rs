//! Bus slaves (memory-mapped devices).

use core::fmt;
use hmp_mem::Addr;

/// A single-word-access bus slave.
///
/// Devices live in [`hmp_mem::MemAttr::Device`] windows; the platform
/// routes completed single-word bus transactions to them instead of the
/// memory controller. Device accesses take the bus's single-word latency.
pub trait BusDevice: fmt::Debug {
    /// Human-readable device name for traces.
    fn name(&self) -> &str;

    /// Services a single-word read. `addr` is the full physical address;
    /// the device decodes its own offset.
    fn read_word(&mut self, addr: Addr) -> u32;

    /// Services a single-word write.
    fn write_word(&mut self, addr: Addr, value: u32);

    /// Cross-run reset: returns the device to its power-on state without
    /// reallocating. The default is a no-op for stateless devices.
    fn reset(&mut self) {}
}

/// The paper's hardware lock register (§3, second deadlock solution,
/// after Akgul & Mooney's SoC Lock Cache).
///
/// Semantics are *test-and-set on read*:
///
/// * a **read** returns the current value and atomically sets the bit —
///   `0` means the reader acquired the lock, `1` means it is held;
/// * a **write** (any value) clears the bit, releasing the lock.
///
/// Because the lock state never enters any data cache, spinning on it
/// cannot trigger snoop activity, which is precisely how it avoids the
/// hardware deadlock. The paper's register holds a single lock ("the
/// system can have only one lock"); this model exposes one lock per word
/// offset as a straightforward generalisation, with offset 0 reproducing
/// the paper's device.
///
/// # Examples
///
/// ```
/// use hmp_bus::{BusDevice, LockRegister};
/// use hmp_mem::Addr;
///
/// let mut lock = LockRegister::new(1);
/// assert_eq!(lock.read_word(Addr::new(0x0)), 0); // acquired
/// assert_eq!(lock.read_word(Addr::new(0x0)), 1); // held
/// lock.write_word(Addr::new(0x0), 0);            // release
/// assert_eq!(lock.read_word(Addr::new(0x0)), 0); // acquired again
/// ```
#[derive(Debug, Clone)]
pub struct LockRegister {
    bits: Vec<bool>,
    acquisitions: u64,
    contended_reads: u64,
}

impl LockRegister {
    /// Creates a register bank with `locks` independent 1-bit locks.
    ///
    /// # Panics
    ///
    /// Panics if `locks` is zero.
    pub fn new(locks: usize) -> Self {
        assert!(locks > 0, "a lock register needs at least one lock");
        LockRegister {
            bits: vec![false; locks],
            acquisitions: 0,
            contended_reads: 0,
        }
    }

    /// Number of locks in the bank.
    pub fn locks(&self) -> usize {
        self.bits.len()
    }

    /// Successful acquisitions so far.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Reads that found the lock held (spin iterations).
    pub fn contended_reads(&self) -> u64 {
        self.contended_reads
    }

    /// Whether lock `index` is currently held.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn is_held(&self, index: usize) -> bool {
        self.bits[index]
    }

    fn index(&self, addr: Addr) -> usize {
        addr.word_index() % self.bits.len()
    }
}

impl BusDevice for LockRegister {
    fn name(&self) -> &str {
        "lock-register"
    }

    fn read_word(&mut self, addr: Addr) -> u32 {
        let i = self.index(addr);
        if self.bits[i] {
            self.contended_reads += 1;
            1
        } else {
            self.bits[i] = true;
            self.acquisitions += 1;
            0
        }
    }

    fn write_word(&mut self, addr: Addr, _value: u32) {
        let i = self.index(addr);
        self.bits[i] = false;
    }

    fn reset(&mut self) {
        self.bits.fill(false);
        self.acquisitions = 0;
        self.contended_reads = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_and_set_semantics() {
        let mut lock = LockRegister::new(1);
        assert!(!lock.is_held(0));
        assert_eq!(lock.read_word(Addr::new(0)), 0);
        assert!(lock.is_held(0));
        assert_eq!(lock.read_word(Addr::new(0)), 1);
        assert_eq!(lock.read_word(Addr::new(0)), 1);
        lock.write_word(Addr::new(0), 123);
        assert!(!lock.is_held(0));
        assert_eq!(lock.acquisitions(), 1);
        assert_eq!(lock.contended_reads(), 2);
    }

    #[test]
    fn independent_locks_by_word_offset() {
        let mut lock = LockRegister::new(2);
        assert_eq!(lock.read_word(Addr::new(0)), 0);
        assert_eq!(lock.read_word(Addr::new(4)), 0, "second lock independent");
        assert_eq!(lock.read_word(Addr::new(0)), 1);
        lock.write_word(Addr::new(0), 0);
        assert_eq!(lock.read_word(Addr::new(0)), 0);
        assert!(lock.is_held(1));
        assert_eq!(lock.locks(), 2);
    }

    #[test]
    fn address_wraps_by_modulo() {
        let mut lock = LockRegister::new(1);
        // Any word offset decodes to lock 0 in a single-lock bank.
        assert_eq!(lock.read_word(Addr::new(0x100)), 0);
        assert_eq!(lock.read_word(Addr::new(0x0)), 1);
    }

    #[test]
    #[should_panic(expected = "at least one lock")]
    fn zero_locks_panics() {
        let _ = LockRegister::new(0);
    }

    #[test]
    fn device_name() {
        assert_eq!(LockRegister::new(1).name(), "lock-register");
    }
}
