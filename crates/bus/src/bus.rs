//! The bus FSM: grant → address/snoop → data → completion.

use crate::{Arbiter, ArbitrationPolicy, BusOp, MasterId};
use hmp_mem::{Addr, LINE_WORDS};
use hmp_sim::{Cycle, Observer, SimEvent};
use std::collections::VecDeque;

/// The bus pipeline state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusPhase {
    /// No transaction in flight; arbitration may run.
    Idle,
    /// A transaction has been granted and is being snooped; the platform
    /// must call [`Bus::resolve`] in the same cycle.
    Address,
    /// The data phase is streaming; `remaining` cycles left.
    Data {
        /// Bus cycles until the transaction completes.
        remaining: u64,
    },
}

/// A transaction that just entered the address phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantedTxn {
    /// The master driving the transaction.
    pub master: MasterId,
    /// The operation on the wire (what the memory controller sees — the
    /// wrappers translate it per-snooper, never here).
    pub op: BusOp,
    /// Target address.
    pub addr: Addr,
    /// `true` if this is a snoop-push write-back rather than a CPU
    /// transaction.
    pub is_drain: bool,
    /// `true` if this transaction was previously killed by ARTRY.
    pub is_retry: bool,
}

/// The platform's verdict on an address phase, fed to [`Bus::resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressOutcome {
    /// Snooping raised no objection; stream data for `data_cycles` cycles
    /// (0 completes the transaction at the end of the address cycle, used
    /// for upgrade broadcasts).
    Proceed {
        /// Length of the data phase in bus cycles.
        data_cycles: u64,
        /// Value of the bus shared signal sampled by the requester.
        shared: bool,
        /// Line supplied cache-to-cache (MOESI), bypassing memory.
        supplied: Option<[u32; LINE_WORDS as usize]>,
    },
    /// ARTRY: the transaction is killed; the master re-arbitrates later.
    Retry,
}

/// A transaction that completed its data phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedTxn {
    /// The master that drove the transaction.
    pub master: MasterId,
    /// The operation performed.
    pub op: BusOp,
    /// Target address.
    pub addr: Addr,
    /// `true` if this was a snoop-push write-back.
    pub is_drain: bool,
    /// Shared-signal value sampled during the address phase.
    pub shared: bool,
    /// Line supplied cache-to-cache instead of from memory.
    pub supplied: Option<[u32; LINE_WORDS as usize]>,
}

/// Arbiter-level retry escalation: timeout → back-off → quarantine.
///
/// The paper's §3 failure mode is a master wedged in permanent retry.
/// A recovery policy bounds how long the arbiter tolerates that: after
/// `retry_budget` *consecutive* ARTRY kills of one master's CPU
/// transaction the arbiter escalates its BOFF window to
/// `escalation_backoff`, and after `quarantine_after` consecutive kills
/// it quarantines the master outright — its CPU transactions are
/// excluded from arbitration while its drains (dirty-data push-outs)
/// keep flowing, so quarantine never loses data. The default policy is
/// fully disabled; a fault-free run with a disabled policy is
/// byte-identical to a build without this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryPolicy {
    /// Consecutive ARTRYs of one master before its BOFF escalates
    /// (0 disables escalation).
    pub retry_budget: u32,
    /// BOFF window applied once the budget is exceeded.
    pub escalation_backoff: u64,
    /// Consecutive ARTRYs before the master is quarantined
    /// (0 disables quarantine).
    pub quarantine_after: u32,
}

impl RecoveryPolicy {
    /// `true` when any escalation stage is armed.
    pub fn enabled(&self) -> bool {
        self.retry_budget > 0 || self.quarantine_after > 0
    }
}

/// Aggregate bus activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Transactions granted (address phases started).
    pub grants: u64,
    /// Transactions killed by ARTRY.
    pub retries: u64,
    /// Transactions completed.
    pub completions: u64,
    /// Completed snoop-push write-backs.
    pub drains: u64,
    /// Total data-phase cycles streamed.
    pub data_cycles: u64,
}

#[derive(Debug, Clone, Default)]
struct MasterPort {
    /// Remaining BOFF cycles: after an ARTRY the master deasserts BREQ
    /// for the configured back-off window before retrying.
    backoff: u64,
    /// The master's single outstanding CPU transaction, if not yet granted.
    fresh: Option<(BusOp, Addr)>,
    /// A transaction killed by ARTRY, waiting to retry. `bool` records
    /// whether it was a drain.
    retrying: Option<(BusOp, Addr, bool)>,
    /// Snoop-push write-backs queued behind the CPU transaction. These
    /// double as the master's *write-back buffers*: the platform must ARTRY
    /// any remote access to a line held here.
    drains: VecDeque<([u32; LINE_WORDS as usize], Addr)>,
    /// Cycle the port last transitioned from idle to requesting — the
    /// FCFS queue position. Refreshed on an ARTRY kill (the retry is a
    /// *new* request and queues behind younger first-timers).
    stamp: u64,
}

impl MasterPort {
    fn wants_bus(&self) -> bool {
        self.retrying.is_some() || !self.drains.is_empty() || self.fresh.is_some()
    }
}

#[derive(Debug, Clone)]
struct Active {
    txn: GrantedTxn,
    shared: bool,
    supplied: Option<[u32; LINE_WORDS as usize]>,
}

/// The shared system bus.
///
/// Drive it one bus cycle at a time:
///
/// 1. if [`Bus::phase`] is [`BusPhase::Idle`], call [`Bus::try_grant`];
///    a granted transaction is *in its address phase* — snoop it and call
///    [`Bus::resolve`] within the same cycle;
/// 2. if the phase is [`BusPhase::Data`], call [`Bus::advance_data`] once
///    per cycle until it yields the [`CompletedTxn`].
///
/// Per-master ordering (retry → drains → fresh) is chosen to match the
/// PowerPC755 behaviour the paper describes: a master granted the bus
/// retries its killed transaction *"instead of draining out the lock
/// variables"* — the root cause of the hardware deadlock of Figure 4.
#[derive(Debug, Clone)]
pub struct Bus {
    arbiter: Arbiter,
    ports: Vec<MasterPort>,
    phase: BusPhase,
    active: Option<Active>,
    stats: BusStats,
    retry_backoff: u64,
    /// Reused arbitration request mask — rebuilding it per cycle would
    /// allocate on the hot path.
    req_mask: Vec<bool>,
    /// Reused FCFS stamp vector, filled alongside `req_mask`.
    stamp_mask: Vec<u64>,
    /// Grants per master (including drain grants and re-grants after
    /// ARTRY) — the numerator of the fairness studies' grant shares.
    /// Kept outside [`BusStats`] so the aggregate struct stays `Copy`.
    grants_per_master: Vec<u64>,
    /// Segment each master port is attached to. Single-segment fabrics
    /// map every master to segment 0.
    segment_map: Vec<usize>,
    /// Number of bus segments in the fabric (≥ 1).
    segments: usize,
    /// Extra data-phase cycles a transaction pays when its data crosses
    /// the snooping bridge between segments.
    bridge_latency: u64,
    /// Maintained count of queued (not yet granted) drains across all
    /// ports — kept at transition points so [`Bus::queued_drains`] is
    /// O(1) instead of a per-cycle port scan.
    queued_drain_count: usize,
    /// Injected grant blackout: while positive, arbitration is
    /// suppressed (a dropped/delayed BG line). Runs down one per cycle.
    grant_block: u64,
    /// Retry-escalation policy (disabled by default).
    recovery: RecoveryPolicy,
    /// Per-master recovery overrides; `None` falls back to `recovery`.
    recovery_overrides: Vec<Option<RecoveryPolicy>>,
    /// Consecutive ARTRY kills per master, reset when a CPU transaction
    /// of that master proceeds.
    consecutive_retries: Vec<u32>,
    /// Masters whose CPU transactions are excluded from arbitration.
    quarantined: Vec<bool>,
}

impl Bus {
    /// Creates a bus with `masters` master ports.
    ///
    /// # Panics
    ///
    /// Panics if `masters` is zero.
    pub fn new(masters: usize) -> Self {
        Bus {
            arbiter: Arbiter::new(masters),
            ports: (0..masters).map(|_| MasterPort::default()).collect(),
            phase: BusPhase::Idle,
            active: None,
            stats: BusStats::default(),
            retry_backoff: 0,
            req_mask: vec![false; masters],
            stamp_mask: vec![0; masters],
            grants_per_master: vec![0; masters],
            segment_map: vec![0; masters],
            segments: 1,
            bridge_latency: 0,
            queued_drain_count: 0,
            grant_block: 0,
            recovery: RecoveryPolicy::default(),
            recovery_overrides: vec![None; masters],
            consecutive_retries: vec![0; masters],
            quarantined: vec![false; masters],
        }
    }

    /// Switches the arbitration policy (resets the rotation pointer).
    pub fn set_arbitration(&mut self, policy: ArbitrationPolicy) {
        self.arbiter = Arbiter::with_policy(self.ports.len(), policy);
    }

    /// Cross-run reset: returns every port, the arbiter rotation, the
    /// active transaction and all counters to their power-on state while
    /// keeping every allocation (drain queues, masks, per-master vectors)
    /// and the fabric topology (segments, bridge latency). Configuration
    /// installed through the setters — arbitration, BOFF window, recovery
    /// policy and per-master overrides — is preserved; callers that want
    /// different knobs for the next run re-apply them afterwards.
    pub fn reset(&mut self) {
        self.arbiter.reset();
        for p in &mut self.ports {
            p.backoff = 0;
            p.fresh = None;
            p.retrying = None;
            p.drains.clear();
            p.stamp = 0;
        }
        self.phase = BusPhase::Idle;
        self.active = None;
        self.stats = BusStats::default();
        self.req_mask.fill(false);
        self.stamp_mask.fill(0);
        self.grants_per_master.fill(0);
        self.queued_drain_count = 0;
        self.grant_block = 0;
        self.consecutive_retries.fill(0);
        self.quarantined.fill(false);
    }

    /// Sets the BOFF window: a master whose transaction was killed by
    /// ARTRY deasserts its request for this many bus cycles before
    /// retrying. Zero (the default) retries immediately.
    pub fn set_retry_backoff(&mut self, cycles: u64) {
        self.retry_backoff = cycles;
    }

    /// Advances per-cycle bus state (BOFF countdowns, injected grant
    /// blackouts). Call once at the top of every bus cycle.
    pub fn begin_cycle(&mut self) {
        for p in &mut self.ports {
            p.backoff = p.backoff.saturating_sub(1);
        }
        self.grant_block = self.grant_block.saturating_sub(1);
    }

    /// Sets the retry-escalation policy.
    pub fn set_recovery(&mut self, policy: RecoveryPolicy) {
        self.recovery = policy;
    }

    /// The active retry-escalation policy.
    pub fn recovery(&self) -> RecoveryPolicy {
        self.recovery
    }

    /// Overrides the retry-escalation policy for one master. Masters
    /// without an override use the bus-wide [`Bus::set_recovery`] policy.
    pub fn set_master_recovery(&mut self, master: MasterId, policy: RecoveryPolicy) {
        self.recovery_overrides[master.index()] = Some(policy);
    }

    /// The retry-escalation policy governing `master` (its override, or
    /// the bus-wide default).
    pub fn recovery_for(&self, master: MasterId) -> RecoveryPolicy {
        self.recovery_overrides[master.index()].unwrap_or(self.recovery)
    }

    /// `true` when any master (via override or the bus-wide default) has
    /// an armed recovery policy.
    pub fn recovery_armed(&self) -> bool {
        self.recovery.enabled()
            || self
                .recovery_overrides
                .iter()
                .flatten()
                .any(|p| p.enabled())
    }

    /// Partitions the masters over bus segments joined by the snooping
    /// bridge. `segment_map[i]` is master *i*'s home segment; `segments`
    /// is the fabric's segment count; `bridge_latency` is the extra
    /// data-phase cost of a transaction whose data crosses the bridge.
    ///
    /// The bridge forwards every address phase combinationally, so the
    /// fabric remains **one arbitration domain** — one transaction in
    /// flight fabric-wide, every cache snooping every address. Only data
    /// movement pays the crossing penalty (see [`Bus::bridge_penalty`]).
    /// A single-segment fabric (the default) never pays it, which keeps
    /// the flat-bus configurations byte-identical to the pre-fabric bus.
    ///
    /// # Panics
    ///
    /// Panics if `segment_map` is not one entry per master, `segments`
    /// is zero, or any entry names a segment out of range.
    pub fn set_segments(&mut self, segment_map: &[usize], segments: usize, bridge_latency: u64) {
        assert_eq!(
            segment_map.len(),
            self.ports.len(),
            "segment map width mismatch"
        );
        assert!(segments >= 1, "a fabric needs at least one segment");
        assert!(
            segment_map.iter().all(|&s| s < segments),
            "segment index out of range"
        );
        self.segment_map.copy_from_slice(segment_map);
        self.segments = segments;
        self.bridge_latency = bridge_latency;
    }

    /// Number of bus segments in the fabric.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// The segment `master` is attached to.
    pub fn segment_of(&self, master: MasterId) -> usize {
        self.segment_map[master.index()]
    }

    /// Configured bridge crossing latency in bus cycles.
    pub fn bridge_latency(&self) -> u64 {
        self.bridge_latency
    }

    /// Extra data-phase cycles `master`'s transaction pays for its data
    /// source: `supplier` is the cache-to-cache supplier's master index,
    /// or `None` when memory (homed on segment 0, alongside the lock
    /// register and other slaves) serves the data. Zero on a
    /// single-segment fabric or when source and requester share a
    /// segment.
    pub fn bridge_penalty(&self, master: MasterId, supplier: Option<usize>) -> u64 {
        if self.crosses_bridge(master, supplier) {
            self.bridge_latency
        } else {
            0
        }
    }

    /// `true` when `master`'s data source sits across the bridge —
    /// i.e. [`Bus::bridge_penalty`] would apply (even if the configured
    /// latency is zero). Telemetry counts these crossings per window.
    pub fn crosses_bridge(&self, master: MasterId, supplier: Option<usize>) -> bool {
        if self.segments <= 1 {
            return false;
        }
        let home = self.segment_map[master.index()];
        let source = supplier.map_or(0, |s| self.segment_map[s]);
        home != source
    }

    /// Grants per master so far (drains and retry re-grants included).
    pub fn master_grants(&self) -> &[u64] {
        &self.grants_per_master
    }

    /// The master whose granted transaction currently owns the bus
    /// (`None` outside an active transaction). Telemetry uses this to
    /// attribute data-phase cycles to the driving master's segment.
    pub fn active_master(&self) -> Option<MasterId> {
        self.active.as_ref().map(|a| a.txn.master)
    }

    /// Suppresses arbitration for the next `cycles` bus cycles (an
    /// injected dropped/delayed grant line). Extends, never shortens, an
    /// active blackout.
    pub fn block_grants(&mut self, cycles: u64) {
        self.grant_block = self.grant_block.max(cycles);
    }

    /// Remaining injected grant-blackout cycles.
    pub fn grant_block_remaining(&self) -> u64 {
        self.grant_block
    }

    /// Quarantines `master`: its CPU transactions are excluded from
    /// arbitration from now on; its drains still flow. Returns `true`
    /// if the master was not already quarantined.
    pub fn quarantine(&mut self, master: MasterId) -> bool {
        !std::mem::replace(&mut self.quarantined[master.index()], true)
    }

    /// `true` if `master` is quarantined.
    pub fn is_quarantined(&self, master: MasterId) -> bool {
        self.quarantined[master.index()]
    }

    /// Number of quarantined masters.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.iter().filter(|&&q| q).count()
    }

    /// Consecutive ARTRY kills of `master`'s CPU transaction since it
    /// last proceeded.
    pub fn consecutive_retries(&self, master: MasterId) -> u32 {
        self.consecutive_retries[master.index()]
    }

    /// What `master` can currently offer arbitration: everything when
    /// healthy, drains only when quarantined.
    fn wants_bus_effective(&self, i: usize) -> bool {
        let p = &self.ports[i];
        if self.quarantined[i] {
            p.retrying.as_ref().is_some_and(|&(_, _, d)| d) || !p.drains.is_empty()
        } else {
            p.wants_bus()
        }
    }

    /// Number of master ports.
    pub fn masters(&self) -> usize {
        self.ports.len()
    }

    /// Current pipeline phase.
    pub fn phase(&self) -> BusPhase {
        self.phase
    }

    /// Activity counters so far.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Submits a master's (single) CPU transaction, reported to `obs` as
    /// [`SimEvent::BusRequest`] (the open of its lifecycle span).
    ///
    /// # Panics
    ///
    /// Panics if the master already has an outstanding CPU transaction —
    /// the modelled cores are blocking and never pipeline bus requests.
    pub fn submit(
        &mut self,
        master: MasterId,
        op: BusOp,
        addr: Addr,
        now: Cycle,
        obs: &mut impl Observer,
    ) {
        let port = &mut self.ports[master.index()];
        assert!(
            port.fresh.is_none() && port.retrying.as_ref().is_none_or(|&(_, _, d)| d),
            "{master} already has an outstanding CPU transaction"
        );
        if !port.wants_bus() {
            port.stamp = now.as_u64();
        }
        port.fresh = Some((op, addr));
        obs.on_event(
            now,
            SimEvent::BusRequest {
                master: master.index(),
                op: op.kind(),
                addr: u64::from(addr.as_u32()),
                is_drain: false,
            },
        );
    }

    /// Queues a snoop-push write-back on `master`'s port, reported to
    /// `obs` as a drain [`SimEvent::BusRequest`].
    pub fn submit_drain(
        &mut self,
        master: MasterId,
        data: [u32; LINE_WORDS as usize],
        addr: Addr,
        now: Cycle,
        obs: &mut impl Observer,
    ) {
        let line = addr.line_base();
        let port = &mut self.ports[master.index()];
        if !port.wants_bus() {
            port.stamp = now.as_u64();
        }
        port.drains.push_back((data, line));
        self.queued_drain_count += 1;
        obs.on_event(
            now,
            SimEvent::BusRequest {
                master: master.index(),
                op: hmp_sim::BusOpKind::WriteLine,
                addr: u64::from(line.as_u32()),
                is_drain: true,
            },
        );
    }

    /// `true` if the master has a CPU transaction in flight (fresh, retrying
    /// or currently on the bus).
    pub fn cpu_txn_outstanding(&self, master: MasterId) -> bool {
        let port = &self.ports[master.index()];
        port.fresh.is_some()
            || port.retrying.as_ref().is_some_and(|&(_, _, d)| !d)
            || self
                .active
                .as_ref()
                .is_some_and(|a| a.txn.master == master && !a.txn.is_drain)
    }

    /// `true` if any master holds a write-back buffer for `addr`'s line —
    /// a queued snoop-push drain, a retried drain, **or** a flush/ISR
    /// write-back still waiting as a CPU transaction. Remote accesses to
    /// such a line must be ARTRY'd until the buffer empties, exactly as
    /// real snooping hardware checks its write-back buffers: the line has
    /// already left the cache, so memory is the only copy and it is stale
    /// until the write-back lands.
    pub fn drain_pending_to(&self, addr: Addr) -> bool {
        let line = addr.line_base();
        let wb = |op: &BusOp, a: Addr| matches!(op, BusOp::WriteLine(_)) && a.line_base() == line;
        self.ports.iter().any(|p| {
            p.drains.iter().any(|&(_, a)| a == line)
                || p.retrying.as_ref().is_some_and(|(op, a, _)| wb(op, *a))
                || p.fresh.as_ref().is_some_and(|(op, a)| wb(op, *a))
        })
    }

    /// Number of queued (not yet granted) drains across all masters.
    pub fn queued_drains(&self) -> usize {
        debug_assert_eq!(
            self.queued_drain_count,
            self.ports.iter().map(|p| p.drains.len()).sum::<usize>()
                + self
                    .ports
                    .iter()
                    .filter(|p| p.retrying.as_ref().is_some_and(|&(_, _, d)| d))
                    .count(),
            "maintained drain counter diverged from the port scan"
        );
        self.queued_drain_count
    }

    /// Bus cycles until the bus's next self-generated event, or `None`
    /// when the bus is quiescent (idle with no backing-off requester) —
    /// the earliest cycle on which a data phase can complete or a new
    /// grant can happen. The request set cannot change between steps
    /// (submissions only happen inside a step), so a fast-forward kernel
    /// may skip strictly fewer cycles than this.
    pub fn next_event(&self) -> Option<u64> {
        match self.phase {
            BusPhase::Data { remaining } => Some(remaining),
            BusPhase::Address => Some(1), // resolves within its own cycle
            // During an injected grant blackout this is conservative (the
            // true next grant is later), which only costs the fast-forward
            // kernel extra event steps — never a missed event.
            BusPhase::Idle => (0..self.ports.len())
                .filter(|&i| self.wants_bus_effective(i))
                // A requester with no BOFF left is grantable on the next
                // cycle; otherwise it re-requests once its window elapses.
                .map(|i| self.ports[i].backoff.max(1))
                .min(),
        }
    }

    /// Bulk-advances the bus by `cycles` event-free cycles: streams the
    /// data phase and runs down BOFF windows exactly as that many
    /// [`Bus::begin_cycle`] + [`Bus::advance_data`] cycles would have,
    /// without completing anything.
    ///
    /// The caller must guarantee `cycles` is strictly less than the last
    /// [`Bus::next_event`] answer (debug-asserted).
    pub fn warp(&mut self, cycles: u64) {
        if let BusPhase::Data { remaining } = &mut self.phase {
            debug_assert!(cycles < *remaining, "warp across a data-phase completion");
            *remaining -= cycles;
            self.stats.data_cycles += cycles;
        } else {
            debug_assert!(
                !(0..self.ports.len())
                    .any(|i| self.wants_bus_effective(i) && self.ports[i].backoff.max(1) <= cycles),
                "warp across a grant opportunity"
            );
        }
        for p in &mut self.ports {
            p.backoff = p.backoff.saturating_sub(cycles);
        }
        self.grant_block = self.grant_block.saturating_sub(cycles);
    }

    /// Runs arbitration if the bus is idle. On a grant, the returned
    /// transaction is in its address phase and **must** be resolved with
    /// [`Bus::resolve`] in the same cycle.
    ///
    /// A grant is reported to `obs` as [`SimEvent::BusGrant`], timestamped
    /// `now` — a typed event, so a null observer costs nothing.
    pub fn try_grant(&mut self, now: Cycle, obs: &mut impl Observer) -> Option<GrantedTxn> {
        if self.phase != BusPhase::Idle {
            return None;
        }
        if self.grant_block > 0 {
            return None;
        }
        for i in 0..self.ports.len() {
            self.req_mask[i] = self.ports[i].backoff == 0 && self.wants_bus_effective(i);
            self.stamp_mask[i] = self.ports[i].stamp;
        }
        let master = self
            .arbiter
            .grant_stamped(&self.req_mask, &self.stamp_mask)?;
        self.grants_per_master[master.index()] += 1;
        let quarantined = self.quarantined[master.index()];
        let port = &mut self.ports[master.index()];
        // A quarantined master's non-drain retry stays parked; only its
        // drains are eligible.
        let take_retrying = port
            .retrying
            .as_ref()
            .is_some_and(|&(_, _, d)| d || !quarantined);
        let txn = if take_retrying {
            let (op, addr, was_drain) = port.retrying.take().expect("checked above");
            if was_drain {
                self.queued_drain_count -= 1;
            }
            GrantedTxn {
                master,
                op,
                addr,
                is_drain: was_drain,
                is_retry: true,
            }
        } else if let Some((data, addr)) = port.drains.pop_front() {
            self.queued_drain_count -= 1;
            GrantedTxn {
                master,
                op: BusOp::WriteLine(data),
                addr,
                is_drain: true,
                is_retry: false,
            }
        } else {
            let (op, addr) = port.fresh.take().expect("wants_bus implies work");
            GrantedTxn {
                master,
                op,
                addr,
                is_drain: false,
                is_retry: false,
            }
        };
        self.phase = BusPhase::Address;
        self.active = Some(Active {
            txn,
            shared: false,
            supplied: None,
        });
        self.stats.grants += 1;
        obs.on_event(
            now,
            SimEvent::BusGrant {
                master: txn.master.index(),
                op: txn.op.kind(),
                addr: u64::from(txn.addr.as_u32()),
                is_retry: txn.is_retry,
                is_drain: txn.is_drain,
            },
        );
        Some(txn)
    }

    fn emit_complete(now: Cycle, obs: &mut impl Observer, done: &CompletedTxn) {
        obs.on_event(
            now,
            SimEvent::BusComplete {
                master: done.master.index(),
                op: done.op.kind(),
                addr: u64::from(done.addr.as_u32()),
                is_drain: done.is_drain,
            },
        );
    }

    /// Applies the snoop verdict to the transaction in its address phase.
    ///
    /// Returns the completed transaction immediately when the data phase is
    /// empty (upgrade broadcasts); completions are reported to `obs` as
    /// [`SimEvent::BusComplete`] (the close of the lifecycle span).
    ///
    /// # Panics
    ///
    /// Panics if no transaction is in its address phase.
    pub fn resolve(
        &mut self,
        outcome: AddressOutcome,
        now: Cycle,
        obs: &mut impl Observer,
    ) -> Option<CompletedTxn> {
        assert_eq!(
            self.phase,
            BusPhase::Address,
            "resolve() outside the address phase"
        );
        let active = self.active.take().expect("address phase has a txn");
        match outcome {
            AddressOutcome::Retry => {
                self.stats.retries += 1;
                let t = active.txn;
                let mut backoff = self.retry_backoff;
                // Escalation counts only CPU transactions: a drain retried
                // behind a busy line is normal protocol traffic.
                let recovery = self.recovery_for(t.master);
                if !t.is_drain && recovery.enabled() {
                    let n = &mut self.consecutive_retries[t.master.index()];
                    *n = n.saturating_add(1);
                    if recovery.retry_budget > 0 && *n >= recovery.retry_budget {
                        backoff = backoff.max(recovery.escalation_backoff);
                    }
                }
                let port = &mut self.ports[t.master.index()];
                port.backoff = backoff;
                // The retry is a fresh BREQ as far as FCFS is concerned.
                port.stamp = now.as_u64();
                if t.is_drain {
                    let BusOp::WriteLine(data) = t.op else {
                        unreachable!("drains are always line writes");
                    };
                    // Keep write-back ordering: a retried drain re-enters at
                    // the *front* of the queue.
                    let _ = data;
                    port.retrying = Some((t.op, t.addr, true));
                    self.queued_drain_count += 1;
                } else {
                    port.retrying = Some((t.op, t.addr, false));
                }
                self.phase = BusPhase::Idle;
                None
            }
            AddressOutcome::Proceed {
                data_cycles,
                shared,
                supplied,
            } => {
                if !active.txn.is_drain {
                    self.consecutive_retries[active.txn.master.index()] = 0;
                }
                if data_cycles == 0 {
                    self.phase = BusPhase::Idle;
                    self.stats.completions += 1;
                    if active.txn.is_drain {
                        self.stats.drains += 1;
                    }
                    let done = CompletedTxn {
                        master: active.txn.master,
                        op: active.txn.op,
                        addr: active.txn.addr,
                        is_drain: active.txn.is_drain,
                        shared,
                        supplied,
                    };
                    Self::emit_complete(now, obs, &done);
                    Some(done)
                } else {
                    self.phase = BusPhase::Data {
                        remaining: data_cycles,
                    };
                    self.active = Some(Active {
                        shared,
                        supplied,
                        ..active
                    });
                    None
                }
            }
        }
    }

    /// Advances an in-flight data phase by one cycle, yielding the
    /// completed transaction when it finishes (reported to `obs` as
    /// [`SimEvent::BusComplete`]).
    ///
    /// # Panics
    ///
    /// Panics if no data phase is in flight.
    pub fn advance_data(&mut self, now: Cycle, obs: &mut impl Observer) -> Option<CompletedTxn> {
        let BusPhase::Data { remaining } = self.phase else {
            panic!("advance_data() outside the data phase");
        };
        self.stats.data_cycles += 1;
        let remaining = remaining - 1;
        if remaining > 0 {
            self.phase = BusPhase::Data { remaining };
            return None;
        }
        self.phase = BusPhase::Idle;
        let active = self.active.take().expect("data phase has a txn");
        self.stats.completions += 1;
        if active.txn.is_drain {
            self.stats.drains += 1;
        }
        let done = CompletedTxn {
            master: active.txn.master,
            op: active.txn.op,
            addr: active.txn.addr,
            is_drain: active.txn.is_drain,
            shared: active.shared,
            supplied: active.supplied,
        };
        Self::emit_complete(now, obs, &done);
        Some(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmp_sim::NullObserver;

    fn proceed(cycles: u64) -> AddressOutcome {
        AddressOutcome::Proceed {
            data_cycles: cycles,
            shared: false,
            supplied: None,
        }
    }

    #[test]
    fn grant_address_data_complete() {
        let mut bus = Bus::new(2);
        bus.submit(
            MasterId(0),
            BusOp::ReadLine,
            Addr::new(0x40),
            Cycle::ZERO,
            &mut NullObserver,
        );
        let g = bus
            .try_grant(Cycle::ZERO, &mut NullObserver)
            .expect("grant");
        assert_eq!(g.master, MasterId(0));
        assert_eq!(g.op, BusOp::ReadLine);
        assert!(!g.is_retry && !g.is_drain);
        assert_eq!(bus.phase(), BusPhase::Address);
        assert!(bus
            .resolve(proceed(3), Cycle::ZERO, &mut NullObserver)
            .is_none());
        assert!(bus.advance_data(Cycle::ZERO, &mut NullObserver).is_none());
        assert!(bus.advance_data(Cycle::ZERO, &mut NullObserver).is_none());
        let done = bus
            .advance_data(Cycle::ZERO, &mut NullObserver)
            .expect("complete");
        assert_eq!(done.master, MasterId(0));
        assert_eq!(bus.phase(), BusPhase::Idle);
        let s = bus.stats();
        assert_eq!((s.grants, s.completions, s.retries), (1, 1, 0));
        assert_eq!(s.data_cycles, 3);
    }

    #[test]
    fn zero_cycle_op_completes_in_address_phase() {
        let mut bus = Bus::new(1);
        bus.submit(
            MasterId(0),
            BusOp::Upgrade,
            Addr::new(0x40),
            Cycle::ZERO,
            &mut NullObserver,
        );
        bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
        let done = bus
            .resolve(proceed(0), Cycle::ZERO, &mut NullObserver)
            .expect("immediate completion");
        assert_eq!(done.op, BusOp::Upgrade);
        assert_eq!(bus.phase(), BusPhase::Idle);
    }

    #[test]
    fn retry_requeues_and_marks_retry() {
        let mut bus = Bus::new(2);
        bus.submit(
            MasterId(0),
            BusOp::ReadLine,
            Addr::new(0x40),
            Cycle::ZERO,
            &mut NullObserver,
        );
        bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
        assert!(bus
            .resolve(AddressOutcome::Retry, Cycle::ZERO, &mut NullObserver)
            .is_none());
        assert!(bus.cpu_txn_outstanding(MasterId(0)));
        let g = bus
            .try_grant(Cycle::ZERO, &mut NullObserver)
            .expect("retry granted");
        assert!(g.is_retry);
        assert_eq!(g.master, MasterId(0));
        assert_eq!(bus.stats().retries, 1);
    }

    #[test]
    fn drain_beats_fresh_but_loses_to_retry() {
        let mut bus = Bus::new(1);
        bus.submit(
            MasterId(0),
            BusOp::ReadLine,
            Addr::new(0x80),
            Cycle::ZERO,
            &mut NullObserver,
        );
        bus.submit_drain(
            MasterId(0),
            [7; 8],
            Addr::new(0x40),
            Cycle::ZERO,
            &mut NullObserver,
        );
        // Drain is sent before the fresh CPU transaction.
        let g = bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
        assert!(g.is_drain);
        assert_eq!(g.addr, Addr::new(0x40));
        assert!(bus
            .resolve(AddressOutcome::Retry, Cycle::ZERO, &mut NullObserver)
            .is_none());
        // The retried drain still precedes the fresh transaction...
        let g = bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
        assert!(g.is_drain && g.is_retry);
        bus.resolve(AddressOutcome::Retry, Cycle::ZERO, &mut NullObserver);
        // ...and a retried CPU transaction would precede the drain — the
        // paper's deadlock ordering — which we exercise below.
        let mut bus2 = Bus::new(1);
        bus2.submit(
            MasterId(0),
            BusOp::ReadLine,
            Addr::new(0x80),
            Cycle::ZERO,
            &mut NullObserver,
        );
        bus2.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
        bus2.resolve(AddressOutcome::Retry, Cycle::ZERO, &mut NullObserver);
        bus2.submit_drain(
            MasterId(0),
            [1; 8],
            Addr::new(0x40),
            Cycle::ZERO,
            &mut NullObserver,
        );
        let g = bus2.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
        assert!(g.is_retry && !g.is_drain, "retry outranks the queued drain");
    }

    #[test]
    fn round_robin_between_masters() {
        let mut bus = Bus::new(2);
        bus.submit(
            MasterId(0),
            BusOp::ReadWord,
            Addr::new(0x0),
            Cycle::ZERO,
            &mut NullObserver,
        );
        bus.submit(
            MasterId(1),
            BusOp::ReadWord,
            Addr::new(0x4),
            Cycle::ZERO,
            &mut NullObserver,
        );
        let g = bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
        assert_eq!(g.master, MasterId(0));
        bus.resolve(proceed(1), Cycle::ZERO, &mut NullObserver);
        bus.advance_data(Cycle::ZERO, &mut NullObserver).unwrap();
        let g = bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
        assert_eq!(g.master, MasterId(1));
    }

    #[test]
    fn no_grant_while_busy() {
        let mut bus = Bus::new(2);
        bus.submit(
            MasterId(0),
            BusOp::ReadLine,
            Addr::new(0x0),
            Cycle::ZERO,
            &mut NullObserver,
        );
        bus.submit(
            MasterId(1),
            BusOp::ReadLine,
            Addr::new(0x40),
            Cycle::ZERO,
            &mut NullObserver,
        );
        bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
        bus.resolve(proceed(5), Cycle::ZERO, &mut NullObserver);
        assert!(
            bus.try_grant(Cycle::ZERO, &mut NullObserver).is_none(),
            "bus is streaming data"
        );
    }

    #[test]
    fn drain_pending_to_checks_buffers() {
        let mut bus = Bus::new(2);
        bus.submit_drain(
            MasterId(1),
            [0; 8],
            Addr::new(0x44),
            Cycle::ZERO,
            &mut NullObserver,
        );
        assert!(bus.drain_pending_to(Addr::new(0x40)));
        assert!(bus.drain_pending_to(Addr::new(0x5C)));
        assert!(!bus.drain_pending_to(Addr::new(0x60)));
        assert_eq!(bus.queued_drains(), 1);
    }

    #[test]
    fn retried_drain_still_blocks_its_line() {
        let mut bus = Bus::new(1);
        bus.submit_drain(
            MasterId(0),
            [0; 8],
            Addr::new(0x40),
            Cycle::ZERO,
            &mut NullObserver,
        );
        bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
        bus.resolve(AddressOutcome::Retry, Cycle::ZERO, &mut NullObserver);
        assert!(bus.drain_pending_to(Addr::new(0x40)));
        assert_eq!(bus.queued_drains(), 1);
    }

    #[test]
    #[should_panic(expected = "outstanding CPU transaction")]
    fn double_submit_panics() {
        let mut bus = Bus::new(1);
        bus.submit(
            MasterId(0),
            BusOp::ReadWord,
            Addr::new(0x0),
            Cycle::ZERO,
            &mut NullObserver,
        );
        bus.submit(
            MasterId(0),
            BusOp::ReadWord,
            Addr::new(0x4),
            Cycle::ZERO,
            &mut NullObserver,
        );
    }

    #[test]
    fn completion_reports_shared_and_supplied() {
        let mut bus = Bus::new(1);
        bus.submit(
            MasterId(0),
            BusOp::ReadLine,
            Addr::new(0x40),
            Cycle::ZERO,
            &mut NullObserver,
        );
        bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
        bus.resolve(
            AddressOutcome::Proceed {
                data_cycles: 2,
                shared: true,
                supplied: Some([9; 8]),
            },
            Cycle::ZERO,
            &mut NullObserver,
        );
        bus.advance_data(Cycle::ZERO, &mut NullObserver);
        let done = bus.advance_data(Cycle::ZERO, &mut NullObserver).unwrap();
        assert!(done.shared);
        assert_eq!(done.supplied, Some([9; 8]));
    }

    #[test]
    fn drain_completion_counted() {
        let mut bus = Bus::new(1);
        bus.submit_drain(
            MasterId(0),
            [3; 8],
            Addr::new(0x40),
            Cycle::ZERO,
            &mut NullObserver,
        );
        let g = bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
        assert_eq!(g.op, BusOp::WriteLine([3; 8]));
        bus.resolve(proceed(1), Cycle::ZERO, &mut NullObserver);
        let done = bus.advance_data(Cycle::ZERO, &mut NullObserver).unwrap();
        assert!(done.is_drain);
        assert_eq!(bus.stats().drains, 1);
        assert_eq!(bus.queued_drains(), 0);
        assert!(!bus.drain_pending_to(Addr::new(0x40)));
    }

    #[test]
    fn next_event_during_data_phase_and_idle() {
        let mut bus = Bus::new(2);
        assert_eq!(bus.next_event(), None, "quiescent bus has no events");
        bus.submit(
            MasterId(0),
            BusOp::ReadLine,
            Addr::new(0x40),
            Cycle::ZERO,
            &mut NullObserver,
        );
        assert_eq!(bus.next_event(), Some(1), "requester grantable next cycle");
        bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
        bus.resolve(proceed(13), Cycle::ZERO, &mut NullObserver);
        assert_eq!(bus.next_event(), Some(13));
        bus.advance_data(Cycle::ZERO, &mut NullObserver);
        assert_eq!(bus.next_event(), Some(12));
    }

    #[test]
    fn next_event_respects_backoff_windows() {
        let mut bus = Bus::new(2);
        bus.set_retry_backoff(8);
        bus.submit(
            MasterId(0),
            BusOp::ReadLine,
            Addr::new(0x40),
            Cycle::ZERO,
            &mut NullObserver,
        );
        bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
        bus.resolve(AddressOutcome::Retry, Cycle::ZERO, &mut NullObserver);
        // The killed master sits out its BOFF window before re-requesting.
        assert_eq!(bus.next_event(), Some(8));
        bus.begin_cycle();
        assert_eq!(bus.next_event(), Some(7));
        // A second, unbackedoff requester pulls the event in.
        bus.submit(
            MasterId(1),
            BusOp::ReadWord,
            Addr::new(0x4),
            Cycle::ZERO,
            &mut NullObserver,
        );
        assert_eq!(bus.next_event(), Some(1));
    }

    #[test]
    fn warp_matches_repeated_cycles() {
        // Two identical buses mid-burst: warping one by k must equal k
        // begin_cycle + advance_data cycles on the other (no completion).
        let mk = || {
            let mut bus = Bus::new(2);
            bus.set_retry_backoff(20);
            bus.submit(
                MasterId(1),
                BusOp::ReadWord,
                Addr::new(0x4),
                Cycle::ZERO,
                &mut NullObserver,
            );
            bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
            bus.resolve(AddressOutcome::Retry, Cycle::ZERO, &mut NullObserver);
            bus.submit(
                MasterId(0),
                BusOp::ReadLine,
                Addr::new(0x40),
                Cycle::ZERO,
                &mut NullObserver,
            );
            bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
            bus.resolve(proceed(13), Cycle::ZERO, &mut NullObserver);
            bus
        };
        let mut warped = mk();
        let mut stepped = mk();
        warped.warp(9);
        for _ in 0..9 {
            stepped.begin_cycle();
            assert!(stepped
                .advance_data(Cycle::ZERO, &mut NullObserver)
                .is_none());
        }
        assert_eq!(warped.phase(), stepped.phase());
        assert_eq!(warped.stats(), stepped.stats());
        assert_eq!(warped.next_event(), stepped.next_event());
        // Both complete on the same further cycle, and the retrying
        // master's BOFF window ran down identically.
        for bus in [&mut warped, &mut stepped] {
            bus.begin_cycle();
            for _ in 0..3 {
                assert!(bus.advance_data(Cycle::ZERO, &mut NullObserver).is_none());
                bus.begin_cycle();
            }
            assert!(bus.advance_data(Cycle::ZERO, &mut NullObserver).is_some());
        }
        assert_eq!(warped.next_event(), stepped.next_event());
    }

    #[test]
    fn grant_blackout_suppresses_then_releases() {
        let mut bus = Bus::new(1);
        bus.submit(
            MasterId(0),
            BusOp::ReadLine,
            Addr::new(0x40),
            Cycle::ZERO,
            &mut NullObserver,
        );
        bus.block_grants(2);
        assert!(bus.try_grant(Cycle::ZERO, &mut NullObserver).is_none());
        bus.begin_cycle();
        assert!(bus.try_grant(Cycle::ZERO, &mut NullObserver).is_none());
        bus.begin_cycle();
        assert_eq!(bus.grant_block_remaining(), 0);
        assert!(bus.try_grant(Cycle::ZERO, &mut NullObserver).is_some());
    }

    #[test]
    fn escalation_raises_backoff_after_budget() {
        let mut bus = Bus::new(1);
        bus.set_recovery(RecoveryPolicy {
            retry_budget: 2,
            escalation_backoff: 50,
            quarantine_after: 0,
        });
        bus.submit(
            MasterId(0),
            BusOp::ReadLine,
            Addr::new(0x40),
            Cycle::ZERO,
            &mut NullObserver,
        );
        // First kill: under budget, no escalated BOFF.
        bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
        bus.resolve(AddressOutcome::Retry, Cycle::ZERO, &mut NullObserver);
        assert_eq!(bus.consecutive_retries(MasterId(0)), 1);
        assert_eq!(bus.next_event(), Some(1), "no BOFF yet");
        // Second kill reaches the budget: 50-cycle BOFF.
        bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
        bus.resolve(AddressOutcome::Retry, Cycle::ZERO, &mut NullObserver);
        assert_eq!(bus.next_event(), Some(50), "escalated BOFF armed");
        for _ in 0..50 {
            bus.begin_cycle();
        }
        // A proceed resets the consecutive counter.
        bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
        bus.resolve(proceed(0), Cycle::ZERO, &mut NullObserver);
        assert_eq!(bus.consecutive_retries(MasterId(0)), 0);
    }

    #[test]
    fn quarantine_starves_cpu_txns_but_drains_flow() {
        let mut bus = Bus::new(1);
        bus.submit(
            MasterId(0),
            BusOp::ReadLine,
            Addr::new(0x80),
            Cycle::ZERO,
            &mut NullObserver,
        );
        bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
        bus.resolve(AddressOutcome::Retry, Cycle::ZERO, &mut NullObserver);
        bus.submit_drain(
            MasterId(0),
            [5; 8],
            Addr::new(0x40),
            Cycle::ZERO,
            &mut NullObserver,
        );
        assert!(bus.quarantine(MasterId(0)), "newly quarantined");
        assert!(!bus.quarantine(MasterId(0)), "already quarantined");
        assert!(bus.is_quarantined(MasterId(0)));
        assert_eq!(bus.quarantined_count(), 1);
        // The parked retry is skipped; the drain is granted instead.
        let g = bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
        assert!(g.is_drain);
        bus.resolve(proceed(1), Cycle::ZERO, &mut NullObserver);
        bus.advance_data(Cycle::ZERO, &mut NullObserver).unwrap();
        // Nothing grantable remains, and the bus reports quiescence even
        // though the parked CPU retry still exists.
        assert!(bus.try_grant(Cycle::ZERO, &mut NullObserver).is_none());
        assert_eq!(bus.next_event(), None);
        assert!(bus.cpu_txn_outstanding(MasterId(0)), "txn parked, not lost");
    }

    #[test]
    fn fcfs_on_the_bus_grants_in_arrival_order() {
        let mut bus = Bus::new(3);
        bus.set_arbitration(ArbitrationPolicy::Fcfs);
        // Master 2 asks first (cycle 1), then 0 (cycle 3), then 1 (cycle 4).
        bus.submit(
            MasterId(2),
            BusOp::ReadWord,
            Addr::new(0x8),
            Cycle::new(1),
            &mut NullObserver,
        );
        bus.submit(
            MasterId(0),
            BusOp::ReadWord,
            Addr::new(0x0),
            Cycle::new(3),
            &mut NullObserver,
        );
        bus.submit(
            MasterId(1),
            BusOp::ReadWord,
            Addr::new(0x4),
            Cycle::new(4),
            &mut NullObserver,
        );
        let mut order = Vec::new();
        for now in 5..8 {
            let g = bus.try_grant(Cycle::new(now), &mut NullObserver).unwrap();
            order.push(g.master.index());
            bus.resolve(proceed(0), Cycle::new(now), &mut NullObserver);
        }
        assert_eq!(order, vec![2, 0, 1], "oldest outstanding request first");
    }

    #[test]
    fn fcfs_retry_requeues_at_the_back() {
        let mut bus = Bus::new(2);
        bus.set_arbitration(ArbitrationPolicy::Fcfs);
        bus.submit(
            MasterId(1),
            BusOp::ReadLine,
            Addr::new(0x40),
            Cycle::new(1),
            &mut NullObserver,
        );
        bus.submit(
            MasterId(0),
            BusOp::ReadLine,
            Addr::new(0x80),
            Cycle::new(2),
            &mut NullObserver,
        );
        // Master 1 wins (older) but is ARTRY-killed at cycle 5: its retry
        // is a fresh request stamped 5 and now queues behind master 0.
        let g = bus.try_grant(Cycle::new(5), &mut NullObserver).unwrap();
        assert_eq!(g.master, MasterId(1));
        bus.resolve(AddressOutcome::Retry, Cycle::new(5), &mut NullObserver);
        let g = bus.try_grant(Cycle::new(6), &mut NullObserver).unwrap();
        assert_eq!(g.master, MasterId(0), "killed master lost its queue slot");
    }

    #[test]
    fn per_master_grant_counts_accumulate() {
        let mut bus = Bus::new(2);
        for _ in 0..3 {
            bus.submit(
                MasterId(0),
                BusOp::ReadWord,
                Addr::new(0x0),
                Cycle::ZERO,
                &mut NullObserver,
            );
            bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
            bus.resolve(proceed(0), Cycle::ZERO, &mut NullObserver);
        }
        bus.submit(
            MasterId(1),
            BusOp::ReadWord,
            Addr::new(0x4),
            Cycle::ZERO,
            &mut NullObserver,
        );
        bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
        bus.resolve(proceed(0), Cycle::ZERO, &mut NullObserver);
        assert_eq!(bus.master_grants(), &[3, 1]);
        assert_eq!(bus.stats().grants, 4, "aggregate stays in sync");
    }

    #[test]
    fn bridge_penalty_applies_only_across_segments() {
        let mut bus = Bus::new(4);
        assert_eq!(bus.segments(), 1);
        assert_eq!(bus.bridge_penalty(MasterId(3), None), 0, "flat bus is free");
        bus.set_segments(&[0, 0, 1, 1], 2, 6);
        assert_eq!(bus.segments(), 2);
        assert_eq!(bus.segment_of(MasterId(1)), 0);
        assert_eq!(bus.segment_of(MasterId(2)), 1);
        assert_eq!(bus.bridge_latency(), 6);
        // Memory is homed on segment 0: remote masters pay the crossing.
        assert_eq!(bus.bridge_penalty(MasterId(0), None), 0);
        assert_eq!(bus.bridge_penalty(MasterId(2), None), 6);
        // Cache-to-cache within a segment is free; across it pays.
        assert_eq!(bus.bridge_penalty(MasterId(2), Some(3)), 0);
        assert_eq!(bus.bridge_penalty(MasterId(2), Some(0)), 6);
        assert_eq!(bus.bridge_penalty(MasterId(0), Some(1)), 0);
        assert_eq!(bus.bridge_penalty(MasterId(0), Some(3)), 6);
    }

    #[test]
    #[should_panic(expected = "segment index out of range")]
    fn bad_segment_map_panics() {
        Bus::new(2).set_segments(&[0, 2], 2, 4);
    }

    #[test]
    fn per_master_recovery_override_escalates_independently() {
        let mut bus = Bus::new(2);
        // No bus-wide policy; master 1 alone gets a tight budget.
        bus.set_master_recovery(
            MasterId(1),
            RecoveryPolicy {
                retry_budget: 1,
                escalation_backoff: 40,
                quarantine_after: 0,
            },
        );
        assert!(!bus.recovery().enabled());
        assert!(bus.recovery_for(MasterId(1)).enabled());
        assert!(bus.recovery_armed());
        // Master 0 retries without escalation.
        bus.submit(
            MasterId(0),
            BusOp::ReadLine,
            Addr::new(0x40),
            Cycle::ZERO,
            &mut NullObserver,
        );
        bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
        bus.resolve(AddressOutcome::Retry, Cycle::ZERO, &mut NullObserver);
        assert_eq!(bus.consecutive_retries(MasterId(0)), 0, "not tracked");
        assert_eq!(bus.next_event(), Some(1), "no BOFF for master 0");
        bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
        bus.resolve(proceed(0), Cycle::ZERO, &mut NullObserver);
        // Master 1's first kill already escalates its BOFF.
        bus.submit(
            MasterId(1),
            BusOp::ReadLine,
            Addr::new(0x80),
            Cycle::ZERO,
            &mut NullObserver,
        );
        bus.try_grant(Cycle::ZERO, &mut NullObserver).unwrap();
        bus.resolve(AddressOutcome::Retry, Cycle::ZERO, &mut NullObserver);
        assert_eq!(bus.consecutive_retries(MasterId(1)), 1);
        assert_eq!(bus.next_event(), Some(40), "override BOFF armed");
    }

    #[test]
    #[should_panic(expected = "outside the address phase")]
    fn resolve_when_idle_panics() {
        Bus::new(1).resolve(AddressOutcome::Retry, Cycle::ZERO, &mut NullObserver);
    }

    #[test]
    #[should_panic(expected = "outside the data phase")]
    fn advance_when_idle_panics() {
        Bus::new(1).advance_data(Cycle::ZERO, &mut NullObserver);
    }
}
