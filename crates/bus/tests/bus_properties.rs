//! Property-based tests for the bus: conservation and liveness.
//!
//! A random driver submits transactions and drains, randomly retries or
//! proceeds each address phase, and checks that nothing is ever lost:
//! every submitted CPU transaction and every queued drain eventually
//! completes (as long as retries are not adversarially infinite), per-
//! master ordering (retry → drains → fresh) holds, and the statistics
//! balance.

// QUARANTINED (PR 1): these property tests depend on the `proptest` crate,
// which the offline build environment cannot fetch (empty cargo registry, no
// network). Enable the `proptests` feature after restoring the `proptest`
// dev-dependency to run them. Tracking: CHANGES.md (PR 1).
#![cfg(feature = "proptests")]

use hmp_bus::{AddressOutcome, ArbitrationPolicy, Bus, BusOp, BusPhase, MasterId};
use hmp_mem::Addr;
use proptest::prelude::*;

fn proceed(cycles: u64) -> AddressOutcome {
    AddressOutcome::Proceed {
        data_cycles: cycles,
        shared: false,
        supplied: None,
    }
}

#[derive(Debug, Clone)]
enum Event {
    Submit {
        master: usize,
        op: u8,
        line: u32,
    },
    Drain {
        master: usize,
        line: u32,
    },
    /// Retry the next address phase (bounded by the driver).
    Retry,
}

fn event(masters: usize) -> impl Strategy<Value = Event> {
    prop_oneof![
        (0..masters, 0..4u8, 0..8u32).prop_map(|(master, op, line)| Event::Submit {
            master,
            op,
            line
        }),
        (0..masters, 0..8u32).prop_map(|(master, line)| Event::Drain { master, line }),
        Just(Event::Retry),
    ]
}

fn op_of(tag: u8) -> BusOp {
    match tag {
        0 => BusOp::ReadLine,
        1 => BusOp::ReadLineExcl,
        2 => BusOp::ReadWord,
        _ => BusOp::WriteWord(7),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_transaction_eventually_completes(
        masters in 1..4usize,
        policy in prop::sample::select(vec![
            ArbitrationPolicy::RoundRobin,
            ArbitrationPolicy::FixedPriority,
        ]),
        backoff in 0..4u64,
        events in prop::collection::vec(event(3), 1..60),
    ) {
        let mut bus = Bus::new(masters);
        bus.set_arbitration(policy);
        bus.set_retry_backoff(backoff);

        let mut submitted = 0u64;
        let mut drains_submitted = 0u64;
        let mut completed = 0u64;
        let mut retry_budget = 0u32;
        let mut outstanding = vec![false; masters];

        let mut queue: Vec<Event> = events;
        queue.reverse();
        let mut idle_streak = 0u32;

        for _ in 0..10_000u32 {
            bus.begin_cycle();
            // Feed at most one event per cycle.
            match queue.pop() {
                Some(Event::Submit { master, op, line }) => {
                    let master = master % masters;
                    if !outstanding[master] {
                        bus.submit(
                            MasterId(master),
                            op_of(op),
                            Addr::new(0x1000 + line * 32),
                        );
                        outstanding[master] = true;
                        submitted += 1;
                    }
                }
                Some(Event::Drain { master, line }) => {
                    bus.submit_drain(
                        MasterId(master % masters),
                        [9; 8],
                        Addr::new(0x1000 + line * 32),
                    );
                    drains_submitted += 1;
                }
                Some(Event::Retry) => retry_budget += 1,
                None => {}
            }

            match bus.phase() {
                BusPhase::Idle => {
                    if let Some(txn) = bus.try_grant() {
                        idle_streak = 0;
                        // Occasionally kill the transaction, bounded so the
                        // run always terminates.
                        if retry_budget > 0 {
                            retry_budget -= 1;
                            prop_assert!(bus.resolve(AddressOutcome::Retry).is_none());
                        } else if let Some(done) = bus.resolve(proceed(
                            if txn.op.is_burst() { 3 } else { 1 },
                        )) {
                            let _ = done;
                        }
                    } else {
                        idle_streak += 1;
                        if idle_streak > u32::try_from(backoff).unwrap() + 2
                            && queue.is_empty()
                        {
                            break; // quiescent
                        }
                    }
                }
                BusPhase::Data { .. } => {
                    if let Some(done) = bus.advance_data() {
                        completed += 1;
                        if !done.is_drain {
                            outstanding[done.master.index()] = false;
                        }
                    }
                }
                BusPhase::Address => unreachable!("resolved in grant cycle"),
            }
        }

        // Conservation: everything submitted completed (the driver stops
        // injecting retries, so nothing can remain parked).
        prop_assert_eq!(completed, submitted + drains_submitted,
            "lost transactions: {} submitted + {} drains, {} completed",
            submitted, drains_submitted, completed);
        let stats = bus.stats();
        prop_assert_eq!(stats.completions, completed);
        prop_assert_eq!(stats.drains, drains_submitted);
        prop_assert_eq!(stats.grants, completed + stats.retries);
        prop_assert!(!outstanding.iter().any(|&o| o));
        prop_assert_eq!(bus.queued_drains(), 0);
    }

    #[test]
    fn per_master_ordering_retry_then_drain_then_fresh(
        line_a in 0..8u32,
        line_b in 0..8u32,
    ) {
        let mut bus = Bus::new(1);
        // A retried CPU transaction, a queued drain, and nothing else.
        bus.submit(MasterId(0), BusOp::ReadLine, Addr::new(0x1000 + line_a * 32));
        bus.try_grant().unwrap();
        bus.resolve(AddressOutcome::Retry);
        bus.submit_drain(MasterId(0), [1; 8], Addr::new(0x2000 + line_b * 32));
        bus.begin_cycle();

        let first = bus.try_grant().unwrap();
        prop_assert!(first.is_retry && !first.is_drain, "retry precedes drain");
        bus.resolve(proceed(1));
        bus.advance_data().unwrap();

        let second = bus.try_grant().unwrap();
        prop_assert!(second.is_drain, "drain precedes fresh work");
    }

    #[test]
    fn backoff_masks_retried_master_exactly(backoff in 1..6u64) {
        let mut bus = Bus::new(2);
        bus.set_retry_backoff(backoff);
        bus.submit(MasterId(0), BusOp::ReadWord, Addr::new(0x0));
        bus.try_grant().unwrap();
        bus.resolve(AddressOutcome::Retry);
        // begin_cycle decrements the BOFF counter before arbitration, so
        // the master stays masked for `backoff - 1` whole cycles…
        for i in 1..backoff {
            bus.begin_cycle();
            prop_assert!(
                bus.try_grant().is_none(),
                "BOFF must mask the retry (cycle {i})"
            );
        }
        // …and resumes on the cycle after that.
        bus.begin_cycle();
        let g = bus.try_grant().expect("retry resumes after BOFF");
        prop_assert!(g.is_retry);
    }
}
