//! Proves the null-observer hot path is allocation-free.
//!
//! The pre-refactor `System` built a `format!("cpu{i}.read_hit")` string
//! for every counter increment and collected a fresh request mask on
//! every idle bus cycle — so even with tracing disabled, each simulated
//! cycle allocated. The typed `SimEvent`/`Observer` path with
//! enum-indexed counters must do neither: with a `NullObserver`, a
//! steady-state cycle performs zero heap allocations.
//!
//! The same must hold with the metrics layer compiled in and *enabled*:
//! spans, histograms, the event ring and the retry table are all
//! preallocated at construction, so a steady-state cycle full of bus
//! traffic — grants, snoop pushes, ARTRY kills, span completions — still
//! performs zero heap allocations.
//!
//! The bar extends across runs: [`System::try_reset`] rewinds a finished
//! platform in place instead of dropping and rebuilding it, so a
//! fault-free reset plus the re-run's steady state must also stay at
//! zero allocations — that is what makes the sweep paths' cross-run
//! batching allocation-free, not just each run's inner loop.
//!
//! Measured with a counting `#[global_allocator]`; this file holds a
//! single test (all phases run sequentially inside it) so no concurrent
//! test can perturb the counter.

use hmp_cache::ProtocolKind;
use hmp_cpu::{LockKind, LockLayout, ProgramBuilder};
use hmp_platform::{layout, CpuSpec, PlatformSpec, Strategy, System};
use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates verbatim to the std system allocator; the counter is
// a relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_stepping_with_null_observer_does_not_allocate() {
    let (lay, map) = layout(2, Strategy::Proposed, LockKind::Turn, false);
    let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 2);
    let mut spec = PlatformSpec::new(
        vec![
            CpuSpec::generic("P0", ProtocolKind::Mesi),
            CpuSpec::generic("P1", ProtocolKind::Mesi),
        ],
        map,
        lock,
    );
    // The checker is irrelevant here and would only add noise sources.
    spec.check_coherence = false;

    // P0 hammers one cached line: a single fill, then thousands of local
    // read hits — each of which used to format! a stats key.
    let a = lay.shared_base;
    let p0 = {
        let mut b = ProgramBuilder::new();
        for _ in 0..4_000 {
            b = b.read(a);
        }
        b.build()
    };
    let mut sys = System::new(&spec, vec![p0, hmp_cpu::Program::empty()]);

    // Warm up past the miss, the line fill, and any one-time lazy
    // initialization inside the simulator.
    for _ in 0..200 {
        sys.step();
    }
    assert!(
        sys.counters().get(0, hmp_sim::CpuCounter::ReadHit) > 0,
        "warm-up must reach the read-hit steady state"
    );

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..1_000 {
        sys.step();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state stepping with NullObserver must not allocate"
    );

    // The cycles stepped were real work, not a halted machine.
    assert!(
        sys.counters().get(0, hmp_sim::CpuCounter::ReadHit) >= 1_000,
        "the measured window must have executed read hits"
    );

    // Phase 2: metrics enabled, and a workload that keeps the bus busy.
    // Two MESI caches ping-pong ownership of one shared line, so the
    // measured window is dense with grants, snoop pushes, retries and
    // span completions — every metrics code path runs, none may allocate.
    let (lay, map) = layout(2, Strategy::Proposed, LockKind::Turn, false);
    let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 2);
    let mut spec = PlatformSpec::new(
        vec![
            CpuSpec::generic("P0", ProtocolKind::Mesi),
            CpuSpec::generic("P1", ProtocolKind::Mesi),
        ],
        map,
        lock,
    );
    spec.check_coherence = false;
    spec.span_capacity = 256;
    let a = lay.shared_base;
    let pingpong = |v: u32| {
        let mut b = ProgramBuilder::new();
        for i in 0..2_000 {
            b = b.write(a, v + i);
        }
        b.build()
    };
    let mut sys = System::new(&spec, vec![pingpong(0), pingpong(10_000)]);

    for _ in 0..500 {
        sys.step();
    }
    let warm_grants = sys.metrics().expect("metrics enabled").grants();
    assert!(
        warm_grants > 0,
        "warm-up must reach bus-traffic steady state"
    );

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..1_000 {
        sys.step();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state stepping with metrics enabled must not allocate"
    );

    // The window saw real coherence traffic, spans included.
    let m = sys.metrics().unwrap();
    assert!(m.grants() > warm_grants, "grants during the window");
    assert!(m.completions() > 0, "spans completed during the run");
    assert!(m.service_time().count() > 0, "histograms recorded");

    // Phase 3: the fast-forward kernel with metrics enabled. Warping a
    // dead window and the reduced CPU-only event step are pure countdown
    // arithmetic; planning the horizon is a scan over preallocated
    // state. Same bar as stepping: zero allocations per advanced cycle.
    let (lay, map) = layout(2, Strategy::Proposed, LockKind::Turn, false);
    let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 2);
    let mut spec = PlatformSpec::new(
        vec![
            CpuSpec::generic("P0", ProtocolKind::Mesi),
            CpuSpec::generic("P1", ProtocolKind::Mesi),
        ],
        map,
        lock,
    );
    spec.check_coherence = false;
    spec.span_capacity = 256;
    let a = lay.shared_base;
    let pingpong = |v: u32| {
        let mut b = ProgramBuilder::new();
        for i in 0..2_000 {
            b = b.write(a, v + i).delay(20);
        }
        b.build()
    };
    let mut sys = System::new(&spec, vec![pingpong(0), pingpong(10_000)]);
    sys.set_kernel(hmp_sim::Kernel::FastForward);

    sys.advance(2_000);
    let warm_grants = sys.metrics().expect("metrics enabled").grants();
    assert!(
        warm_grants > 0,
        "warm-up must reach bus-traffic steady state"
    );

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    sys.advance(20_000);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "fast-forward advancement with metrics enabled must not allocate"
    );

    // The compute gaps make the window warp-heavy, and the bus still saw
    // real traffic: the fast path exercised both warps and event cycles.
    let m = sys.metrics().unwrap();
    assert!(m.grants() > warm_grants, "grants during the window");
    assert!(m.completions() > 0, "spans completed during the run");

    // Phase 4: fault injection armed. The FaultPlan and every engine
    // buffer (masks, armed retries, wedge flags) are preallocated at
    // construction; firing a fault is a cursor bump plus field writes,
    // and the injected-ARTRY path reuses the ordinary retry machinery.
    // Steady-state cycles with faults firing mid-window must not
    // allocate.
    let (lay, map) = layout(2, Strategy::Proposed, LockKind::Turn, false);
    let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 2);
    let mut spec = PlatformSpec::new(
        vec![
            CpuSpec::generic("P0", ProtocolKind::Mesi),
            CpuSpec::generic("P1", ProtocolKind::Mesi),
        ],
        map,
        lock,
    );
    spec.check_coherence = false;
    spec.span_capacity = 256;
    spec.recovery = hmp_bus::RecoveryPolicy {
        retry_budget: 1_000_000, // armed, but never escalates
        escalation_backoff: 64,
        quarantine_after: 0,
    };
    let mut faults = Vec::new();
    for i in 0..64u64 {
        // Benign classes spread through the measured window.
        let kind = match i % 3 {
            0 => hmp_sim::FaultKind::SpuriousRetry,
            1 => hmp_sim::FaultKind::GrantDrop,
            _ => hmp_sim::FaultKind::NfiqDelay,
        };
        faults.push(hmp_sim::FaultSpec::new(
            400 + i * 15,
            kind,
            (i % 2) as u32,
            2,
        ));
    }
    spec.faults = Some(hmp_sim::FaultPlan::from_specs(faults));
    let a = lay.shared_base;
    let pingpong = |v: u32| {
        let mut b = ProgramBuilder::new();
        for i in 0..2_000 {
            b = b.write(a, v + i);
        }
        b.build()
    };
    let mut sys = System::new(&spec, vec![pingpong(0), pingpong(10_000)]);

    for _ in 0..300 {
        sys.step();
    }
    let warm_grants = sys.metrics().expect("metrics enabled").grants();
    assert!(
        warm_grants > 0,
        "warm-up must reach bus-traffic steady state"
    );

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..1_000 {
        sys.step();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state stepping with fault injection armed must not allocate"
    );

    // The window actually injected faults and kept the bus busy.
    let m = sys.metrics().unwrap();
    assert!(m.grants() > warm_grants, "grants during the window");
    assert!(
        m.faults_injected() > 0,
        "faults fired inside the measured window"
    );

    // Phase 5: a four-master two-segment fabric under FCFS arbitration.
    // The fabric additions — request timestamps, the stamp mask, the
    // per-master grant counters, segment lookups and bridge-penalty
    // arithmetic — are all preallocated vectors or pure integer math, so
    // the N-master steady state must hold the same zero-allocation bar.
    let topo = hmp_platform::Topology::uniform(ProtocolKind::Mesi, 4, 2);
    let (mut spec, lay) = topo.spec(Strategy::Proposed, LockKind::Turn, false);
    spec.check_coherence = false;
    spec.span_capacity = 256;
    spec.arbitration = hmp_bus::ArbitrationPolicy::Fcfs;
    let a = lay.shared_base;
    let pingpong = |v: u32| {
        let mut b = ProgramBuilder::new();
        for i in 0..2_000 {
            b = b.write(a, v + i);
        }
        b.build()
    };
    let mut sys = System::new(
        &spec,
        (0..4).map(|i| pingpong(i * 10_000)).collect::<Vec<_>>(),
    );

    for _ in 0..500 {
        sys.step();
    }
    let warm_grants = sys.metrics().expect("metrics enabled").grants();
    assert!(
        warm_grants > 0,
        "warm-up must reach bus-traffic steady state"
    );

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..1_000 {
        sys.step();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state stepping on a 4-master bridged FCFS fabric must not allocate"
    );

    // Real fabric traffic, spread across all four masters.
    let m = sys.metrics().unwrap();
    assert!(m.grants() > warm_grants, "grants during the window");
    assert!(
        sys.master_grants().iter().all(|&g| g > 0),
        "every master won grants: {:?}",
        sys.master_grants()
    );

    // Phase 6: the windowed telemetry registry armed on the same fabric.
    // Every registry structure is preallocated at construction and
    // decimation merges adjacent windows in place, so a steady state full
    // of grants, data-phase spans and window rollovers — including the
    // fast-forward kernel's bulk warp recording — must stay at zero
    // allocations. The window is deliberately tiny so the measured span
    // crosses many boundaries and several decimation merges.
    let topo = hmp_platform::Topology::uniform(ProtocolKind::Mesi, 4, 2);
    let (mut spec, lay) = topo.spec(Strategy::Proposed, LockKind::Turn, false);
    spec.check_coherence = false;
    spec.span_capacity = 256;
    spec.arbitration = hmp_bus::ArbitrationPolicy::Fcfs;
    spec.timeseries = Some(hmp_sim::TimeSeriesSpec {
        window: 64,
        capacity: 16,
    });
    let a = lay.shared_base;
    let pingpong = |v: u32| {
        let mut b = ProgramBuilder::new();
        for i in 0..2_000 {
            b = b.write(a, v + i).delay(20);
        }
        b.build()
    };
    let mut sys = System::new(
        &spec,
        (0..4).map(|i| pingpong(i * 10_000)).collect::<Vec<_>>(),
    );

    for _ in 0..500 {
        sys.step();
    }
    let warm_busy = sys
        .timeseries()
        .expect("telemetry registry armed")
        .recorded_busy();
    assert!(warm_busy > 0, "warm-up must have recorded busy cycles");

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..1_000 {
        sys.step();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state stepping with the telemetry registry must not allocate"
    );

    // Fast-forward over the same machine: warps bulk-record into the
    // registry and window merges fire, still without allocating.
    sys.set_kernel(hmp_sim::Kernel::FastForward);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    sys.advance(20_000);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "fast-forward advancement with the telemetry registry must not allocate"
    );

    let reg = sys.timeseries().unwrap();
    assert!(reg.recorded_busy() > warm_busy, "traffic during the window");
    assert!(
        reg.scale() > 0,
        "the measured window must have forced at least one decimation merge"
    );

    // Phase 7: reset-don't-drop. A fault-free `try_reset` onto the same
    // platform shape rewinds every component in place — caches and their
    // occupancy filters, the TAG-CAMs, metrics, telemetry windows, the
    // event schedule — without touching the allocator, and the re-run's
    // steady state holds the same zero-allocation bar with metrics,
    // the telemetry registry AND the invariant checker all armed. This
    // is the sweep paths' cross-run batching: thousands of grid cells,
    // one construction.
    let topo = hmp_platform::Topology::uniform(ProtocolKind::Mesi, 4, 2);
    let (mut spec, lay) = topo.spec(Strategy::Proposed, LockKind::Turn, false);
    spec.check_coherence = false;
    spec.check_invariants = true;
    spec.span_capacity = 256;
    spec.arbitration = hmp_bus::ArbitrationPolicy::Fcfs;
    spec.timeseries = Some(hmp_sim::TimeSeriesSpec {
        window: 64,
        capacity: 16,
    });
    let a = lay.shared_base;
    let pingpong = |v: u32| {
        let mut b = ProgramBuilder::new();
        for i in 0..2_000 {
            b = b.write(a, v + i).delay(20);
        }
        b.build()
    };
    let programs = |base: u32| {
        (0..4)
            .map(|i| pingpong(base + i * 10_000))
            .collect::<Vec<_>>()
    };
    let mut sys = System::new(&spec, programs(0));
    sys.advance(5_000);
    let first_busy = sys
        .timeseries()
        .expect("telemetry registry armed")
        .recorded_busy();
    assert!(first_busy > 0, "first run must have recorded busy cycles");

    // Fresh programs for the second run, built outside the measured
    // window — handing them over moves preallocated buffers, it does not
    // copy them.
    let next = programs(1);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(
        sys.try_reset(&spec, next),
        "an identical shape must reuse the platform"
    );
    for _ in 0..1_500 {
        sys.step();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "try_reset and the re-run's steady state must not allocate"
    );

    // The reset rewound telemetry to zero and the re-run produced real
    // traffic of its own, checked by a live invariant checker.
    let m = sys.metrics().unwrap();
    assert!(m.grants() > 0, "grants after the reset");
    let reg = sys.timeseries().unwrap();
    assert!(reg.recorded_busy() > 0, "busy cycles after the reset");
    assert!(
        reg.recorded_busy() < first_busy,
        "reset must rewind the registry, not accumulate across runs"
    );
    assert!(
        sys.invariant_violation().is_none(),
        "the armed invariant checker saw a coherent re-run"
    );
}
