//! Table-driven tests of the coherence pipeline's typed verdicts.
//!
//! Each row pins one cell of the paper's snoop-reaction matrix: given a
//! processor's protocol, the reduced system protocol its wrapper was
//! derived for, the remote line's state, and the observed bus operation,
//! [`snoop_node`] must return exactly one [`SnoopVerdict`].

use hmp_bus::BusOp;
use hmp_cache::{Access, CacheConfig, DataCache, ProtocolKind};
use hmp_core::{SnoopLogic, Wrapper};
use hmp_mem::Addr;
use hmp_platform::coherence::{snoop_node, SnoopVerdict};
use hmp_platform::LineData;
use hmp_sim::{Cycle, NullObserver};

const LINE: u32 = 0x100;
const DATA: LineData = [0xA5A5_0000; 8];

/// How the remote cache holds the line before the snoop.
#[derive(Debug, Clone, Copy)]
enum Held {
    Absent,
    /// Filled by a read that sampled SHARED asserted.
    Shared,
    /// Filled by a read with SHARED deasserted.
    Exclusive,
    /// Filled with write intent (dirty).
    Modified,
}

fn cache_with(protocol: ProtocolKind, held: Held) -> DataCache {
    let mut cache = DataCache::new(CacheConfig { sets: 4, ways: 1 }, protocol);
    let addr = Addr::new(LINE);
    match held {
        Held::Absent => {}
        Held::Shared => cache.fill(
            addr,
            DATA,
            Access::Read,
            true,
            false,
            Cycle::ZERO,
            &mut NullObserver,
        ),
        Held::Exclusive => cache.fill(
            addr,
            DATA,
            Access::Read,
            false,
            false,
            Cycle::ZERO,
            &mut NullObserver,
        ),
        Held::Modified => cache.fill(
            addr,
            DATA,
            Access::Write,
            false,
            false,
            Cycle::ZERO,
            &mut NullObserver,
        ),
    }
    cache
}

fn verdict_of(own: ProtocolKind, system: ProtocolKind, held: Held, op: BusOp) -> SnoopVerdict {
    let mut wrapper = Wrapper::for_system(own, system);
    let mut cache = cache_with(own, held);
    snoop_node(
        Some(&mut wrapper),
        &mut cache,
        None,
        true,
        &op,
        Addr::new(LINE),
        Cycle::ZERO,
        &mut NullObserver,
    )
}

#[test]
fn snoop_verdict_table() {
    use ProtocolKind::{Mei, Mesi, Moesi};
    let hit = |shared| SnoopVerdict::Hit { shared };
    let drain = SnoopVerdict::Drain { data: DATA };
    let supply = |shared| SnoopVerdict::Supply { data: DATA, shared };

    #[rustfmt::skip]
    let table: &[(&str, ProtocolKind, ProtocolKind, Held, BusOp, SnoopVerdict)] = &[
        // Homogeneous MESI: the §2 textbook reactions.
        ("mesi absent read",      Mesi, Mesi, Held::Absent,    BusOp::ReadLine,      SnoopVerdict::Miss),
        ("mesi shared read",      Mesi, Mesi, Held::Shared,    BusOp::ReadLine,      hit(true)),
        ("mesi excl read",        Mesi, Mesi, Held::Exclusive, BusOp::ReadLine,      hit(true)),
        ("mesi dirty read",       Mesi, Mesi, Held::Modified,  BusOp::ReadLine,      drain),
        ("mesi dirty rwitm",      Mesi, Mesi, Held::Modified,  BusOp::ReadLineExcl,  drain),
        ("mesi shared upgrade",   Mesi, Mesi, Held::Shared,    BusOp::Upgrade,       hit(false)),
        ("mesi excl word write",  Mesi, Mesi, Held::Exclusive, BusOp::WriteWord(1),  hit(false)),
        // MOESI supplies dirty lines cache-to-cache instead of draining.
        ("moesi dirty read",      Moesi, Moesi, Held::Modified, BusOp::ReadLine,     supply(true)),
        ("moesi dirty write",     Moesi, Moesi, Held::Modified, BusOp::WriteLine(DATA), drain),
        ("moesi shared read",     Moesi, Moesi, Held::Shared,   BusOp::ReadLine,     hit(true)),
        // MEI holds no shared state: every snoop gives the line up.
        ("mei excl read",         Mei, Mei, Held::Exclusive,   BusOp::ReadLine,      hit(false)),
        ("mei dirty read",        Mei, Mei, Held::Modified,    BusOp::ReadLine,      drain),
        ("mei dirty word read",   Mei, Mei, Held::Modified,    BusOp::ReadWord,      drain),
        // Heterogeneous: a MESI processor wrapped for a MEI system has its
        // snooped reads converted to writes (paper §2.2, the Intel486 INV
        // pin) — a clean copy is silently invalidated instead of shared.
        ("mesi-in-mei shared read", Mesi, Mei, Held::Shared,   BusOp::ReadLine,      hit(false)),
        ("mesi-in-mei excl read",   Mesi, Mei, Held::Exclusive, BusOp::ReadLine,     hit(false)),
        ("mesi-in-mei dirty read",  Mesi, Mei, Held::Modified, BusOp::ReadLine,      drain),
        // MOESI wrapped for a MESI system must not supply cache-to-cache.
        ("moesi-in-mesi dirty read", Moesi, Mesi, Held::Modified, BusOp::ReadLine,   drain),
    ];

    for &(name, own, system, held, op, want) in table {
        let got = verdict_of(own, system, held, op);
        assert_eq!(got, want, "case {name:?}: {own}+{system} {held:?} {op}");
    }
}

#[test]
fn wrapped_read_conversion_removes_the_remote_copy() {
    // The conversion's observable effect, beyond the verdict: the line is
    // gone afterwards, so the MEI system never sees an untracked sharer.
    let mut wrapper = Wrapper::for_system(ProtocolKind::Mesi, ProtocolKind::Mei);
    let mut cache = cache_with(ProtocolKind::Mesi, Held::Shared);
    let addr = Addr::new(LINE);
    assert!(cache.contains(addr));
    let v = snoop_node(
        Some(&mut wrapper),
        &mut cache,
        None,
        true,
        &BusOp::ReadLine,
        addr,
        Cycle::ZERO,
        &mut NullObserver,
    );
    assert_eq!(v, SnoopVerdict::Hit { shared: false });
    assert!(!cache.contains(addr), "converted read invalidates the copy");
    assert_eq!(wrapper.reads_converted(), 1);
}

#[test]
fn cam_node_verdicts_follow_the_enable_gate() {
    let addr = Addr::new(LINE);
    for (enabled, holds, want) in [
        (true, true, SnoopVerdict::CamConflict),
        (true, false, SnoopVerdict::Miss),
        (false, true, SnoopVerdict::Miss),
    ] {
        let mut cache = cache_with(ProtocolKind::Mei, Held::Absent);
        let mut cam = SnoopLogic::new();
        if holds {
            cam.observe_local_fill(addr);
        }
        let v = snoop_node(
            None,
            &mut cache,
            Some(&mut cam),
            enabled,
            &BusOp::ReadLine,
            addr,
            Cycle::ZERO,
            &mut NullObserver,
        );
        assert_eq!(v, want, "enabled={enabled} holds={holds}");
    }
}
