//! Named platforms from the paper's case studies.
//!
//! Every preset is expressed as a trivial (single-segment)
//! [`Topology`], so the classic two-master platforms and the N-master
//! fabrics share one construction path.

use crate::{CpuSpec, MemLayout, PlatformSpec, Strategy, System, Topology};
use hmp_cache::ProtocolKind;
use hmp_cpu::{LockKind, Program};

/// The paper's Figure 3 platform: PowerPC755 (MEI, 100 MHz) + ARM920T
/// (no coherence hardware, 50 MHz) — platform class PF2. The evaluation
/// section (§4) measures this pairing.
///
/// `cacheable_locks` reproduces the hardware-deadlock configuration of
/// Figure 4; leave it `false` for the paper's measured setups.
pub fn ppc_arm(
    strategy: Strategy,
    lock_kind: LockKind,
    cacheable_locks: bool,
) -> (PlatformSpec, MemLayout) {
    Topology::single_segment(vec![CpuSpec::powerpc755(), CpuSpec::arm920t()]).spec(
        strategy,
        lock_kind,
        cacheable_locks,
    )
}

/// The paper's Figure 2 platform: Intel486 (modified MESI) + PowerPC755
/// (MEI) — platform class PF3, no snoop logic or ISR needed. The paper
/// expects it to outperform the PF2 platform "due to the absence of an
/// interrupt service routine".
pub fn i486_ppc(strategy: Strategy, lock_kind: LockKind) -> (PlatformSpec, MemLayout) {
    Topology::single_segment(vec![CpuSpec::intel486(), CpuSpec::powerpc755()])
        .spec(strategy, lock_kind, false)
}

/// A generic PF3 platform with one bus-speed processor per protocol in
/// `protocols` — the paper's "easily extended to platforms with more
/// than two processors" (§2), on one flat bus segment.
///
/// # Panics
///
/// Panics if `protocols` is empty.
pub fn protocol_set(
    protocols: &[ProtocolKind],
    strategy: Strategy,
    lock_kind: LockKind,
) -> (PlatformSpec, MemLayout) {
    assert!(!protocols.is_empty(), "need at least one processor");
    let cpus = protocols
        .iter()
        .enumerate()
        .map(|(i, &p)| CpuSpec::generic(&format!("cpu{i}-{p}"), p))
        .collect();
    Topology::single_segment(cpus).spec(strategy, lock_kind, false)
}

/// A generic PF3 pairing of two write-back protocols — used to exercise
/// every combination of §2's reduction table. Thin wrapper over
/// [`protocol_set`].
pub fn protocol_pair(
    a: ProtocolKind,
    b: ProtocolKind,
    strategy: Strategy,
    lock_kind: LockKind,
) -> (PlatformSpec, MemLayout) {
    protocol_set(&[a, b], strategy, lock_kind)
}

/// Alias of [`protocol_set`], kept for callers written against the older
/// name.
pub fn generic_many(
    protocols: &[ProtocolKind],
    strategy: Strategy,
    lock_kind: LockKind,
) -> (PlatformSpec, MemLayout) {
    protocol_set(protocols, strategy, lock_kind)
}

/// A PF1 platform with `n` processors, *none* of which has coherence
/// hardware — each sits behind its own TAG-CAM snoop logic ("The same
/// methodology used in ARM920T can be employed in PF1", paper §3).
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn pf1_many(n: usize, strategy: Strategy, lock_kind: LockKind) -> (PlatformSpec, MemLayout) {
    assert!(n >= 1, "need at least one processor");
    let cpus = (0..n)
        .map(|i| {
            let mut c = CpuSpec::arm920t();
            c.name = format!("ARM920T-{i}");
            c
        })
        .collect();
    Topology::single_segment(cpus).spec(strategy, lock_kind, false)
}

/// The two-processor PF1 platform — [`pf1_many`] with `n = 2`.
pub fn pf1_dual(strategy: Strategy, lock_kind: LockKind) -> (PlatformSpec, MemLayout) {
    pf1_many(2, strategy, lock_kind)
}

/// Instantiates a [`System`] for a spec under a strategy, enabling the
/// TAG-CAM snoop logic only for [`Strategy::Proposed`] — the baselines
/// exist precisely to avoid that hardware.
pub fn instantiate(spec: &PlatformSpec, strategy: Strategy, programs: Vec<Program>) -> System {
    let mut sys = System::new(spec, programs);
    sys.set_snoop_logic_enabled(strategy == Strategy::Proposed);
    sys
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmp_core::PlatformClass;

    #[test]
    fn ppc_arm_is_pf2() {
        let (spec, _) = ppc_arm(Strategy::Proposed, LockKind::Turn, false);
        let sys = System::new(&spec, vec![Program::empty(); 2]);
        assert_eq!(sys.platform_class(), PlatformClass::Pf2);
        assert_eq!(sys.system_protocol(), Some(ProtocolKind::Mei));
        assert!(sys.snoop_logic(1).is_some(), "ARM gets the TAG CAM");
        assert!(sys.snoop_logic(0).is_none());
        assert!(sys.wrapper(0).is_some());
        assert!(sys.wrapper(1).is_none());
    }

    #[test]
    fn i486_ppc_is_pf3_reduced_to_mei() {
        let (spec, _) = i486_ppc(Strategy::Proposed, LockKind::Turn);
        let sys = System::new(&spec, vec![Program::empty(); 2]);
        assert_eq!(sys.platform_class(), PlatformClass::Pf3);
        assert_eq!(sys.system_protocol(), Some(ProtocolKind::Mei));
        // The Intel486 side converts reads to writes (INV pin)…
        assert!(sys.wrapper(0).unwrap().policy().convert_read_to_write);
        // …the PowerPC side does not need to (paper §3).
        assert!(!sys.wrapper(1).unwrap().policy().convert_read_to_write);
    }

    #[test]
    fn pf1_has_two_cams() {
        let (spec, _) = pf1_dual(Strategy::Proposed, LockKind::Turn);
        let sys = System::new(&spec, vec![Program::empty(); 2]);
        assert_eq!(sys.platform_class(), PlatformClass::Pf1);
        assert_eq!(sys.system_protocol(), None);
        assert!(sys.snoop_logic(0).is_some());
        assert!(sys.snoop_logic(1).is_some());
    }

    #[test]
    fn protocol_pair_reduces_per_lattice() {
        for (a, b, want) in [
            (ProtocolKind::Mei, ProtocolKind::Moesi, ProtocolKind::Mei),
            (ProtocolKind::Msi, ProtocolKind::Mesi, ProtocolKind::Msi),
            (ProtocolKind::Mesi, ProtocolKind::Moesi, ProtocolKind::Mesi),
        ] {
            let (spec, _) = protocol_pair(a, b, Strategy::Proposed, LockKind::Turn);
            let sys = System::new(&spec, vec![Program::empty(); 2]);
            assert_eq!(sys.system_protocol(), Some(want), "{a}+{b}");
        }
    }

    #[test]
    fn protocol_set_accepts_more_than_two() {
        let (spec, _) = protocol_set(
            &[ProtocolKind::Moesi, ProtocolKind::Mesi, ProtocolKind::Msi],
            Strategy::Proposed,
            LockKind::Turn,
        );
        assert_eq!(spec.cpus.len(), 3);
        assert_eq!(spec.lock.parties, 3);
        assert_eq!(spec.cpus[2].name, "cpu2-MSI");
        let sys = System::new(&spec, vec![Program::empty(); 3]);
        assert_eq!(sys.system_protocol(), Some(ProtocolKind::Msi));
    }

    #[test]
    fn pf1_many_names_and_cams() {
        let (spec, _) = pf1_many(3, Strategy::Proposed, LockKind::Turn);
        assert_eq!(spec.cpus[0].name, "ARM920T-0");
        assert_eq!(spec.cpus[2].name, "ARM920T-2");
        let sys = System::new(&spec, vec![Program::empty(); 3]);
        assert_eq!(sys.platform_class(), PlatformClass::Pf1);
        for i in 0..3 {
            assert!(sys.snoop_logic(i).is_some(), "cpu {i} behind a CAM");
        }
    }

    #[test]
    fn instantiate_gates_snoop_logic() {
        let (spec, lay) = ppc_arm(Strategy::SoftwareDrain, LockKind::Turn, false);
        let _ = lay;
        let sys = instantiate(&spec, Strategy::SoftwareDrain, vec![Program::empty(); 2]);
        // The CAM exists but is disabled; run() finishes immediately with
        // empty programs either way.
        assert!(sys.snoop_logic(1).is_some());
    }
}
