//! The coherence pipeline: typed address-phase and completion-phase
//! decisions.
//!
//! The paper's contribution is the *address/snoop-phase semantics* — what
//! each remote agent does when it observes a transaction, and how those
//! per-agent reactions combine into the bus's verdict. This module keeps
//! that logic in one layer, as data:
//!
//! 1. [`snoop_node`] asks one remote node (wrapper + cache, or TAG-CAM)
//!    for its [`SnoopVerdict`] on an address phase — the §2.1–2.3 wrapper
//!    cases and the §3 CAM case, one node at a time;
//! 2. [`AddressPhase`] folds the verdicts into the bus-level
//!    [`AddressOutcome`] (proceed with data-phase length, SHARED and
//!    cache-to-cache supply — or ARTRY, with queued snoop-push drains);
//! 3. [`completion_action`] maps a completed bus transaction back to the
//!    typed [`CompletionAction`] the platform must apply for the pending
//!    CPU request.
//!
//! The effectful halves — submitting drains, touching memory, waking CPUs
//! — stay in the `System` methods at the bottom of this file, which
//! consume the typed layer. Every decision in between is a plain function
//! over plain values, unit-testable without a bus or a clock.

use crate::system::System;
use hmp_bus::{AddressOutcome, BusOp, CompletedTxn, GrantedTxn, MasterId};
use hmp_cache::{Access, DataCache, ReadProbe, SnoopAction, WriteProbe};
use hmp_core::{SnoopLogic, Wrapper};
use hmp_cpu::{MemRequest, MemResult, ReqKind};
use hmp_mem::{Addr, MemAttr, LINE_WORDS};
use hmp_sim::{CounterBank, CpuCounter, Cycle, Observer, RetryCause, SimEvent};

/// One cache line of data, as moved by drains and supplies.
pub type LineData = [u32; LINE_WORDS as usize];

/// What one remote node does when it observes an address phase.
///
/// This is the typed form of the paper's per-agent snoop reactions: a
/// wrapped cache replies through its snoop port (§2), a non-coherent
/// processor's TAG-CAM objects until its drain ISR has run (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnoopVerdict {
    /// The node holds nothing relevant (or its snoop port is not wired).
    Miss,
    /// A clean copy reacted with at most a state change; `shared` is the
    /// node's SHARED-signal contribution.
    Hit {
        /// Whether the node asserts the bus SHARED signal.
        shared: bool,
    },
    /// The node holds the line dirty and pushes it to memory first: the
    /// observed transaction is killed (ARTRY) and `data` is queued as a
    /// snoop-push drain on the node's master port.
    Drain {
        /// The dirty line being pushed.
        data: LineData,
    },
    /// The node supplies its dirty line cache-to-cache (MOESI): the
    /// transaction proceeds, memory is bypassed.
    Supply {
        /// The supplied line.
        data: LineData,
        /// Whether the node also asserts SHARED.
        shared: bool,
    },
    /// The node's TAG-CAM matched: ARTRY until the drain ISR empties the
    /// non-coherent processor's cache line.
    CamConflict,
}

/// Asks one remote node for its verdict on an address phase.
///
/// Exactly one of the two snoop paths applies per node: a coherent
/// processor snoops through its wrapper-translated cache port; a
/// non-coherent processor is represented by its TAG-CAM (when the
/// platform's snoop logic is enabled at all — the baselines run without
/// it).
#[allow(clippy::too_many_arguments)]
pub fn snoop_node(
    wrapper: Option<&mut Wrapper>,
    cache: &mut DataCache,
    cam: Option<&mut SnoopLogic>,
    snoop_logic_enabled: bool,
    op: &BusOp,
    addr: Addr,
    at: Cycle,
    obs: &mut impl Observer,
) -> SnoopVerdict {
    if let Some(wrapper) = wrapper {
        let sop = wrapper.translate_snoop(op);
        match cache.snoop(addr, sop, at, obs) {
            None => SnoopVerdict::Miss,
            Some(reply) => match reply.action {
                SnoopAction::None => SnoopVerdict::Hit {
                    shared: reply.asserts_shared,
                },
                SnoopAction::WritebackLine => SnoopVerdict::Drain {
                    data: reply.data.expect("writeback carries data"),
                },
                SnoopAction::SupplyLine => SnoopVerdict::Supply {
                    data: reply.data.expect("supply carries data"),
                    shared: reply.asserts_shared,
                },
            },
        }
    } else if snoop_logic_enabled {
        match cam {
            Some(cam) => {
                if cam.check_remote(addr, at, obs) {
                    SnoopVerdict::CamConflict
                } else {
                    SnoopVerdict::Miss
                }
            }
            None => SnoopVerdict::Miss,
        }
    } else {
        SnoopVerdict::Miss
    }
}

/// Folds per-node [`SnoopVerdict`]s into the bus-level verdict for one
/// address phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AddressPhase {
    shared: bool,
    supplied: Option<LineData>,
    retry: Option<RetryCause>,
    drains: Vec<(usize, LineData)>,
}

impl AddressPhase {
    /// Starts folding a fresh address phase.
    pub fn new() -> Self {
        AddressPhase::default()
    }

    /// Clears the fold for reuse, keeping the drain list's capacity — the
    /// cycle loop folds one address phase per grant, and reusing the
    /// buffer keeps the steady state allocation-free.
    pub fn reset(&mut self) {
        self.shared = false;
        self.supplied = None;
        self.retry = None;
        self.drains.clear();
    }

    /// Absorbs `node`'s verdict, bumping the matching activity counters.
    pub fn absorb(&mut self, node: usize, verdict: SnoopVerdict, counters: &mut CounterBank) {
        match verdict {
            SnoopVerdict::Miss => {}
            SnoopVerdict::Hit { shared } => {
                counters.bump(node, CpuCounter::SnoopHit);
                self.shared |= shared;
            }
            SnoopVerdict::Drain { data } => {
                counters.bump(node, CpuCounter::SnoopHit);
                counters.bump(node, CpuCounter::SnoopDrain);
                counters.bump_retry(RetryCause::SnoopDrain);
                self.drains.push((node, data));
                self.retry.get_or_insert(RetryCause::SnoopDrain);
            }
            SnoopVerdict::Supply { data, shared } => {
                counters.bump(node, CpuCounter::SnoopHit);
                counters.bump(node, CpuCounter::CacheToCache);
                self.supplied = Some(data);
                self.shared |= shared;
            }
            SnoopVerdict::CamConflict => {
                counters.bump(node, CpuCounter::CamHit);
                counters.bump_retry(RetryCause::CamHit);
                self.retry.get_or_insert(RetryCause::CamHit);
            }
        }
    }

    /// Why the phase must be killed, if any verdict demanded ARTRY.
    pub fn retry_cause(&self) -> Option<RetryCause> {
        self.retry
    }

    /// Snoop-push drains to queue, in node order.
    pub fn drains(&self) -> &[(usize, LineData)] {
        &self.drains
    }

    /// The folded bus verdict. Data-phase length depends on where the
    /// data comes from: a cache-to-cache supply streams a word per bus
    /// cycle, memory costs its configured word / line-fill latency, and
    /// upgrade broadcasts carry no data at all.
    pub fn outcome(&self, op: &BusOp, word_latency: u64, line_fill_latency: u64) -> AddressOutcome {
        if self.retry.is_some() {
            return AddressOutcome::Retry;
        }
        let data_cycles = match op {
            BusOp::ReadLine | BusOp::ReadLineExcl | BusOp::WriteLine(_) => {
                if self.supplied.is_some() {
                    u64::from(LINE_WORDS)
                } else {
                    line_fill_latency
                }
            }
            BusOp::ReadWord | BusOp::WriteWord(_) => word_latency,
            BusOp::Upgrade => 0,
        };
        AddressOutcome::Proceed {
            data_cycles,
            shared: self.shared,
            supplied: self.supplied,
        }
    }
}

/// Why a CPU transaction is on the bus — what to do when it completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PendingKind {
    /// Single-word bus operation (uncached, device, write-through store,
    /// no-allocate store).
    Word {
        /// Memory attribute of the target, deciding memory vs. device.
        attr: MemAttr,
    },
    /// Line fill in flight.
    Fill {
        /// Whether the fill services a read or a write.
        access: Access,
        /// The store value, for write fills.
        value: Option<u32>,
        /// Whether the line fills in write-through mode.
        wt: bool,
    },
    /// Upgrade broadcast in flight.
    Upgrade {
        /// The store value to commit on completion.
        value: u32,
    },
    /// Flush write-back in flight.
    FlushWb,
}

/// A CPU's outstanding bus transaction: the originating request plus what
/// kind of completion it awaits.
#[derive(Debug, Clone, Copy)]
pub struct Pending {
    /// The memory request that caused the transaction.
    pub req: MemRequest,
    /// What to do when the bus completes it.
    pub kind: PendingKind,
}

/// The typed completion verdict: what the platform must do when a CPU's
/// bus transaction finishes its data phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionAction {
    /// Deliver a single word from memory or a device.
    WordRead {
        /// Memory attribute of the target.
        attr: MemAttr,
    },
    /// Commit a single word to memory or a device.
    WordWrite {
        /// Memory attribute of the target.
        attr: MemAttr,
        /// The word to commit.
        value: u32,
    },
    /// Install the filled line and complete the read or write it services.
    LineFill {
        /// Whether the fill services a read or a write.
        access: Access,
        /// The store value, for write fills.
        value: Option<u32>,
        /// Whether the line fills in write-through mode.
        wt: bool,
    },
    /// Commit the store the upgrade broadcast was for (or restart it as a
    /// write miss if the line was snoop-invalidated while waiting).
    UpgradeFinish {
        /// The store value.
        value: u32,
    },
    /// Land a flushed dirty line in memory.
    FlushWriteback {
        /// The flushed line.
        data: LineData,
        /// Whether the ARM drain ISR issued the flush (acks the CAM).
        from_isr: bool,
    },
}

/// Maps a completed transaction and its pending record to the typed
/// completion verdict.
///
/// # Panics
///
/// Panics if the completed operation does not match the pending kind —
/// the modelled cores are blocking, so a mismatch is a platform bug.
pub fn completion_action(op: &BusOp, pending: &Pending) -> CompletionAction {
    match (op, pending.kind) {
        (BusOp::ReadWord, PendingKind::Word { attr }) => CompletionAction::WordRead { attr },
        (&BusOp::WriteWord(value), PendingKind::Word { attr }) => {
            CompletionAction::WordWrite { attr, value }
        }
        (BusOp::ReadLine | BusOp::ReadLineExcl, PendingKind::Fill { access, value, wt }) => {
            CompletionAction::LineFill { access, value, wt }
        }
        (BusOp::Upgrade, PendingKind::Upgrade { value }) => {
            CompletionAction::UpgradeFinish { value }
        }
        (&BusOp::WriteLine(data), PendingKind::FlushWb) => CompletionAction::FlushWriteback {
            data,
            from_isr: pending.req.from_isr,
        },
        (op, kind) => unreachable!("mismatched completion: {op} vs {kind:?}"),
    }
}

// ---------------------------------------------------------------------
// The effectful half: `System` methods consuming the typed layer.
// ---------------------------------------------------------------------

impl<O: Observer> System<O> {
    /// Snoops an address phase across all remote nodes and folds the
    /// verdicts into the bus's [`AddressOutcome`], queueing any snoop-push
    /// drains.
    pub(crate) fn snoop_and_decide(&mut self, txn: &GrantedTxn) -> AddressOutcome {
        let addr = txn.addr;
        // Write-buffer interlock (CPU transactions only; drains *are* the
        // buffers being emptied).
        if !txn.is_drain && self.bus.drain_pending_to(addr) {
            self.counters.bump_retry(RetryCause::WriteBuffer);
            self.emit_retry(txn, RetryCause::WriteBuffer);
            return AddressOutcome::Retry;
        }

        let mut phase = std::mem::take(&mut self.phase_scratch);
        phase.reset();
        let mut supplier: Option<usize> = None;
        for j in 0..self.nodes.len() {
            if j == txn.master.index() {
                continue;
            }
            let node = &mut self.nodes[j];
            // Occupancy pre-filter: a coherent node whose cache provably
            // lacks the line, or a CAM node whose TAG CAM provably holds
            // no tag for it, cannot react — skip the snoop dispatch. The
            // filters never report a false negative, so this is the same
            // Miss verdict without the port round-trip.
            let may_react = if node.wrapper.is_some() {
                node.cache.may_hold(addr)
            } else {
                self.snoop_logic_enabled && node.cam.as_ref().is_some_and(|c| c.may_match(addr))
            };
            if !may_react {
                continue;
            }
            let verdict = snoop_node(
                node.wrapper.as_mut(),
                &mut node.cache,
                node.cam.as_mut(),
                self.snoop_logic_enabled,
                &txn.op,
                addr,
                self.now,
                &mut self.obs,
            );
            if matches!(verdict, SnoopVerdict::Supply { .. }) {
                supplier = Some(j);
            }
            if verdict == SnoopVerdict::CamConflict {
                // The CAM queued (or re-confirmed) a pending line: node
                // `j`'s nFIQ delivery horizon may have moved.
                self.sched.mark_dirty(j);
            }
            phase.absorb(j, verdict, &mut self.counters);
        }
        for &(j, data) in phase.drains() {
            self.bus
                .submit_drain(MasterId(j), data, addr, self.now, &mut self.obs);
        }
        let mut outcome = if let Some(cause) = phase.retry_cause() {
            self.emit_retry(txn, cause);
            AddressOutcome::Retry
        } else {
            phase.outcome(
                &txn.op,
                self.mem.word_latency().as_u64(),
                self.mem.line_fill_latency().as_u64(),
            )
        };
        // Data that crosses the snooping bridge (requester and its data
        // source on different segments) pays the bridge's store-and-forward
        // latency in extra data-phase cycles; address forwarding itself is
        // combinational, and upgrades move no data.
        if let AddressOutcome::Proceed { data_cycles, .. } = &mut outcome {
            if *data_cycles > 0 && self.bus.crosses_bridge(txn.master, supplier) {
                *data_cycles += self.bus.bridge_latency();
                if let Some(ts) = &mut self.obs.series {
                    ts.record_bridge_crossing(self.now);
                }
            }
        }
        self.phase_scratch = phase;
        outcome
    }

    /// Classifies `addr`'s holder set against the structural line
    /// invariants (no-op when the spec left checking disabled).
    pub(crate) fn check_line_invariants(&mut self, addr: Addr) {
        let Some(inv) = &mut self.invariants else {
            return;
        };
        inv.check_line(
            self.now,
            addr,
            self.nodes.iter().enumerate().filter_map(|(i, n)| {
                // Same occupancy pre-filter as the snoop loop: `may_hold`
                // returning false guarantees `line_state` is `None`.
                if !n.cache.may_hold(addr) {
                    return None;
                }
                n.cache.line_state(addr).map(|s| (i, s))
            }),
        );
    }

    pub(crate) fn emit_retry(&mut self, txn: &GrantedTxn, cause: RetryCause) {
        self.obs.on_event(
            self.now,
            SimEvent::BusRetry {
                master: txn.master.index(),
                addr: u64::from(txn.addr.as_u32()),
                cause,
            },
        );
    }

    /// Applies a completed bus transaction: drains land in memory
    /// directly; CPU transactions are classified by [`completion_action`]
    /// and executed.
    pub(crate) fn complete_txn(&mut self, done: CompletedTxn) {
        let m = done.master.index();
        // Completions wake the master's CPU (or ack its CAM's pending
        // line); its event horizon must be re-derived at the next plan.
        self.sched.mark_dirty(m);
        if done.is_drain {
            let BusOp::WriteLine(data) = done.op else {
                unreachable!("drains are line writes");
            };
            self.mem.write_line(done.addr, &data);
            if let Some(cam) = &mut self.nodes[m].cam {
                cam.observe_local_writeback(done.addr);
            }
            self.check_line_invariants(done.addr);
            return;
        }

        let pending = self.nodes[m]
            .pending
            .take()
            .expect("completed CPU transaction has a pending record");
        match completion_action(&done.op, &pending) {
            CompletionAction::WordRead { attr } => {
                let value = match attr {
                    MemAttr::Device(id) => self.devices[id as usize].read_word(done.addr),
                    _ => {
                        let v = self.mem.read_word(done.addr);
                        if let Some(c) = &mut self.checker {
                            c.on_read(self.now, m, done.addr, v);
                        }
                        v
                    }
                };
                self.counters.bump(m, CpuCounter::UncachedRead);
                self.nodes[m].cpu.complete_mem(MemResult::Value(value));
            }
            CompletionAction::WordWrite { attr, value } => {
                match attr {
                    MemAttr::Device(id) => self.devices[id as usize].write_word(done.addr, value),
                    _ => {
                        self.mem.write_word(done.addr, value);
                        if let Some(c) = &mut self.checker {
                            c.on_write(done.addr, value);
                        }
                    }
                }
                self.counters.bump(m, CpuCounter::UncachedWrite);
                self.nodes[m].cpu.complete_mem(MemResult::Done);
            }
            CompletionAction::LineFill { access, value, wt } => {
                let line = done.addr.line_base();
                let data = done.supplied.unwrap_or_else(|| self.mem.read_line(line));
                let mut gated_shared = match &mut self.nodes[m].wrapper {
                    Some(w) => w.gate_shared(done.shared),
                    None => false,
                };
                // An armed SHARED-signal corruption overrides whatever the
                // wrapper translated, once.
                if let Some(engine) = &mut self.faults {
                    if let Some(forced) = engine.shared_force[m].take() {
                        gated_shared = forced;
                    }
                }
                self.nodes[m].cache.fill(
                    line,
                    data,
                    access,
                    gated_shared,
                    wt,
                    self.now,
                    &mut self.obs,
                );
                if let Some(cam) = &mut self.nodes[m].cam {
                    cam.observe_local_fill(line);
                }
                match access {
                    Access::Read => {
                        let v = data[done.addr.word_offset_in_line() as usize];
                        if let Some(c) = &mut self.checker {
                            c.on_read(self.now, m, done.addr, v);
                        }
                        self.nodes[m].cpu.complete_mem(MemResult::Value(v));
                    }
                    Access::Write => {
                        let v = value.expect("write fills carry the store value");
                        self.nodes[m].cache.commit_write(done.addr, v);
                        if let Some(c) = &mut self.checker {
                            c.on_write(done.addr, v);
                        }
                        self.nodes[m].cpu.complete_mem(MemResult::Done);
                    }
                }
            }
            CompletionAction::UpgradeFinish { value } => {
                if self.nodes[m].cache.complete_upgrade(done.addr, value) {
                    if let Some(c) = &mut self.checker {
                        c.on_write(done.addr, value);
                    }
                    self.nodes[m].cpu.complete_mem(MemResult::Done);
                } else {
                    // The line was snoop-invalidated while the upgrade
                    // waited: restart the store as a write miss.
                    self.counters.bump(m, CpuCounter::UpgradeLost);
                    self.dispatch_write_miss(m, pending.req, value, false);
                }
            }
            CompletionAction::FlushWriteback { data, from_isr } => {
                self.mem.write_line(done.addr, &data);
                if let Some(cam) = &mut self.nodes[m].cam {
                    cam.observe_local_writeback(done.addr);
                    if from_isr {
                        cam.ack(done.addr);
                        self.counters.bump(m, CpuCounter::IsrDrainDirty);
                    }
                }
                self.counters.bump(m, CpuCounter::FlushDirty);
                self.nodes[m].cpu.complete_maintenance();
            }
        }
        self.check_line_invariants(done.addr);
    }

    fn evict_victim(&mut self, i: usize, victim: Option<hmp_cache::EvictedLine>) {
        if let Some(v) = victim {
            if v.dirty {
                self.bus
                    .submit_drain(MasterId(i), v.data, v.addr, self.now, &mut self.obs);
                self.counters.bump(i, CpuCounter::VictimWriteback);
            } else {
                self.counters.bump(i, CpuCounter::VictimClean);
                // A clean eviction is invisible on the bus, so a TAG CAM
                // keeps a stale (conservative) entry — see SnoopLogic docs.
            }
        }
    }

    fn dispatch_write_miss(&mut self, i: usize, req: MemRequest, value: u32, wt: bool) {
        let probe = self.nodes[i].cache.probe_write(req.addr, value, wt);
        match probe {
            WriteProbe::Miss { victim } => {
                self.evict_victim(i, victim);
                self.bus.submit(
                    MasterId(i),
                    BusOp::ReadLineExcl,
                    req.addr,
                    self.now,
                    &mut self.obs,
                );
                self.nodes[i].pending = Some(Pending {
                    req,
                    kind: PendingKind::Fill {
                        access: Access::Write,
                        value: Some(value),
                        wt,
                    },
                });
            }
            other => unreachable!("restarted write miss cannot {other:?}"),
        }
    }

    /// Services a CPU's issued memory request: local cache work completes
    /// immediately; anything needing the bus submits a transaction and
    /// parks a [`Pending`] record.
    pub(crate) fn handle_request(&mut self, i: usize, req: MemRequest) {
        // Every bus submission flows through here (directly or via the
        // victim path), and a request can arrive from a CPU-only tick —
        // the one mutation of the bus's event horizon outside a full step.
        self.bus_sched_dirty = true;
        let attr = self.map.classify(req.addr);
        match req.kind {
            ReqKind::Read => match attr {
                MemAttr::CachedWriteBack | MemAttr::CachedWriteThrough => {
                    let wt = attr == MemAttr::CachedWriteThrough;
                    match self.nodes[i].cache.probe_read(req.addr, wt) {
                        ReadProbe::Hit(v) => {
                            self.counters.bump(i, CpuCounter::ReadHit);
                            if let Some(c) = &mut self.checker {
                                c.on_read(self.now, i, req.addr, v);
                            }
                            self.nodes[i].cpu.complete_mem(MemResult::Value(v));
                        }
                        ReadProbe::Miss { victim } => {
                            self.counters.bump(i, CpuCounter::ReadMiss);
                            self.evict_victim(i, victim);
                            self.bus.submit(
                                MasterId(i),
                                BusOp::ReadLine,
                                req.addr,
                                self.now,
                                &mut self.obs,
                            );
                            self.nodes[i].pending = Some(Pending {
                                req,
                                kind: PendingKind::Fill {
                                    access: Access::Read,
                                    value: None,
                                    wt,
                                },
                            });
                        }
                    }
                }
                MemAttr::Uncached | MemAttr::Device(_) => {
                    self.bus.submit(
                        MasterId(i),
                        BusOp::ReadWord,
                        req.addr,
                        self.now,
                        &mut self.obs,
                    );
                    self.nodes[i].pending = Some(Pending {
                        req,
                        kind: PendingKind::Word { attr },
                    });
                }
            },
            ReqKind::Write(value) => match attr {
                MemAttr::CachedWriteBack | MemAttr::CachedWriteThrough => {
                    let wt = attr == MemAttr::CachedWriteThrough;
                    match self.nodes[i].cache.probe_write(req.addr, value, wt) {
                        WriteProbe::Hit => {
                            self.counters.bump(i, CpuCounter::WriteHit);
                            if let Some(c) = &mut self.checker {
                                c.on_write(req.addr, value);
                            }
                            self.nodes[i].cpu.complete_mem(MemResult::Done);
                            // A MEI-style silent E→M upgrade is invisible
                            // on the bus — this is the one holder-set
                            // change no bus completion covers.
                            self.check_line_invariants(req.addr);
                        }
                        WriteProbe::HitNeedsUpgrade => {
                            self.counters.bump(i, CpuCounter::WriteUpgrade);
                            self.bus.submit(
                                MasterId(i),
                                BusOp::Upgrade,
                                req.addr,
                                self.now,
                                &mut self.obs,
                            );
                            self.nodes[i].pending = Some(Pending {
                                req,
                                kind: PendingKind::Upgrade { value },
                            });
                        }
                        WriteProbe::HitWriteThrough => {
                            // Locally stored; the word must also reach
                            // memory. Golden commit happens at bus
                            // completion — remote access is interlocked on
                            // the pending word write until then.
                            self.counters.bump(i, CpuCounter::WriteThrough);
                            self.bus.submit(
                                MasterId(i),
                                BusOp::WriteWord(value),
                                req.addr,
                                self.now,
                                &mut self.obs,
                            );
                            self.nodes[i].pending = Some(Pending {
                                req,
                                kind: PendingKind::Word { attr },
                            });
                        }
                        WriteProbe::Miss { victim } => {
                            self.counters.bump(i, CpuCounter::WriteMiss);
                            self.evict_victim(i, victim);
                            self.bus.submit(
                                MasterId(i),
                                BusOp::ReadLineExcl,
                                req.addr,
                                self.now,
                                &mut self.obs,
                            );
                            self.nodes[i].pending = Some(Pending {
                                req,
                                kind: PendingKind::Fill {
                                    access: Access::Write,
                                    value: Some(value),
                                    wt,
                                },
                            });
                        }
                        WriteProbe::MissNoAllocate => {
                            self.counters.bump(i, CpuCounter::WriteNoAllocate);
                            self.bus.submit(
                                MasterId(i),
                                BusOp::WriteWord(value),
                                req.addr,
                                self.now,
                                &mut self.obs,
                            );
                            self.nodes[i].pending = Some(Pending {
                                req,
                                kind: PendingKind::Word { attr },
                            });
                        }
                    }
                }
                MemAttr::Uncached | MemAttr::Device(_) => {
                    self.bus.submit(
                        MasterId(i),
                        BusOp::WriteWord(value),
                        req.addr,
                        self.now,
                        &mut self.obs,
                    );
                    self.nodes[i].pending = Some(Pending {
                        req,
                        kind: PendingKind::Word { attr },
                    });
                }
            },
            ReqKind::Flush => {
                match self.nodes[i].cache.flush_line(req.addr) {
                    Some((true, data)) => {
                        self.bus.submit(
                            MasterId(i),
                            BusOp::WriteLine(data),
                            req.addr.line_base(),
                            self.now,
                            &mut self.obs,
                        );
                        self.nodes[i].pending = Some(Pending {
                            req,
                            kind: PendingKind::FlushWb,
                        });
                    }
                    Some((false, _)) | None => {
                        // Clean or absent: no bus work.
                        self.counters.bump(i, CpuCounter::FlushClean);
                        if req.from_isr {
                            if let Some(cam) = &mut self.nodes[i].cam {
                                cam.ack(req.addr);
                            }
                            self.counters.bump(i, CpuCounter::IsrDrainClean);
                        }
                        self.nodes[i].cpu.complete_maintenance();
                    }
                }
            }
            ReqKind::Invalidate => {
                self.nodes[i].cache.invalidate_line(req.addr);
                self.counters.bump(i, CpuCounter::Invalidate);
                if req.from_isr {
                    if let Some(cam) = &mut self.nodes[i].cam {
                        cam.ack(req.addr);
                    }
                }
                self.nodes[i].cpu.complete_maintenance();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmp_sim::NullObserver;

    #[test]
    fn address_phase_folds_shared_and_supply() {
        let mut counters = CounterBank::new(3);
        let mut phase = AddressPhase::new();
        phase.absorb(1, SnoopVerdict::Hit { shared: true }, &mut counters);
        phase.absorb(
            2,
            SnoopVerdict::Supply {
                data: [7; 8],
                shared: false,
            },
            &mut counters,
        );
        assert_eq!(phase.retry_cause(), None);
        let out = phase.outcome(&BusOp::ReadLine, 2, 13);
        assert_eq!(
            out,
            AddressOutcome::Proceed {
                data_cycles: u64::from(LINE_WORDS),
                shared: true,
                supplied: Some([7; 8]),
            }
        );
        assert_eq!(counters.get(1, CpuCounter::SnoopHit), 1);
        assert_eq!(counters.get(2, CpuCounter::CacheToCache), 1);
    }

    #[test]
    fn drain_wins_over_proceed_and_queues_data() {
        let mut counters = CounterBank::new(2);
        let mut phase = AddressPhase::new();
        phase.absorb(1, SnoopVerdict::Drain { data: [9; 8] }, &mut counters);
        assert_eq!(phase.retry_cause(), Some(RetryCause::SnoopDrain));
        assert_eq!(phase.drains(), &[(1, [9; 8])]);
        assert_eq!(
            phase.outcome(&BusOp::ReadLine, 2, 13),
            AddressOutcome::Retry
        );
        assert_eq!(counters.retry(RetryCause::SnoopDrain), 1);
        assert_eq!(counters.get(1, CpuCounter::SnoopDrain), 1);
    }

    #[test]
    fn first_retry_cause_sticks() {
        let mut counters = CounterBank::new(3);
        let mut phase = AddressPhase::new();
        phase.absorb(1, SnoopVerdict::CamConflict, &mut counters);
        phase.absorb(2, SnoopVerdict::Drain { data: [0; 8] }, &mut counters);
        assert_eq!(phase.retry_cause(), Some(RetryCause::CamHit));
        assert_eq!(counters.retry(RetryCause::CamHit), 1);
        assert_eq!(counters.retry(RetryCause::SnoopDrain), 1);
    }

    #[test]
    fn data_cycles_by_op_class() {
        let phase = AddressPhase::new();
        let p = |op: &BusOp| phase.outcome(op, 2, 13);
        assert_eq!(
            p(&BusOp::ReadLine),
            AddressOutcome::Proceed {
                data_cycles: 13,
                shared: false,
                supplied: None
            }
        );
        assert_eq!(
            p(&BusOp::ReadWord),
            AddressOutcome::Proceed {
                data_cycles: 2,
                shared: false,
                supplied: None
            }
        );
        assert_eq!(
            p(&BusOp::Upgrade),
            AddressOutcome::Proceed {
                data_cycles: 0,
                shared: false,
                supplied: None
            }
        );
    }

    #[test]
    fn completion_action_classifies_every_pair() {
        let req = MemRequest {
            kind: ReqKind::Read,
            addr: Addr::new(0x40),
            from_isr: false,
        };
        let p = |kind| Pending { req, kind };
        assert_eq!(
            completion_action(
                &BusOp::ReadWord,
                &p(PendingKind::Word {
                    attr: MemAttr::Uncached
                })
            ),
            CompletionAction::WordRead {
                attr: MemAttr::Uncached
            }
        );
        assert_eq!(
            completion_action(
                &BusOp::WriteWord(5),
                &p(PendingKind::Word {
                    attr: MemAttr::Uncached
                })
            ),
            CompletionAction::WordWrite {
                attr: MemAttr::Uncached,
                value: 5
            }
        );
        assert_eq!(
            completion_action(
                &BusOp::ReadLineExcl,
                &p(PendingKind::Fill {
                    access: Access::Write,
                    value: Some(3),
                    wt: false
                })
            ),
            CompletionAction::LineFill {
                access: Access::Write,
                value: Some(3),
                wt: false
            }
        );
        assert_eq!(
            completion_action(&BusOp::Upgrade, &p(PendingKind::Upgrade { value: 9 })),
            CompletionAction::UpgradeFinish { value: 9 }
        );
        assert_eq!(
            completion_action(&BusOp::WriteLine([1; 8]), &p(PendingKind::FlushWb)),
            CompletionAction::FlushWriteback {
                data: [1; 8],
                from_isr: false
            }
        );
    }

    #[test]
    #[should_panic(expected = "mismatched completion")]
    fn completion_action_rejects_mismatch() {
        let req = MemRequest {
            kind: ReqKind::Read,
            addr: Addr::new(0x40),
            from_isr: false,
        };
        completion_action(
            &BusOp::ReadWord,
            &Pending {
                req,
                kind: PendingKind::FlushWb,
            },
        );
    }

    #[test]
    fn snoop_node_without_wrapper_or_enabled_cam_misses() {
        let mut cache = DataCache::new(
            hmp_cache::CacheConfig { sets: 4, ways: 1 },
            hmp_cache::ProtocolKind::Mei,
        );
        let mut cam = SnoopLogic::new();
        cam.observe_local_fill(Addr::new(0x40));
        // Snoop logic disabled: CAM never consulted.
        let v = snoop_node(
            None,
            &mut cache,
            Some(&mut cam),
            false,
            &BusOp::ReadLine,
            Addr::new(0x40),
            Cycle::ZERO,
            &mut NullObserver,
        );
        assert_eq!(v, SnoopVerdict::Miss);
        // Enabled: conflict.
        let v = snoop_node(
            None,
            &mut cache,
            Some(&mut cam),
            true,
            &BusOp::ReadLine,
            Addr::new(0x40),
            Cycle::ZERO,
            &mut NullObserver,
        );
        assert_eq!(v, SnoopVerdict::CamConflict);
    }
}
