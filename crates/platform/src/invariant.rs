//! Live coherence-invariant checking.
//!
//! The golden-memory [`crate::CoherenceChecker`] detects incoherence only
//! when a stale value is *read* — possibly millions of cycles after the
//! protocol interaction that caused it. The [`InvariantObserver`] fails
//! fast instead: after every state-changing step it classifies the set of
//! caches holding a line against the structural invariants every snooping
//! protocol in the MOESI family must maintain:
//!
//! * **single writer** — at most one cache may hold a line with ownership
//!   guarantees ([`hmp_cache::LineState::Modified`] or
//!   [`hmp_cache::LineState::Exclusive`]);
//! * **no writer with sharers** — while such a copy exists, no other cache
//!   may hold the line valid at all;
//! * **single owner** — at most one cache may be the designated supplier
//!   ([`hmp_cache::LineState::Owned`]).
//!
//! The checker is streaming and allocation-free until an invariant
//! actually breaks: holders are collected into a fixed scratch buffer, and
//! only a violation materialises an owned [`InvariantViolation`] carrying
//! the offending holder set for the report.

use core::fmt;
use hmp_cache::LineState;
use hmp_mem::Addr;
use hmp_sim::Cycle;

/// Bus masters the fixed holder scratch can classify without allocating.
const MAX_HOLDERS: usize = 16;

/// Which structural invariant broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// Two or more caches hold the line with ownership guarantees
    /// (Modified/Exclusive) at once.
    MultipleWriters,
    /// One cache holds the line Modified/Exclusive while another still
    /// holds a valid copy — the Table 2 stale-sharer situation.
    WriterWithSharers,
    /// Two or more caches claim supplier responsibility (Owned).
    MultipleOwners,
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantKind::MultipleWriters => write!(f, "multiple writers"),
            InvariantKind::WriterWithSharers => write!(f, "writer with live sharers"),
            InvariantKind::MultipleOwners => write!(f, "multiple owners"),
        }
    }
}

/// A broken line invariant, with the holder set that broke it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Bus cycle of the state change that exposed the violation.
    pub at: Cycle,
    /// The offending line's base address.
    pub addr: Addr,
    /// Which invariant broke.
    pub kind: InvariantKind,
    /// Every cache holding the line valid, as `(master, state)`.
    pub holders: Vec<(usize, LineState)>,
    /// Distinct fabric segments the valid holders sit on, ascending.
    /// One entry on a flat bus; two or more mean the illegal state spans
    /// the snooping bridge, implicating its forwarding path.
    pub segments: Vec<usize>,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {}: {} at {}: ",
            self.at.as_u64(),
            self.kind,
            self.addr
        )?;
        for (i, (cpu, state)) in self.holders.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "cpu{cpu}={state:?}")?;
        }
        if self.segments.len() > 1 {
            write!(f, " (spans segments")?;
            for s in &self.segments {
                write!(f, " {s}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Classifies one line's holder set against the invariants.
///
/// Returns the first broken invariant in severity order, or `None` for a
/// legal configuration. Invalid entries are ignored, so callers may pass
/// unfiltered per-master probes.
pub fn classify(holders: &[(usize, LineState)]) -> Option<InvariantKind> {
    let mut writers = 0usize;
    let mut owners = 0usize;
    let mut valid = 0usize;
    for &(_, state) in holders {
        match state {
            LineState::Invalid => {}
            LineState::Modified | LineState::Exclusive => {
                writers += 1;
                valid += 1;
            }
            LineState::Owned => {
                owners += 1;
                valid += 1;
            }
            LineState::Shared => valid += 1,
        }
    }
    if writers >= 2 {
        Some(InvariantKind::MultipleWriters)
    } else if writers == 1 && valid >= 2 {
        Some(InvariantKind::WriterWithSharers)
    } else if owners >= 2 {
        Some(InvariantKind::MultipleOwners)
    } else {
        None
    }
}

/// Streams line-holder sets through [`classify`], latching the first
/// violation.
///
/// The scratch buffer is fixed at construction; checking allocates nothing
/// until a violation is found, at which point the holder set is copied
/// into the owned [`InvariantViolation`] once.
#[derive(Debug, Clone)]
pub struct InvariantObserver {
    scratch: [(usize, LineState); MAX_HOLDERS],
    violation: Option<InvariantViolation>,
    lines_checked: u64,
    /// Master → fabric segment; empty means "flat bus, all segment 0".
    segment_map: Vec<usize>,
}

impl InvariantObserver {
    /// A fresh checker with no latched violation.
    pub fn new() -> Self {
        InvariantObserver {
            scratch: [(0, LineState::Invalid); MAX_HOLDERS],
            violation: None,
            lines_checked: 0,
            segment_map: Vec::new(),
        }
    }

    /// Cross-run reset: drops the latched violation and the check count.
    /// The segment map is platform shape, not run state, and stays.
    pub fn reset(&mut self) {
        self.violation = None;
        self.lines_checked = 0;
    }

    /// Makes the checker segment-aware: latched violations will record
    /// which fabric segments the offending holders sit on, so a break
    /// that spans the snooping bridge is distinguishable from a local
    /// one. The default (no map) treats every master as segment 0.
    pub fn set_segment_map(&mut self, segment_map: &[usize]) {
        self.segment_map = segment_map.to_vec();
    }

    fn segment_of(&self, master: usize) -> usize {
        self.segment_map.get(master).copied().unwrap_or(0)
    }

    /// The first violation seen, if any. Once latched, later checks are
    /// skipped so the report points at the original break.
    pub fn violation(&self) -> Option<&InvariantViolation> {
        self.violation.as_ref()
    }

    /// Number of line-holder sets classified so far.
    pub fn lines_checked(&self) -> u64 {
        self.lines_checked
    }

    /// Checks one line's holder set (masters beyond the scratch capacity
    /// are ignored; real platforms have 2–4).
    pub fn check_line<I>(&mut self, at: Cycle, addr: Addr, holders: I)
    where
        I: IntoIterator<Item = (usize, LineState)>,
    {
        if self.violation.is_some() {
            return;
        }
        self.lines_checked += 1;
        let mut n = 0usize;
        for h in holders {
            if n == MAX_HOLDERS {
                break;
            }
            self.scratch[n] = h;
            n += 1;
        }
        if let Some(kind) = classify(&self.scratch[..n]) {
            let mut segments: Vec<usize> = self.scratch[..n]
                .iter()
                .filter(|&&(_, s)| s != LineState::Invalid)
                .map(|&(m, _)| self.segment_of(m))
                .collect();
            segments.sort_unstable();
            segments.dedup();
            self.violation = Some(InvariantViolation {
                at,
                addr: addr.line_base(),
                kind,
                holders: self.scratch[..n].to_vec(),
                segments,
            });
        }
    }
}

impl Default for InvariantObserver {
    fn default() -> Self {
        InvariantObserver::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LineState::{Exclusive, Invalid, Modified, Owned, Shared};

    #[test]
    fn legal_configurations_classify_clean() {
        let cases: &[&[(usize, LineState)]] = &[
            &[],
            &[(0, Invalid)],
            &[(0, Modified)],
            &[(0, Exclusive)],
            &[(0, Shared), (1, Shared)],
            &[(0, Owned), (1, Shared), (2, Shared)],
            &[(0, Modified), (1, Invalid)],
        ];
        for holders in cases {
            assert_eq!(classify(holders), None, "{holders:?}");
        }
    }

    #[test]
    fn broken_configurations_classify_by_kind() {
        let cases: &[(&[(usize, LineState)], InvariantKind)] = &[
            (
                &[(0, Modified), (1, Modified)],
                InvariantKind::MultipleWriters,
            ),
            (
                &[(0, Exclusive), (1, Modified)],
                InvariantKind::MultipleWriters,
            ),
            (
                &[(0, Modified), (1, Shared)],
                InvariantKind::WriterWithSharers,
            ),
            (
                &[(0, Exclusive), (1, Shared)],
                InvariantKind::WriterWithSharers,
            ),
            (
                &[(0, Modified), (1, Owned)],
                InvariantKind::WriterWithSharers,
            ),
            (&[(0, Owned), (1, Owned)], InvariantKind::MultipleOwners),
        ];
        for &(holders, want) in cases {
            assert_eq!(classify(holders), Some(want), "{holders:?}");
        }
    }

    #[test]
    fn observer_latches_first_violation() {
        let mut obs = InvariantObserver::new();
        obs.check_line(Cycle::new(5), Addr::new(0x40), [(0, Shared), (1, Shared)]);
        assert!(obs.violation().is_none());
        obs.check_line(
            Cycle::new(9),
            Addr::new(0x84),
            [(0, Exclusive), (1, Shared)],
        );
        let v = obs.violation().expect("latched").clone();
        assert_eq!(v.kind, InvariantKind::WriterWithSharers);
        assert_eq!(v.at, Cycle::new(9));
        assert_eq!(v.addr, Addr::new(0x84).line_base());
        assert_eq!(v.holders, vec![(0, Exclusive), (1, Shared)]);
        // A later, different violation does not overwrite the first.
        obs.check_line(
            Cycle::new(11),
            Addr::new(0x100),
            [(0, Modified), (1, Modified)],
        );
        assert_eq!(obs.violation(), Some(&v));
        assert_eq!(obs.lines_checked(), 2, "latched checker stops counting");
    }

    #[test]
    fn violation_display_names_holders() {
        let mut obs = InvariantObserver::new();
        obs.check_line(Cycle::new(7), Addr::new(0x40), [(0, Modified), (1, Shared)]);
        let txt = obs.violation().unwrap().to_string();
        assert!(txt.contains("cycle 7"), "{txt}");
        assert!(txt.contains("writer with live sharers"), "{txt}");
        assert!(txt.contains("cpu0=Modified"), "{txt}");
        assert!(txt.contains("cpu1=Shared"), "{txt}");
    }

    #[test]
    fn segment_map_tags_bridge_spanning_violations() {
        // Masters 0/1 on segment 0, masters 2/3 on segment 1.
        let mut obs = InvariantObserver::new();
        obs.set_segment_map(&[0, 0, 1, 1]);
        obs.check_line(Cycle::new(3), Addr::new(0x40), [(0, Modified), (3, Shared)]);
        let v = obs.violation().expect("latched");
        assert_eq!(v.segments, vec![0, 1], "holders span the bridge");
        assert!(v.to_string().contains("spans segments 0 1"), "{v}");
        // A same-segment break records a single segment and no note.
        let mut obs = InvariantObserver::new();
        obs.set_segment_map(&[0, 0, 1, 1]);
        obs.check_line(Cycle::new(4), Addr::new(0x80), [(2, Owned), (3, Owned)]);
        let v = obs.violation().expect("latched");
        assert_eq!(v.segments, vec![1]);
        assert!(!v.to_string().contains("spans"), "{v}");
        // Without a map every master is segment 0 (flat-bus default),
        // and Invalid holders contribute no segment.
        let mut obs = InvariantObserver::new();
        obs.check_line(
            Cycle::new(5),
            Addr::new(0xC0),
            [(0, Modified), (1, Invalid), (2, Modified)],
        );
        assert_eq!(obs.violation().unwrap().segments, vec![0]);
    }

    #[test]
    fn scratch_overflow_is_truncated_not_unsafe() {
        let mut obs = InvariantObserver::new();
        let holders = (0..MAX_HOLDERS + 8).map(|i| (i, Shared));
        obs.check_line(Cycle::new(1), Addr::new(0x40), holders);
        assert!(obs.violation().is_none(), "shared-only stays legal");
        assert_eq!(obs.lines_checked(), 1);
    }
}
