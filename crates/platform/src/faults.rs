//! The platform-side fault engine: applies a [`FaultPlan`] to the running
//! system, one component boundary at a time.
//!
//! The schedule itself ([`hmp_sim::FaultPlan`]) is plain data; this module
//! owns the *mechanics* — what each [`FaultKind`] does to the arbiter, the
//! snoop logic, the wrapper or the cache when its cycle comes up. Faults
//! are **arm state**: firing one mutates component state (a grant
//! blackout counter, an nFIQ mask, an armed ARTRY kill) and the ordinary
//! cycle loop then plays the consequence out. That is what keeps the two
//! kernels equivalent — the fast-forward planner treats every fire cycle
//! as an event and steps it, so both kernels observe each fault at the
//! same cycle with the same component state.
//!
//! Everything here is gated behind `System::faults`
//! (`Option<Box<FaultEngine>>`): a fault-free run never allocates the
//! engine and pays one pointer-null check per cycle, keeping its
//! [`crate::RunResult`] byte-identical to a build without this module.

use crate::system::System;
use hmp_mem::Addr;
use hmp_sim::{FaultKind, FaultPlan, Observer, SimEvent};

/// Preallocated per-component fault state, armed by fired [`FaultPlan`]
/// entries and consumed by the cycle loop.
///
/// All vectors are sized at construction (one slot per node/master), so a
/// run with faults armed stays allocation-free in steady state.
pub(crate) struct FaultEngine {
    /// The remaining schedule, consumed in cycle order.
    pub(crate) plan: FaultPlan,
    /// Per node: bus cycle until which the nFIQ line is suppressed
    /// (exclusive); `u64::MAX` models a permanently lost interrupt.
    pub(crate) nfiq_mask_until: Vec<u64>,
    /// Per node: forced SHARED-signal override, consumed by that node's
    /// next line fill (a corrupted/suppressed shared signal at the
    /// wrapper boundary).
    pub(crate) shared_force: Vec<Option<bool>>,
    /// Per master: armed spurious ARTRY kills, consumed one per grant.
    spurious_retries: Vec<u32>,
    /// Per master: wedged in permanent retry — every non-drain grant is
    /// killed until the recovery policy quarantines it.
    wedged: Vec<bool>,
    /// Faults fired so far.
    pub(crate) fired: u64,
}

impl FaultEngine {
    /// Builds an engine for `masters` nodes with every slot idle.
    pub(crate) fn new(plan: FaultPlan, masters: usize) -> Self {
        FaultEngine {
            plan,
            nfiq_mask_until: vec![0; masters],
            shared_force: vec![None; masters],
            spurious_retries: vec![0; masters],
            wedged: vec![false; masters],
            fired: 0,
        }
    }

    /// Whether `node`'s nFIQ line is suppressed at bus cycle `now`.
    pub(crate) fn nfiq_masked(&self, node: usize, now: u64) -> bool {
        now < self.nfiq_mask_until[node]
    }
}

impl<O: Observer> System<O> {
    /// Fires every fault due at the current cycle, mutating the matching
    /// component boundary. Called once per *stepped* cycle, right after
    /// the clock tick, by both kernels.
    pub(crate) fn fire_faults(&mut self) {
        let now = self.now.as_u64();
        match &self.faults {
            Some(e) if e.plan.next_fire_at().is_some_and(|t| t <= now) => {}
            _ => return,
        }
        let mut engine = self.faults.take().expect("checked above");
        while let Some(spec) = engine.plan.pop_due(now) {
            engine.fired += 1;
            let target = (spec.target as usize).min(self.nodes.len() - 1);
            self.obs.on_event(
                self.now,
                SimEvent::FaultInjected {
                    kind: spec.kind,
                    target,
                    addr: spec.addr.unwrap_or(0),
                },
            );
            match spec.kind {
                // Arbiter boundary: the grant line goes dead for a window
                // (a dropped grant is just a short delay).
                FaultKind::GrantDrop | FaultKind::GrantDelay => {
                    self.bus.block_grants(spec.param.max(1));
                }
                // Arbiter boundary: the next `param` non-drain grants of
                // the target master are killed with a spurious ARTRY.
                FaultKind::SpuriousRetry => {
                    let n = spec.param.clamp(1, u64::from(u32::MAX)) as u32;
                    engine.spurious_retries[target] =
                        engine.spurious_retries[target].saturating_add(n);
                }
                // Wrapper/interrupt boundary: the nFIQ line is suppressed.
                FaultKind::NfiqDelay => {
                    let until = now.saturating_add(spec.param.max(1));
                    let slot = &mut engine.nfiq_mask_until[target];
                    *slot = (*slot).max(until);
                }
                FaultKind::NfiqLost => engine.nfiq_mask_until[target] = u64::MAX,
                // Snoop-logic boundary: the TAG CAM silently forgets one
                // line it was protecting.
                FaultKind::CamDesync => {
                    if let (Some(addr), Some(cam)) = (spec.addr, self.nodes[target].cam.as_mut()) {
                        cam.desync_forget(Addr::new(addr as u32));
                    }
                }
                // Wrapper boundary: the target's next line fill sees a
                // forced SHARED signal instead of the snooped one.
                FaultKind::SharedCorrupt => {
                    engine.shared_force[target] = Some(spec.param != 0);
                }
                // Arbiter boundary: every future non-drain grant is
                // killed — a master wedged in permanent retry.
                FaultKind::WedgedMaster => engine.wedged[target] = true,
                // Cache boundary: one line's state bits flip.
                FaultKind::LineStateCorrupt => {
                    if let Some(addr) = spec.addr {
                        let a = Addr::new(addr as u32);
                        if self.nodes[target].cache.corrupt_line_state(a).is_some() {
                            self.check_line_invariants(a);
                        }
                    }
                }
            }
        }
        self.faults = Some(engine);
        // Fired faults mutate arbitrary component state (nFIQ masks, CAM
        // contents, cache lines); re-derive every node's event horizon.
        self.sched.mark_all_dirty();
        self.bus_sched_dirty = true;
    }

    /// Whether an armed fault kills this granted transaction with a
    /// spurious ARTRY (consuming one armed kill, unless the master is
    /// wedged — a wedged master retries forever). Drains are exempt so no
    /// dirty data is ever lost to an injected retry.
    pub(crate) fn fault_kills_grant(&mut self, master: usize, is_drain: bool) -> bool {
        let Some(engine) = &mut self.faults else {
            return false;
        };
        if is_drain {
            return false;
        }
        if engine.wedged[master] {
            return true;
        }
        if engine.spurious_retries[master] > 0 {
            engine.spurious_retries[master] -= 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use crate::{layout, CpuSpec, PlatformSpec, RunOutcome, RunResult, Strategy, System};
    use hmp_bus::RecoveryPolicy;
    use hmp_cache::ProtocolKind;
    use hmp_cpu::{LockKind, LockLayout, Program, ProgramBuilder};
    use hmp_sim::{FaultKind, FaultPlan, FaultSpec, Kernel};

    fn two_mesi_spec() -> (PlatformSpec, crate::MemLayout) {
        let (lay, map) = layout(2, Strategy::Proposed, LockKind::Turn, false);
        let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 2);
        let spec = PlatformSpec::new(
            vec![
                CpuSpec::generic("P0", ProtocolKind::Mesi),
                CpuSpec::generic("P1", ProtocolKind::Mesi),
            ],
            map,
            lock,
        );
        (spec, lay)
    }

    fn ppc_arm_spec() -> (PlatformSpec, crate::MemLayout) {
        let (lay, map) = layout(2, Strategy::Proposed, LockKind::Turn, false);
        let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 2);
        let spec = PlatformSpec::new(vec![CpuSpec::powerpc755(), CpuSpec::arm920t()], map, lock);
        (spec, lay)
    }

    /// Runs the spec under both kernels, asserts the whole results agree,
    /// and returns one of them.
    fn run_both(spec: &PlatformSpec, programs: Vec<Program>, max: u64) -> RunResult {
        let mut ff = System::new(spec, programs.clone());
        ff.set_kernel(Kernel::FastForward);
        let ff_result = ff.run(max);
        let mut step = System::new(spec, programs);
        step.set_kernel(Kernel::Step);
        let step_result = step.run(max);
        assert_eq!(ff_result, step_result, "kernels diverged under faults");
        ff_result
    }

    #[test]
    fn spurious_retries_absorbed_and_counted() {
        let (mut spec, lay) = two_mesi_spec();
        let a = lay.shared_base;
        spec.faults = Some(FaultPlan::from_specs(vec![FaultSpec::new(
            1,
            FaultKind::SpuriousRetry,
            0,
            2,
        )]));
        let p0 = ProgramBuilder::new().read(a).build();
        let p1 = ProgramBuilder::new().delay(80).read(a).build();
        let r = run_both(&spec, vec![p0, p1], 50_000);
        assert_eq!(r.outcome, RunOutcome::Completed, "{r}");
        assert!(r.violations.is_empty(), "{r}");
        assert_eq!(r.faults_injected, 1);
        assert_eq!(r.stats.get("bus.retry.injected"), 2, "{r}");
    }

    #[test]
    fn grant_blackout_delays_but_absorbs() {
        let (spec, lay) = two_mesi_spec();
        let a = lay.shared_base;
        let mk = || {
            (
                ProgramBuilder::new().read(a).build(),
                ProgramBuilder::new().delay(40).read(a).build(),
            )
        };
        let (p0, p1) = mk();
        let clean = run_both(&spec, vec![p0, p1], 50_000);
        let mut faulty_spec = spec.clone();
        faulty_spec.faults = Some(FaultPlan::from_specs(vec![FaultSpec::new(
            1,
            FaultKind::GrantDrop,
            0,
            64,
        )]));
        let (p0, p1) = mk();
        let faulty = run_both(&faulty_spec, vec![p0, p1], 50_000);
        assert_eq!(faulty.outcome, RunOutcome::Completed, "{faulty}");
        assert!(faulty.violations.is_empty());
        assert!(
            faulty.cycles_u64() > clean.cycles_u64() + 32,
            "blackout must cost bus time: {} vs {}",
            faulty.cycles_u64(),
            clean.cycles_u64()
        );
    }

    #[test]
    fn wedged_master_is_quarantined_into_degraded() {
        let (mut spec, lay) = two_mesi_spec();
        let a = lay.shared_base;
        spec.faults = Some(FaultPlan::from_specs(vec![FaultSpec::new(
            1,
            FaultKind::WedgedMaster,
            0,
            0,
        )]));
        spec.recovery = RecoveryPolicy {
            retry_budget: 3,
            escalation_backoff: 16,
            quarantine_after: 6,
        };
        let p0 = ProgramBuilder::new().read(a).build();
        let p1 = ProgramBuilder::new().delay(30).read(a.add_lines(1)).build();
        let r = run_both(&spec, vec![p0, p1], 200_000);
        assert_eq!(
            r.outcome,
            RunOutcome::Degraded {
                quarantined: 1,
                faults_absorbed: 1
            },
            "{r}"
        );
        assert!(!r.is_clean_completion());
        assert!(r.stats.get("bus.retry.injected") >= 6, "{r}");
        // The healthy CPU finished its read despite the wedged peer.
        assert_eq!(r.cpus[1].reads, 1);
    }

    #[test]
    fn nfiq_lost_stalls_without_recovery_and_degrades_with_it() {
        let (mut spec, lay) = ppc_arm_spec();
        spec.watchdog_window = 2_000;
        let a = lay.shared_base;
        // ARM (node 1) dirties the line; the lost nFIQ means its drain ISR
        // never runs, so the PowerPC's read retries on the CAM forever.
        let arm = ProgramBuilder::new().write(a, 123).build();
        let ppc = ProgramBuilder::new().delay(300).read(a).build();
        spec.faults = Some(FaultPlan::from_specs(vec![FaultSpec::new(
            150,
            FaultKind::NfiqLost,
            1,
            0,
        )]));
        let stalled = run_both(&spec, vec![ppc.clone(), arm.clone()], 200_000);
        assert_eq!(stalled.outcome, RunOutcome::Stalled, "{stalled}");
        assert!(stalled.hang.is_some());

        spec.recovery = RecoveryPolicy {
            retry_budget: 4,
            escalation_backoff: 8,
            quarantine_after: 12,
        };
        let degraded = run_both(&spec, vec![ppc, arm], 200_000);
        assert!(
            matches!(
                degraded.outcome,
                RunOutcome::Degraded { quarantined: 1, .. }
            ),
            "{degraded}"
        );
    }

    #[test]
    fn nfiq_delay_is_absorbed() {
        let (mut spec, lay) = ppc_arm_spec();
        let a = lay.shared_base;
        let arm = ProgramBuilder::new().write(a, 9).build();
        let ppc = ProgramBuilder::new().delay(300).read(a).build();
        spec.faults = Some(FaultPlan::from_specs(vec![FaultSpec::new(
            150,
            FaultKind::NfiqDelay,
            1,
            800,
        )]));
        let r = run_both(&spec, vec![ppc, arm], 200_000);
        assert!(r.is_clean_completion(), "delayed nFIQ must recover: {r}");
        assert_eq!(r.faults_injected, 1);
        assert!(r.stats.get("bus.retry.cam") >= 1, "{r}");
    }

    #[test]
    fn cam_desync_escapes_to_golden_checker() {
        let (mut spec, lay) = ppc_arm_spec();
        let a = lay.shared_base;
        let arm = ProgramBuilder::new().write(a, 77).build();
        let ppc = ProgramBuilder::new().delay(400).read(a).build();
        spec.faults = Some(FaultPlan::from_specs(vec![FaultSpec::new(
            200,
            FaultKind::CamDesync,
            1,
            0,
        )
        .at_addr(u64::from(a.as_u32()))]));
        let r = run_both(&spec, vec![ppc, arm], 200_000);
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert!(
            !r.violations.is_empty(),
            "forgotten CAM entry must yield a stale read: {r}"
        );
        assert_eq!(r.violations[0].expected, 77);
    }

    #[test]
    fn shared_corrupt_trips_invariant_checker() {
        let (mut spec, lay) = two_mesi_spec();
        spec.check_invariants = true;
        let a = lay.shared_base;
        // P0 fills first; P1's later fill sees a corrupted (suppressed)
        // SHARED signal and installs Exclusive next to P0's Shared copy.
        let p0 = ProgramBuilder::new().read(a).build();
        let p1 = ProgramBuilder::new().delay(60).read(a).build();
        spec.faults = Some(FaultPlan::from_specs(vec![FaultSpec::new(
            1,
            FaultKind::SharedCorrupt,
            1,
            0,
        )]));
        let r = run_both(&spec, vec![p0, p1], 50_000);
        assert_eq!(r.outcome, RunOutcome::InvariantViolation, "{r}");
        assert!(r.invariant.is_some());
    }

    #[test]
    fn line_state_corrupt_escapes_to_golden_checker() {
        let (mut spec, lay) = two_mesi_spec();
        spec.check_invariants = true;
        let a = lay.shared_base;
        // P0 dirties the line (Modified); the corruption silently demotes
        // it to Shared, so P1's read fills stale data from memory.
        let p0 = ProgramBuilder::new().write(a, 7).build();
        let p1 = ProgramBuilder::new().delay(200).read(a).build();
        spec.faults = Some(FaultPlan::from_specs(vec![FaultSpec::new(
            100,
            FaultKind::LineStateCorrupt,
            0,
            0,
        )
        .at_addr(u64::from(a.as_u32()))]));
        let r = run_both(&spec, vec![p0, p1], 50_000);
        assert!(
            !r.violations.is_empty(),
            "lost dirty state must yield a stale read: {r}"
        );
        assert_eq!(r.violations[0].expected, 7);
    }

    #[test]
    fn unfired_plan_leaves_result_byte_identical() {
        let (spec, lay) = two_mesi_spec();
        let a = lay.shared_base;
        let mk = || {
            (
                ProgramBuilder::new().read(a).write(a, 3).build(),
                ProgramBuilder::new().delay(70).read(a).build(),
            )
        };
        let (p0, p1) = mk();
        let baseline = run_both(&spec, vec![p0, p1], 50_000);
        let mut armed = spec.clone();
        // Scheduled far past the run's end: the engine exists but never
        // fires, and the result must not change in any field.
        armed.faults = Some(FaultPlan::from_specs(vec![FaultSpec::new(
            1_000_000_000,
            FaultKind::GrantDrop,
            0,
            10,
        )]));
        let (p0, p1) = mk();
        let with_engine = run_both(&armed, vec![p0, p1], 50_000);
        assert_eq!(baseline, with_engine);
    }
}
