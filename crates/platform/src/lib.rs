//! # hmp-platform — system assembly and the cycle loop
//!
//! This crate wires everything together into the paper's evaluation
//! platform: CPUs (`hmp-cpu`) behind wrappers (`hmp-core`) on a shared bus
//! (`hmp-bus`) with snooping caches (`hmp-cache`), TAG-CAM snoop logic for
//! non-coherent processors, a latency-modelled memory (`hmp-mem`), and an
//! optional golden-memory [`CoherenceChecker`] that turns stale reads into
//! reportable violations.
//!
//! * [`PlatformSpec`] / [`CpuSpec`] describe the hardware; [`layout`]
//!   provides the standard address map (private windows, shared window,
//!   lock window) with the shared window cacheable or uncached depending
//!   on the evaluated [`Strategy`];
//! * [`System`] owns all state and steps the platform one **bus cycle** at
//!   a time (each CPU ticks `clock_mult` core cycles per bus cycle);
//! * [`System::run`] drives the simulation to completion, to a watchdog
//!   stall (the hardware deadlock of paper Figure 4 reports as
//!   [`RunOutcome::Stalled`]), or to a cycle budget;
//! * [`presets`] builds the paper's named platforms: PowerPC755 + ARM920T
//!   (PF2, Figure 3), Intel486 + PowerPC755 (PF3, Figure 2), and generic
//!   protocol pairings for all of §2's combinations.
//!
//! # Examples
//!
//! See `examples/quickstart.rs` at the workspace root for an end-to-end
//! run; the unit tests of [`System`] exercise single transactions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
mod checker;
pub mod coherence;
mod config;
mod faults;
mod invariant;
pub mod presets;
mod report;
mod result;
mod system;
pub mod topology;

pub use checker::{CoherenceChecker, Violation};
pub use coherence::{AddressPhase, CompletionAction, LineData, Pending, PendingKind, SnoopVerdict};
pub use config::{layout, CpuSpec, MemLayout, PlatformSpec, Strategy, WrapperMode};
pub use invariant::{classify, InvariantKind, InvariantObserver, InvariantViolation};
pub use report::{CpuReport, Report};
pub use result::{HangReport, RunOutcome, RunResult};
pub use system::System;
pub use topology::{Topology, TopologyMaster};

pub use hmp_sim::Kernel;
