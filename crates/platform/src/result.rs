//! Simulation run results.

use crate::Violation;
use core::fmt;
use hmp_bus::BusStats;
use hmp_cpu::CpuCounters;
use hmp_sim::{Cycle, Stats};

/// Why the run loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every program halted and all queued bus work drained.
    Completed,
    /// The watchdog saw no forward progress for its full window — the
    /// hardware deadlock of paper Figure 4 reports this way.
    Stalled,
    /// The cycle budget ran out first.
    CycleLimit,
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Completed => write!(f, "completed"),
            RunOutcome::Stalled => write!(f, "stalled (deadlock)"),
            RunOutcome::CycleLimit => write!(f, "cycle limit reached"),
        }
    }
}

/// Everything a finished run reports.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Bus cycles elapsed — the paper's *execution time* metric.
    pub cycles: Cycle,
    /// Bus activity counters.
    pub bus: BusStats,
    /// Per-CPU activity counters, in master order.
    pub cpus: Vec<CpuCounters>,
    /// Fine-grained platform counters (`cpu0.read_hit`,
    /// `bus.retry.cam`, …).
    pub stats: Stats,
    /// Stale reads the checker recorded (empty when coherent or the
    /// checker was off).
    pub violations: Vec<Violation>,
}

impl RunResult {
    /// `true` if the run completed with no coherence violations.
    pub fn is_clean_completion(&self) -> bool {
        self.outcome == RunOutcome::Completed && self.violations.is_empty()
    }

    /// Execution time as a plain cycle count.
    pub fn cycles_u64(&self) -> u64 {
        self.cycles.as_u64()
    }
}

impl fmt::Display for RunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "outcome:    {}", self.outcome)?;
        writeln!(f, "cycles:     {}", self.cycles.as_u64())?;
        writeln!(
            f,
            "bus:        {} grants, {} retries, {} drains, {} data cycles",
            self.bus.grants, self.bus.retries, self.bus.drains, self.bus.data_cycles
        )?;
        for (i, c) in self.cpus.iter().enumerate() {
            writeln!(
                f,
                "cpu{i}:       {} reads, {} writes, {} maint, {} lock-ops, {} ISRs",
                c.reads, c.writes, c.maintenance, c.lock_mem_ops, c.isr_entries
            )?;
        }
        if !self.violations.is_empty() {
            writeln!(f, "VIOLATIONS: {}", self.violations.len())?;
            for v in self.violations.iter().take(5) {
                writeln!(f, "  {v}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(outcome: RunOutcome) -> RunResult {
        RunResult {
            outcome,
            cycles: Cycle::new(100),
            bus: BusStats::default(),
            cpus: vec![CpuCounters::default(); 2],
            stats: Stats::new(),
            violations: Vec::new(),
        }
    }

    #[test]
    fn clean_completion() {
        assert!(result(RunOutcome::Completed).is_clean_completion());
        assert!(!result(RunOutcome::Stalled).is_clean_completion());
        assert!(!result(RunOutcome::CycleLimit).is_clean_completion());
    }

    #[test]
    fn outcome_display() {
        assert_eq!(RunOutcome::Completed.to_string(), "completed");
        assert!(RunOutcome::Stalled.to_string().contains("deadlock"));
        assert!(RunOutcome::CycleLimit.to_string().contains("limit"));
    }

    #[test]
    fn result_display_mentions_cpus() {
        let r = result(RunOutcome::Completed);
        let s = r.to_string();
        assert!(s.contains("cpu0"));
        assert!(s.contains("cpu1"));
        assert!(s.contains("cycles:     100"));
        assert_eq!(r.cycles_u64(), 100);
    }
}
