//! Simulation run results.

use crate::{InvariantViolation, Violation};
use core::fmt;
use hmp_bus::BusStats;
use hmp_cpu::CpuCounters;
use hmp_sim::{Cycle, KernelProfile, MetricsSnapshot, Span, Stats, TimeSeriesSnapshot};

/// Why the run loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every program halted and all queued bus work drained.
    Completed,
    /// The watchdog saw no forward progress for its full window — the
    /// hardware deadlock of paper Figure 4 reports this way.
    Stalled,
    /// The cycle budget ran out first.
    CycleLimit,
    /// The live invariant checker caught a broken line invariant and the
    /// run failed fast (see [`RunResult::invariant`]).
    InvariantViolation,
    /// Recovery escalation quarantined one or more wedged masters and the
    /// surviving platform ran to completion — the fault-injection
    /// alternative to hanging into [`RunOutcome::Stalled`].
    Degraded {
        /// Masters the recovery policy quarantined.
        quarantined: u32,
        /// Faults injected up to the point the run wound down.
        faults_absorbed: u64,
    },
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Completed => write!(f, "completed"),
            RunOutcome::Stalled => write!(f, "stalled (deadlock)"),
            RunOutcome::CycleLimit => write!(f, "cycle limit reached"),
            RunOutcome::InvariantViolation => write!(f, "invariant violation"),
            RunOutcome::Degraded {
                quarantined,
                faults_absorbed,
            } => write!(
                f,
                "degraded ({quarantined} master(s) quarantined, \
                 {faults_absorbed} fault(s) absorbed)"
            ),
        }
    }
}

/// Post-mortem context for a watchdog stall: what the bus was doing when
/// progress stopped.
///
/// Built from the span layer when the platform runs with metrics enabled;
/// without metrics only the timing fields are populated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HangReport {
    /// Bus cycle at which the watchdog tripped.
    pub stalled_at: Cycle,
    /// The watchdog window that elapsed without progress.
    pub window: Cycle,
    /// The most recently completed spans, oldest first.
    pub last_spans: Vec<Span>,
    /// Every span still open — the transactions wedging each other.
    pub open_spans: Vec<Span>,
}

impl fmt::Display for HangReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "watchdog tripped at cycle {} after {} cycles without progress",
            self.stalled_at.as_u64(),
            self.window.as_u64()
        )?;
        if !self.open_spans.is_empty() {
            writeln!(f, "open transactions:")?;
            for s in &self.open_spans {
                writeln!(f, "  {s}")?;
            }
        }
        if !self.last_spans.is_empty() {
            writeln!(f, "last completed transactions:")?;
            for s in &self.last_spans {
                writeln!(f, "  {s}")?;
            }
        }
        Ok(())
    }
}

/// Everything a finished run reports.
///
/// `PartialEq` compares every *deterministic* field — outcome, cycles,
/// bus stats, CPU counters, platform counters, violations, metrics and
/// timeseries snapshots, hang and invariant reports — which is exactly
/// what the kernel-equivalence suite pins: two kernels agree only if
/// their whole simulated results agree. The one exclusion is
/// [`RunResult::profile`]: wall-clock timing and the step/warp mix are
/// kernel- and machine-dependent by construction, so the manual
/// `PartialEq` below skips that field.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Bus cycles elapsed — the paper's *execution time* metric.
    pub cycles: Cycle,
    /// Bus activity counters.
    pub bus: BusStats,
    /// Per-CPU activity counters, in master order.
    pub cpus: Vec<CpuCounters>,
    /// Fine-grained platform counters (`cpu0.read_hit`,
    /// `bus.retry.cam`, …).
    pub stats: Stats,
    /// Stale reads the checker recorded (empty when coherent or the
    /// checker was off).
    pub violations: Vec<Violation>,
    /// Spans, histograms and derived counters (when the platform ran with
    /// `span_capacity > 0`).
    pub metrics: Option<MetricsSnapshot>,
    /// Span-level context for a [`RunOutcome::Stalled`] run.
    pub hang: Option<HangReport>,
    /// The broken line invariant behind a
    /// [`RunOutcome::InvariantViolation`] run.
    pub invariant: Option<InvariantViolation>,
    /// Faults the platform's fault engine injected (0 for fault-free
    /// runs, which carry no engine at all).
    pub faults_injected: u64,
    /// Windowed telemetry series (when the platform ran with a
    /// [`hmp_sim::TimeSeriesSpec`]). Fully deterministic — both kernels
    /// must produce the identical snapshot.
    pub timeseries: Option<TimeSeriesSnapshot>,
    /// Kernel self-profile: wall-time split and step mix (when the spec
    /// armed profiling or telemetry). **Excluded** from `PartialEq`.
    pub profile: Option<KernelProfile>,
}

impl PartialEq for RunResult {
    fn eq(&self, other: &Self) -> bool {
        self.outcome == other.outcome
            && self.cycles == other.cycles
            && self.bus == other.bus
            && self.cpus == other.cpus
            && self.stats == other.stats
            && self.violations == other.violations
            && self.metrics == other.metrics
            && self.hang == other.hang
            && self.invariant == other.invariant
            && self.faults_injected == other.faults_injected
            && self.timeseries == other.timeseries
        // `profile` deliberately omitted: wall time and warp mix differ
        // across kernels and machines.
    }
}

impl RunResult {
    /// `true` if the run completed with no coherence violations.
    pub fn is_clean_completion(&self) -> bool {
        self.outcome == RunOutcome::Completed
            && self.violations.is_empty()
            && self.invariant.is_none()
    }

    /// Execution time as a plain cycle count.
    pub fn cycles_u64(&self) -> u64 {
        self.cycles.as_u64()
    }
}

impl fmt::Display for RunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "outcome:    {}", self.outcome)?;
        writeln!(f, "cycles:     {}", self.cycles.as_u64())?;
        writeln!(
            f,
            "bus:        {} grants, {} retries, {} drains, {} data cycles",
            self.bus.grants, self.bus.retries, self.bus.drains, self.bus.data_cycles
        )?;
        for (i, c) in self.cpus.iter().enumerate() {
            writeln!(
                f,
                "cpu{i}:       {} reads, {} writes, {} maint, {} lock-ops, {} ISRs",
                c.reads, c.writes, c.maintenance, c.lock_mem_ops, c.isr_entries
            )?;
        }
        if !self.violations.is_empty() {
            writeln!(f, "VIOLATIONS: {}", self.violations.len())?;
            for v in self.violations.iter().take(5) {
                writeln!(f, "  {v}")?;
            }
        }
        if let Some(v) = &self.invariant {
            writeln!(f, "INVARIANT:  {v}")?;
        }
        if self.faults_injected > 0 {
            writeln!(f, "faults:     {} injected", self.faults_injected)?;
        }
        if let Some(h) = &self.hang {
            write!(f, "{h}")?;
        }
        if let Some(m) = &self.metrics {
            writeln!(f, "{m}")?;
        }
        if let Some(p) = &self.profile {
            if p.wall_ns > 0 {
                writeln!(
                    f,
                    "kernel:     {} — {:.1} Mcyc/s (plan {}us, warp {}us, step {}us, \
                     cpu-only {}us; {} warped, {} full, {} cpu-only)",
                    p.kernel,
                    p.cycles_per_sec / 1e6,
                    p.plan_ns / 1000,
                    p.warp_ns / 1000,
                    p.step_ns / 1000,
                    p.cpu_only_ns / 1000,
                    p.warped_cycles,
                    p.full_steps,
                    p.cpu_only_steps,
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InvariantKind;
    use hmp_cache::LineState;
    use hmp_mem::Addr;

    fn result(outcome: RunOutcome) -> RunResult {
        RunResult {
            outcome,
            cycles: Cycle::new(100),
            bus: BusStats::default(),
            cpus: vec![CpuCounters::default(); 2],
            stats: Stats::new(),
            violations: Vec::new(),
            metrics: None,
            hang: None,
            invariant: None,
            faults_injected: 0,
            timeseries: None,
            profile: None,
        }
    }

    #[test]
    fn profile_is_excluded_from_equality() {
        let a = result(RunOutcome::Completed);
        let mut b = result(RunOutcome::Completed);
        b.profile = Some(KernelProfile {
            kernel: hmp_sim::Kernel::FastForward,
            wall_ns: 12345,
            ..Default::default()
        });
        assert_eq!(a, b, "profile must not take part in result equality");
        let mut c = result(RunOutcome::Completed);
        c.timeseries = Some(TimeSeriesSnapshot {
            window: 8192,
            scale: 0,
            end_cycle: 100,
            masters: 2,
            segments: 1,
            busy: vec![1],
            retries: vec![0],
            quarantines: vec![0],
            bridge_crossings: vec![0],
            completions: vec![0],
            grants: vec![vec![1], vec![0]],
            occupancy: vec![vec![1]],
        });
        assert_ne!(a, c, "timeseries is a compared field");
    }

    #[test]
    fn clean_completion() {
        assert!(result(RunOutcome::Completed).is_clean_completion());
        assert!(!result(RunOutcome::Stalled).is_clean_completion());
        assert!(!result(RunOutcome::CycleLimit).is_clean_completion());
        assert!(!result(RunOutcome::InvariantViolation).is_clean_completion());
        assert!(
            !result(RunOutcome::Degraded {
                quarantined: 1,
                faults_absorbed: 3
            })
            .is_clean_completion(),
            "a degraded survival is not a clean completion"
        );
    }

    #[test]
    fn latched_invariant_taints_completion() {
        let mut r = result(RunOutcome::Completed);
        r.invariant = Some(InvariantViolation {
            at: Cycle::new(9),
            addr: Addr::new(0x40),
            kind: InvariantKind::WriterWithSharers,
            holders: vec![(0, LineState::Exclusive), (1, LineState::Shared)],
            segments: vec![0],
        });
        assert!(!r.is_clean_completion());
        let s = r.to_string();
        assert!(s.contains("INVARIANT"), "{s}");
        assert!(s.contains("writer with live sharers"), "{s}");
    }

    #[test]
    fn outcome_display() {
        assert_eq!(RunOutcome::Completed.to_string(), "completed");
        assert!(RunOutcome::Stalled.to_string().contains("deadlock"));
        assert!(RunOutcome::CycleLimit.to_string().contains("limit"));
        assert!(RunOutcome::InvariantViolation
            .to_string()
            .contains("invariant"));
        let d = RunOutcome::Degraded {
            quarantined: 2,
            faults_absorbed: 5,
        }
        .to_string();
        assert!(d.contains("degraded"), "{d}");
        assert!(d.contains("2 master(s)"), "{d}");
        assert!(d.contains("5 fault(s)"), "{d}");
    }

    #[test]
    fn faults_injected_render_in_result() {
        let mut r = result(RunOutcome::Completed);
        assert!(!r.to_string().contains("faults:"));
        r.faults_injected = 4;
        assert!(r.to_string().contains("faults:     4 injected"));
    }

    #[test]
    fn result_display_mentions_cpus() {
        let r = result(RunOutcome::Completed);
        let s = r.to_string();
        assert!(s.contains("cpu0"));
        assert!(s.contains("cpu1"));
        assert!(s.contains("cycles:     100"));
        assert_eq!(r.cycles_u64(), 100);
    }

    #[test]
    fn hang_report_renders_spans() {
        let h = HangReport {
            stalled_at: Cycle::new(50_123),
            window: Cycle::new(50_000),
            last_spans: Vec::new(),
            open_spans: Vec::new(),
        };
        let s = h.to_string();
        assert!(s.contains("cycle 50123"), "{s}");
        assert!(s.contains("50000 cycles without progress"), "{s}");
        assert!(!s.contains("open transactions"), "{s}");
    }
}
