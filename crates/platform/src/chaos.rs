//! Detector-coverage classification for chaos (fault-injection) runs.
//!
//! A chaos run injects faults from a [`hmp_sim::FaultPlan`] and then asks:
//! *which* safety net noticed the damage? The platform carries three:
//!
//! 1. the **live invariant checker** ([`crate::InvariantObserver`]) —
//!    structural line-state invariants, checked at every holder-set
//!    change;
//! 2. the **golden-memory checker** ([`crate::CoherenceChecker`]) —
//!    end-to-end value correctness, one violation per stale read;
//! 3. the **watchdog** — forward progress, reporting either a hard
//!    [`crate::RunOutcome::Stalled`] or, with a recovery policy armed, a
//!    [`crate::RunOutcome::Degraded`] survival.
//!
//! [`classify`] maps a finished [`RunResult`] onto the detector that
//! fired (with that precedence — the invariant checker fails fastest, the
//! watchdog is the last resort), or [`Detector::Undetected`] when none
//! did. [`Coverage`] accumulates classifications into one row of the
//! chaos sweep's detector-coverage matrix.

use crate::{RunOutcome, RunResult};
use core::fmt;

/// Which safety net caught a chaos run's injected damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Detector {
    /// The live structural line-invariant checker failed the run fast.
    Invariant,
    /// The golden-memory checker recorded at least one stale read.
    Golden,
    /// The forward-progress watchdog tripped — either a hard stall or a
    /// recovery-policy [`RunOutcome::Degraded`] survival.
    Watchdog,
    /// No detector fired. For a benign fault class this means the
    /// platform absorbed the fault; for a protocol-breaking class it is a
    /// coverage hole.
    Undetected,
}

impl Detector {
    /// All detectors, in classification precedence order.
    pub const ALL: [Detector; 4] = [
        Detector::Invariant,
        Detector::Golden,
        Detector::Watchdog,
        Detector::Undetected,
    ];

    /// Stable snake_case key (JSON field name in `BENCH_CHAOS.json`).
    pub fn key(self) -> &'static str {
        match self {
            Detector::Invariant => "invariant_checker",
            Detector::Golden => "golden_checker",
            Detector::Watchdog => "watchdog",
            Detector::Undetected => "undetected",
        }
    }
}

impl fmt::Display for Detector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// Classifies which detector caught a finished chaos run.
///
/// Precedence mirrors how fast each net reacts: a latched invariant
/// violation beats recorded stale reads beats a watchdog verdict. A run
/// that completed cleanly (or ran out of budget without any detector
/// firing) classifies as [`Detector::Undetected`].
pub fn classify(result: &RunResult) -> Detector {
    if result.invariant.is_some() || result.outcome == RunOutcome::InvariantViolation {
        return Detector::Invariant;
    }
    if !result.violations.is_empty() {
        return Detector::Golden;
    }
    match result.outcome {
        RunOutcome::Stalled | RunOutcome::Degraded { .. } => Detector::Watchdog,
        _ => Detector::Undetected,
    }
}

/// One row of the detector-coverage matrix: how many runs of one fault
/// class each detector caught, plus the total faults those runs injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Chaos runs accumulated into this row.
    pub runs: u32,
    /// Total faults injected across those runs.
    pub injected: u64,
    /// Runs the invariant checker caught.
    pub invariant: u32,
    /// Runs the golden-memory checker caught.
    pub golden: u32,
    /// Runs the watchdog caught (stalled or degraded).
    pub watchdog: u32,
    /// Runs no detector caught.
    pub undetected: u32,
}

impl Coverage {
    /// Folds one finished run into the row and returns its
    /// classification.
    pub fn absorb(&mut self, result: &RunResult) -> Detector {
        self.runs += 1;
        self.injected += result.faults_injected;
        let detector = classify(result);
        match detector {
            Detector::Invariant => self.invariant += 1,
            Detector::Golden => self.golden += 1,
            Detector::Watchdog => self.watchdog += 1,
            Detector::Undetected => self.undetected += 1,
        }
        detector
    }

    /// Runs caught by *any* detector.
    pub fn detected(&self) -> u32 {
        self.invariant + self.golden + self.watchdog
    }

    /// The per-detector count.
    pub fn count(&self, detector: Detector) -> u32 {
        match detector {
            Detector::Invariant => self.invariant,
            Detector::Golden => self.golden,
            Detector::Watchdog => self.watchdog,
            Detector::Undetected => self.undetected,
        }
    }
}

impl fmt::Display for Coverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} runs / {} faults: {} invariant, {} golden, {} watchdog, {} undetected",
            self.runs, self.injected, self.invariant, self.golden, self.watchdog, self.undetected
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InvariantKind, InvariantViolation, Violation};
    use hmp_bus::BusStats;
    use hmp_cache::LineState;
    use hmp_cpu::CpuCounters;
    use hmp_mem::Addr;
    use hmp_sim::{Cycle, Stats};

    fn result(outcome: RunOutcome) -> RunResult {
        RunResult {
            outcome,
            cycles: Cycle::new(100),
            bus: BusStats::default(),
            cpus: vec![CpuCounters::default(); 2],
            stats: Stats::new(),
            violations: Vec::new(),
            metrics: None,
            hang: None,
            invariant: None,
            faults_injected: 2,
            timeseries: None,
            profile: None,
        }
    }

    fn stale_read() -> Violation {
        Violation {
            at: Cycle::new(5),
            cpu: 0,
            addr: Addr::new(0x40),
            got: 0,
            expected: 7,
        }
    }

    #[test]
    fn classification_precedence() {
        let mut r = result(RunOutcome::Stalled);
        assert_eq!(classify(&r), Detector::Watchdog);
        r.violations.push(stale_read());
        assert_eq!(classify(&r), Detector::Golden, "golden beats watchdog");
        r.invariant = Some(InvariantViolation {
            at: Cycle::new(9),
            addr: Addr::new(0x40),
            kind: InvariantKind::MultipleWriters,
            holders: vec![(0, LineState::Modified), (1, LineState::Modified)],
            segments: vec![0],
        });
        assert_eq!(classify(&r), Detector::Invariant, "invariant beats all");
    }

    #[test]
    fn degraded_counts_as_watchdog() {
        let r = result(RunOutcome::Degraded {
            quarantined: 1,
            faults_absorbed: 2,
        });
        assert_eq!(classify(&r), Detector::Watchdog);
    }

    #[test]
    fn clean_and_budget_runs_are_undetected() {
        assert_eq!(
            classify(&result(RunOutcome::Completed)),
            Detector::Undetected
        );
        assert_eq!(
            classify(&result(RunOutcome::CycleLimit)),
            Detector::Undetected
        );
    }

    #[test]
    fn coverage_accumulates_and_counts() {
        let mut row = Coverage::default();
        assert_eq!(
            row.absorb(&result(RunOutcome::Completed)),
            Detector::Undetected
        );
        assert_eq!(row.absorb(&result(RunOutcome::Stalled)), Detector::Watchdog);
        let mut golden = result(RunOutcome::Completed);
        golden.violations.push(stale_read());
        assert_eq!(row.absorb(&golden), Detector::Golden);
        assert_eq!(row.runs, 3);
        assert_eq!(row.injected, 6);
        assert_eq!(row.detected(), 2);
        assert_eq!(row.count(Detector::Undetected), 1);
        assert_eq!(row.count(Detector::Golden), 1);
        assert_eq!(row.count(Detector::Watchdog), 1);
        assert_eq!(row.count(Detector::Invariant), 0);
        let s = row.to_string();
        assert!(s.contains("3 runs / 6 faults"), "{s}");
    }

    #[test]
    fn detector_keys_are_stable() {
        let keys: Vec<_> = Detector::ALL.iter().map(|d| d.key()).collect();
        assert_eq!(
            keys,
            [
                "invariant_checker",
                "golden_checker",
                "watchdog",
                "undetected"
            ]
        );
        assert_eq!(Detector::Golden.to_string(), "golden_checker");
    }
}
