//! The assembled platform and its cycle loop.

use crate::coherence::{AddressPhase, Pending};
use crate::faults::FaultEngine;
use crate::invariant::{InvariantObserver, InvariantViolation};
use crate::{CoherenceChecker, HangReport, PlatformSpec, RunOutcome, RunResult, WrapperMode};
use hmp_bus::{AddressOutcome, Bus, BusDevice, BusPhase, LockRegister, MasterId};
use hmp_cache::{DataCache, ProtocolKind};
use hmp_core::{
    classify_platform, reduce, reduce_segments, CoherenceSupport, PlatformClass, SnoopLogic,
    Wrapper, WrapperPolicy,
};
use hmp_cpu::{Cpu, CpuAction, CpuConfig, LockKind, Program};
use hmp_mem::{Addr, Memory, MemoryController, MemoryMap};
use hmp_sim::{
    ClockDomain, CounterBank, Cycle, EventSchedule, Kernel, KernelProfile, MetricsObserver,
    MetricsRegistry, NullObserver, Observer, RetryCause, SimEvent, Stats, TraceObserver, Watchdog,
    WatchdogVerdict, NO_EVENT,
};
use std::time::Instant;

/// The platform's internal event sink: fans every [`SimEvent`] out to the
/// optional metrics layer before the user's observer.
///
/// This is what lets metrics ride along any `System<O>` without changing
/// the component signatures: every `&mut self.obs` in the cycle loop hits
/// this type, which is itself an [`Observer`]. With metrics disabled (the
/// default) the extra branch is a `None` check that the optimizer removes
/// against a concrete `O`.
pub(crate) struct SystemSink<O: Observer> {
    pub(crate) metrics: Option<Box<MetricsObserver>>,
    /// Windowed time-series registry, armed by `PlatformSpec::timeseries`.
    /// Grant/retry/completion/quarantine events arrive through the fan-out
    /// below; data-phase busy spans, bridge crossings and the kernel mix
    /// are recorded by direct calls from the cycle loop (the bus emits no
    /// per-data-cycle events — that is the point of the warp kernel).
    pub(crate) series: Option<Box<MetricsRegistry>>,
    pub(crate) inner: O,
}

impl<O: Observer> Observer for SystemSink<O> {
    #[inline]
    fn on_event(&mut self, at: Cycle, event: SimEvent) {
        if let Some(m) = &mut self.metrics {
            m.on_event(at, event);
        }
        if let Some(s) = &mut self.series {
            s.on_event(at, event);
        }
        self.inner.on_event(at, event);
    }
}

/// Wall-time and step-mix accumulators for the kernel self-profile.
/// Plain counters (always present, trivially small) so the profiled run
/// loop can bump them while `self` methods are borrowed.
#[derive(Default)]
struct ProfCounters {
    plan_ns: u64,
    warp_ns: u64,
    step_ns: u64,
    cpu_only_ns: u64,
    iterations: u64,
    full_steps: u64,
    cpu_only_steps: u64,
    warped_cycles: u64,
}

pub(crate) struct Node {
    pub(crate) cpu: Cpu,
    pub(crate) cache: DataCache,
    pub(crate) wrapper: Option<Wrapper>,
    pub(crate) cam: Option<SnoopLogic>,
    pub(crate) pending: Option<Pending>,
    /// Core cycles per bus cycle, hoisted out of the per-cycle CPU loop
    /// (the clock ratio is fixed at construction).
    mult: u32,
    /// Last observed `cpu.is_halted()`, for the incremental halt counter.
    was_halted: bool,
}

/// The running platform: CPUs, wrappers, snoop logic, bus, memory,
/// checker.
///
/// Construct with [`System::new`] (or a preset from [`crate::presets`]),
/// then either [`System::run`] to completion or [`System::step`] one bus
/// cycle at a time for fine-grained tests.
///
/// The type parameter is the [`Observer`] every component emits typed
/// [`hmp_sim::SimEvent`]s into. The default [`NullObserver`] compiles the
/// whole instrumentation path to nothing; [`System::traced`] swaps in a
/// [`TraceObserver`] that records events unrendered. The coherence
/// decision logic itself — snoop verdicts, address-phase folding,
/// completion actions — lives in [`crate::coherence`]; this type owns the
/// state and the clock.
pub struct System<O: Observer = NullObserver> {
    pub(crate) nodes: Vec<Node>,
    pub(crate) bus: Bus,
    pub(crate) mem: MemoryController,
    pub(crate) map: MemoryMap,
    pub(crate) devices: Vec<Box<dyn BusDevice>>,
    pub(crate) checker: Option<CoherenceChecker>,
    watchdog: Watchdog,
    pub(crate) counters: CounterBank,
    pub(crate) obs: SystemSink<O>,
    pub(crate) invariants: Option<InvariantObserver>,
    /// Fault engine, boxed behind an `Option` exactly like the metrics
    /// layer: a fault-free run carries one null pointer and no behavior.
    pub(crate) faults: Option<Box<FaultEngine>>,
    /// Whether the spec armed any recovery escalation stage, hoisted so
    /// the run loop's degraded-completion check is one branch when off.
    recovery_armed: bool,
    /// Reusable address-phase fold; keeping it (and its drain-list
    /// capacity) across grants keeps steady-state snooping alloc-free.
    pub(crate) phase_scratch: AddressPhase,
    cpu_names: Vec<String>,
    pub(crate) now: Cycle,
    class: PlatformClass,
    system_protocol: Option<ProtocolKind>,
    /// Per-segment GCS meets (index = segment; `None` = no coherent
    /// master on that segment). One entry on flat-bus platforms.
    segment_protocols: Vec<Option<ProtocolKind>>,
    pub(crate) snoop_logic_enabled: bool,
    kernel: Kernel,
    /// Number of nodes whose CPU is currently halted, maintained at the
    /// transition points in [`System::step_cpus`] so [`System::finished`]
    /// needs no per-cycle node scan.
    halted_cpus: usize,
    /// Incremental event schedule for the fast-forward planner: one
    /// absolute next-event cycle per node, re-evaluated only for nodes
    /// marked dirty at a state-transition point. [`System::plan`] drains
    /// the dirty set instead of rescanning every node each iteration.
    pub(crate) sched: EventSchedule,
    /// Total instructions committed across all CPUs, bumped in
    /// [`System::tick_node`] so the watchdog poll needs no per-iteration
    /// node scan (commits only happen inside ticks, never warps).
    progress: u64,
    /// Cached absolute cycle of the bus's next self-generated event
    /// ([`NO_EVENT`] = quiescent). The bus's event horizon is invariant
    /// under warps and CPU-only ticks — it moves only inside a full step,
    /// on a new submission, or when a fault/quarantine rewrites bus state
    /// — so [`System::plan`] rescans the ports only when this is dirty.
    bus_next_abs: u64,
    /// Whether `bus_next_abs` must be recomputed at the next plan.
    pub(crate) bus_sched_dirty: bool,
    /// The construction spec, kept for [`System::try_reset`]'s shape
    /// check (a reset must not change any allocation-bearing dimension).
    spec: PlatformSpec,
    /// Whether [`System::run`] measures the kernel's wall-time split.
    profile: bool,
    /// Self-profile accumulators (only written on the profiled path).
    prof: ProfCounters,
}

impl System {
    /// Builds an uninstrumented platform from its spec, loading one
    /// program per CPU.
    ///
    /// A [`LockRegister`] device is attached automatically when the spec's
    /// lock kind is [`LockKind::HardwareRegister`].
    ///
    /// # Panics
    ///
    /// Panics if the program count does not match the CPU count, or if the
    /// spec mixes protocols the reduction lattice rejects.
    pub fn new(spec: &PlatformSpec, programs: Vec<Program>) -> Self {
        System::with_observer(spec, programs, NullObserver)
    }
}

impl System<TraceObserver> {
    /// Builds a platform that records typed events into a
    /// [`TraceObserver`] ring (capacity `spec.trace_capacity`, or 4096
    /// when the spec leaves it zero). Events render only when the
    /// observer is displayed.
    pub fn traced(spec: &PlatformSpec, programs: Vec<Program>) -> Self {
        let capacity = if spec.trace_capacity == 0 {
            4096
        } else {
            spec.trace_capacity
        };
        System::with_observer(spec, programs, TraceObserver::new(capacity))
    }
}

impl<O: Observer> System<O> {
    /// Builds a platform emitting events into `obs`. See [`System::new`]
    /// for the panics.
    pub fn with_observer(spec: &PlatformSpec, programs: Vec<Program>, obs: O) -> Self {
        assert_eq!(programs.len(), spec.cpus.len(), "one program per processor");
        let support: Vec<CoherenceSupport> = spec.cpus.iter().map(|c| c.coherence).collect();
        let class = classify_platform(&support);
        let native: Vec<ProtocolKind> = support.iter().filter_map(|s| s.protocol()).collect();
        let system_protocol = if native.is_empty() {
            None
        } else {
            Some(reduce(&native).expect("native protocols reduce"))
        };
        // Per-segment GCS meets. The bridge forwards every address phase,
        // so wrappers integrate at the fabric-wide meet (== the flat
        // reduction, the lattice being a chain); the per-segment view is
        // kept for reporting and the fabric benchmarks.
        let segment_map: Vec<usize> = if spec.segment_map.is_empty() {
            vec![0; spec.cpus.len()]
        } else {
            assert_eq!(
                spec.segment_map.len(),
                spec.cpus.len(),
                "one segment entry per CPU"
            );
            spec.segment_map.clone()
        };
        let segments = segment_map.iter().max().map_or(1, |&m| m + 1);
        let per_cpu: Vec<Option<ProtocolKind>> = support.iter().map(|s| s.protocol()).collect();
        let (segment_protocols, fabric_protocol) =
            reduce_segments(&per_cpu, &segment_map, segments).expect("native protocols reduce");
        debug_assert_eq!(
            fabric_protocol, system_protocol,
            "chain lattice: fabric meet equals flat reduction"
        );

        let mut nodes = Vec::with_capacity(spec.cpus.len());
        for (i, (cs, program)) in spec.cpus.iter().zip(programs).enumerate() {
            let (cache_protocol, wrapper, cam) = match cs.coherence {
                CoherenceSupport::Native(own) => {
                    let policy = match spec.wrapper_mode {
                        WrapperMode::Paper => None, // derive below
                        WrapperMode::Transparent => Some(WrapperPolicy::TRANSPARENT),
                    };
                    let wrapper = match policy {
                        Some(p) => Wrapper::new(own, p),
                        None => Wrapper::for_system(
                            own,
                            system_protocol.expect("native CPU implies protocols"),
                        ),
                    };
                    (own, Some(wrapper), None)
                }
                // A non-coherent processor still has a write-back cache;
                // MEI models it exactly (fills E, silent E→M, no snooping —
                // and indeed its snoop port is never wired up).
                CoherenceSupport::None => {
                    let cam = match cs.cam_geometry {
                        Some((sets, ways)) => SnoopLogic::with_geometry(sets, ways),
                        None => SnoopLogic::new(),
                    };
                    (ProtocolKind::Mei, None, Some(cam))
                }
            };
            let cpu = Cpu::new(
                i,
                CpuConfig {
                    clock: ClockDomain::new(cs.clock_mult),
                    isr: cs.isr,
                    lock_layout: spec.lock,
                    lock_party: i as u32,
                },
                program,
            );
            nodes.push(Node {
                cpu,
                cache: DataCache::new(cs.cache, cache_protocol).with_owner(i),
                wrapper,
                cam: cam.map(|c| c.with_owner(i)),
                pending: None,
                mult: cs.clock_mult,
                was_halted: false,
            });
        }

        let mut devices: Vec<Box<dyn BusDevice>> = Vec::new();
        if spec.lock.kind == LockKind::HardwareRegister {
            devices.push(Box::new(LockRegister::new(16)));
        }

        let cpu_count = nodes.len();
        let mut bus = Bus::new(cpu_count);
        bus.set_arbitration(spec.arbitration);
        bus.set_retry_backoff(spec.retry_backoff);
        bus.set_recovery(spec.recovery);
        if segments > 1 {
            bus.set_segments(&segment_map, segments, spec.bridge_latency);
        }
        if !spec.recovery_overrides.is_empty() {
            assert_eq!(
                spec.recovery_overrides.len(),
                cpu_count,
                "one recovery-override slot per CPU"
            );
            for (i, policy) in spec.recovery_overrides.iter().enumerate() {
                if let Some(p) = policy {
                    bus.set_master_recovery(MasterId(i), *p);
                }
            }
        }
        let recovery_armed = bus.recovery_armed();
        let counters = CounterBank::new(nodes.len());
        let metrics = (spec.span_capacity > 0).then(|| {
            let event_capacity = if spec.trace_capacity > 0 {
                spec.trace_capacity
            } else {
                spec.span_capacity.saturating_mul(8)
            };
            Box::new(MetricsObserver::new(
                nodes.len(),
                spec.span_capacity,
                event_capacity,
            ))
        });
        let series = spec.timeseries.map(|ts| {
            let map: Vec<u8> = segment_map.iter().map(|&s| s as u8).collect();
            Box::new(MetricsRegistry::new(nodes.len(), segments, &map, ts))
        });
        System {
            bus,
            nodes,
            mem: MemoryController::new(Memory::new(spec.memory_bytes), spec.latency),
            map: spec.map.clone(),
            devices,
            checker: spec
                .check_coherence
                .then(|| CoherenceChecker::new(spec.memory_bytes, 64)),
            watchdog: Watchdog::new(Cycle::new(spec.watchdog_window)),
            counters,
            obs: SystemSink {
                metrics,
                series,
                inner: obs,
            },
            invariants: spec.check_invariants.then(|| {
                let mut inv = InvariantObserver::new();
                if segments > 1 {
                    inv.set_segment_map(&segment_map);
                }
                inv
            }),
            faults: spec
                .faults
                .as_ref()
                .filter(|p| !p.specs().is_empty())
                .map(|p| Box::new(FaultEngine::new(p.clone(), cpu_count))),
            recovery_armed,
            phase_scratch: AddressPhase::new(),
            cpu_names: spec.cpus.iter().map(|c| c.name.clone()).collect(),
            now: Cycle::ZERO,
            class,
            system_protocol,
            segment_protocols,
            snoop_logic_enabled: true,
            kernel: Kernel::default(),
            halted_cpus: 0,
            sched: EventSchedule::new(cpu_count),
            progress: 0,
            bus_next_abs: NO_EVENT,
            bus_sched_dirty: true,
            spec: spec.clone(),
            profile: spec.profile,
            prof: ProfCounters::default(),
        }
    }

    /// Reset-don't-drop: rebuilds this platform for a fresh run of
    /// `spec`, reusing every allocation the constructor made — nodes,
    /// caches, CAM storage, the bus's drain queues and masks, the golden
    /// memory image, metrics and timeseries rings, phase scratch and the
    /// event schedule. Returns `false` (leaving the platform untouched)
    /// when `spec` differs from the built one in *shape*: processor roster,
    /// memory size, lock layout, wrapper mode, fabric topology, or which
    /// observability layers are armed. Everything that doesn't change an
    /// allocation — memory timing, the address map's attributes,
    /// arbitration, BOFF window, watchdog window, recovery policy, fault
    /// schedule, and the profile flag — may differ freely and is applied
    /// in place.
    ///
    /// On success the platform is byte-identical to a freshly constructed
    /// `System::with_observer(spec, programs, ..)` except for the user
    /// observer, which is carried over untouched (reset it yourself if it
    /// accumulates state — the sweep paths run unobserved). The kernel
    /// selection and snoop-logic gate also return to their construction
    /// defaults; re-apply [`System::set_kernel`] /
    /// [`System::set_snoop_logic_enabled`] as the constructor's callers do.
    ///
    /// A fault schedule is the one exception to "no allocation": arming
    /// one rebuilds the boxed fault engine, exactly as construction would.
    /// Fault-free resets — the entire perf-sweep path — allocate nothing.
    ///
    /// # Panics
    ///
    /// Panics if the program count does not match the CPU count.
    pub fn try_reset(&mut self, spec: &PlatformSpec, programs: Vec<Program>) -> bool {
        assert_eq!(programs.len(), spec.cpus.len(), "one program per processor");
        let built = &self.spec;
        let same_shape = built.cpus == spec.cpus
            && built.memory_bytes == spec.memory_bytes
            && built.lock == spec.lock
            && built.wrapper_mode == spec.wrapper_mode
            && built.check_coherence == spec.check_coherence
            && built.check_invariants == spec.check_invariants
            && built.trace_capacity == spec.trace_capacity
            && built.span_capacity == spec.span_capacity
            && built.timeseries == spec.timeseries
            && built.segment_map == spec.segment_map
            && built.bridge_latency == spec.bridge_latency
            && built.recovery_overrides == spec.recovery_overrides;
        if !same_shape {
            return false;
        }
        // Shape matched: record the run-to-run scalars so a later reset
        // compares against what is actually in force.
        self.spec.latency = spec.latency;
        self.spec.arbitration = spec.arbitration;
        self.spec.retry_backoff = spec.retry_backoff;
        self.spec.watchdog_window = spec.watchdog_window;
        self.spec.recovery = spec.recovery;
        self.spec.profile = spec.profile;
        self.spec.faults.clone_from(&spec.faults);
        // The address map may differ in *attributes* (a strategy flip
        // turns the shared window uncached) but never in region count for
        // a same-roster platform; `clone_from` reuses the region buffer.
        self.spec.map.clone_from(&spec.map);
        self.map.clone_from(&spec.map);

        for (node, program) in self.nodes.iter_mut().zip(programs) {
            node.cpu.reset(program);
            node.cache.clear();
            if let Some(w) = &mut node.wrapper {
                w.reset();
            }
            if let Some(cam) = &mut node.cam {
                cam.clear();
            }
            node.pending = None;
            node.was_halted = false;
        }
        self.bus.reset();
        self.bus.set_arbitration(spec.arbitration);
        self.bus.set_retry_backoff(spec.retry_backoff);
        self.bus.set_recovery(spec.recovery);
        // recovery_overrides are shape-checked equal above and preserved
        // by Bus::reset, so recovery_armed only needs recomputing for the
        // bus-wide policy change.
        self.recovery_armed = self.bus.recovery_armed();
        self.mem.reset(spec.latency);
        for device in &mut self.devices {
            device.reset();
        }
        if let Some(checker) = &mut self.checker {
            checker.reset();
        }
        self.watchdog = Watchdog::new(Cycle::new(spec.watchdog_window));
        self.counters.reset();
        if let Some(metrics) = &mut self.obs.metrics {
            metrics.reset();
        }
        if let Some(series) = &mut self.obs.series {
            series.reset();
        }
        if let Some(inv) = &mut self.invariants {
            inv.reset();
        }
        self.faults = spec
            .faults
            .as_ref()
            .filter(|p| !p.specs().is_empty())
            .map(|p| Box::new(FaultEngine::new(p.clone(), self.nodes.len())));
        self.phase_scratch.reset();
        self.now = Cycle::ZERO;
        self.snoop_logic_enabled = true;
        self.kernel = Kernel::default();
        self.halted_cpus = 0;
        self.sched.reset();
        self.progress = 0;
        self.bus_next_abs = NO_EVENT;
        self.bus_sched_dirty = true;
        self.profile = spec.profile;
        self.prof = ProfCounters::default();
        true
    }

    /// Disables the TAG-CAM snoop logic (used by the cache-disabled and
    /// software-drain baselines, which exist precisely to avoid needing
    /// that hardware).
    pub fn set_snoop_logic_enabled(&mut self, enabled: bool) {
        self.snoop_logic_enabled = enabled;
        // Pending-nFIQ visibility feeds every node's event horizon.
        self.sched.mark_all_dirty();
        self.bus_sched_dirty = true;
    }

    /// Selects how [`System::run`] and [`System::advance`] move time
    /// forward. The default [`Kernel::FastForward`] skips provably-dead
    /// cycles; [`Kernel::Step`] executes every cycle (the reference the
    /// fast-forward kernel is validated against).
    pub fn set_kernel(&mut self, kernel: Kernel) {
        self.kernel = kernel;
        self.sched.mark_all_dirty();
        self.bus_sched_dirty = true;
    }

    /// The configured simulation kernel.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Attaches an extra bus device; its index must match the
    /// [`hmp_mem::MemAttr::Device`] ids in the memory map.
    pub fn add_device(&mut self, device: Box<dyn BusDevice>) -> u32 {
        self.devices.push(device);
        (self.devices.len() - 1) as u32
    }

    /// Current bus time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The Table 1 platform class.
    pub fn platform_class(&self) -> PlatformClass {
        self.class
    }

    /// The reduced system protocol, if any processor is coherent.
    pub fn system_protocol(&self) -> Option<ProtocolKind> {
        self.system_protocol
    }

    /// Number of bus segments in the fabric (1 on flat-bus platforms).
    pub fn segments(&self) -> usize {
        self.segment_protocols.len()
    }

    /// The GCS meet of one segment's coherent masters (`None` when the
    /// segment has none). The fabric-wide meet across the bridge equals
    /// [`System::system_protocol`].
    pub fn segment_protocol(&self, segment: usize) -> Option<ProtocolKind> {
        self.segment_protocols[segment]
    }

    /// Grants per master so far (drains and retry re-grants included) —
    /// the numerator of the fairness sweeps' grant shares.
    pub fn master_grants(&self) -> &[u64] {
        self.bus.master_grants()
    }

    /// A CPU, by master index.
    pub fn cpu(&self, i: usize) -> &Cpu {
        &self.nodes[i].cpu
    }

    /// A data cache, by master index.
    pub fn cache(&self, i: usize) -> &DataCache {
        &self.nodes[i].cache
    }

    /// A wrapper, by master index (None for non-coherent processors).
    pub fn wrapper(&self, i: usize) -> Option<&Wrapper> {
        self.nodes[i].wrapper.as_ref()
    }

    /// The snoop logic, by master index (None for coherent processors).
    pub fn snoop_logic(&self, i: usize) -> Option<&SnoopLogic> {
        self.nodes[i].cam.as_ref()
    }

    /// The backing memory (for fixtures and assertions).
    pub fn memory(&self) -> &Memory {
        self.mem.memory()
    }

    /// Mutable backing memory (test fixtures). Also updates the golden
    /// image so the checker treats the poked values as committed.
    pub fn poke_word(&mut self, addr: Addr, value: u32) {
        self.mem.write_word(addr, value);
        if let Some(c) = &mut self.checker {
            c.on_write(addr, value);
        }
    }

    /// Platform counters accumulated so far, rendered to the legacy
    /// string-keyed registry.
    pub fn stats(&self) -> Stats {
        self.counters.to_stats()
    }

    /// The raw enum-indexed counter bank.
    pub fn counters(&self) -> &CounterBank {
        &self.counters
    }

    /// The event observer.
    pub fn observer(&self) -> &O {
        &self.obs.inner
    }

    /// Mutable access to the event observer (e.g. to clear a trace ring
    /// between phases of a test).
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.obs.inner
    }

    /// Processor names from the spec, in master-index order (labels the
    /// per-CPU tracks of an exported trace).
    pub fn cpu_names(&self) -> &[String] {
        &self.cpu_names
    }

    /// The metrics layer (spans, histograms, derived counters), when the
    /// spec enabled it with `span_capacity > 0`.
    pub fn metrics(&self) -> Option<&MetricsObserver> {
        self.obs.metrics.as_deref()
    }

    /// The first live invariant violation, if checking is enabled and a
    /// line invariant has broken.
    pub fn invariant_violation(&self) -> Option<&InvariantViolation> {
        self.invariants.as_ref().and_then(|i| i.violation())
    }

    /// The coherence checker, if enabled.
    pub fn checker(&self) -> Option<&CoherenceChecker> {
        self.checker.as_ref()
    }

    /// `true` once every program halted and all bus work drained.
    ///
    /// The halt and drain conditions read maintained counters (kept at
    /// their transition points), so the common "not finished" answer is
    /// O(1); only a platform that looks finished pays the CAM scan.
    pub fn finished(&self) -> bool {
        self.halted_cpus == self.nodes.len()
            && self.bus.phase() == BusPhase::Idle
            && self.bus.queued_drains() == 0
            && self
                .nodes
                .iter()
                .all(|n| n.cam.as_ref().is_none_or(|c| !c.nfiq()))
    }

    /// Advances the platform by one bus cycle.
    pub fn step(&mut self) {
        // A full step can grant, retry, complete, or submit — all of
        // which move the bus's event horizon.
        self.bus_sched_dirty = true;
        self.now.tick();
        if let Some(ts) = &mut self.obs.series {
            ts.record_full_step(self.now);
        }
        self.fire_faults();
        self.step_bus();
        self.step_cpus();
    }

    /// The fast-forward kernel's next move: how many provably-dead bus
    /// cycles to warp, and what kind of step the following (event) cycle
    /// needs.
    ///
    /// The horizon is the earliest cycle on which *anything* can happen:
    /// a grant opportunity or data-phase completion on the bus, a CPU
    /// countdown expiry or instruction boundary, a pending-nFIQ delivery,
    /// the watchdog deadline or the cycle budget. Everything strictly
    /// before it is warped. The event cycle itself needs the full
    /// [`System::step`] only when the *bus* can act; a cycle whose only
    /// events are CPU-local runs through the cheaper
    /// [`System::step_cpu_only`], which ticks just the due CPUs (recorded
    /// in the `active` bitmask) and bulk-advances the rest.
    fn plan(&mut self, max_cycles: u64) -> (u64, u64, bool) {
        let now = self.now.as_u64();
        // Budget and watchdog horizons: the stepped cycle after the skip
        // must land on (or before) both.
        let mut horizon = max_cycles.saturating_sub(now);
        if let Some(deadline) = self.watchdog.deadline() {
            horizon = horizon.min(deadline.as_u64().saturating_sub(now));
        }
        // A fault fire cycle is an event: the stepped cycle must land on
        // it so `fire_faults` runs there in both kernels.
        if let Some(engine) = &self.faults {
            if let Some(at) = engine.plan.next_fire_at() {
                horizon = horizon.min(at.saturating_sub(now).max(1));
            }
        }
        // The bus's event horizon is rescanned only when a step, a
        // submission, or a fault actually moved it; in absolute cycles
        // it is invariant under warps and CPU-only ticks.
        if self.bus_sched_dirty {
            self.bus_next_abs = match self.bus.next_event() {
                Some(delta) => now + delta,
                None => NO_EVENT,
            };
            self.bus_sched_dirty = false;
        }
        let bus_abs = self.bus_next_abs;
        if bus_abs != NO_EVENT {
            debug_assert!(bus_abs > now, "bus events are strictly in the future");
            horizon = horizon.min(bus_abs - now);
        }
        // Incremental node horizon: re-evaluate only the nodes whose
        // event inputs changed since the last plan (marked dirty at
        // their state-transition points). Everyone else's absolute event
        // cycle is invariant under warps and non-event ticks, so the
        // recorded answer stands.
        while let Some(i) = self.sched.pop_dirty() {
            let abs = self.node_event_abs(i, now);
            self.sched.record(i, abs);
        }
        let node_min = self.sched.earliest();
        if node_min != NO_EVENT {
            debug_assert!(node_min > now, "node events are strictly in the future");
            horizon = horizon.min(node_min - now);
        }
        // The bitmask caps out at 64 CPUs; larger systems (none modelled)
        // conservatively full-step every event cycle.
        let full = (bus_abs != NO_EVENT && bus_abs - now == horizon) || self.nodes.len() > 64;
        let active = if !full && node_min != NO_EVENT && node_min - now == horizon {
            self.sched.take_active(now + horizon)
        } else {
            0
        };
        (horizon.saturating_sub(1), active, full)
    }

    /// Absolute bus cycle of node `i`'s next CPU-local event, or
    /// [`NO_EVENT`] when it has none: a countdown expiry, an instruction
    /// boundary, a pending-nFIQ delivery, or the unmask cycle of a
    /// fault-masked interrupt.
    fn node_event_abs(&self, i: usize, now: u64) -> u64 {
        let node = &self.nodes[i];
        let cam_pending = self.snoop_logic_enabled
            && node
                .cam
                .as_ref()
                .is_some_and(|c| c.next_pending().is_some());
        // An injected nFIQ mask hides the pending interrupt from the
        // CPU; the unmask cycle (if finite) becomes the node's event
        // instead — the first tick that can see the line again.
        let mask_until = self.faults.as_ref().map_or(0, |e| e.nfiq_mask_until[i]);
        let masked = now < mask_until;
        let nfiq_pending = cam_pending && !masked;
        let mut node_delta = node.cpu.core_cycles_to_event(nfiq_pending).map(|core| {
            // Core→bus cycle conversion; the multiplier is 1 or 2 on
            // every modelled platform, so avoid a hardware divide.
            match node.mult {
                1 => core,
                2 => (core + 1) >> 1,
                m => core.div_ceil(u64::from(m)),
            }
        });
        if cam_pending && masked && mask_until != u64::MAX {
            let unmask = mask_until - now;
            node_delta = Some(node_delta.map_or(unmask, |d| d.min(unmask)));
        }
        match node_delta {
            // The event lands on a future tick; a zero delta (already
            // due) still needs the next stepped cycle to deliver it.
            Some(d) => now + d.max(1),
            None => NO_EVENT,
        }
    }

    /// Bulk-advances the clock and every component's countdowns by
    /// `cycles` event-free bus cycles. Caller must have established via
    /// [`System::plan`] that no event falls in the window.
    fn warp(&mut self, cycles: u64) {
        if let Some(ts) = &mut self.obs.series {
            // The warped window covers cycles now+1 ..= now+cycles — the
            // same stamps the step kernel's per-cycle hooks would use. A
            // bus mid-data-phase streams one busy cycle on each of them
            // (`Bus::warp` bulk-credits `data_cycles` identically).
            let busy = matches!(self.bus.phase(), BusPhase::Data { .. });
            let master = self.bus.active_master().map(MasterId::index);
            ts.record_warp(self.now.as_u64() + 1, cycles, busy, master);
        }
        self.now += Cycle::new(cycles);
        self.bus.warp(cycles);
        for node in &mut self.nodes {
            node.cpu.warp(cycles * u64::from(node.mult));
        }
    }

    /// Executes one bus cycle on which only CPU-local events occur (no
    /// grant opportunity, no data-phase completion): ticks the CPUs whose
    /// event is due (`active` bit set) exactly as [`System::step`] would,
    /// and bulk-advances the rest. The bus cannot act this cycle, so its
    /// per-cycle work reduces to the same countdown arithmetic as a
    /// one-cycle warp.
    fn step_cpu_only(&mut self, active: u64) {
        self.now.tick();
        if let Some(ts) = &mut self.obs.series {
            ts.record_cpu_only_step(self.now);
            if matches!(self.bus.phase(), BusPhase::Data { .. }) {
                let master = self.bus.active_master().map(MasterId::index);
                ts.record_busy_span(self.now.as_u64(), 1, master);
            }
        }
        self.fire_faults();
        self.bus.warp(1);
        for i in 0..self.nodes.len() {
            if active & (1 << i) != 0 {
                self.sched.mark_dirty(i);
                self.tick_node(i);
            } else {
                let node = &mut self.nodes[i];
                node.cpu.warp(u64::from(node.mult));
            }
        }
    }

    /// One fast-forward iteration against `limit`: warp the dead window,
    /// then execute the event cycle with the cheapest step that preserves
    /// per-cycle semantics.
    fn ff_iteration(&mut self, limit: u64) {
        let (skip, active, full) = self.plan(limit);
        if skip > 0 {
            self.warp(skip);
        }
        if full {
            self.step();
        } else {
            self.step_cpu_only(active);
        }
    }

    /// [`System::ff_iteration`] with the kernel self-profile armed:
    /// identical simulation semantics, plus wall-time attribution of the
    /// plan / warp / step phases and the step-mix counters.
    fn profiled_ff_iteration(&mut self, limit: u64) {
        let t0 = Instant::now();
        let (skip, active, full) = self.plan(limit);
        let t1 = Instant::now();
        self.prof.plan_ns += (t1 - t0).as_nanos() as u64;
        let mut t2 = t1;
        if skip > 0 {
            self.warp(skip);
            self.prof.warped_cycles += skip;
            t2 = Instant::now();
            self.prof.warp_ns += (t2 - t1).as_nanos() as u64;
        }
        if full {
            self.step();
            self.prof.full_steps += 1;
            self.prof.step_ns += t2.elapsed().as_nanos() as u64;
        } else {
            self.step_cpu_only(active);
            self.prof.cpu_only_steps += 1;
            self.prof.cpu_only_ns += t2.elapsed().as_nanos() as u64;
        }
        self.prof.iterations += 1;
    }

    /// Advances up to `cycles` bus cycles with the configured kernel,
    /// stopping early once the platform is [`System::finished`]. Unlike
    /// [`System::run`] it neither polls the watchdog nor builds a
    /// [`RunResult`], so steady-state advancement stays allocation-free.
    pub fn advance(&mut self, cycles: u64) {
        let target = self.now.as_u64().saturating_add(cycles);
        while !self.finished() && self.now.as_u64() < target {
            match self.kernel {
                Kernel::FastForward => self.ff_iteration(target),
                Kernel::Step => self.step(),
            }
        }
    }

    /// Runs until completion, watchdog stall, invariant break, or
    /// `max_cycles`.
    ///
    /// With the default [`Kernel::FastForward`] the loop computes the
    /// earliest next event across all components, warps to one cycle
    /// before it, and executes the event cycle — through the ordinary
    /// [`System::step`] when the bus can act, through the reduced
    /// [`System::step_cpu_only`] when the cycle's only events are
    /// CPU-local — with identical results to [`Kernel::Step`], cycle for
    /// cycle and counter for counter. Forward progress and the
    /// invariant/watchdog checks happen only on stepped cycles; warped
    /// cycles are provably event-free, so those polls would be no-ops.
    pub fn run(&mut self, max_cycles: u64) -> RunResult {
        let wall_start = self.profile.then(Instant::now);
        let outcome = loop {
            if self.finished() {
                break RunOutcome::Completed;
            }
            if self.recovery_armed && self.degraded_finished() {
                break RunOutcome::Degraded {
                    quarantined: self.bus.quarantined_count() as u32,
                    faults_absorbed: self.faults.as_ref().map_or(0, |e| e.fired),
                };
            }
            if self.now.as_u64() >= max_cycles {
                // A run that exhausts its budget after quarantining a
                // master is a degraded survival, not an opaque timeout:
                // spinning survivors (e.g. a lock waiter whose peer was
                // quarantined mid-critical-section) keep the watchdog fed
                // forever, so this is where that livelock surfaces.
                if self.bus.quarantined_count() > 0 {
                    break RunOutcome::Degraded {
                        quarantined: self.bus.quarantined_count() as u32,
                        faults_absorbed: self.faults.as_ref().map_or(0, |e| e.fired),
                    };
                }
                break RunOutcome::CycleLimit;
            }
            match (self.kernel, self.profile) {
                (Kernel::FastForward, false) => self.ff_iteration(max_cycles),
                (Kernel::FastForward, true) => self.profiled_ff_iteration(max_cycles),
                (Kernel::Step, false) => self.step(),
                (Kernel::Step, true) => {
                    let t = Instant::now();
                    self.step();
                    self.prof.step_ns += t.elapsed().as_nanos() as u64;
                    self.prof.full_steps += 1;
                    self.prof.iterations += 1;
                }
            }
            if self.invariant_violation().is_some() {
                break RunOutcome::InvariantViolation;
            }
            if self.watchdog.poll(self.now, self.progress) == WatchdogVerdict::Stalled
                && !self.escalate_stall()
            {
                break RunOutcome::Stalled;
            }
        };
        let hang = (outcome == RunOutcome::Stalled).then(|| {
            let (last_spans, open_spans) = self
                .obs
                .metrics
                .as_ref()
                .map(|m| (m.spans().recent(8), m.spans().open_spans()))
                .unwrap_or_default();
            HangReport {
                stalled_at: self.now,
                window: self.watchdog.window(),
                last_spans,
                open_spans,
            }
        });
        let timeseries = self.obs.series.as_mut().map(|s| s.snapshot(self.now));
        let profile = (self.profile || self.obs.series.is_some()).then(|| {
            let wall_ns = wall_start.map_or(0, |t| t.elapsed().as_nanos() as u64);
            KernelProfile {
                kernel: self.kernel,
                wall_ns,
                plan_ns: self.prof.plan_ns,
                warp_ns: self.prof.warp_ns,
                step_ns: self.prof.step_ns,
                cpu_only_ns: self.prof.cpu_only_ns,
                iterations: self.prof.iterations,
                full_steps: self.prof.full_steps,
                cpu_only_steps: self.prof.cpu_only_steps,
                warped_cycles: self.prof.warped_cycles,
                cycles_per_sec: if wall_ns > 0 {
                    self.now.as_u64() as f64 / (wall_ns as f64 / 1e9)
                } else {
                    0.0
                },
                mix: self.obs.series.as_mut().map(|s| s.snapshot_mix(self.now)),
            }
        });
        RunResult {
            outcome,
            cycles: self.now,
            bus: self.bus.stats(),
            cpus: self.nodes.iter().map(|n| n.cpu.counters()).collect(),
            stats: self.counters.to_stats(),
            violations: self
                .checker
                .as_ref()
                .map(|c| c.violations().to_vec())
                .unwrap_or_default(),
            metrics: self.obs.metrics.as_ref().map(|m| m.snapshot()),
            hang,
            invariant: self
                .invariants
                .as_ref()
                .and_then(|i| i.violation())
                .cloned(),
            faults_injected: self.faults.as_ref().map_or(0, |e| e.fired),
            timeseries,
            profile,
        }
    }

    /// The timeseries registry, when the spec armed it.
    pub fn timeseries(&self) -> Option<&MetricsRegistry> {
        self.obs.series.as_deref()
    }

    /// `true` once the *surviving* platform has finished: at least one
    /// master is quarantined, every healthy CPU has halted, and no bus
    /// work remains that a healthy master could still move. A pending
    /// nFIQ on a masked (fault-suppressed) line does not block degraded
    /// completion — that unserviced drain is precisely the damage the
    /// golden checker then reports.
    fn degraded_finished(&self) -> bool {
        if self.bus.quarantined_count() == 0
            || self.bus.phase() != BusPhase::Idle
            || self.bus.queued_drains() != 0
        {
            return false;
        }
        let now = self.now.as_u64();
        self.nodes.iter().enumerate().all(|(i, n)| {
            self.bus.is_quarantined(MasterId(i))
                || (n.cpu.is_halted()
                    && n.cam.as_ref().is_none_or(|c| {
                        !c.nfiq() || self.faults.as_ref().is_some_and(|e| e.nfiq_masked(i, now))
                    }))
        })
    }

    /// Watchdog escalation: instead of giving up on a stall, quarantine
    /// every master wedged on an outstanding transaction and grant the
    /// survivors a fresh window. Returns `false` (stall stands) when the
    /// recovery policy is disarmed or nothing was left to quarantine.
    fn escalate_stall(&mut self) -> bool {
        let mut any = false;
        for i in 0..self.nodes.len() {
            // Each master is judged by its own policy (override or the
            // bus-wide default); a master without quarantine armed rides
            // out the stall.
            if self.bus.recovery_for(MasterId(i)).quarantine_after == 0 {
                continue;
            }
            if self.nodes[i].pending.is_some() && self.bus.quarantine(MasterId(i)) {
                any = true;
                self.obs
                    .on_event(self.now, SimEvent::MasterQuarantined { master: i });
            }
        }
        if any {
            self.watchdog.rebaseline(self.now);
            // Quarantines kill outstanding transactions; every node's
            // event horizon may have moved.
            self.sched.mark_all_dirty();
            self.bus_sched_dirty = true;
        }
        any
    }

    /// Retry-budget escalation: once a master's consecutive ARTRY count
    /// crosses the policy's quarantine threshold, park it for good.
    fn maybe_quarantine(&mut self, master: MasterId) {
        let policy = self.bus.recovery_for(master);
        if policy.quarantine_after == 0
            || self.bus.consecutive_retries(master) < policy.quarantine_after
        {
            return;
        }
        if self.bus.quarantine(master) {
            self.sched.mark_all_dirty();
            self.bus_sched_dirty = true;
            self.obs.on_event(
                self.now,
                SimEvent::MasterQuarantined {
                    master: master.index(),
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Bus side
    // ------------------------------------------------------------------

    fn step_bus(&mut self) {
        self.bus.begin_cycle();
        match self.bus.phase() {
            BusPhase::Idle => {
                if let Some(txn) = self.bus.try_grant(self.now, &mut self.obs) {
                    let outcome = if self.fault_kills_grant(txn.master.index(), txn.is_drain) {
                        self.counters.bump_retry(RetryCause::Injected);
                        self.emit_retry(&txn, RetryCause::Injected);
                        AddressOutcome::Retry
                    } else {
                        self.snoop_and_decide(&txn)
                    };
                    let retried = outcome == AddressOutcome::Retry;
                    if let Some(done) = self.bus.resolve(outcome, self.now, &mut self.obs) {
                        self.complete_txn(done);
                    }
                    if retried && self.recovery_armed && !txn.is_drain {
                        self.maybe_quarantine(txn.master);
                    }
                }
            }
            BusPhase::Data { .. } => {
                if let Some(ts) = &mut self.obs.series {
                    // Capture the driving master before `advance_data` —
                    // a completing phase clears the active transaction.
                    let master = self.bus.active_master().map(MasterId::index);
                    ts.record_busy_span(self.now.as_u64(), 1, master);
                }
                if let Some(done) = self.bus.advance_data(self.now, &mut self.obs) {
                    self.complete_txn(done);
                }
            }
            BusPhase::Address => unreachable!("address phases resolve within their grant cycle"),
        }
    }

    // ------------------------------------------------------------------
    // CPU side
    // ------------------------------------------------------------------

    fn step_cpus(&mut self) {
        // A node is ticked when its recorded event is due or its state
        // changed since the last plan (dirty); anyone else provably does
        // nothing this cycle, so a one-cycle warp is byte-identical and
        // skips the per-tick dispatch. Under [`Kernel::Step`] the planner
        // never runs, every node stays dirty, and this degenerates to
        // ticking everyone — the reference behavior.
        let now = self.now.as_u64();
        for i in 0..self.nodes.len() {
            if self.sched.is_dirty(i) || self.sched.next_of(i) <= now {
                self.sched.mark_dirty(i);
                self.tick_node(i);
            } else {
                let node = &mut self.nodes[i];
                node.cpu.warp(u64::from(node.mult));
            }
        }
    }

    /// Ticks one CPU its `clock_mult` core cycles for the current bus
    /// cycle — the per-node body of [`System::step_cpus`], shared with
    /// [`System::step_cpu_only`].
    fn tick_node(&mut self, i: usize) {
        let masked = self
            .faults
            .as_ref()
            .is_some_and(|e| e.nfiq_masked(i, self.now.as_u64()));
        let nfiq = if self.snoop_logic_enabled && !masked {
            self.nodes[i].cam.as_ref().and_then(|c| c.next_pending())
        } else {
            None
        };
        self.nodes[i].cpu.set_nfiq_line(nfiq);
        let mult = self.nodes[i].mult;
        let committed_before = self.nodes[i].cpu.committed();
        for _ in 0..mult {
            match self.nodes[i].cpu.tick(self.now, &mut self.obs) {
                CpuAction::Idle | CpuAction::Halted => {}
                CpuAction::Issue(req) => self.handle_request(i, req),
            }
        }
        self.progress += self.nodes[i].cpu.committed() - committed_before;
        // Halt transitions happen only inside `Cpu::tick` (program end,
        // ISR entry on a halted core, ISR exit restoring a halted
        // core), so this is the one place the counter needs updating.
        let node = &mut self.nodes[i];
        let halted = node.cpu.is_halted();
        if halted != node.was_halted {
            node.was_halted = halted;
            if halted {
                self.halted_cpus += 1;
            } else {
                self.halted_cpus -= 1;
            }
        }
    }
}

impl<O: Observer> core::fmt::Debug for System<O> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("System")
            .field("cpus", &self.nodes.len())
            .field("now", &self.now)
            .field("class", &self.class)
            .field("system_protocol", &self.system_protocol)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{layout, CpuSpec, PlatformSpec, Strategy};
    use hmp_cache::LineState;
    use hmp_cpu::{LockLayout, ProgramBuilder};

    fn two_mesi_spec(strategy: Strategy) -> (PlatformSpec, crate::MemLayout) {
        let (lay, map) = layout(2, strategy, LockKind::Turn, false);
        let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 2);
        let spec = PlatformSpec::new(
            vec![
                CpuSpec::generic("P0", ProtocolKind::Mesi),
                CpuSpec::generic("P1", ProtocolKind::Mesi),
            ],
            map,
            lock,
        );
        (spec, lay)
    }

    #[test]
    fn single_read_miss_fills_exclusive() {
        let (spec, lay) = two_mesi_spec(Strategy::Proposed);
        let a = lay.shared_base;
        let p0 = ProgramBuilder::new().read(a).build();
        let mut sys = System::new(&spec, vec![p0, hmp_cpu::Program::empty()]);
        sys.poke_word(a, 42);
        let result = sys.run(10_000);
        assert_eq!(result.outcome, RunOutcome::Completed);
        assert!(result.is_clean_completion());
        assert_eq!(sys.cache(0).line_state(a), Some(LineState::Exclusive));
        assert_eq!(sys.cache(0).peek_word(a), Some(42));
        // Timing: ~1 cycle issue + 1 grant + 13-cycle burst.
        assert!(result.cycles_u64() >= 14, "got {}", result.cycles_u64());
        assert!(result.cycles_u64() <= 20, "got {}", result.cycles_u64());
        assert_eq!(result.bus.grants, 1);
    }

    #[test]
    fn read_sharing_between_two_mesi_cpus() {
        let (spec, lay) = two_mesi_spec(Strategy::Proposed);
        let a = lay.shared_base;
        // P0 reads first; P1 reads later (delay keeps ordering).
        let p0 = ProgramBuilder::new().read(a).build();
        let p1 = ProgramBuilder::new().delay(60).read(a).build();
        let mut sys = System::new(&spec, vec![p0, p1]);
        let result = sys.run(10_000);
        assert!(result.is_clean_completion());
        // Homogeneous MESI platform: both end Shared.
        assert_eq!(sys.cache(0).line_state(a), Some(LineState::Shared));
        assert_eq!(sys.cache(1).line_state(a), Some(LineState::Shared));
    }

    #[test]
    fn write_read_transfer_through_drain() {
        let (spec, lay) = two_mesi_spec(Strategy::Proposed);
        let a = lay.shared_base;
        let p0 = ProgramBuilder::new().write(a, 7).build();
        let p1 = ProgramBuilder::new().delay(80).read(a).build();
        let mut sys = System::new(&spec, vec![p0, p1]);
        let result = sys.run(10_000);
        assert!(result.is_clean_completion(), "{result}");
        // P0's dirty line was drained by P1's read snoop.
        assert_eq!(sys.cache(0).line_state(a), Some(LineState::Shared));
        assert_eq!(sys.cache(1).line_state(a), Some(LineState::Shared));
        assert_eq!(sys.cache(1).peek_word(a), Some(7));
        assert_eq!(sys.memory().read_word(a), 7, "drain reached memory");
        assert!(result.bus.retries >= 1, "ARTRY path exercised");
        assert!(result.bus.drains >= 1);
    }

    #[test]
    fn upgrade_invalidates_remote_shared_copy() {
        let (spec, lay) = two_mesi_spec(Strategy::Proposed);
        let a = lay.shared_base;
        let p0 = ProgramBuilder::new().read(a).delay(100).write(a, 5).build();
        let p1 = ProgramBuilder::new().delay(40).read(a).build();
        let mut sys = System::new(&spec, vec![p0, p1]);
        let result = sys.run(10_000);
        assert!(result.is_clean_completion(), "{result}");
        assert_eq!(sys.cache(0).line_state(a), Some(LineState::Modified));
        assert_eq!(sys.cache(1).line_state(a), None, "upgrade invalidated P1");
        assert!(result.stats.get("cpu0.write_upgrade") >= 1);
    }

    #[test]
    fn uncached_shared_data_round_trip() {
        let (spec, lay) = two_mesi_spec(Strategy::CacheDisabled);
        let a = lay.shared_base;
        let p0 = ProgramBuilder::new().write(a, 9).build();
        let p1 = ProgramBuilder::new().delay(40).read(a).build();
        let mut sys = System::new(&spec, vec![p0, p1]);
        let result = sys.run(10_000);
        assert!(result.is_clean_completion(), "{result}");
        assert_eq!(sys.memory().read_word(a), 9);
        assert!(!sys.cache(0).contains(a), "shared data must not be cached");
        assert!(!sys.cache(1).contains(a));
        assert!(result.stats.get("cpu0.uncached_write") >= 1);
        assert!(result.stats.get("cpu1.uncached_read") >= 1);
    }

    #[test]
    fn turn_lock_alternates_critical_sections() {
        let (spec, lay) = two_mesi_spec(Strategy::Proposed);
        let a = lay.shared_base;
        // Both increment-ish: each writes its id then reads. Lock keeps
        // them alternating; checker keeps them honest.
        let p0 = ProgramBuilder::new()
            .repeat(3, |b| b.acquire(0).read(a).write(a, 1).release(0))
            .build();
        let p1 = ProgramBuilder::new()
            .repeat(3, |b| b.acquire(0).read(a).write(a, 2).release(0))
            .build();
        let mut sys = System::new(&spec, vec![p0, p1]);
        let result = sys.run(200_000);
        assert!(result.is_clean_completion(), "{result}");
        assert_eq!(result.cpus[0].lock_acquires, 3);
        assert_eq!(result.cpus[1].lock_acquires, 3);
        assert_eq!(result.cpus[0].lock_releases, 3);
    }

    #[test]
    fn hardware_lock_register_device() {
        let (lay, map) = layout(2, Strategy::Proposed, LockKind::HardwareRegister, false);
        let lock = LockLayout::new(LockKind::HardwareRegister, lay.lock_base, 2);
        let spec = PlatformSpec::new(
            vec![
                CpuSpec::generic("P0", ProtocolKind::Mesi),
                CpuSpec::generic("P1", ProtocolKind::Mesi),
            ],
            map,
            lock,
        );
        let a = lay.shared_base;
        let p0 = ProgramBuilder::new()
            .repeat(2, |b| b.acquire(0).write(a, 1).release(0))
            .build();
        let p1 = ProgramBuilder::new()
            .repeat(2, |b| b.acquire(0).write(a, 2).release(0))
            .build();
        let mut sys = System::new(&spec, vec![p0, p1]);
        let result = sys.run(100_000);
        assert!(result.is_clean_completion(), "{result}");
        assert_eq!(
            result.cpus[0].lock_acquires + result.cpus[1].lock_acquires,
            4
        );
    }

    #[test]
    fn mei_mesi_reduces_and_stays_coherent() {
        let (lay, map) = layout(2, Strategy::Proposed, LockKind::Turn, false);
        let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 2);
        let spec = PlatformSpec::new(
            vec![
                CpuSpec::generic("mesi", ProtocolKind::Mesi),
                CpuSpec::generic("mei", ProtocolKind::Mei),
            ],
            map,
            lock,
        );
        let a = lay.shared_base;
        // The Table 2 sequence: P0 reads, P1 reads, P1 writes, P0 reads.
        let p0 = ProgramBuilder::new().read(a).delay(200).read(a).build();
        let p1 = ProgramBuilder::new().delay(60).read(a).write(a, 77).build();
        let mut sys = System::new(&spec, vec![p0, p1]);
        assert_eq!(sys.system_protocol(), Some(ProtocolKind::Mei));
        let result = sys.run(10_000);
        assert!(
            result.is_clean_completion(),
            "wrappers must prevent the Table 2 stale read: {result}"
        );
        // The final read must see 77.
        assert_eq!(sys.cache(0).peek_word(a), Some(77));
    }

    #[test]
    fn transparent_wrappers_reproduce_table2_stale_read() {
        let (lay, map) = layout(2, Strategy::Proposed, LockKind::Turn, false);
        let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 2);
        let mut spec = PlatformSpec::new(
            vec![
                CpuSpec::generic("mesi", ProtocolKind::Mesi),
                CpuSpec::generic("mei", ProtocolKind::Mei),
            ],
            map,
            lock,
        );
        spec.wrapper_mode = WrapperMode::Transparent;
        let a = lay.shared_base;
        let p0 = ProgramBuilder::new().read(a).delay(200).read(a).build();
        let p1 = ProgramBuilder::new().delay(60).read(a).write(a, 77).build();
        let mut sys = System::new(&spec, vec![p0, p1]);
        let result = sys.run(10_000);
        assert_eq!(result.outcome, RunOutcome::Completed);
        assert!(
            !result.violations.is_empty(),
            "naive MEI+MESI integration must produce the stale read"
        );
        let v = result.violations[0];
        assert_eq!(v.cpu, 0);
        assert_eq!(v.expected, 77);
    }

    #[test]
    fn pf2_cam_interrupt_drains_arm_line() {
        let (lay, map) = layout(2, Strategy::Proposed, LockKind::Turn, false);
        let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 2);
        let spec = PlatformSpec::new(vec![CpuSpec::powerpc755(), CpuSpec::arm920t()], map, lock);
        let a = lay.shared_base;
        // ARM dirties the line, then idles; PowerPC reads it later.
        let arm = ProgramBuilder::new().write(a, 123).build();
        let ppc = ProgramBuilder::new().delay(200).read(a).build();
        let mut sys = System::new(&spec, vec![ppc, arm]);
        assert_eq!(sys.platform_class().to_string(), "PF2");
        let result = sys.run(100_000);
        assert!(result.is_clean_completion(), "{result}");
        assert_eq!(sys.cache(0).peek_word(a), Some(123), "PPC sees ARM's write");
        assert!(result.cpus[1].isr_entries >= 1, "ARM took the nFIQ");
        assert!(result.stats.get("bus.retry.cam") >= 1);
        assert_eq!(sys.memory().read_word(a), 123, "ISR drained to memory");
    }

    #[test]
    fn victim_writeback_preserves_data() {
        // A tiny cache forces evictions: 2 sets × 1 way.
        let (lay, map) = layout(1, Strategy::Proposed, LockKind::Turn, false);
        let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 1);
        let mut spec =
            PlatformSpec::new(vec![CpuSpec::generic("P0", ProtocolKind::Mesi)], map, lock);
        spec.cpus[0].cache = hmp_cache::CacheConfig { sets: 2, ways: 1 };
        let a = lay.shared_base;
        let b = a.add_lines(2); // same set, different tag
        let p = ProgramBuilder::new()
            .write(a, 1)
            .write(b, 2) // evicts dirty `a`
            .read(a) // refetches from memory
            .build();
        let mut sys = System::new(&spec, vec![p]);
        let result = sys.run(10_000);
        assert!(result.is_clean_completion(), "{result}");
        assert_eq!(sys.memory().read_word(a), 1);
        assert!(result.stats.get("cpu0.victim_writeback") >= 1);
    }

    #[test]
    fn finished_and_debug() {
        let (spec, _) = two_mesi_spec(Strategy::Proposed);
        let mut sys = System::new(&spec, vec![hmp_cpu::Program::empty(); 2]);
        assert!(!format!("{sys:?}").is_empty());
        let r = sys.run(100);
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert!(sys.finished());
    }
}
