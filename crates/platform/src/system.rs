//! The assembled platform and its cycle loop.

use crate::{
    CoherenceChecker, PlatformSpec, RunOutcome, RunResult, WrapperMode,
};
use hmp_bus::{
    AddressOutcome, Bus, BusDevice, BusOp, BusPhase, CompletedTxn, GrantedTxn, LockRegister,
    MasterId,
};
use hmp_cache::{Access, DataCache, ProtocolKind, ReadProbe, SnoopAction, WriteProbe};
use hmp_core::{
    classify_platform, reduce, CoherenceSupport, PlatformClass, SnoopLogic, Wrapper,
    WrapperPolicy,
};
use hmp_cpu::{Cpu, CpuAction, CpuConfig, LockKind, MemRequest, MemResult, Program, ReqKind};
use hmp_mem::{Addr, MemAttr, Memory, MemoryController, MemoryMap};
use hmp_sim::{ClockDomain, Cycle, Stats, TraceBuffer, Watchdog, WatchdogVerdict};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendingKind {
    /// Single-word bus operation (uncached, device, write-through store,
    /// no-allocate store).
    Word { attr: MemAttr },
    /// Line fill in flight.
    Fill {
        access: Access,
        value: Option<u32>,
        wt: bool,
    },
    /// Upgrade broadcast in flight.
    Upgrade { value: u32 },
    /// Flush write-back in flight.
    FlushWb,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    req: MemRequest,
    kind: PendingKind,
}

struct Node {
    cpu: Cpu,
    cache: DataCache,
    wrapper: Option<Wrapper>,
    cam: Option<SnoopLogic>,
    pending: Option<Pending>,
}

/// The running platform: CPUs, wrappers, snoop logic, bus, memory,
/// checker.
///
/// Construct with [`System::new`] (or a preset from [`crate::presets`]),
/// then either [`System::run`] to completion or [`System::step`] one bus
/// cycle at a time for fine-grained tests.
pub struct System {
    nodes: Vec<Node>,
    bus: Bus,
    mem: MemoryController,
    map: MemoryMap,
    devices: Vec<Box<dyn BusDevice>>,
    checker: Option<CoherenceChecker>,
    watchdog: Watchdog,
    trace: TraceBuffer,
    stats: Stats,
    now: Cycle,
    class: PlatformClass,
    system_protocol: Option<ProtocolKind>,
    snoop_logic_enabled: bool,
}

impl System {
    /// Builds a platform from its spec, loading one program per CPU.
    ///
    /// A [`LockRegister`] device is attached automatically when the spec's
    /// lock kind is [`LockKind::HardwareRegister`].
    ///
    /// # Panics
    ///
    /// Panics if the program count does not match the CPU count, or if the
    /// spec mixes protocols the reduction lattice rejects.
    pub fn new(spec: &PlatformSpec, programs: Vec<Program>) -> Self {
        assert_eq!(
            programs.len(),
            spec.cpus.len(),
            "one program per processor"
        );
        let support: Vec<CoherenceSupport> =
            spec.cpus.iter().map(|c| c.coherence).collect();
        let class = classify_platform(&support);
        let native: Vec<ProtocolKind> =
            support.iter().filter_map(|s| s.protocol()).collect();
        let system_protocol = if native.is_empty() {
            None
        } else {
            Some(reduce(&native).expect("native protocols reduce"))
        };

        let mut nodes = Vec::with_capacity(spec.cpus.len());
        for (i, (cs, program)) in spec.cpus.iter().zip(programs).enumerate() {
            let (cache_protocol, wrapper, cam) = match cs.coherence {
                CoherenceSupport::Native(own) => {
                    let policy = match spec.wrapper_mode {
                        WrapperMode::Paper => None, // derive below
                        WrapperMode::Transparent => Some(WrapperPolicy::TRANSPARENT),
                    };
                    let wrapper = match policy {
                        Some(p) => Wrapper::new(own, p),
                        None => Wrapper::for_system(
                            own,
                            system_protocol.expect("native CPU implies protocols"),
                        ),
                    };
                    (own, Some(wrapper), None)
                }
                // A non-coherent processor still has a write-back cache;
                // MEI models it exactly (fills E, silent E→M, no snooping —
                // and indeed its snoop port is never wired up).
                CoherenceSupport::None => {
                    let cam = match cs.cam_geometry {
                        Some((sets, ways)) => SnoopLogic::with_geometry(sets, ways),
                        None => SnoopLogic::new(),
                    };
                    (ProtocolKind::Mei, None, Some(cam))
                }
            };
            let cpu = Cpu::new(
                i,
                CpuConfig {
                    clock: ClockDomain::new(cs.clock_mult),
                    isr: cs.isr,
                    lock_layout: spec.lock,
                    lock_party: i as u32,
                },
                program,
            );
            nodes.push(Node {
                cpu,
                cache: DataCache::new(cs.cache, cache_protocol),
                wrapper,
                cam,
                pending: None,
            });
        }

        let mut devices: Vec<Box<dyn BusDevice>> = Vec::new();
        if spec.lock.kind == LockKind::HardwareRegister {
            devices.push(Box::new(LockRegister::new(16)));
        }

        let mut bus = Bus::new(nodes.len());
        bus.set_arbitration(spec.arbitration);
        bus.set_retry_backoff(spec.retry_backoff);
        System {
            bus,
            nodes,
            mem: MemoryController::new(Memory::new(spec.memory_bytes), spec.latency),
            map: spec.map.clone(),
            devices,
            checker: spec
                .check_coherence
                .then(|| CoherenceChecker::new(spec.memory_bytes, 64)),
            watchdog: Watchdog::new(Cycle::new(spec.watchdog_window)),
            trace: TraceBuffer::new(spec.trace_capacity),
            stats: Stats::new(),
            now: Cycle::ZERO,
            class,
            system_protocol,
            snoop_logic_enabled: true,
        }
    }

    /// Disables the TAG-CAM snoop logic (used by the cache-disabled and
    /// software-drain baselines, which exist precisely to avoid needing
    /// that hardware).
    pub fn set_snoop_logic_enabled(&mut self, enabled: bool) {
        self.snoop_logic_enabled = enabled;
    }

    /// Attaches an extra bus device; its index must match the
    /// [`MemAttr::Device`] ids in the memory map.
    pub fn add_device(&mut self, device: Box<dyn BusDevice>) -> u32 {
        self.devices.push(device);
        (self.devices.len() - 1) as u32
    }

    /// Current bus time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The Table 1 platform class.
    pub fn platform_class(&self) -> PlatformClass {
        self.class
    }

    /// The reduced system protocol, if any processor is coherent.
    pub fn system_protocol(&self) -> Option<ProtocolKind> {
        self.system_protocol
    }

    /// A CPU, by master index.
    pub fn cpu(&self, i: usize) -> &Cpu {
        &self.nodes[i].cpu
    }

    /// A data cache, by master index.
    pub fn cache(&self, i: usize) -> &DataCache {
        &self.nodes[i].cache
    }

    /// A wrapper, by master index (None for non-coherent processors).
    pub fn wrapper(&self, i: usize) -> Option<&Wrapper> {
        self.nodes[i].wrapper.as_ref()
    }

    /// The snoop logic, by master index (None for coherent processors).
    pub fn snoop_logic(&self, i: usize) -> Option<&SnoopLogic> {
        self.nodes[i].cam.as_ref()
    }

    /// The backing memory (for fixtures and assertions).
    pub fn memory(&self) -> &Memory {
        self.mem.memory()
    }

    /// Mutable backing memory (test fixtures). Also updates the golden
    /// image so the checker treats the poked values as committed.
    pub fn poke_word(&mut self, addr: Addr, value: u32) {
        self.mem.write_word(addr, value);
        if let Some(c) = &mut self.checker {
            c.on_write(addr, value);
        }
    }

    /// Platform counters accumulated so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The trace ring.
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// The coherence checker, if enabled.
    pub fn checker(&self) -> Option<&CoherenceChecker> {
        self.checker.as_ref()
    }

    /// `true` once every program halted and all bus work drained.
    pub fn finished(&self) -> bool {
        self.nodes.iter().all(|n| n.cpu.is_halted())
            && self.bus.phase() == BusPhase::Idle
            && self.bus.queued_drains() == 0
            && self
                .nodes
                .iter()
                .all(|n| n.cam.as_ref().is_none_or(|c| !c.nfiq()))
    }

    /// Advances the platform by one bus cycle.
    pub fn step(&mut self) {
        self.now.tick();
        self.step_bus();
        self.step_cpus();
    }

    /// Runs until completion, watchdog stall, or `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> RunResult {
        let outcome = loop {
            if self.finished() {
                break RunOutcome::Completed;
            }
            if self.now.as_u64() >= max_cycles {
                break RunOutcome::CycleLimit;
            }
            self.step();
            let progress: u64 = self.nodes.iter().map(|n| n.cpu.committed()).sum();
            if self.watchdog.poll(self.now, progress) == WatchdogVerdict::Stalled {
                break RunOutcome::Stalled;
            }
        };
        RunResult {
            outcome,
            cycles: self.now,
            bus: self.bus.stats(),
            cpus: self.nodes.iter().map(|n| n.cpu.counters()).collect(),
            stats: self.stats.clone(),
            violations: self
                .checker
                .as_ref()
                .map(|c| c.violations().to_vec())
                .unwrap_or_default(),
        }
    }

    // ------------------------------------------------------------------
    // Bus side
    // ------------------------------------------------------------------

    fn step_bus(&mut self) {
        self.bus.begin_cycle();
        match self.bus.phase() {
            BusPhase::Idle => {
                if let Some(txn) = self.bus.try_grant() {
                    if self.trace.is_enabled() {
                        self.trace.record(
                            self.now,
                            "bus",
                            format!(
                                "grant {} {} {}{}",
                                txn.master,
                                txn.op,
                                txn.addr,
                                if txn.is_retry { " (retry)" } else { "" }
                            ),
                        );
                    }
                    let outcome = self.snoop_and_decide(&txn);
                    if matches!(outcome, AddressOutcome::Retry) && self.trace.is_enabled() {
                        self.trace
                            .record(self.now, "bus", format!("ARTRY {} {}", txn.master, txn.addr));
                    }
                    if let Some(done) = self.bus.resolve(outcome) {
                        self.complete_txn(done);
                    }
                }
            }
            BusPhase::Data { .. } => {
                if let Some(done) = self.bus.advance_data() {
                    self.complete_txn(done);
                }
            }
            BusPhase::Address => unreachable!("address phases resolve within their grant cycle"),
        }
    }

    fn snoop_and_decide(&mut self, txn: &GrantedTxn) -> AddressOutcome {
        let addr = txn.addr;
        // Write-buffer interlocks (CPU transactions only; drains *are* the
        // buffers being emptied).
        if !txn.is_drain && self.bus.drain_pending_to(addr) {
            self.stats.incr("bus.retry.wb_buffer");
            return AddressOutcome::Retry;
        }

        let mut shared = false;
        let mut supplied = None;
        let mut retry = false;
        let mut drains: Vec<(usize, [u32; 8])> = Vec::new();
        for j in 0..self.nodes.len() {
            if j == txn.master.index() {
                continue;
            }
            let node = &mut self.nodes[j];
            if let Some(wrapper) = &mut node.wrapper {
                let sop = wrapper.translate_snoop(&txn.op);
                if let Some(reply) = node.cache.snoop(addr, sop) {
                    self.stats.incr(&format!("cpu{j}.snoop_hit"));
                    if reply.asserts_shared {
                        shared = true;
                    }
                    match reply.action {
                        SnoopAction::None => {}
                        SnoopAction::WritebackLine => {
                            drains.push((j, reply.data.expect("writeback carries data")));
                            retry = true;
                            self.stats.incr(&format!("cpu{j}.snoop_drain"));
                            self.stats.incr("bus.retry.snoop_drain");
                        }
                        SnoopAction::SupplyLine => {
                            supplied = Some(reply.data.expect("supply carries data"));
                            self.stats.incr(&format!("cpu{j}.cache_to_cache"));
                        }
                    }
                }
            } else if self.snoop_logic_enabled {
                if let Some(cam) = &mut node.cam {
                    if cam.check_remote(addr) {
                        retry = true;
                        self.stats.incr("bus.retry.cam");
                        self.stats.incr(&format!("cpu{j}.cam_hit"));
                    }
                }
            }
        }
        for (j, data) in drains {
            self.bus.submit_drain(MasterId(j), data, addr);
        }
        if retry {
            return AddressOutcome::Retry;
        }

        let data_cycles = match txn.op {
            BusOp::ReadLine | BusOp::ReadLineExcl | BusOp::WriteLine(_) => {
                if supplied.is_some() {
                    // Cache-to-cache transfers stream a word per bus cycle.
                    u64::from(hmp_mem::LINE_WORDS)
                } else {
                    self.mem.line_fill_latency().as_u64()
                }
            }
            BusOp::ReadWord | BusOp::WriteWord(_) => self.mem.word_latency().as_u64(),
            BusOp::Upgrade => 0,
        };
        AddressOutcome::Proceed {
            data_cycles,
            shared,
            supplied,
        }
    }

    fn complete_txn(&mut self, done: CompletedTxn) {
        let m = done.master.index();
        if done.is_drain {
            let BusOp::WriteLine(data) = done.op else {
                unreachable!("drains are line writes");
            };
            self.mem.write_line(done.addr, &data);
            if let Some(cam) = &mut self.nodes[m].cam {
                cam.observe_local_writeback(done.addr);
            }
            return;
        }

        let pending = self.nodes[m]
            .pending
            .take()
            .expect("completed CPU transaction has a pending record");
        match (done.op, pending.kind) {
            (BusOp::ReadWord, PendingKind::Word { attr }) => {
                let value = match attr {
                    MemAttr::Device(id) => self.devices[id as usize].read_word(done.addr),
                    _ => {
                        let v = self.mem.read_word(done.addr);
                        if let Some(c) = &mut self.checker {
                            c.on_read(self.now, m, done.addr, v);
                        }
                        v
                    }
                };
                self.stats.incr(&format!("cpu{m}.uncached_read"));
                self.nodes[m].cpu.complete_mem(MemResult::Value(value));
            }
            (BusOp::WriteWord(v), PendingKind::Word { attr }) => {
                match attr {
                    MemAttr::Device(id) => self.devices[id as usize].write_word(done.addr, v),
                    _ => {
                        self.mem.write_word(done.addr, v);
                        if let Some(c) = &mut self.checker {
                            c.on_write(done.addr, v);
                        }
                    }
                }
                self.stats.incr(&format!("cpu{m}.uncached_write"));
                self.nodes[m].cpu.complete_mem(MemResult::Done);
            }
            (BusOp::ReadLine | BusOp::ReadLineExcl, PendingKind::Fill { access, value, wt }) => {
                let line = done.addr.line_base();
                let data = done.supplied.unwrap_or_else(|| self.mem.read_line(line));
                let gated_shared = match &mut self.nodes[m].wrapper {
                    Some(w) => w.gate_shared(done.shared),
                    None => false,
                };
                self.nodes[m].cache.fill(line, data, access, gated_shared, wt);
                if let Some(cam) = &mut self.nodes[m].cam {
                    cam.observe_local_fill(line);
                }
                match access {
                    Access::Read => {
                        let v = data[done.addr.word_offset_in_line() as usize];
                        if let Some(c) = &mut self.checker {
                            c.on_read(self.now, m, done.addr, v);
                        }
                        self.nodes[m].cpu.complete_mem(MemResult::Value(v));
                    }
                    Access::Write => {
                        let v = value.expect("write fills carry the store value");
                        self.nodes[m].cache.commit_write(done.addr, v);
                        if let Some(c) = &mut self.checker {
                            c.on_write(done.addr, v);
                        }
                        self.nodes[m].cpu.complete_mem(MemResult::Done);
                    }
                }
            }
            (BusOp::Upgrade, PendingKind::Upgrade { value }) => {
                if self.nodes[m].cache.complete_upgrade(done.addr, value) {
                    if let Some(c) = &mut self.checker {
                        c.on_write(done.addr, value);
                    }
                    self.nodes[m].cpu.complete_mem(MemResult::Done);
                } else {
                    // The line was snoop-invalidated while the upgrade
                    // waited: restart the store as a write miss.
                    self.stats.incr(&format!("cpu{m}.upgrade_lost"));
                    self.dispatch_write_miss(m, pending.req, value, false);
                }
            }
            (BusOp::WriteLine(data), PendingKind::FlushWb) => {
                self.mem.write_line(done.addr, &data);
                if let Some(cam) = &mut self.nodes[m].cam {
                    cam.observe_local_writeback(done.addr);
                    if pending.req.from_isr {
                        cam.ack(done.addr);
                        self.stats.incr(&format!("cpu{m}.isr_drain_dirty"));
                    }
                }
                self.stats.incr(&format!("cpu{m}.flush_dirty"));
                self.nodes[m].cpu.complete_maintenance();
            }
            (op, kind) => unreachable!("mismatched completion: {op} vs {kind:?}"),
        }
    }

    // ------------------------------------------------------------------
    // CPU side
    // ------------------------------------------------------------------

    fn step_cpus(&mut self) {
        for i in 0..self.nodes.len() {
            let nfiq = if self.snoop_logic_enabled {
                self.nodes[i]
                    .cam
                    .as_ref()
                    .and_then(|c| c.next_pending())
            } else {
                None
            };
            self.nodes[i].cpu.set_nfiq_line(nfiq);
            let mult = self.nodes[i]
                .cpu
                .config()
                .clock
                .core_cycles_per_bus_cycle();
            for _ in 0..mult {
                match self.nodes[i].cpu.tick() {
                    CpuAction::Idle | CpuAction::Halted => {}
                    CpuAction::Issue(req) => self.handle_request(i, req),
                }
            }
        }
    }

    fn evict_victim(&mut self, i: usize, victim: Option<hmp_cache::EvictedLine>) {
        if let Some(v) = victim {
            if v.dirty {
                self.bus.submit_drain(MasterId(i), v.data, v.addr);
                self.stats.incr(&format!("cpu{i}.victim_writeback"));
            } else {
                self.stats.incr(&format!("cpu{i}.victim_clean"));
                // A clean eviction is invisible on the bus, so a TAG CAM
                // keeps a stale (conservative) entry — see SnoopLogic docs.
            }
        }
    }

    fn dispatch_write_miss(&mut self, i: usize, req: MemRequest, value: u32, wt: bool) {
        let probe = self.nodes[i].cache.probe_write(req.addr, value, wt);
        match probe {
            WriteProbe::Miss { victim } => {
                self.evict_victim(i, victim);
                self.bus.submit(MasterId(i), BusOp::ReadLineExcl, req.addr);
                self.nodes[i].pending = Some(Pending {
                    req,
                    kind: PendingKind::Fill {
                        access: Access::Write,
                        value: Some(value),
                        wt,
                    },
                });
            }
            other => unreachable!("restarted write miss cannot {other:?}"),
        }
    }

    fn handle_request(&mut self, i: usize, req: MemRequest) {
        let attr = self.map.classify(req.addr);
        match req.kind {
            ReqKind::Read => match attr {
                MemAttr::CachedWriteBack | MemAttr::CachedWriteThrough => {
                    let wt = attr == MemAttr::CachedWriteThrough;
                    match self.nodes[i].cache.probe_read(req.addr, wt) {
                        ReadProbe::Hit(v) => {
                            self.stats.incr(&format!("cpu{i}.read_hit"));
                            if let Some(c) = &mut self.checker {
                                c.on_read(self.now, i, req.addr, v);
                            }
                            self.nodes[i].cpu.complete_mem(MemResult::Value(v));
                        }
                        ReadProbe::Miss { victim } => {
                            self.stats.incr(&format!("cpu{i}.read_miss"));
                            self.evict_victim(i, victim);
                            self.bus.submit(MasterId(i), BusOp::ReadLine, req.addr);
                            self.nodes[i].pending = Some(Pending {
                                req,
                                kind: PendingKind::Fill {
                                    access: Access::Read,
                                    value: None,
                                    wt,
                                },
                            });
                        }
                    }
                }
                MemAttr::Uncached | MemAttr::Device(_) => {
                    self.bus.submit(MasterId(i), BusOp::ReadWord, req.addr);
                    self.nodes[i].pending = Some(Pending {
                        req,
                        kind: PendingKind::Word { attr },
                    });
                }
            },
            ReqKind::Write(value) => match attr {
                MemAttr::CachedWriteBack | MemAttr::CachedWriteThrough => {
                    let wt = attr == MemAttr::CachedWriteThrough;
                    match self.nodes[i].cache.probe_write(req.addr, value, wt) {
                        WriteProbe::Hit => {
                            self.stats.incr(&format!("cpu{i}.write_hit"));
                            if let Some(c) = &mut self.checker {
                                c.on_write(req.addr, value);
                            }
                            self.nodes[i].cpu.complete_mem(MemResult::Done);
                        }
                        WriteProbe::HitNeedsUpgrade => {
                            self.stats.incr(&format!("cpu{i}.write_upgrade"));
                            self.bus.submit(MasterId(i), BusOp::Upgrade, req.addr);
                            self.nodes[i].pending = Some(Pending {
                                req,
                                kind: PendingKind::Upgrade { value },
                            });
                        }
                        WriteProbe::HitWriteThrough => {
                            // Locally stored; the word must also reach
                            // memory. Golden commit happens at bus
                            // completion — remote access is interlocked on
                            // the pending word write until then.
                            self.stats.incr(&format!("cpu{i}.write_through"));
                            self.bus.submit(MasterId(i), BusOp::WriteWord(value), req.addr);
                            self.nodes[i].pending = Some(Pending {
                                req,
                                kind: PendingKind::Word { attr },
                            });
                        }
                        WriteProbe::Miss { victim } => {
                            self.stats.incr(&format!("cpu{i}.write_miss"));
                            self.evict_victim(i, victim);
                            self.bus.submit(MasterId(i), BusOp::ReadLineExcl, req.addr);
                            self.nodes[i].pending = Some(Pending {
                                req,
                                kind: PendingKind::Fill {
                                    access: Access::Write,
                                    value: Some(value),
                                    wt,
                                },
                            });
                        }
                        WriteProbe::MissNoAllocate => {
                            self.stats.incr(&format!("cpu{i}.write_no_allocate"));
                            self.bus.submit(MasterId(i), BusOp::WriteWord(value), req.addr);
                            self.nodes[i].pending = Some(Pending {
                                req,
                                kind: PendingKind::Word { attr },
                            });
                        }
                    }
                }
                MemAttr::Uncached | MemAttr::Device(_) => {
                    self.bus.submit(MasterId(i), BusOp::WriteWord(value), req.addr);
                    self.nodes[i].pending = Some(Pending {
                        req,
                        kind: PendingKind::Word { attr },
                    });
                }
            },
            ReqKind::Flush => {
                match self.nodes[i].cache.flush_line(req.addr) {
                    Some((true, data)) => {
                        self.bus
                            .submit(MasterId(i), BusOp::WriteLine(data), req.addr.line_base());
                        self.nodes[i].pending = Some(Pending {
                            req,
                            kind: PendingKind::FlushWb,
                        });
                    }
                    Some((false, _)) | None => {
                        // Clean or absent: no bus work.
                        self.stats.incr(&format!("cpu{i}.flush_clean"));
                        if req.from_isr {
                            if let Some(cam) = &mut self.nodes[i].cam {
                                cam.ack(req.addr);
                            }
                            self.stats.incr(&format!("cpu{i}.isr_drain_clean"));
                        }
                        self.nodes[i].cpu.complete_maintenance();
                    }
                }
            }
            ReqKind::Invalidate => {
                self.nodes[i].cache.invalidate_line(req.addr);
                self.stats.incr(&format!("cpu{i}.invalidate"));
                if req.from_isr {
                    if let Some(cam) = &mut self.nodes[i].cam {
                        cam.ack(req.addr);
                    }
                }
                self.nodes[i].cpu.complete_maintenance();
            }
        }
    }
}

impl core::fmt::Debug for System {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("System")
            .field("cpus", &self.nodes.len())
            .field("now", &self.now)
            .field("class", &self.class)
            .field("system_protocol", &self.system_protocol)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{layout, CpuSpec, PlatformSpec, Strategy};
    use hmp_cache::LineState;
    use hmp_cpu::{LockLayout, ProgramBuilder};

    fn two_mesi_spec(strategy: Strategy) -> (PlatformSpec, crate::MemLayout) {
        let (lay, map) = layout(2, strategy, LockKind::Turn, false);
        let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 2);
        let spec = PlatformSpec::new(
            vec![
                CpuSpec::generic("P0", ProtocolKind::Mesi),
                CpuSpec::generic("P1", ProtocolKind::Mesi),
            ],
            map,
            lock,
        );
        (spec, lay)
    }

    #[test]
    fn single_read_miss_fills_exclusive() {
        let (spec, lay) = two_mesi_spec(Strategy::Proposed);
        let a = lay.shared_base;
        let p0 = ProgramBuilder::new().read(a).build();
        let mut sys = System::new(&spec, vec![p0, hmp_cpu::Program::empty()]);
        sys.poke_word(a, 42);
        let result = sys.run(10_000);
        assert_eq!(result.outcome, RunOutcome::Completed);
        assert!(result.is_clean_completion());
        assert_eq!(sys.cache(0).line_state(a), Some(LineState::Exclusive));
        assert_eq!(sys.cache(0).peek_word(a), Some(42));
        // Timing: ~1 cycle issue + 1 grant + 13-cycle burst.
        assert!(result.cycles_u64() >= 14, "got {}", result.cycles_u64());
        assert!(result.cycles_u64() <= 20, "got {}", result.cycles_u64());
        assert_eq!(result.bus.grants, 1);
    }

    #[test]
    fn read_sharing_between_two_mesi_cpus() {
        let (spec, lay) = two_mesi_spec(Strategy::Proposed);
        let a = lay.shared_base;
        // P0 reads first; P1 reads later (delay keeps ordering).
        let p0 = ProgramBuilder::new().read(a).build();
        let p1 = ProgramBuilder::new().delay(60).read(a).build();
        let mut sys = System::new(&spec, vec![p0, p1]);
        let result = sys.run(10_000);
        assert!(result.is_clean_completion());
        // Homogeneous MESI platform: both end Shared.
        assert_eq!(sys.cache(0).line_state(a), Some(LineState::Shared));
        assert_eq!(sys.cache(1).line_state(a), Some(LineState::Shared));
    }

    #[test]
    fn write_read_transfer_through_drain() {
        let (spec, lay) = two_mesi_spec(Strategy::Proposed);
        let a = lay.shared_base;
        let p0 = ProgramBuilder::new().write(a, 7).build();
        let p1 = ProgramBuilder::new().delay(80).read(a).build();
        let mut sys = System::new(&spec, vec![p0, p1]);
        let result = sys.run(10_000);
        assert!(result.is_clean_completion(), "{result}");
        // P0's dirty line was drained by P1's read snoop.
        assert_eq!(sys.cache(0).line_state(a), Some(LineState::Shared));
        assert_eq!(sys.cache(1).line_state(a), Some(LineState::Shared));
        assert_eq!(sys.cache(1).peek_word(a), Some(7));
        assert_eq!(sys.memory().read_word(a), 7, "drain reached memory");
        assert!(result.bus.retries >= 1, "ARTRY path exercised");
        assert!(result.bus.drains >= 1);
    }

    #[test]
    fn upgrade_invalidates_remote_shared_copy() {
        let (spec, lay) = two_mesi_spec(Strategy::Proposed);
        let a = lay.shared_base;
        let p0 = ProgramBuilder::new().read(a).delay(100).write(a, 5).build();
        let p1 = ProgramBuilder::new().delay(40).read(a).build();
        let mut sys = System::new(&spec, vec![p0, p1]);
        let result = sys.run(10_000);
        assert!(result.is_clean_completion(), "{result}");
        assert_eq!(sys.cache(0).line_state(a), Some(LineState::Modified));
        assert_eq!(sys.cache(1).line_state(a), None, "upgrade invalidated P1");
        assert!(result.stats.get("cpu0.write_upgrade") >= 1);
    }

    #[test]
    fn uncached_shared_data_round_trip() {
        let (spec, lay) = two_mesi_spec(Strategy::CacheDisabled);
        let a = lay.shared_base;
        let p0 = ProgramBuilder::new().write(a, 9).build();
        let p1 = ProgramBuilder::new().delay(40).read(a).build();
        let mut sys = System::new(&spec, vec![p0, p1]);
        let result = sys.run(10_000);
        assert!(result.is_clean_completion(), "{result}");
        assert_eq!(sys.memory().read_word(a), 9);
        assert!(!sys.cache(0).contains(a), "shared data must not be cached");
        assert!(!sys.cache(1).contains(a));
        assert!(result.stats.get("cpu0.uncached_write") >= 1);
        assert!(result.stats.get("cpu1.uncached_read") >= 1);
    }

    #[test]
    fn turn_lock_alternates_critical_sections() {
        let (spec, lay) = two_mesi_spec(Strategy::Proposed);
        let a = lay.shared_base;
        // Both increment-ish: each writes its id then reads. Lock keeps
        // them alternating; checker keeps them honest.
        let p0 = ProgramBuilder::new()
            .repeat(3, |b| b.acquire(0).read(a).write(a, 1).release(0))
            .build();
        let p1 = ProgramBuilder::new()
            .repeat(3, |b| b.acquire(0).read(a).write(a, 2).release(0))
            .build();
        let mut sys = System::new(&spec, vec![p0, p1]);
        let result = sys.run(200_000);
        assert!(result.is_clean_completion(), "{result}");
        assert_eq!(result.cpus[0].lock_acquires, 3);
        assert_eq!(result.cpus[1].lock_acquires, 3);
        assert_eq!(result.cpus[0].lock_releases, 3);
    }

    #[test]
    fn hardware_lock_register_device() {
        let (lay, map) = layout(2, Strategy::Proposed, LockKind::HardwareRegister, false);
        let lock = LockLayout::new(LockKind::HardwareRegister, lay.lock_base, 2);
        let spec = PlatformSpec::new(
            vec![
                CpuSpec::generic("P0", ProtocolKind::Mesi),
                CpuSpec::generic("P1", ProtocolKind::Mesi),
            ],
            map,
            lock,
        );
        let a = lay.shared_base;
        let p0 = ProgramBuilder::new()
            .repeat(2, |b| b.acquire(0).write(a, 1).release(0))
            .build();
        let p1 = ProgramBuilder::new()
            .repeat(2, |b| b.acquire(0).write(a, 2).release(0))
            .build();
        let mut sys = System::new(&spec, vec![p0, p1]);
        let result = sys.run(100_000);
        assert!(result.is_clean_completion(), "{result}");
        assert_eq!(result.cpus[0].lock_acquires + result.cpus[1].lock_acquires, 4);
    }

    #[test]
    fn mei_mesi_reduces_and_stays_coherent() {
        let (lay, map) = layout(2, Strategy::Proposed, LockKind::Turn, false);
        let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 2);
        let spec = PlatformSpec::new(
            vec![
                CpuSpec::generic("mesi", ProtocolKind::Mesi),
                CpuSpec::generic("mei", ProtocolKind::Mei),
            ],
            map,
            lock,
        );
        let a = lay.shared_base;
        // The Table 2 sequence: P0 reads, P1 reads, P1 writes, P0 reads.
        let p0 = ProgramBuilder::new().read(a).delay(200).read(a).build();
        let p1 = ProgramBuilder::new().delay(60).read(a).write(a, 77).build();
        let mut sys = System::new(&spec, vec![p0, p1]);
        assert_eq!(sys.system_protocol(), Some(ProtocolKind::Mei));
        let result = sys.run(10_000);
        assert!(
            result.is_clean_completion(),
            "wrappers must prevent the Table 2 stale read: {result}"
        );
        // The final read must see 77.
        assert_eq!(sys.cache(0).peek_word(a), Some(77));
    }

    #[test]
    fn transparent_wrappers_reproduce_table2_stale_read() {
        let (lay, map) = layout(2, Strategy::Proposed, LockKind::Turn, false);
        let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 2);
        let mut spec = PlatformSpec::new(
            vec![
                CpuSpec::generic("mesi", ProtocolKind::Mesi),
                CpuSpec::generic("mei", ProtocolKind::Mei),
            ],
            map,
            lock,
        );
        spec.wrapper_mode = WrapperMode::Transparent;
        let a = lay.shared_base;
        let p0 = ProgramBuilder::new().read(a).delay(200).read(a).build();
        let p1 = ProgramBuilder::new().delay(60).read(a).write(a, 77).build();
        let mut sys = System::new(&spec, vec![p0, p1]);
        let result = sys.run(10_000);
        assert_eq!(result.outcome, RunOutcome::Completed);
        assert!(
            !result.violations.is_empty(),
            "naive MEI+MESI integration must produce the stale read"
        );
        let v = result.violations[0];
        assert_eq!(v.cpu, 0);
        assert_eq!(v.expected, 77);
    }

    #[test]
    fn pf2_cam_interrupt_drains_arm_line() {
        let (lay, map) = layout(2, Strategy::Proposed, LockKind::Turn, false);
        let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 2);
        let spec = PlatformSpec::new(
            vec![CpuSpec::powerpc755(), CpuSpec::arm920t()],
            map,
            lock,
        );
        let a = lay.shared_base;
        // ARM dirties the line, then idles; PowerPC reads it later.
        let arm = ProgramBuilder::new().write(a, 123).build();
        let ppc = ProgramBuilder::new().delay(200).read(a).build();
        let mut sys = System::new(&spec, vec![ppc, arm]);
        assert_eq!(sys.platform_class().to_string(), "PF2");
        let result = sys.run(100_000);
        assert!(result.is_clean_completion(), "{result}");
        assert_eq!(sys.cache(0).peek_word(a), Some(123), "PPC sees ARM's write");
        assert!(result.cpus[1].isr_entries >= 1, "ARM took the nFIQ");
        assert!(result.stats.get("bus.retry.cam") >= 1);
        assert_eq!(sys.memory().read_word(a), 123, "ISR drained to memory");
    }

    #[test]
    fn victim_writeback_preserves_data() {
        // A tiny cache forces evictions: 2 sets × 1 way.
        let (lay, map) = layout(1, Strategy::Proposed, LockKind::Turn, false);
        let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 1);
        let mut spec = PlatformSpec::new(
            vec![CpuSpec::generic("P0", ProtocolKind::Mesi)],
            map,
            lock,
        );
        spec.cpus[0].cache = hmp_cache::CacheConfig { sets: 2, ways: 1 };
        let a = lay.shared_base;
        let b = a.add_lines(2); // same set, different tag
        let p = ProgramBuilder::new()
            .write(a, 1)
            .write(b, 2) // evicts dirty `a`
            .read(a) // refetches from memory
            .build();
        let mut sys = System::new(&spec, vec![p]);
        let result = sys.run(10_000);
        assert!(result.is_clean_completion(), "{result}");
        assert_eq!(sys.memory().read_word(a), 1);
        assert!(result.stats.get("cpu0.victim_writeback") >= 1);
    }

    #[test]
    fn finished_and_debug() {
        let (spec, _) = two_mesi_spec(Strategy::Proposed);
        let mut sys = System::new(&spec, vec![hmp_cpu::Program::empty(); 2]);
        assert!(!format!("{sys:?}").is_empty());
        let r = sys.run(100);
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert!(sys.finished());
    }
}
