//! N-master fabric topologies.
//!
//! The paper's two-master wrapper scheme "can be easily extended to
//! platforms with more than two masters" (§2); this module is that
//! extension's platform description. A [`Topology`] names N masters —
//! each with its own protocol, wrapper configuration, clock ratio, and
//! (optionally) its own recovery policy — attached to one or more bus
//! segments joined by a **snooping bridge**.
//!
//! # The bridge model
//!
//! The bridge forwards every address phase combinationally: each cache
//! snoops every transaction on the fabric regardless of segment, so the
//! fabric arbitrates as a single domain and the coherence argument is
//! unchanged from the flat bus. What the bridge *does* cost is data
//! movement — a transaction whose data crosses it (requester and data
//! source on different segments) pays [`Topology::bridge_latency`] extra
//! data-phase cycles. Memory and the other slaves are homed on
//! segment 0. A single-segment topology is therefore byte-identical to
//! the pre-fabric flat bus by construction.
//!
//! # Protocol reduction
//!
//! [`Topology::reductions`] computes the per-segment GCS meet and the
//! fabric-wide meet via [`hmp_core::reduce_segments`]. Because the
//! reduction lattice is a chain, the fabric meet equals the flat
//! [`hmp_core::reduce`] over every coherent master — the per-segment
//! view documents how much protocol width each segment gives up to the
//! bridge.

use crate::{layout, CpuSpec, MemLayout, PlatformSpec, Strategy};
use hmp_bus::RecoveryPolicy;
use hmp_cache::ProtocolKind;
use hmp_core::{reduce_segments, ReduceError};
use hmp_cpu::{LockKind, LockLayout};

/// One master of the fabric: a processor, its home segment, and an
/// optional per-master recovery override.
#[derive(Debug, Clone)]
pub struct TopologyMaster {
    /// The processor (protocol, cache geometry, clock ratio, ISR/CAM).
    pub cpu: CpuSpec,
    /// Bus segment the master's port is attached to.
    pub segment: usize,
    /// Recovery override for this master; `None` uses the platform-wide
    /// [`PlatformSpec::recovery`] policy.
    pub recovery: Option<RecoveryPolicy>,
}

impl TopologyMaster {
    /// A master on segment 0 with no recovery override.
    pub fn new(cpu: CpuSpec) -> Self {
        TopologyMaster {
            cpu,
            segment: 0,
            recovery: None,
        }
    }

    /// Same master on a different segment.
    #[must_use]
    pub fn on_segment(mut self, segment: usize) -> Self {
        self.segment = segment;
        self
    }

    /// Same master with its own recovery policy.
    #[must_use]
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }
}

/// A fabric of N masters over one or more bridged bus segments.
#[derive(Debug, Clone)]
pub struct Topology {
    /// The masters, in bus-master order.
    pub masters: Vec<TopologyMaster>,
    /// Number of bus segments (≥ 1).
    pub segments: usize,
    /// Extra data-phase cycles paid when data crosses the bridge.
    pub bridge_latency: u64,
}

impl Topology {
    /// Default bridge crossing cost in bus cycles — one address forward
    /// plus a short store-and-forward of the critical word.
    pub const DEFAULT_BRIDGE_LATENCY: u64 = 4;

    /// A trivial topology: every CPU on one segment, no bridge. This is
    /// how the classic two-master presets are expressed.
    pub fn single_segment(cpus: Vec<CpuSpec>) -> Self {
        Topology {
            masters: cpus.into_iter().map(TopologyMaster::new).collect(),
            segments: 1,
            bridge_latency: 0,
        }
    }

    /// A homogeneous fabric: `n` generic processors speaking `protocol`
    /// at bus speed, split contiguously over `segments` segments with
    /// the default bridge latency. The symmetric shape the fairness
    /// sweeps measure (equal load → grant shares should approach 1/N
    /// under round-robin and FCFS).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `segments` is zero or exceeds `n`.
    pub fn uniform(protocol: ProtocolKind, n: usize, segments: usize) -> Self {
        assert!(n >= 1, "a fabric needs at least one master");
        assert!(
            (1..=n).contains(&segments),
            "need 1..=n segments so each is populated"
        );
        let masters = (0..n)
            .map(|i| {
                TopologyMaster::new(CpuSpec::generic(&format!("cpu{i}-{protocol}"), protocol))
                    .on_segment(i * segments / n)
            })
            .collect();
        Topology {
            masters,
            segments,
            bridge_latency: Self::DEFAULT_BRIDGE_LATENCY,
        }
    }

    /// Number of masters.
    pub fn len(&self) -> usize {
        self.masters.len()
    }

    /// `true` when the topology has no masters (always invalid).
    pub fn is_empty(&self) -> bool {
        self.masters.is_empty()
    }

    /// Master → segment, in bus-master order.
    pub fn segment_map(&self) -> Vec<usize> {
        self.masters.iter().map(|m| m.segment).collect()
    }

    /// Each master's native protocol (`None` for CAM-guarded processors).
    pub fn native_protocols(&self) -> Vec<Option<ProtocolKind>> {
        self.masters
            .iter()
            .map(|m| m.cpu.coherence.protocol())
            .collect()
    }

    /// Checks structural validity: at least one master, every master's
    /// segment in range, every segment populated.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first problem found.
    pub fn validate(&self) {
        assert!(!self.is_empty(), "a topology needs at least one master");
        assert!(self.segments >= 1, "a fabric needs at least one segment");
        for (i, m) in self.masters.iter().enumerate() {
            assert!(
                m.segment < self.segments,
                "master {i} ({}) on segment {} of a {}-segment fabric",
                m.cpu.name,
                m.segment,
                self.segments
            );
        }
        for seg in 0..self.segments {
            assert!(
                self.masters.iter().any(|m| m.segment == seg),
                "segment {seg} has no masters"
            );
        }
    }

    /// Per-segment GCS meets and the fabric-wide meet across the bridge.
    ///
    /// # Errors
    ///
    /// Propagates [`ReduceError`] from [`reduce_segments`] (only SI can
    /// actually fail; all-CAM segments reduce to `None`).
    #[allow(clippy::type_complexity)]
    pub fn reductions(
        &self,
    ) -> Result<(Vec<Option<ProtocolKind>>, Option<ProtocolKind>), ReduceError> {
        reduce_segments(&self.native_protocols(), &self.segment_map(), self.segments)
    }

    /// Builds the platform spec and memory layout for this topology on
    /// the standard address map: per-CPU private windows, one shared
    /// window, one lock window sized to N lock parties.
    ///
    /// # Panics
    ///
    /// Panics if the topology fails [`Topology::validate`].
    pub fn spec(
        &self,
        strategy: Strategy,
        lock_kind: LockKind,
        cacheable_locks: bool,
    ) -> (PlatformSpec, MemLayout) {
        self.validate();
        let n = self.masters.len();
        let (lay, map) = layout(n, strategy, lock_kind, cacheable_locks);
        let lock = LockLayout::new(lock_kind, lay.lock_base, n as u32);
        let cpus = self.masters.iter().map(|m| m.cpu.clone()).collect();
        let mut spec = PlatformSpec::new(cpus, map, lock);
        spec.segment_map = self.segment_map();
        spec.bridge_latency = if self.segments > 1 {
            self.bridge_latency
        } else {
            0
        };
        if self.masters.iter().any(|m| m.recovery.is_some()) {
            spec.recovery_overrides = self.masters.iter().map(|m| m.recovery).collect();
        }
        (spec, lay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmp_mem::MemAttr;
    use ProtocolKind::*;

    #[test]
    fn single_segment_is_trivial() {
        let topo = Topology::single_segment(vec![CpuSpec::powerpc755(), CpuSpec::arm920t()]);
        topo.validate();
        assert_eq!(topo.len(), 2);
        assert_eq!(topo.segment_map(), vec![0, 0]);
        assert_eq!(topo.native_protocols(), vec![Some(Mei), None]);
        let (spec, _) = topo.spec(Strategy::Proposed, LockKind::Turn, false);
        assert!(spec.segment_map.iter().all(|&s| s == 0));
        assert_eq!(spec.bridge_latency, 0, "no bridge on a flat bus");
        assert!(spec.recovery_overrides.is_empty());
    }

    #[test]
    fn uniform_splits_contiguously() {
        let topo = Topology::uniform(Mesi, 6, 2);
        topo.validate();
        assert_eq!(topo.segment_map(), vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(topo.bridge_latency, Topology::DEFAULT_BRIDGE_LATENCY);
        let topo = Topology::uniform(Mesi, 3, 2);
        assert_eq!(topo.segment_map(), vec![0, 0, 1]);
        let topo = Topology::uniform(Mesi, 8, 1);
        assert!(topo.segment_map().iter().all(|&s| s == 0));
    }

    #[test]
    fn spec_scales_layout_and_lock_parties() {
        let topo = Topology::uniform(Moesi, 4, 2);
        let (spec, lay) = topo.spec(Strategy::Proposed, LockKind::Turn, false);
        assert_eq!(spec.cpus.len(), 4);
        assert_eq!(spec.lock.parties, 4);
        assert_eq!(spec.segment_map, vec![0, 0, 1, 1]);
        assert_eq!(spec.bridge_latency, Topology::DEFAULT_BRIDGE_LATENCY);
        // Every CPU gets its own private window.
        for i in 0..4 {
            assert_eq!(spec.map.classify(lay.private(i)), MemAttr::CachedWriteBack);
        }
    }

    #[test]
    fn per_master_recovery_reaches_the_spec() {
        let policy = RecoveryPolicy {
            retry_budget: 3,
            escalation_backoff: 32,
            quarantine_after: 9,
        };
        let mut topo = Topology::uniform(Mesi, 3, 1);
        topo.masters[2] = topo.masters[2].clone().with_recovery(policy);
        let (spec, _) = topo.spec(Strategy::Proposed, LockKind::Turn, false);
        assert_eq!(spec.recovery_overrides, vec![None, None, Some(policy)]);
    }

    #[test]
    fn reductions_per_segment_and_fabric() {
        let mut topo = Topology::uniform(Moesi, 4, 2);
        topo.masters[3].cpu = CpuSpec::generic("cpu3-mei", Mei);
        let (per_seg, fabric) = topo.reductions().unwrap();
        assert_eq!(per_seg, vec![Some(Moesi), Some(Mei)]);
        assert_eq!(fabric, Some(Mei), "fabric meet equals flat reduce");
    }

    #[test]
    #[should_panic(expected = "has no masters")]
    fn empty_segment_rejected() {
        let mut topo = Topology::single_segment(vec![CpuSpec::powerpc755()]);
        topo.segments = 2;
        topo.validate();
    }

    #[test]
    #[should_panic(expected = "of a 1-segment fabric")]
    fn out_of_range_segment_rejected() {
        let topo = Topology {
            masters: vec![TopologyMaster::new(CpuSpec::powerpc755()).on_segment(1)],
            segments: 1,
            bridge_latency: 0,
        };
        topo.validate();
    }
}
