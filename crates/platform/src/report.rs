//! Post-run analysis: where did the cycles go?

use crate::RunResult;
use core::fmt;

/// A digested view of a [`RunResult`], answering the questions the
/// paper's evaluation section asks: how busy was the bus, how well did
/// the caches work, and how much of the time went to coherence actions
/// (drains, retries, interrupts).
///
/// # Examples
///
/// ```
/// use hmp_platform::{presets, Report, Strategy};
/// use hmp_cpu::{LockKind, ProgramBuilder};
///
/// let (spec, lay) = presets::ppc_arm(Strategy::Proposed, LockKind::Turn, false);
/// let p = ProgramBuilder::new().read(lay.shared_base).build();
/// let mut sys = presets::instantiate(&spec, Strategy::Proposed,
///     vec![p, ProgramBuilder::new().build()]);
/// let result = sys.run(100_000);
/// let report = Report::from_result(&result);
/// assert!(report.bus_utilisation <= 1.0);
/// println!("{report}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Execution time in bus cycles.
    pub cycles: u64,
    /// Fraction of bus cycles spent streaming data (0.0–1.0).
    pub bus_utilisation: f64,
    /// Fraction of grants that were killed by ARTRY.
    pub retry_rate: f64,
    /// Snoop-push write-backs (dirty-line handovers).
    pub drains: u64,
    /// Per-CPU digests, in master order.
    pub cpus: Vec<CpuReport>,
}

/// Per-processor digest.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuReport {
    /// Data-cache hits (reads + writes served locally).
    pub cache_hits: u64,
    /// Data-cache misses (line fills).
    pub cache_misses: u64,
    /// Hit rate over cacheable accesses (0.0–1.0; 1.0 when idle).
    pub hit_rate: f64,
    /// Upgrade broadcasts paid for Shared-line stores.
    pub upgrades: u64,
    /// Uncached/device single-word accesses.
    pub uncached_ops: u64,
    /// Lock-protocol memory operations (spins included).
    pub lock_ops: u64,
    /// Snoop-ISR invocations (non-coherent processors only).
    pub isr_entries: u64,
    /// Core cycles spent inside the snoop ISR.
    pub isr_cycles: u64,
}

impl Report {
    /// Digests a finished run.
    pub fn from_result(result: &RunResult) -> Self {
        let cycles = result.cycles.as_u64().max(1);
        let cpus = result
            .cpus
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let hits = result.stats.get(&format!("cpu{i}.read_hit"))
                    + result.stats.get(&format!("cpu{i}.write_hit"))
                    + result.stats.get(&format!("cpu{i}.write_through"))
                    + result.stats.get(&format!("cpu{i}.write_upgrade"));
                let misses = result.stats.get(&format!("cpu{i}.read_miss"))
                    + result.stats.get(&format!("cpu{i}.write_miss"));
                let total = hits + misses;
                CpuReport {
                    cache_hits: hits,
                    cache_misses: misses,
                    hit_rate: if total == 0 {
                        1.0
                    } else {
                        hits as f64 / total as f64
                    },
                    upgrades: result.stats.get(&format!("cpu{i}.write_upgrade")),
                    uncached_ops: result.stats.get(&format!("cpu{i}.uncached_read"))
                        + result.stats.get(&format!("cpu{i}.uncached_write")),
                    lock_ops: c.lock_mem_ops,
                    isr_entries: c.isr_entries,
                    isr_cycles: c.isr_cycles,
                }
            })
            .collect();
        Report {
            cycles: result.cycles.as_u64(),
            bus_utilisation: result.bus.data_cycles as f64 / cycles as f64,
            retry_rate: if result.bus.grants == 0 {
                0.0
            } else {
                result.bus.retries as f64 / result.bus.grants as f64
            },
            drains: result.bus.drains,
            cpus,
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} bus cycles | bus {:.1}% busy | {:.1}% of grants retried | {} drains",
            self.cycles,
            self.bus_utilisation * 100.0,
            self.retry_rate * 100.0,
            self.drains
        )?;
        for (i, c) in self.cpus.iter().enumerate() {
            writeln!(
                f,
                "cpu{i}: {:>5} hits / {:>4} misses ({:>5.1}% hit rate), \
                 {} upgrades, {} uncached, {} lock ops, {} ISRs ({} cycles)",
                c.cache_hits,
                c.cache_misses,
                c.hit_rate * 100.0,
                c.upgrades,
                c.uncached_ops,
                c.lock_ops,
                c.isr_entries,
                c.isr_cycles
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{presets, Strategy};
    use hmp_cpu::{LockKind, ProgramBuilder};

    fn run_wcs_like() -> RunResult {
        let (spec, lay) = presets::ppc_arm(Strategy::Proposed, LockKind::Turn, false);
        let x = lay.shared_base;
        let p0 = ProgramBuilder::new()
            .acquire(0)
            .read(x)
            .write(x, 1)
            .read(x)
            .release(0)
            .build();
        let p1 = ProgramBuilder::new()
            .acquire(0)
            .read(x)
            .write(x, 2)
            .release(0)
            .build();
        let mut sys = presets::instantiate(&spec, Strategy::Proposed, vec![p0, p1]);
        sys.run(100_000)
    }

    #[test]
    fn report_digests_a_real_run() {
        let result = run_wcs_like();
        assert!(result.is_clean_completion());
        let report = Report::from_result(&result);
        assert_eq!(report.cycles, result.cycles_u64());
        assert!(report.bus_utilisation > 0.0 && report.bus_utilisation <= 1.0);
        assert!(report.retry_rate >= 0.0 && report.retry_rate < 1.0);
        assert_eq!(report.cpus.len(), 2);
        // The PPC had at least one miss (first touch) and a hit (re-read).
        assert!(report.cpus[0].cache_misses >= 1);
        assert!(report.cpus[0].cache_hits >= 1);
        assert!(report.cpus[0].hit_rate > 0.0 && report.cpus[0].hit_rate < 1.0);
        // Both spun on the turn lock.
        assert!(report.cpus[0].lock_ops >= 2);
        assert!(report.cpus[1].lock_ops >= 2);
    }

    #[test]
    fn report_display_mentions_every_cpu() {
        let report = Report::from_result(&run_wcs_like());
        let s = report.to_string();
        assert!(s.contains("cpu0"));
        assert!(s.contains("cpu1"));
        assert!(s.contains("hit rate"));
        assert!(s.contains("bus cycles"));
    }

    #[test]
    fn idle_cpu_reports_full_hit_rate() {
        let (spec, _) = presets::ppc_arm(Strategy::Proposed, LockKind::Turn, false);
        let mut sys = presets::instantiate(
            &spec,
            Strategy::Proposed,
            vec![ProgramBuilder::new().build(), ProgramBuilder::new().build()],
        );
        let result = sys.run(100);
        let report = Report::from_result(&result);
        assert_eq!(report.cpus[0].hit_rate, 1.0);
        assert_eq!(report.drains, 0);
        assert_eq!(report.retry_rate, 0.0);
    }
}
