//! Golden-memory coherence checking.

use hmp_mem::Addr;
use hmp_sim::Cycle;

/// One detected stale read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// Bus time of the offending read.
    pub at: Cycle,
    /// The reading CPU.
    pub cpu: usize,
    /// The word read.
    pub addr: Addr,
    /// The globally last-committed value.
    pub expected: u32,
    /// What the CPU actually observed.
    pub got: u32,
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "[{}] cpu{} read {} = {:#x}, expected {:#x} (stale)",
            self.at.as_u64(),
            self.cpu,
            self.addr,
            self.got,
            self.expected
        )
    }
}

/// A golden memory image updated at every committed write and compared at
/// every committed read.
///
/// On a single shared bus with blocking caches the platform is
/// sequentially consistent *when coherence holds*, so "every read returns
/// the most recently committed write" is exactly the property the paper's
/// wrappers exist to restore. Running the naive (transparent-wrapper)
/// integration of paper Tables 2 and 3 under this checker reports the
/// stale reads those tables illustrate; running the wrapped platform
/// reports none — that contrast is the core correctness test of this
/// reproduction.
#[derive(Debug, Clone)]
pub struct CoherenceChecker {
    golden: Vec<u32>,
    violations: Vec<Violation>,
    checked_reads: u64,
    max_recorded: usize,
}

impl CoherenceChecker {
    /// Creates a checker for a memory of `size_bytes`, keeping at most
    /// `max_recorded` violation records (counting continues past that).
    pub fn new(size_bytes: u32, max_recorded: usize) -> Self {
        CoherenceChecker {
            golden: vec![0; (size_bytes / 4) as usize],
            violations: Vec::new(),
            checked_reads: 0,
            max_recorded,
        }
    }

    /// Cross-run reset: zeroes the golden image and forgets recorded
    /// violations, reusing both allocations.
    pub fn reset(&mut self) {
        self.golden.fill(0);
        self.violations.clear();
        self.checked_reads = 0;
    }

    /// Records a committed write of `value` to `addr`.
    pub fn on_write(&mut self, addr: Addr, value: u32) {
        self.golden[addr.word_index()] = value;
    }

    /// Checks a committed read; records a violation if stale.
    pub fn on_read(&mut self, at: Cycle, cpu: usize, addr: Addr, got: u32) {
        self.checked_reads += 1;
        let expected = self.golden[addr.word_index()];
        if expected != got {
            if self.violations.len() < self.max_recorded {
                self.violations.push(Violation {
                    at,
                    cpu,
                    addr,
                    expected,
                    got,
                });
            } else {
                // Keep counting without storing.
                self.checked_reads = self.checked_reads.wrapping_add(0);
            }
        }
    }

    /// The current golden value of a word.
    pub fn golden(&self, addr: Addr) -> u32 {
        self.golden[addr.word_index()]
    }

    /// Recorded violations (bounded by the construction limit).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Total reads checked.
    pub fn checked_reads(&self) -> u64 {
        self.checked_reads
    }

    /// Returns `true` if no stale read was recorded.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_sequence() {
        let mut c = CoherenceChecker::new(256, 16);
        c.on_write(Addr::new(0x10), 7);
        c.on_read(Cycle::new(1), 0, Addr::new(0x10), 7);
        c.on_read(Cycle::new(2), 1, Addr::new(0x14), 0);
        assert!(c.is_clean());
        assert_eq!(c.checked_reads(), 2);
        assert_eq!(c.golden(Addr::new(0x10)), 7);
    }

    #[test]
    fn stale_read_detected() {
        let mut c = CoherenceChecker::new(256, 16);
        c.on_write(Addr::new(0x10), 7);
        c.on_write(Addr::new(0x10), 8);
        c.on_read(Cycle::new(5), 1, Addr::new(0x10), 7);
        assert!(!c.is_clean());
        let v = c.violations()[0];
        assert_eq!(v.cpu, 1);
        assert_eq!(v.expected, 8);
        assert_eq!(v.got, 7);
        assert_eq!(v.at, Cycle::new(5));
        assert!(v.to_string().contains("stale"));
    }

    #[test]
    fn recording_is_bounded() {
        let mut c = CoherenceChecker::new(256, 2);
        c.on_write(Addr::new(0), 1);
        for i in 0..10 {
            c.on_read(Cycle::new(i), 0, Addr::new(0), 99);
        }
        assert_eq!(c.violations().len(), 2);
        assert_eq!(c.checked_reads(), 10);
    }
}
