//! Platform description types and the standard address map.

use core::fmt;
use hmp_bus::ArbitrationPolicy;
use hmp_cache::CacheConfig;
use hmp_core::CoherenceSupport;
use hmp_cpu::{IsrConfig, LockKind, LockLayout};
use hmp_mem::{Addr, LatencyModel, MemAttr, MemoryMap, Region};

/// How shared data is kept coherent — the three alternatives the paper's
/// §4 evaluates against each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Shared data is uncached; every access is a single-word bus
    /// transaction. (First baseline.)
    CacheDisabled,
    /// Shared data is cached and the program explicitly drains every used
    /// line before leaving the critical section. (Second baseline, the
    /// "software solution".)
    SoftwareDrain,
    /// Shared data is cached and the wrappers / snoop logic keep it
    /// coherent. (The paper's proposal.)
    Proposed,
}

impl Strategy {
    /// All three strategies, in the paper's presentation order.
    pub const ALL: [Strategy; 3] = [
        Strategy::CacheDisabled,
        Strategy::SoftwareDrain,
        Strategy::Proposed,
    ];

    /// Whether the shared-data window is cacheable under this strategy.
    pub fn shared_cacheable(self) -> bool {
        !matches!(self, Strategy::CacheDisabled)
    }

    /// Whether the workload generator must add explicit drain loops.
    pub fn needs_software_drain(self) -> bool {
        matches!(self, Strategy::SoftwareDrain)
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::CacheDisabled => write!(f, "cache-disabled"),
            Strategy::SoftwareDrain => write!(f, "software"),
            Strategy::Proposed => write!(f, "proposed"),
        }
    }
}

/// Whether wrappers apply the paper's coherence manipulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WrapperMode {
    /// Policies derived from the reduction lattice (the paper's design).
    Paper,
    /// Transparent wrappers: protocols interact naively. This is the
    /// *broken* integration of Tables 2 and 3 — used to demonstrate the
    /// stale reads the paper's wrappers prevent.
    Transparent,
}

impl fmt::Display for WrapperMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WrapperMode::Paper => write!(f, "paper"),
            WrapperMode::Transparent => write!(f, "transparent"),
        }
    }
}

/// One processor of the platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuSpec {
    /// Display name ("PowerPC755", "ARM920T", …).
    pub name: String,
    /// Core cycles per bus cycle (Table 4: PowerPC755 = 2, ARM920T = 1).
    pub clock_mult: u32,
    /// Native protocol, or [`CoherenceSupport::None`] for a processor that
    /// needs the TAG-CAM snoop logic.
    pub coherence: CoherenceSupport,
    /// Data-cache geometry.
    pub cache: CacheConfig,
    /// Snoop-ISR timing (relevant only for non-coherent processors).
    pub isr: IsrConfig,
    /// TAG-CAM geometry for non-coherent processors: `None` models the
    /// idealised full-map CAM; `Some((sets, ways))` a finite CAM whose
    /// overflows force capacity drain interrupts.
    pub cam_geometry: Option<(u32, u32)>,
}

impl CpuSpec {
    /// A PowerPC755: MEI, 32 KiB 8-way data cache, 100 MHz on the 50 MHz
    /// bus.
    pub fn powerpc755() -> Self {
        CpuSpec {
            name: "PowerPC755".into(),
            clock_mult: 2,
            coherence: CoherenceSupport::Native(hmp_cache::ProtocolKind::Mei),
            cache: CacheConfig { sets: 128, ways: 8 },
            isr: IsrConfig::default(),
            cam_geometry: None,
        }
    }

    /// An ARM920T: no coherence hardware, 16 KiB 64-way CAM data cache,
    /// 50 MHz.
    pub fn arm920t() -> Self {
        CpuSpec {
            name: "ARM920T".into(),
            clock_mult: 1,
            coherence: CoherenceSupport::None,
            cache: CacheConfig { sets: 8, ways: 64 },
            isr: IsrConfig::default(),
            cam_geometry: None,
        }
    }

    /// A Write-back Enhanced Intel486: 8 KiB 4-way cache speaking the
    /// paper's "modified MESI" — write-back lines behave as MEI, only
    /// write-through lines can be Shared (SI), which the platform realises
    /// by giving write-through *regions* SI lines. The processor registers
    /// as MESI so the reduction derives the INV-pin assertion (read→write
    /// conversion) its wrapper needs on a MEI bus (paper §3).
    pub fn intel486() -> Self {
        CpuSpec {
            name: "Intel486".into(),
            clock_mult: 1,
            coherence: CoherenceSupport::Native(hmp_cache::ProtocolKind::Mesi),
            cache: CacheConfig { sets: 64, ways: 4 },
            isr: IsrConfig::default(),
            cam_geometry: None,
        }
    }

    /// A generic processor speaking the given protocol at bus speed.
    pub fn generic(name: &str, protocol: hmp_cache::ProtocolKind) -> Self {
        CpuSpec {
            name: name.into(),
            clock_mult: 1,
            coherence: CoherenceSupport::Native(protocol),
            cache: CacheConfig::default(),
            isr: IsrConfig::default(),
            cam_geometry: None,
        }
    }
}

/// The standard address map used by the workloads and presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemLayout {
    /// Base of each CPU's private window (stride
    /// [`MemLayout::PRIVATE_STRIDE`]).
    pub private_base: Addr,
    /// Base of the shared-data window.
    pub shared_base: Addr,
    /// Base of the lock-variable window.
    pub lock_base: Addr,
}

impl MemLayout {
    /// Bytes of private space per CPU.
    pub const PRIVATE_STRIDE: u32 = 0x4_0000; // 256 KiB
    /// Bytes of shared space.
    pub const SHARED_BYTES: u32 = 0x4_0000;
    /// Bytes of lock space.
    pub const LOCK_BYTES: u32 = 0x1000;

    /// Private window base for CPU `i`.
    pub fn private(&self, cpu: usize) -> Addr {
        Addr::new(self.private_base.as_u32() + (cpu as u32) * Self::PRIVATE_STRIDE)
    }
}

impl Default for MemLayout {
    fn default() -> Self {
        MemLayout {
            private_base: Addr::new(0x0000_0000),
            shared_base: Addr::new(0x0010_0000),
            lock_base: Addr::new(0x0020_0000),
        }
    }
}

/// Builds the standard [`MemoryMap`] for `cpus` processors under a given
/// strategy and lock kind.
///
/// * each CPU gets a cacheable write-back private window;
/// * the shared window is cacheable write-back under
///   [`Strategy::SoftwareDrain`] / [`Strategy::Proposed`], uncached under
///   [`Strategy::CacheDisabled`];
/// * the lock window is a device window for
///   [`LockKind::HardwareRegister`], an uncached window otherwise —
///   unless `cacheable_locks` is set, which reproduces the hardware
///   deadlock of paper Figure 4.
///
/// # Panics
///
/// Panics if the regions cannot be added (impossible for the fixed
/// layout).
pub fn layout(
    cpus: usize,
    strategy: Strategy,
    lock_kind: LockKind,
    cacheable_locks: bool,
) -> (MemLayout, MemoryMap) {
    let mut lay = MemLayout::default();
    // More than four private windows overrun the classic shared-window
    // base; relocate the shared and lock windows just above the private
    // space. Platforms of up to four masters keep the default bases.
    let private_top = (cpus as u32) * MemLayout::PRIVATE_STRIDE;
    if private_top > lay.shared_base.as_u32() {
        lay.shared_base = Addr::new(private_top);
        lay.lock_base = Addr::new(private_top + MemLayout::SHARED_BYTES);
    }
    let mut map = MemoryMap::new();
    for i in 0..cpus {
        map.add(Region::new(
            lay.private(i),
            MemLayout::PRIVATE_STRIDE,
            MemAttr::CachedWriteBack,
        ))
        .expect("private windows are disjoint");
    }
    let shared_attr = if strategy.shared_cacheable() {
        MemAttr::CachedWriteBack
    } else {
        MemAttr::Uncached
    };
    map.add(Region::new(
        lay.shared_base,
        MemLayout::SHARED_BYTES,
        shared_attr,
    ))
    .expect("shared window is disjoint");
    let lock_attr = if cacheable_locks {
        MemAttr::CachedWriteBack
    } else if lock_kind == LockKind::HardwareRegister {
        MemAttr::Device(0)
    } else {
        MemAttr::Uncached
    };
    map.add(Region::new(lay.lock_base, MemLayout::LOCK_BYTES, lock_attr))
        .expect("lock window is disjoint");
    (lay, map)
}

/// Full description of a platform instance.
#[derive(Debug, Clone)]
pub struct PlatformSpec {
    /// The processors, in bus-master order.
    pub cpus: Vec<CpuSpec>,
    /// Main-memory timing (Table 4 by default; swept for Figure 8).
    pub latency: LatencyModel,
    /// Physical memory size in bytes.
    pub memory_bytes: u32,
    /// Address-space attributes.
    pub map: MemoryMap,
    /// Lock mechanism and placement.
    pub lock: LockLayout,
    /// Paper wrappers or transparent (naive) wrappers.
    pub wrapper_mode: WrapperMode,
    /// Run the golden-memory coherence checker.
    pub check_coherence: bool,
    /// Bus arbitration policy.
    pub arbitration: ArbitrationPolicy,
    /// BOFF window: bus cycles an ARTRY'd master backs off before
    /// retrying.
    pub retry_backoff: u64,
    /// Watchdog stall window in bus cycles.
    pub watchdog_window: u64,
    /// Trace ring capacity (0 disables tracing).
    pub trace_capacity: usize,
    /// Completed-span ring capacity for the metrics layer; 0 disables
    /// span/histogram collection entirely (the zero-cost default).
    pub span_capacity: usize,
    /// Enforce the structural line invariants (single writer, no writer
    /// with sharers, single owner) live, failing the run fast on the
    /// first break. Off by default: the Transparent wrapper mode exists
    /// precisely to let those invariants break observably.
    pub check_invariants: bool,
    /// Deterministic fault-injection schedule, applied by the platform's
    /// fault engine at each spec's cycle. `None` (the default) leaves the
    /// whole injection path unallocated — a fault-free run is
    /// byte-identical with or without this field.
    pub faults: Option<hmp_sim::FaultPlan>,
    /// Retry-escalation and quarantine policy for the arbiter. Disabled
    /// by default; see [`hmp_bus::RecoveryPolicy`].
    pub recovery: hmp_bus::RecoveryPolicy,
    /// Bus segment each CPU's master port sits on. Empty (the default)
    /// puts everyone on one segment — the flat single-bus platforms.
    /// Populated by [`crate::topology::Topology::spec`].
    pub segment_map: Vec<usize>,
    /// Extra data-phase cycles a transaction pays when its data crosses
    /// the snooping bridge between segments (ignored on single-segment
    /// fabrics).
    pub bridge_latency: u64,
    /// Per-master recovery-policy overrides (index-aligned with `cpus`;
    /// `None` entries fall back to `recovery`). Empty means no overrides.
    pub recovery_overrides: Vec<Option<hmp_bus::RecoveryPolicy>>,
    /// Windowed-telemetry registry configuration. `None` (the default)
    /// leaves the whole timeseries path unallocated; a run with
    /// telemetry armed is still byte-identical on every compared field.
    pub timeseries: Option<hmp_sim::TimeSeriesSpec>,
    /// Measure the kernel's wall-time split (plan/warp/step) and surface
    /// it as [`crate::RunResult::profile`]. Off by default — the two
    /// `Instant` reads per loop iteration are cheap but not free.
    pub profile: bool,
}

impl PlatformSpec {
    /// A blank two-CPU spec with Table 4 timing; presets refine it.
    pub fn new(cpus: Vec<CpuSpec>, map: MemoryMap, lock: LockLayout) -> Self {
        PlatformSpec {
            cpus,
            latency: LatencyModel::TABLE4,
            memory_bytes: 4 << 20,
            map,
            lock,
            wrapper_mode: WrapperMode::Paper,
            check_coherence: true,
            arbitration: ArbitrationPolicy::RoundRobin,
            retry_backoff: 0,
            watchdog_window: 50_000,
            trace_capacity: 0,
            span_capacity: 0,
            check_invariants: false,
            faults: None,
            recovery: hmp_bus::RecoveryPolicy::default(),
            segment_map: Vec::new(),
            bridge_latency: 0,
            recovery_overrides: Vec::new(),
            timeseries: None,
            profile: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_properties() {
        assert!(!Strategy::CacheDisabled.shared_cacheable());
        assert!(Strategy::SoftwareDrain.shared_cacheable());
        assert!(Strategy::Proposed.shared_cacheable());
        assert!(Strategy::SoftwareDrain.needs_software_drain());
        assert!(!Strategy::Proposed.needs_software_drain());
        assert_eq!(Strategy::ALL.len(), 3);
        assert_eq!(Strategy::Proposed.to_string(), "proposed");
        assert_eq!(WrapperMode::Paper.to_string(), "paper");
        assert_eq!(WrapperMode::Transparent.to_string(), "transparent");
    }

    #[test]
    fn table4_cpu_specs() {
        let ppc = CpuSpec::powerpc755();
        assert_eq!(ppc.clock_mult, 2, "100 MHz on a 50 MHz bus");
        assert_eq!(ppc.cache.capacity_bytes(), 32 * 1024);
        let arm = CpuSpec::arm920t();
        assert_eq!(arm.clock_mult, 1);
        assert_eq!(arm.coherence, CoherenceSupport::None);
        assert_eq!(arm.cache.capacity_bytes(), 16 * 1024);
        let i486 = CpuSpec::intel486();
        assert_eq!(i486.cache.capacity_bytes(), 8 * 1024);
    }

    #[test]
    fn layout_strategy_controls_shared_attr() {
        let (lay, map) = layout(2, Strategy::Proposed, LockKind::Turn, false);
        assert_eq!(map.classify(lay.shared_base), MemAttr::CachedWriteBack);
        assert_eq!(map.classify(lay.lock_base), MemAttr::Uncached);
        assert_eq!(map.classify(lay.private(0)), MemAttr::CachedWriteBack);
        assert_eq!(map.classify(lay.private(1)), MemAttr::CachedWriteBack);

        let (lay, map) = layout(2, Strategy::CacheDisabled, LockKind::Turn, false);
        assert_eq!(map.classify(lay.shared_base), MemAttr::Uncached);
    }

    #[test]
    fn layout_lock_attrs() {
        let (lay, map) = layout(2, Strategy::Proposed, LockKind::HardwareRegister, false);
        assert_eq!(map.classify(lay.lock_base), MemAttr::Device(0));
        let (lay, map) = layout(2, Strategy::Proposed, LockKind::Bakery, false);
        assert_eq!(map.classify(lay.lock_base), MemAttr::Uncached);
        // The deadlock configuration: cacheable locks.
        let (lay, map) = layout(2, Strategy::Proposed, LockKind::Turn, true);
        assert_eq!(map.classify(lay.lock_base), MemAttr::CachedWriteBack);
    }

    #[test]
    fn private_windows_distinct() {
        let lay = MemLayout::default();
        assert_ne!(lay.private(0), lay.private(1));
        assert_eq!(
            lay.private(1).as_u32() - lay.private(0).as_u32(),
            MemLayout::PRIVATE_STRIDE
        );
    }

    #[test]
    fn spec_defaults() {
        let (_, map) = layout(2, Strategy::Proposed, LockKind::Turn, false);
        let lock = LockLayout::new(LockKind::Turn, MemLayout::default().lock_base, 2);
        let spec = PlatformSpec::new(vec![CpuSpec::powerpc755(), CpuSpec::arm920t()], map, lock);
        assert_eq!(spec.latency, LatencyModel::TABLE4);
        assert_eq!(spec.wrapper_mode, WrapperMode::Paper);
        assert!(spec.check_coherence);
        assert!(spec.faults.is_none(), "fault injection is opt-in");
        assert!(!spec.recovery.enabled(), "recovery escalation is opt-in");
        assert!(spec.memory_bytes >= MemLayout::default().lock_base.as_u32());
    }
}
