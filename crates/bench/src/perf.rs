//! Cycles-per-second measurement comparing the two simulation kernels.
//!
//! The `perf_smoke` binary drives these helpers across the paper's three
//! scenarios and four platform classes: each cell is timed under both
//! [`Kernel::Step`] and [`Kernel::FastForward`], the two full
//! [`hmp_platform::RunResult`]s are compared for equivalence, and the
//! numbers land in `BENCH_PERF.json` so CI can track the simulator's
//! cycles/sec trajectory over time.
//!
//! All timings measure the simulation kernel itself — [`hmp_platform::System::run`]
//! on a prepared platform. Workload generation and platform
//! construction happen outside the timed region: they are identical for
//! both kernels and would only dilute the comparison (the Figure 5 grid
//! runs are a few milliseconds each, against a fixed per-run setup cost
//! of building programs and zeroing memory images).
//!
//! Timings are co-tenant-noise resistant: every measurement alternates
//! the two kernels (A/B/A/B) across [`best_of_rounds`] rounds and each
//! kernel reports its **best** round. On a shared machine a transient
//! slowdown lands on both kernels' slow rounds and is discarded by the
//! max, instead of deflating whichever kernel happened to run while the
//! neighbour was busy and skewing the `speedup` columns.
//!
//! Two grid sweeps are recorded alongside the per-preset cells:
//!
//! * `fig5_sweep` — the Figure 5 grid at the paper's burst penalty
//!   (13 cycles). This workload is *event-dense*: roughly half its
//!   cycles carry a genuine event (an instruction issuing, a grant, a
//!   data-phase completion), so skipping dead cycles is Amdahl-bound.
//! * `fig8_sweep` — the same grid at the Figure 8 miss-penalty
//!   endpoint (96 cycles), where long data phases make dead cycles
//!   dominate and the event-driven kernel pays off in full.

use crate::{figure_params, sweep};
use hmp_bus::ArbitrationPolicy;
use hmp_cache::ProtocolKind;
use hmp_platform::{Kernel, Strategy};
use hmp_sim::KernelProfile;
use hmp_workloads::{PlatformPick, RunSpec, Runner, Scenario};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// The four platform classes every perf cell sweeps over.
pub const PLATFORMS: [(&str, PlatformPick); 4] = [
    ("ppc_arm", PlatformPick::PpcArm),
    ("i486_ppc", PlatformPick::I486Ppc),
    ("pf1_dual", PlatformPick::Pf1Dual),
    (
        "mesi_moesi",
        PlatformPick::Pair(ProtocolKind::Mesi, ProtocolKind::Moesi),
    ),
];

/// One (scenario, platform) measurement: simulated bus cycles per
/// wall-clock second under each kernel, and whether the two kernels'
/// full results compared equal.
#[derive(Debug, Clone)]
pub struct PerfCell {
    /// Workload scenario.
    pub scenario: Scenario,
    /// Platform slug from [`PLATFORMS`].
    pub platform: &'static str,
    /// Simulated cycles of one run of this cell.
    pub cycles: u64,
    /// Cycles/sec under the per-cycle step kernel.
    pub step_cps: f64,
    /// Cycles/sec under the fast-forward kernel.
    pub fast_cps: f64,
    /// Whether the two kernels produced equal [`hmp_platform::RunResult`]s.
    pub equivalent: bool,
    /// Kernel self-profile from one profiled fast-forward run: where the
    /// run loop's wall time went (plan/warp/step split) plus the
    /// deterministic step mix.
    pub profile: Option<KernelProfile>,
}

impl PerfCell {
    /// Fast-forward speedup over per-cycle stepping.
    pub fn speedup(&self) -> f64 {
        self.fast_cps / self.step_cps
    }
}

/// How many interleaved A/B timing rounds each measurement takes (the
/// best round wins): the `HMP_PERF_BEST_OF` environment variable when
/// set to a positive integer, otherwise 2.
pub fn best_of_rounds() -> usize {
    std::env::var("HMP_PERF_BEST_OF")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&k| k >= 1)
        .unwrap_or(2)
}

/// One timing round: repeated runs of `spec` until at least `quantum` of
/// timed simulation has accumulated (and at least one repetition),
/// returning that round's cycles/sec. Only [`hmp_platform::System::run`]
/// is timed; each repetition's platform is prepared outside the clock.
fn timing_round(runner: &mut Runner, spec: &RunSpec, quantum: Duration) -> f64 {
    let mut sim_cycles = 0u64;
    let mut timed = Duration::ZERO;
    loop {
        let sys = runner.prepare(spec);
        let start = Instant::now();
        let r = sys.run(spec.max_cycles);
        timed += start.elapsed();
        sim_cycles += r.cycles_u64();
        if timed >= quantum {
            break;
        }
    }
    sim_cycles as f64 / timed.as_secs_f64()
}

/// Measures an arbitrary spec under both kernels, labelled `platform` in
/// the output document. All repetitions of both kernels (and the final
/// profiled run) share one reset-don't-drop [`Runner`].
///
/// The two kernels are timed **interleaved** (Step, FastForward, Step,
/// FastForward, …) over [`best_of_rounds`] rounds of `min_wall / k`
/// each, and each kernel keeps its best round. A co-tenant slowdown
/// landing mid-measurement (like the ~3× one documented in PR 8) now
/// hits both kernels' rounds alike and is discarded by the max instead
/// of skewing whichever kernel happened to run second — the `speedup`
/// ratio columns stay honest even on noisy shared machines.
///
/// # Panics
///
/// Panics if the run does not complete cleanly — a perf number for a
/// deadlocked or incoherent run would be meaningless.
pub fn measure_spec_cell(platform: &'static str, spec: RunSpec, min_wall: Duration) -> PerfCell {
    let mut runner = Runner::new();
    let step_spec = spec.with_kernel(Kernel::Step);
    let fast_spec = spec.with_kernel(Kernel::FastForward);
    // Untimed warm-up runs double as the equivalence comparison inputs.
    let step_result = runner.run(&step_spec);
    let fast_result = runner.run(&fast_spec);
    let rounds = best_of_rounds();
    let quantum = min_wall / rounds as u32;
    let mut step_cps = 0.0f64;
    let mut fast_cps = 0.0f64;
    for _ in 0..rounds {
        step_cps = step_cps.max(timing_round(&mut runner, &step_spec, quantum));
        fast_cps = fast_cps.max(timing_round(&mut runner, &fast_spec, quantum));
    }
    assert!(
        step_result.is_clean_completion(),
        "{}/{platform}: {step_result}",
        spec.scenario
    );
    // One extra self-profiled fast-forward run (outside the timed
    // comparison above — the profiling clock reads would dilute it).
    let prof_spec = spec.with_kernel(Kernel::FastForward).with_profile();
    let profile = runner.run(&prof_spec).profile;
    PerfCell {
        scenario: spec.scenario,
        platform,
        cycles: step_result.cycles_u64(),
        step_cps,
        fast_cps,
        equivalent: step_result == fast_result,
        profile,
    }
}

/// Measures one cell under both kernels.
///
/// # Panics
///
/// Panics if the run does not complete cleanly — a perf number for a
/// deadlocked or incoherent run would be meaningless.
pub fn measure_cell(
    scenario: Scenario,
    platform: (&'static str, PlatformPick),
    min_wall: Duration,
) -> PerfCell {
    let spec = RunSpec::new(scenario, Strategy::Proposed, figure_params(16, 4)).on(platform.1);
    measure_spec_cell(platform.0, spec, min_wall)
}

/// Measures every scenario × platform cell, in scenario-major order.
pub fn measure_cells(min_wall: Duration) -> Vec<PerfCell> {
    let mut cells = Vec::new();
    for scenario in [Scenario::Worst, Scenario::Typical, Scenario::Best] {
        for platform in PLATFORMS {
            cells.push(measure_cell(scenario, platform, min_wall));
        }
    }
    cells
}

/// The explicitly event-dense cells: the Figure-5 burst point at its
/// densest corner (`exec_time = 1`, so nearly every cycle carries an
/// instruction issue, a grant, or a completion) and a 4-master FCFS
/// fabric, where arbitration pressure multiplies bus events. These are
/// the cells the ≥2× event-dense target is measured on, and the ones CI
/// gates: a fast-forward kernel slower than per-cycle stepping here means
/// the planner's overhead outgrew its warp savings.
pub fn event_dense_cells(min_wall: Duration) -> Vec<PerfCell> {
    let burst = RunSpec::new(Scenario::Worst, Strategy::Proposed, figure_params(16, 1));
    let fabric = RunSpec::new(Scenario::Worst, Strategy::Proposed, figure_params(8, 1))
        .on(PlatformPick::Fabric {
            protocol: ProtocolKind::Mesi,
            masters: 4,
            segments: 1,
        })
        .with_arbitration(ArbitrationPolicy::Fcfs);
    vec![
        measure_spec_cell("fig5_dense", burst, min_wall),
        measure_spec_cell("fabric4_fcfs", fabric, min_wall),
    ]
}

/// Aggregate timing of one full WCS grid — every strategy at every
/// (lines, exec_time) point — under each kernel, at a fixed burst miss
/// penalty.
#[derive(Debug, Clone)]
pub struct SweepPerf {
    /// JSON slug for this sweep (`fig5_sweep`, `fig8_sweep`).
    pub slug: &'static str,
    /// Burst miss penalty in bus cycles.
    pub burst_penalty: u64,
    /// Grid points measured (each runs all three strategies).
    pub points: usize,
    /// Total simulated cycles of one full pass.
    pub total_cycles: u64,
    /// Cycles/sec for the step-kernel pass.
    pub step_cps: f64,
    /// Cycles/sec for the fast-forward pass.
    pub fast_cps: f64,
    /// Whether both passes simulated the same total cycle count.
    pub equivalent: bool,
    /// Aggregate kernel self-profile of one extra profiled fast-forward
    /// pass over the same grid: phase nanoseconds and step-mix counters
    /// summed across every cell. The counter fields (iterations, step
    /// mix, warped cycles) are deterministic; the `_ns` fields are wall
    /// clock and excluded from baseline comparison.
    pub profile: Option<KernelProfile>,
}

impl SweepPerf {
    /// Fast-forward speedup over per-cycle stepping on the sweep.
    pub fn speedup(&self) -> f64 {
        self.fast_cps / self.step_cps
    }
}

fn sweep_pass(runner: &mut Runner, kernel: Kernel, burst_penalty: u64) -> (u64, f64) {
    let grid = sweep::figure_grid(Scenario::Worst);
    let mut total = 0u64;
    let mut timed = Duration::ZERO;
    for p in &grid {
        for strategy in Strategy::ALL {
            let spec = RunSpec::new(p.scenario, strategy, figure_params(p.lines, p.exec_time))
                .with_burst_penalty(burst_penalty)
                .with_kernel(kernel);
            let sys = runner.prepare(&spec);
            let start = Instant::now();
            let r = sys.run(spec.max_cycles);
            timed += start.elapsed();
            assert!(r.is_clean_completion(), "{}/{strategy}: {r}", p.scenario);
            total += r.cycles_u64();
        }
    }
    (total, total as f64 / timed.as_secs_f64())
}

/// One extra fast-forward pass with the kernel self-profile armed,
/// summing each cell's phase split and step mix into one grid-wide
/// profile.
fn sweep_profile(runner: &mut Runner, burst_penalty: u64) -> Option<KernelProfile> {
    let grid = sweep::figure_grid(Scenario::Worst);
    let mut acc: Option<KernelProfile> = None;
    for p in &grid {
        for strategy in Strategy::ALL {
            let spec = RunSpec::new(p.scenario, strategy, figure_params(p.lines, p.exec_time))
                .with_burst_penalty(burst_penalty)
                .with_kernel(Kernel::FastForward)
                .with_profile();
            let r = runner.run(&spec);
            assert!(r.is_clean_completion(), "{}/{strategy}: {r}", p.scenario);
            let cell = r.profile.expect("profiled run attaches a profile");
            let agg = acc.get_or_insert_with(|| KernelProfile {
                kernel: cell.kernel,
                ..Default::default()
            });
            agg.wall_ns += cell.wall_ns;
            agg.plan_ns += cell.plan_ns;
            agg.warp_ns += cell.warp_ns;
            agg.step_ns += cell.step_ns;
            agg.cpu_only_ns += cell.cpu_only_ns;
            agg.iterations += cell.iterations;
            agg.full_steps += cell.full_steps;
            agg.cpu_only_steps += cell.cpu_only_steps;
            agg.warped_cycles += cell.warped_cycles;
        }
    }
    if let Some(agg) = &mut acc {
        let total = agg.warped_cycles + agg.full_steps + agg.cpu_only_steps;
        agg.cycles_per_sec = if agg.wall_ns > 0 {
            total as f64 / (agg.wall_ns as f64 / 1e9)
        } else {
            0.0
        };
    }
    acc
}

/// Times passes over the WCS grid under each kernel at the given burst
/// penalty, then takes a final self-profiled fast-forward pass for the
/// aggregate phase split. All passes reuse one platform via the
/// reset-don't-drop [`Runner`].
///
/// Like [`measure_spec_cell`], the kernels alternate (step pass, fast
/// pass, step pass, …) for [`best_of_rounds`] rounds and each keeps its
/// best pass, so a transient co-tenant slowdown cannot deflate one side
/// of the `speedup` ratio.
pub fn measure_sweep(slug: &'static str, burst_penalty: u64) -> SweepPerf {
    let mut runner = Runner::new();
    let (step_total, mut step_cps) = sweep_pass(&mut runner, Kernel::Step, burst_penalty);
    let (fast_total, mut fast_cps) = sweep_pass(&mut runner, Kernel::FastForward, burst_penalty);
    for _ in 1..best_of_rounds() {
        step_cps = step_cps.max(sweep_pass(&mut runner, Kernel::Step, burst_penalty).1);
        fast_cps = fast_cps.max(sweep_pass(&mut runner, Kernel::FastForward, burst_penalty).1);
    }
    let profile = sweep_profile(&mut runner, burst_penalty);
    SweepPerf {
        slug,
        burst_penalty,
        points: sweep::figure_grid(Scenario::Worst).len(),
        total_cycles: fast_total,
        step_cps,
        fast_cps,
        equivalent: step_total == fast_total,
        profile,
    }
}

/// The Figure 5 grid at the paper's burst penalty of 13 cycles.
pub fn measure_fig5_sweep() -> SweepPerf {
    measure_sweep("fig5_sweep", 13)
}

/// The same grid at the Figure 8 miss-penalty endpoint of 96 cycles,
/// where data phases dominate and fast-forward warps most of the run.
pub fn measure_fig8_sweep() -> SweepPerf {
    measure_sweep("fig8_sweep", 96)
}

/// Renders the perf measurements as the `BENCH_PERF.json` document.
pub fn perf_json(cells: &[PerfCell], sweeps: &[SweepPerf]) -> String {
    let mut out = format!(
        r#"{{"schema_version":{},"figure":"perf","unit":"simulated_cycles_per_wall_second","cells":["#,
        hmp_sim::export::SCHEMA_VERSION
    );
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            concat!(
                r#"{{"scenario":"{:?}","platform":"{}","cycles":{},"#,
                r#""step_cps":{:.1},"fast_cps":{:.1},"speedup":{:.3},"equivalent":{},"#
            ),
            c.scenario,
            c.platform,
            c.cycles,
            c.step_cps,
            c.fast_cps,
            c.speedup(),
            c.equivalent,
        );
        write_profile(&mut out, c.profile.as_ref());
        out.push('}');
    }
    out.push(']');
    for s in sweeps {
        let _ = write!(
            out,
            concat!(
                r#","{}":{{"burst_penalty":{},"points":{},"total_cycles":{},"#,
                r#""step_cps":{:.1},"fast_cps":{:.1},"speedup":{:.3},"equivalent":{},"#
            ),
            s.slug,
            s.burst_penalty,
            s.points,
            s.total_cycles,
            s.step_cps,
            s.fast_cps,
            s.speedup(),
            s.equivalent,
        );
        write_profile(&mut out, s.profile.as_ref());
        out.push('}');
    }
    out.push('}');
    out
}

/// Writes the `"profile":…` member (object or `null`) without a trailing
/// brace — the caller closes its containing object.
fn write_profile(out: &mut String, profile: Option<&KernelProfile>) {
    match profile {
        Some(p) => {
            let _ = write!(
                out,
                concat!(
                    r#""profile":{{"wall_ns":{},"plan_ns":{},"warp_ns":{},"step_ns":{},"#,
                    r#""cpu_only_ns":{},"cycles_per_sec":{:.1},"iterations":{},"#,
                    r#""full_steps":{},"cpu_only_steps":{},"warped_cycles":{}}}"#
                ),
                p.wall_ns,
                p.plan_ns,
                p.warp_ns,
                p.step_ns,
                p.cpu_only_ns,
                p.cycles_per_sec,
                p.iterations,
                p.full_steps,
                p.cpu_only_steps,
                p.warped_cycles,
            );
        }
        None => out.push_str(r#""profile":null"#),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmp_sim::export::validate_json;

    #[test]
    fn cell_measurement_is_equivalent_and_positive() {
        let cell = measure_cell(Scenario::Worst, PLATFORMS[0], Duration::ZERO);
        assert!(cell.equivalent);
        assert!(cell.cycles > 0);
        assert!(cell.step_cps > 0.0);
        assert!(cell.fast_cps > 0.0);
        let profile = cell.profile.expect("profiled run attaches a profile");
        assert_eq!(profile.kernel, Kernel::FastForward);
        assert!(profile.wall_ns > 0);
        assert!(profile.iterations > 0);
        assert!(
            profile.warped_cycles + profile.full_steps + profile.cpu_only_steps > 0,
            "{profile:?}"
        );
    }

    #[test]
    fn perf_json_is_valid_json() {
        let cell = PerfCell {
            scenario: Scenario::Typical,
            platform: "ppc_arm",
            cycles: 20_946,
            step_cps: 1_000_000.0,
            fast_cps: 4_000_000.0,
            equivalent: true,
            profile: Some(KernelProfile {
                kernel: Kernel::FastForward,
                wall_ns: 1_000,
                warped_cycles: 5,
                ..Default::default()
            }),
        };
        let sweeps = [
            SweepPerf {
                slug: "fig5_sweep",
                burst_penalty: 13,
                points: 18,
                total_cycles: 1_234_567,
                step_cps: 2_000_000.0,
                fast_cps: 8_000_000.0,
                equivalent: true,
                profile: Some(KernelProfile {
                    kernel: Kernel::FastForward,
                    wall_ns: 9_000,
                    iterations: 600,
                    ..Default::default()
                }),
            },
            SweepPerf {
                slug: "fig8_sweep",
                burst_penalty: 96,
                points: 18,
                total_cycles: 7_654_321,
                step_cps: 2_000_000.0,
                fast_cps: 16_000_000.0,
                equivalent: true,
                profile: None,
            },
        ];
        let json = perf_json(std::slice::from_ref(&cell), &sweeps);
        validate_json(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.contains(r#""speedup":4.000"#), "{json}");
        assert!(json.contains(r#""fig5_sweep""#), "{json}");
        assert!(json.contains(r#""fig8_sweep""#), "{json}");
        assert!(json.contains(r#""burst_penalty":96"#), "{json}");
        assert!(json.contains(r#""equivalent":true"#), "{json}");
        assert!(json.starts_with(r#"{"schema_version":1,"#), "{json}");
        assert!(json.contains(r#""profile":{"wall_ns":1000"#), "{json}");
        assert!(json.contains(r#""warped_cycles":5"#), "{json}");
        assert!(json.contains(r#""profile":{"wall_ns":9000"#), "{json}");
        assert!(json.contains(r#""profile":null"#), "{json}");
    }

    #[test]
    fn event_dense_cells_are_equivalent_and_profiled() {
        for cell in event_dense_cells(Duration::ZERO) {
            assert!(cell.equivalent, "{}", cell.platform);
            assert!(cell.cycles > 0, "{}", cell.platform);
            let p = cell.profile.expect("profiled run attaches a profile");
            assert!(p.iterations > 0, "{}", cell.platform);
            assert!(
                p.full_steps + p.cpu_only_steps + p.warped_cycles > 0,
                "{}: {p:?}",
                cell.platform
            );
        }
    }
}
