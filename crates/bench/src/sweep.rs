//! Deterministic parallel sweep running.
//!
//! The figure binaries measure dozens of independent (scenario, strategy,
//! lines, exec_time) grid points; each point is a full simulator run, so
//! the sweeps dominate regeneration time. [`par_map`] fans the points
//! across OS threads with a shared work cursor — pure `std`, no external
//! thread pool — and slots every result back by its input index, so the
//! output order (and, since each run is itself seeded and deterministic,
//! every value in it) is identical to the serial sweep no matter how the
//! scheduler interleaves the workers.

use crate::RatioRow;
use hmp_workloads::{MicrobenchParams, Runner, Scenario};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `items` on up to `workers` threads, returning results in
/// input order.
///
/// Work is distributed dynamically (a shared cursor, one item at a time),
/// so long-running points do not serialize behind a static partition.
/// Determinism comes from index-slotting the results, not from the
/// schedule.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn par_map<T, O, F>(items: &[T], workers: usize, f: F) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> O + Sync,
{
    par_map_with(items, workers, || (), move |(), item| f(item))
}

/// [`par_map`] with per-worker scratch state: each thread calls `init`
/// once and threads the value through every item it claims. The sweep
/// paths use this to carry one reset-don't-drop
/// [`hmp_workloads::Runner`] per worker, so a thousand-cell sweep pays
/// the platform constructor once per thread instead of once per cell.
/// Determinism is untouched — each run is independent and index-slotted,
/// so results are identical no matter which worker's runner served a cell.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f` or `init`.
pub fn par_map_with<T, O, S, I, F>(items: &[T], workers: usize, init: I, f: F) -> Vec<O>
where
    T: Sync,
    O: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> O + Sync,
{
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));
    if workers == 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<O>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut state = init();
                    let mut produced = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        produced.push((i, f(&mut state, &items[i])));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("sweep worker panicked") {
                out[i] = Some(value);
            }
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("cursor covers every index"))
        .collect()
}

/// Worker count for sweeps: the `HMP_BENCH_WORKERS` environment variable
/// when set to a positive integer, otherwise the machine's available
/// parallelism (1 if unknown).
pub fn default_workers() -> usize {
    match std::env::var("HMP_BENCH_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// One grid point of a Figures 5–7 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    /// The workload scenario.
    pub scenario: Scenario,
    /// Accessed cache lines per iteration (figure x-axis).
    pub lines: u32,
    /// The `exec_time` workload parameter.
    pub exec_time: u32,
}

/// The full Figures 5–7 grid for one scenario, in print order
/// (`exec_time` major, `lines` minor).
pub fn figure_grid(scenario: Scenario) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for exec_time in MicrobenchParams::EXEC_SWEEP {
        for lines in MicrobenchParams::LINE_SWEEP {
            points.push(SweepPoint {
                scenario,
                lines,
                exec_time,
            });
        }
    }
    points
}

/// Measures every point on the calling thread, in order, through one
/// reused platform.
pub fn sweep_serial(points: &[SweepPoint]) -> Vec<RatioRow> {
    let mut runner = Runner::new();
    points
        .iter()
        .map(|p| RatioRow::measure_with(&mut runner, p.scenario, p.lines, p.exec_time))
        .collect()
}

/// Measures every point across `workers` threads; the returned rows are
/// identical to [`sweep_serial`]'s, in the same order.
pub fn sweep_parallel(points: &[SweepPoint], workers: usize) -> Vec<RatioRow> {
    par_map_with(points, workers, Runner::new, |runner, p| {
        RatioRow::measure_with(runner, p.scenario, p.lines, p.exec_time)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..37).collect();
        // Uneven work so threads finish out of order.
        let doubled = par_map(&items, 8, |&x| {
            if x % 5 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * 2
        });
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_degenerate_shapes() {
        let empty: [u32; 0] = [];
        assert!(par_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(par_map(&[7], 16, |&x| x + 1), vec![8]);
        assert_eq!(par_map(&[1, 2, 3], 0, |&x| x), vec![1, 2, 3]);
    }

    #[test]
    fn default_workers_tracks_parallelism_and_env_override() {
        // Without an override the default is the machine's available
        // parallelism — always at least one worker, so sweeps never
        // degenerate to a zero-thread fan-out.
        let hardware = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        std::env::remove_var("HMP_BENCH_WORKERS");
        assert_eq!(default_workers(), hardware);

        // A positive HMP_BENCH_WORKERS wins; garbage or zero falls back.
        std::env::set_var("HMP_BENCH_WORKERS", "3");
        assert_eq!(default_workers(), 3);
        std::env::set_var("HMP_BENCH_WORKERS", "0");
        assert_eq!(default_workers(), hardware);
        std::env::set_var("HMP_BENCH_WORKERS", "not-a-number");
        assert_eq!(default_workers(), hardware);
        std::env::remove_var("HMP_BENCH_WORKERS");
    }

    #[test]
    fn figure_grid_covers_the_sweep() {
        let grid = figure_grid(Scenario::Worst);
        assert_eq!(
            grid.len(),
            MicrobenchParams::EXEC_SWEEP.len() * MicrobenchParams::LINE_SWEEP.len()
        );
        assert!(grid.iter().all(|p| p.scenario == Scenario::Worst));
    }

    #[test]
    fn parallel_sweep_matches_serial_rows() {
        // A small grid keeps this fast; full grids are covered by the
        // figure binaries themselves.
        let points = [
            SweepPoint {
                scenario: Scenario::Best,
                lines: 2,
                exec_time: 1,
            },
            SweepPoint {
                scenario: Scenario::Best,
                lines: 4,
                exec_time: 1,
            },
            SweepPoint {
                scenario: Scenario::Typical,
                lines: 2,
                exec_time: 1,
            },
            SweepPoint {
                scenario: Scenario::Worst,
                lines: 2,
                exec_time: 1,
            },
        ];
        let serial = sweep_serial(&points);
        let parallel = sweep_parallel(&points, 4);
        assert_eq!(serial, parallel);
    }
}
