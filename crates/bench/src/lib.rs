//! # hmp-bench — regenerating the paper's tables and figures
//!
//! One binary per evaluation artefact (run with
//! `cargo run -p hmp-bench --release --bin <name>`):
//!
//! | binary | paper artefact |
//! |---|---|
//! | `table1_platforms` | Table 1 — platform classes |
//! | `table2_table3` | Tables 2 & 3 — stale-read traces and their fixes |
//! | `fig5_wcs` | Figure 5 — worst-case scenario ratios |
//! | `fig6_bcs` | Figure 6 — best-case scenario ratios |
//! | `fig7_tcs` | Figure 7 — typical-case scenario ratios |
//! | `fig8_miss_penalty` | Figure 8 — miss-penalty sweep |
//! | `ablation` | extra: wrapper-knob and ISR-cost ablations |
//!
//! `cargo bench -p hmp-bench` times the simulator itself over the same
//! workloads (a plain `harness = false` bench, no external harness).
//!
//! This library holds the shared sweep/printing helpers the binaries use.
//! Grid sweeps fan out across threads via [`sweep::par_map`] — every grid
//! point is an independent deterministic run, so the parallel sweep
//! produces byte-identical rows to the serial one (set
//! `HMP_BENCH_WORKERS=1` to force serial execution).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod compare;
pub mod fabric;
pub mod json;
pub mod perf;
pub mod sweep;

use hmp_platform::Strategy;
use hmp_workloads::{run, MicrobenchParams, PlatformPick, RunSpec, Runner, Scenario};

/// Workload size used by the figure binaries: enough critical-section
/// entries for the startup transient to wash out of the ratios.
pub fn figure_params(lines: u32, exec_time: u32) -> MicrobenchParams {
    MicrobenchParams {
        lines_per_iter: lines,
        exec_time,
        outer_iters: 8,
        seed: 1,
        ..Default::default()
    }
}

/// Executes one (scenario, strategy, lines, exec_time) cell and returns
/// its execution time in bus cycles.
///
/// # Panics
///
/// Panics if the run does not complete cleanly — a figure regenerated
/// from an incoherent or deadlocked run would be meaningless.
pub fn cycles_for(
    scenario: Scenario,
    strategy: Strategy,
    lines: u32,
    exec_time: u32,
    burst_penalty: u64,
) -> u64 {
    cycles_on(
        PlatformPick::PpcArm,
        scenario,
        strategy,
        lines,
        exec_time,
        burst_penalty,
    )
}

/// Like [`cycles_for`] on an explicit platform (the Figure 8 PF3
/// comparison uses the Intel486 + PowerPC755 pairing).
///
/// # Panics
///
/// Panics if the run does not complete cleanly.
pub fn cycles_on(
    platform: PlatformPick,
    scenario: Scenario,
    strategy: Strategy,
    lines: u32,
    exec_time: u32,
    burst_penalty: u64,
) -> u64 {
    let spec = RunSpec::new(scenario, strategy, figure_params(lines, exec_time))
        .on(platform)
        .with_burst_penalty(burst_penalty);
    let result = run(&spec);
    assert!(
        result.is_clean_completion(),
        "{scenario}/{strategy} lines={lines} exec={exec_time}: {result}"
    );
    result.cycles_u64()
}

/// [`cycles_on`] through a reused [`Runner`]: byte-identical cycles, but
/// the platform's allocations are carried from cell to cell instead of
/// rebuilt — the sweep paths' steady state is allocation-free.
///
/// # Panics
///
/// Panics if the run does not complete cleanly.
pub fn cycles_on_with(
    runner: &mut Runner,
    platform: PlatformPick,
    scenario: Scenario,
    strategy: Strategy,
    lines: u32,
    exec_time: u32,
    burst_penalty: u64,
) -> u64 {
    let spec = RunSpec::new(scenario, strategy, figure_params(lines, exec_time))
        .on(platform)
        .with_burst_penalty(burst_penalty);
    let result = runner.run(&spec);
    assert!(
        result.is_clean_completion(),
        "{scenario}/{strategy} lines={lines} exec={exec_time}: {result}"
    );
    result.cycles_u64()
}

/// One row of a Figures 5–7 table: execution-time ratios of the software
/// solution and the proposed approach relative to the cache-disabled
/// baseline (the y-axis of the paper's figures).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioRow {
    /// x-axis: accessed cache lines per iteration.
    pub lines: u32,
    /// `exec_time` parameter.
    pub exec_time: u32,
    /// Cache-disabled baseline cycles.
    pub disabled: u64,
    /// Software-solution cycles.
    pub software: u64,
    /// Proposed-approach cycles.
    pub proposed: u64,
}

impl RatioRow {
    /// Measures one row.
    pub fn measure(scenario: Scenario, lines: u32, exec_time: u32) -> Self {
        RatioRow::measure_with(&mut Runner::new(), scenario, lines, exec_time)
    }

    /// [`RatioRow::measure`] through a reused [`Runner`] — the sweep
    /// workers thread one runner through their whole slice of the grid.
    pub fn measure_with(
        runner: &mut Runner,
        scenario: Scenario,
        lines: u32,
        exec_time: u32,
    ) -> Self {
        let pick = PlatformPick::PpcArm;
        RatioRow {
            lines,
            exec_time,
            disabled: cycles_on_with(
                runner,
                pick,
                scenario,
                Strategy::CacheDisabled,
                lines,
                exec_time,
                13,
            ),
            software: cycles_on_with(
                runner,
                pick,
                scenario,
                Strategy::SoftwareDrain,
                lines,
                exec_time,
                13,
            ),
            proposed: cycles_on_with(
                runner,
                pick,
                scenario,
                Strategy::Proposed,
                lines,
                exec_time,
                13,
            ),
        }
    }

    /// software / disabled.
    pub fn software_ratio(&self) -> f64 {
        self.software as f64 / self.disabled as f64
    }

    /// proposed / disabled.
    pub fn proposed_ratio(&self) -> f64 {
        self.proposed as f64 / self.disabled as f64
    }

    /// Percentage by which the proposed approach beats the software
    /// solution (the paper's "speedup compared to the software solution").
    pub fn speedup_vs_software_pct(&self) -> f64 {
        (self.software as f64 - self.proposed as f64) / self.software as f64 * 100.0
    }

    /// Percentage improvement of the proposed approach over the
    /// cache-disabled baseline.
    pub fn improvement_vs_disabled_pct(&self) -> f64 {
        (self.disabled as f64 - self.proposed as f64) / self.disabled as f64 * 100.0
    }
}

/// Prints a Figures 5–7 style table for one scenario. The grid is
/// measured in parallel (see [`sweep`]); the printed rows are identical
/// to a serial sweep. With `HMP_BENCH_JSON` set (see [`json`]), the same
/// rows are also written as a machine-readable `BENCH_<figure>.json`.
pub fn print_figure(scenario: Scenario, title: &str) {
    let rows = sweep::sweep_parallel(&sweep::figure_grid(scenario), sweep::default_workers());
    let slug = json::figure_slug(scenario);
    if let Some(path) =
        json::maybe_write_bench_json(slug, &json::figure_rows_json(slug, scenario, &rows))
    {
        eprintln!("wrote {}", path.display());
    }
    println!("=== {title} ===");
    println!("(execution time relative to the cache-disabled baseline; lower is better)");
    for exec_time in MicrobenchParams::EXEC_SWEEP {
        println!("\nexec_time = {exec_time}");
        println!(
            "{:>6} {:>12} {:>12} {:>10} {:>10} {:>12}",
            "lines", "software", "proposed", "sw ratio", "prop ratio", "speedup-vs-sw"
        );
        for row in rows.iter().filter(|r| r.exec_time == exec_time) {
            println!(
                "{:>6} {:>12} {:>12} {:>10.3} {:>10.3} {:>11.2}%",
                row.lines,
                row.software,
                row.proposed,
                row.software_ratio(),
                row.proposed_ratio(),
                row.speedup_vs_software_pct(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_row_math() {
        let row = RatioRow {
            lines: 8,
            exec_time: 1,
            disabled: 1000,
            software: 800,
            proposed: 600,
        };
        assert!((row.software_ratio() - 0.8).abs() < 1e-9);
        assert!((row.proposed_ratio() - 0.6).abs() < 1e-9);
        assert!((row.speedup_vs_software_pct() - 25.0).abs() < 1e-9);
        assert!((row.improvement_vs_disabled_pct() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn cycles_for_is_deterministic() {
        let a = cycles_for(Scenario::Worst, Strategy::Proposed, 2, 1, 13);
        let b = cycles_for(Scenario::Worst, Strategy::Proposed, 2, 1, 13);
        assert_eq!(a, b);
    }

    #[test]
    fn figure_params_sized_for_steady_state() {
        let p = figure_params(4, 2);
        assert_eq!(p.lines_per_iter, 4);
        assert_eq!(p.exec_time, 2);
        assert!(p.outer_iters >= 4);
    }
}
