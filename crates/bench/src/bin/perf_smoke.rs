//! Simulator performance smoke test: cycles/sec under both kernels.
//!
//! Runs WCS/TCS/BCS on all four platform classes under both
//! [`Kernel::Step`] and [`Kernel::FastForward`], plus the explicitly
//! event-dense cells (the dense Figure-5 burst corner and a 4-master
//! FCFS fabric), checks that every cell's two results compare equal,
//! times one full WCS grid under each kernel at both the Figure 5 burst
//! penalty (13) and the Figure 8 endpoint (96), and writes everything to
//! `BENCH_PERF.json` — into the `HMP_BENCH_JSON` directory if set, the
//! current directory otherwise. CI runs this on every push, so the JSON
//! history is the simulator's tracked cycles/sec trajectory.
//!
//! Exits nonzero if any cell's kernels disagree, any run fails to
//! complete cleanly, a kernel self-profile comes back malformed, or the
//! fast-forward kernel falls behind per-cycle stepping on an event-dense
//! cell — the regime the incremental planner exists for.

use hmp_bench::json::bench_json_dir;
use hmp_bench::perf::{
    event_dense_cells, measure_cells, measure_fig5_sweep, measure_fig8_sweep, perf_json, PerfCell,
};
use hmp_sim::export::validate_json;
use hmp_sim::KernelProfile;
use std::path::PathBuf;
use std::time::Duration;

/// A self-profile that doesn't add up is a measurement bug, not a perf
/// regression; fail fast on it.
fn validate_profile(label: &str, profile: Option<&KernelProfile>) {
    let p = profile.unwrap_or_else(|| panic!("{label}: profiled run lost its profile"));
    assert!(p.wall_ns > 0, "{label}: empty profile wall time");
    assert!(p.iterations > 0, "{label}: no loop iterations profiled");
    assert!(
        p.full_steps + p.cpu_only_steps <= p.iterations,
        "{label}: step mix exceeds iterations: {p:?}"
    );
    let phases = p.plan_ns + p.warp_ns + p.step_ns + p.cpu_only_ns;
    assert!(
        phases <= p.wall_ns,
        "{label}: phase split exceeds wall time: {p:?}"
    );
}

fn print_cell(c: &PerfCell) {
    println!(
        "{:<4} {:>12} {:>8} {:>14.0} {:>14.0} {:>8.2}x  {}",
        c.scenario.to_string(),
        c.platform,
        c.cycles,
        c.step_cps,
        c.fast_cps,
        c.speedup(),
        c.equivalent,
    );
}

fn main() {
    // Long enough per cell that short-timer jitter washes out, short
    // enough that the whole smoke run stays in CI-friendly territory.
    let min_wall = Duration::from_millis(30);

    println!("perf smoke — simulated cycles per wall-clock second");
    println!();
    println!(
        "{:<4} {:>12} {:>8} {:>14} {:>14} {:>9}  equal",
        "case", "platform", "cycles", "step c/s", "fastfwd c/s", "speedup"
    );
    let mut cells = measure_cells(min_wall);
    for c in &cells {
        print_cell(c);
    }

    println!();
    println!("event-dense cells (the ≥2× target's home turf):");
    let dense = event_dense_cells(min_wall);
    for c in &dense {
        print_cell(c);
    }
    cells.extend(dense.iter().cloned());

    println!();
    let sweeps = [measure_fig5_sweep(), measure_fig8_sweep()];
    for s in &sweeps {
        println!(
            "{} (burst {}, {} points, {} cycles): step {:.0} c/s, fast-forward {:.0} c/s, {:.2}x",
            s.slug,
            s.burst_penalty,
            s.points,
            s.total_cycles,
            s.step_cps,
            s.fast_cps,
            s.speedup(),
        );
        if let Some(p) = &s.profile {
            println!(
                "  profile: plan {}µs, warp {}µs, step {}µs, cpu-only {}µs over {} iterations",
                p.plan_ns / 1_000,
                p.warp_ns / 1_000,
                p.step_ns / 1_000,
                p.cpu_only_ns / 1_000,
                p.iterations,
            );
        }
    }

    let json = perf_json(&cells, &sweeps);
    validate_json(&json).unwrap_or_else(|e| panic!("malformed BENCH_PERF.json: {e}"));
    let dir = bench_json_dir().unwrap_or_else(|| PathBuf::from("."));
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
    let path = dir.join("BENCH_PERF.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("\nwrote {}", path.display());

    let divergent: Vec<_> = cells.iter().filter(|c| !c.equivalent).collect();
    assert!(
        divergent.is_empty(),
        "kernel divergence on {} cell(s): {divergent:?}",
        divergent.len()
    );
    for c in &cells {
        validate_profile(c.platform, c.profile.as_ref());
    }
    for s in &sweeps {
        assert!(s.equivalent, "kernel divergence on {}", s.slug);
        validate_profile(s.slug, s.profile.as_ref());
    }
    // The event-dense gate: fast-forward exists to never be slower than
    // stepping. Allow a sliver of timer noise, nothing more.
    for c in &dense {
        assert!(
            c.fast_cps >= c.step_cps * 0.95,
            "{}: fast-forward ({:.0} c/s) regressed below the step kernel ({:.0} c/s)",
            c.platform,
            c.fast_cps,
            c.step_cps,
        );
    }
}
