//! Simulator performance smoke test: cycles/sec under both kernels.
//!
//! Runs WCS/TCS/BCS on all four platform classes under both
//! [`Kernel::Step`] and [`Kernel::FastForward`], checks that every cell's
//! two results compare equal, times one full WCS grid under each kernel
//! at both the Figure 5 burst penalty (13) and the Figure 8 endpoint
//! (96), and writes everything to `BENCH_PERF.json` — into the
//! `HMP_BENCH_JSON` directory if set, the current directory otherwise.
//! CI runs this on every push, so the JSON history is the simulator's
//! tracked cycles/sec trajectory.
//!
//! Exits nonzero if any cell's kernels disagree or any run fails to
//! complete cleanly.

use hmp_bench::json::bench_json_dir;
use hmp_bench::perf::{measure_cells, measure_fig5_sweep, measure_fig8_sweep, perf_json};
use hmp_sim::export::validate_json;
use std::path::PathBuf;
use std::time::Duration;

fn main() {
    // Long enough per cell that short-timer jitter washes out, short
    // enough that the whole smoke run stays in CI-friendly territory.
    let min_wall = Duration::from_millis(30);

    println!("perf smoke — simulated cycles per wall-clock second");
    println!();
    println!(
        "{:<4} {:>10} {:>8} {:>14} {:>14} {:>9}  equal",
        "case", "platform", "cycles", "step c/s", "fastfwd c/s", "speedup"
    );
    let cells = measure_cells(min_wall);
    for c in &cells {
        println!(
            "{:<4} {:>10} {:>8} {:>14.0} {:>14.0} {:>8.2}x  {}",
            c.scenario.to_string(),
            c.platform,
            c.cycles,
            c.step_cps,
            c.fast_cps,
            c.speedup(),
            c.equivalent,
        );
    }

    println!();
    let sweeps = [measure_fig5_sweep(), measure_fig8_sweep()];
    for s in &sweeps {
        println!(
            "{} (burst {}, {} points, {} cycles): step {:.0} c/s, fast-forward {:.0} c/s, {:.2}x",
            s.slug,
            s.burst_penalty,
            s.points,
            s.total_cycles,
            s.step_cps,
            s.fast_cps,
            s.speedup(),
        );
    }

    let json = perf_json(&cells, &sweeps);
    validate_json(&json).unwrap_or_else(|e| panic!("malformed BENCH_PERF.json: {e}"));
    let dir = bench_json_dir().unwrap_or_else(|| PathBuf::from("."));
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
    let path = dir.join("BENCH_PERF.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("\nwrote {}", path.display());

    let divergent: Vec<_> = cells.iter().filter(|c| !c.equivalent).collect();
    assert!(
        divergent.is_empty(),
        "kernel divergence on {} cell(s): {divergent:?}",
        divergent.len()
    );
    for s in &sweeps {
        assert!(s.equivalent, "kernel divergence on {}", s.slug);
    }
}
