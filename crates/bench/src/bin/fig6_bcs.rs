//! Regenerates paper Figure 6: best-case-scenario execution-time ratios.
//!
//! Only the ARM-side task enters the critical section; the software
//! solution still pays its drain loop every exit, which is why the paper
//! reports a 38.22 % speedup for the proposed approach at 32 lines,
//! exec_time = 1.

use hmp_bench::{print_figure, RatioRow};
use hmp_workloads::Scenario;

fn main() {
    print_figure(
        Scenario::Best,
        "Figure 6 — best case scenario (PowerPC755 + ARM920T, 13-cycle miss penalty)",
    );
    let headline = RatioRow::measure(Scenario::Best, 32, 1);
    println!(
        "\nheadline (paper: 38.22% speedup vs software at 32 lines, exec_time=1): {:.2}%",
        headline.speedup_vs_software_pct()
    );
}
