//! Regenerates paper Figure 8: execution time relative to the software
//! solution as the burst miss penalty sweeps 13 → 96 bus cycles.
//!
//! The paper plots all three scenarios at 1 and 32 accessed lines per
//! iteration; the proposed approach's advantage grows with the miss
//! penalty (BCS @ 32 lines reaches ~76 % speedup at 96 cycles), with
//! occasional non-monotonic points from replacements and interrupt
//! overheads.

use hmp_bench::cycles_on;
use hmp_bench::json::maybe_write_bench_json;
use hmp_bench::sweep::{default_workers, par_map};
use hmp_platform::Strategy;
use hmp_workloads::{PlatformPick, Scenario};
use std::fmt::Write as _;

const PENALTIES: [u64; 4] = [13, 24, 48, 96];
const LINES: [u32; 2] = [1, 32];

/// One measured grid point: software vs proposed at a miss penalty.
struct Cell {
    scenario: Scenario,
    lines: u32,
    penalty: u64,
    software: u64,
    proposed: u64,
}

fn measure(platform: PlatformPick) -> Vec<Cell> {
    let mut points = Vec::new();
    for scenario in [Scenario::Worst, Scenario::Typical, Scenario::Best] {
        for lines in LINES {
            for penalty in PENALTIES {
                points.push((scenario, lines, penalty));
            }
        }
    }
    par_map(&points, default_workers(), |&(scenario, lines, penalty)| {
        Cell {
            scenario,
            lines,
            penalty,
            software: cycles_on(
                platform,
                scenario,
                Strategy::SoftwareDrain,
                lines,
                1,
                penalty,
            ),
            proposed: cycles_on(platform, scenario, Strategy::Proposed, lines, 1, penalty),
        }
    })
}

fn print_cells(cells: &[Cell]) {
    println!(
        "{:>5} {:>6} {:>8} {:>12} {:>12} {:>8} {:>12}",
        "scen", "lines", "penalty", "software", "proposed", "ratio", "speedup"
    );
    for cell in cells {
        let ratio = cell.proposed as f64 / cell.software as f64;
        println!(
            "{:>5} {:>6} {:>8} {:>12} {:>12} {:>8.3} {:>11.2}%",
            cell.scenario.to_string(),
            cell.lines,
            cell.penalty,
            cell.software,
            cell.proposed,
            ratio,
            (1.0 - ratio) * 100.0
        );
    }
}

fn cells_json(platform: &str, cells: &[Cell], out: &mut String) {
    let _ = write!(out, r#""{platform}":["#);
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            concat!(
                r#"{{"scenario":"{:?}","lines":{},"penalty":{},"software":{},"#,
                r#""proposed":{},"ratio":{:.6}}}"#
            ),
            c.scenario,
            c.lines,
            c.penalty,
            c.software,
            c.proposed,
            c.proposed as f64 / c.software as f64,
        );
    }
    out.push(']');
}

fn main() {
    println!("=== Figure 8 — ratio vs software solution across miss penalties ===");
    println!("(execution time of the proposed approach / software solution; lower is better)");
    println!();
    let pf2 = measure(PlatformPick::PpcArm);
    print_cells(&pf2);

    let headline = pf2
        .iter()
        .find(|c| c.scenario == Scenario::Best && c.lines == 32 && c.penalty == 96)
        .expect("BCS @ 32 lines, 96-cycle penalty is in the grid");
    println!(
        "\nheadline (paper: ~76% speedup, BCS @ 32 lines, 96-cycle penalty): {:.2}%",
        (headline.software - headline.proposed) as f64 / headline.software as f64 * 100.0
    );

    // Paper §4: "These exceptions are expected to be removed in PF3 since
    // the interrupt service routine is not needed." Replay the sweep on
    // the Intel486 + PowerPC755 platform.
    println!("\n=== PF3 (Intel486 + PowerPC755): same sweep, no ISR ===");
    let pf3 = measure(PlatformPick::I486Ppc);
    print_cells(&pf3);

    let mut json = format!(
        r#"{{"schema_version":{},"figure":"fig8_miss_penalty","baseline":"software","#,
        hmp_sim::export::SCHEMA_VERSION
    );
    cells_json("pf2_ppc_arm", &pf2, &mut json);
    json.push(',');
    cells_json("pf3_i486_ppc", &pf3, &mut json);
    json.push('}');
    if let Some(path) = maybe_write_bench_json("fig8_miss_penalty", &json) {
        eprintln!("wrote {}", path.display());
    }
}
