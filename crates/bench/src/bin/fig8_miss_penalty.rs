//! Regenerates paper Figure 8: execution time relative to the software
//! solution as the burst miss penalty sweeps 13 → 96 bus cycles.
//!
//! The paper plots all three scenarios at 1 and 32 accessed lines per
//! iteration; the proposed approach's advantage grows with the miss
//! penalty (BCS @ 32 lines reaches ~76 % speedup at 96 cycles), with
//! occasional non-monotonic points from replacements and interrupt
//! overheads.

use hmp_bench::{cycles_for, cycles_on};
use hmp_platform::Strategy;
use hmp_workloads::{PlatformPick, Scenario};

const PENALTIES: [u64; 4] = [13, 24, 48, 96];
const LINES: [u32; 2] = [1, 32];

fn main() {
    println!("=== Figure 8 — ratio vs software solution across miss penalties ===");
    println!("(execution time of the proposed approach / software solution; lower is better)");
    println!(
        "\n{:>5} {:>6} {:>8} {:>12} {:>12} {:>8} {:>12}",
        "scen", "lines", "penalty", "software", "proposed", "ratio", "speedup"
    );
    for scenario in [Scenario::Worst, Scenario::Typical, Scenario::Best] {
        for lines in LINES {
            for penalty in PENALTIES {
                let software =
                    cycles_for(scenario, Strategy::SoftwareDrain, lines, 1, penalty);
                let proposed = cycles_for(scenario, Strategy::Proposed, lines, 1, penalty);
                let ratio = proposed as f64 / software as f64;
                println!(
                    "{:>5} {:>6} {:>8} {:>12} {:>12} {:>8.3} {:>11.2}%",
                    scenario.to_string(),
                    lines,
                    penalty,
                    software,
                    proposed,
                    ratio,
                    (1.0 - ratio) * 100.0
                );
            }
        }
    }
    let software = cycles_for(Scenario::Best, Strategy::SoftwareDrain, 32, 1, 96);
    let proposed = cycles_for(Scenario::Best, Strategy::Proposed, 32, 1, 96);
    println!(
        "\nheadline (paper: ~76% speedup, BCS @ 32 lines, 96-cycle penalty): {:.2}%",
        (software - proposed) as f64 / software as f64 * 100.0
    );

    // Paper §4: "These exceptions are expected to be removed in PF3 since
    // the interrupt service routine is not needed." Replay the sweep on
    // the Intel486 + PowerPC755 platform.
    println!("\n=== PF3 (Intel486 + PowerPC755): same sweep, no ISR ===");
    println!(
        "{:>5} {:>6} {:>8} {:>12} {:>12} {:>8} {:>12}",
        "scen", "lines", "penalty", "software", "proposed", "ratio", "speedup"
    );
    for scenario in [Scenario::Worst, Scenario::Typical, Scenario::Best] {
        for lines in LINES {
            for penalty in PENALTIES {
                let software = cycles_on(
                    PlatformPick::I486Ppc,
                    scenario,
                    Strategy::SoftwareDrain,
                    lines,
                    1,
                    penalty,
                );
                let proposed = cycles_on(
                    PlatformPick::I486Ppc,
                    scenario,
                    Strategy::Proposed,
                    lines,
                    1,
                    penalty,
                );
                let ratio = proposed as f64 / software as f64;
                println!(
                    "{:>5} {:>6} {:>8} {:>12} {:>12} {:>8.3} {:>11.2}%",
                    scenario.to_string(),
                    lines,
                    penalty,
                    software,
                    proposed,
                    ratio,
                    (1.0 - ratio) * 100.0
                );
            }
        }
    }
}
