//! Regenerates paper Table 1: the PF1/PF2/PF3 platform classes, plus the
//! reduced system protocol and derived wrapper policies for every §2
//! protocol pairing.

use hmp_cache::ProtocolKind;
use hmp_core::{classify_platform, derive_policy, reduce, CoherenceSupport};

fn main() {
    println!("=== Table 1 — heterogeneous platform classes ===");
    println!("{:<28} {:<28} {:>6}", "processor 1", "processor 2", "class");
    let rows = [
        (CoherenceSupport::None, CoherenceSupport::None),
        (
            CoherenceSupport::Native(ProtocolKind::Mei),
            CoherenceSupport::None,
        ),
        (
            CoherenceSupport::None,
            CoherenceSupport::Native(ProtocolKind::Mesi),
        ),
        (
            CoherenceSupport::Native(ProtocolKind::Mei),
            CoherenceSupport::Native(ProtocolKind::Mesi),
        ),
    ];
    for (a, b) in rows {
        println!(
            "{:<28} {:<28} {:>6}",
            a.to_string(),
            b.to_string(),
            classify_platform(&[a, b]).to_string()
        );
    }

    println!("\n=== §2 — protocol reduction and derived wrapper policies ===");
    println!(
        "{:<8} {:<8} {:<8} {:<42} cpu1 wrapper",
        "cpu0", "cpu1", "system", "cpu0 wrapper"
    );
    use ProtocolKind::*;
    for (a, b) in [
        (Mei, Msi),
        (Mei, Mesi),
        (Mei, Moesi),
        (Msi, Mesi),
        (Msi, Moesi),
        (Mesi, Moesi),
        (Moesi, Moesi),
    ] {
        let system = reduce(&[a, b]).expect("valid pairing");
        println!(
            "{:<8} {:<8} {:<8} {:<42} {}",
            a.to_string(),
            b.to_string(),
            system.to_string(),
            derive_policy(a, system).to_string(),
            derive_policy(b, system)
        );
    }
}
