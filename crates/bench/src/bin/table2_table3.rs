//! Regenerates paper Tables 2 and 3: the stale-read traces of naive
//! protocol integration, and their disappearance under the paper's
//! wrappers.
//!
//! Each table runs the same four-step sequence on one shared cache line C:
//!
//! * a — processor 1 reads C
//! * b — processor 2 reads C
//! * c — processor 2 writes C
//! * d — processor 1 reads C   ← stale under naive integration
//!
//! printed once with transparent (naive) wrappers and once with the
//! derived paper policies.

use hmp_cache::ProtocolKind;
use hmp_cpu::{LockKind, LockLayout, ProgramBuilder};
use hmp_platform::{layout, CpuSpec, PlatformSpec, Strategy, System, WrapperMode};

/// Cycle points safely after each step completes (the delays in the
/// programs below space the steps hundreds of cycles apart).
const SAMPLE_AT: [(u64, &str); 4] = [
    (100, "a  P1 reads C"),
    (300, "b  P2 reads C"),
    (500, "c  P2 writes C"),
    (800, "d  P1 reads C"),
];

fn state_letter(sys: &System, cpu: usize, addr: hmp_mem::Addr) -> char {
    sys.cache(cpu)
        .line_state(addr)
        .map(|s| s.letter())
        .unwrap_or('I')
}

fn run_table(p1: ProtocolKind, p2: ProtocolKind, mode: WrapperMode) {
    let (lay, map) = layout(2, Strategy::Proposed, LockKind::Turn, false);
    let lock = LockLayout::new(LockKind::Turn, lay.lock_base, 2);
    let mut spec = PlatformSpec::new(
        vec![CpuSpec::generic("P1", p1), CpuSpec::generic("P2", p2)],
        map,
        lock,
    );
    spec.wrapper_mode = mode;
    let c = lay.shared_base;
    // Step spacing: a @ ~0, b @ ~200, c @ ~400, d @ ~600 bus cycles.
    let prog1 = ProgramBuilder::new().read(c).delay(600).read(c).build();
    let prog2 = ProgramBuilder::new()
        .delay(200)
        .read(c)
        .delay(150)
        .write(c, 0xAB)
        .build();
    let mut sys = System::new(&spec, vec![prog1, prog2]);
    sys.poke_word(c, 0x11);

    println!("\n--- P1 = {p1}, P2 = {p2}, wrappers: {mode} ---");
    println!("{:<18} {:>12} {:>12}", "operation", "C in P1", "C in P2");
    let mut next = 0;
    while next < SAMPLE_AT.len() {
        sys.step();
        if sys.now().as_u64() == SAMPLE_AT[next].0 {
            println!(
                "{:<18} {:>12} {:>12}",
                SAMPLE_AT[next].1,
                state_letter(&sys, 0, c),
                state_letter(&sys, 1, c)
            );
            next += 1;
        }
    }
    let result = sys.run(10_000);
    if result.violations.is_empty() {
        println!("no stale reads — coherent");
    } else {
        for v in &result.violations {
            println!("STALE READ: {v}");
        }
    }
}

fn main() {
    println!("=== Table 2 — integrating MESI with MEI ===");
    run_table(
        ProtocolKind::Mesi,
        ProtocolKind::Mei,
        WrapperMode::Transparent,
    );
    run_table(ProtocolKind::Mesi, ProtocolKind::Mei, WrapperMode::Paper);

    println!("\n=== Table 3 — integrating MSI with MESI ===");
    run_table(
        ProtocolKind::Msi,
        ProtocolKind::Mesi,
        WrapperMode::Transparent,
    );
    run_table(ProtocolKind::Msi, ProtocolKind::Mesi, WrapperMode::Paper);
}
