//! Detector-coverage chaos sweep.
//!
//! Injects every fault class on every platform pairing and strategy
//! (WCS workload, recovery policy armed), runs each cell under both
//! simulation kernels, and reports which safety net — invariant checker,
//! golden-memory checker, or watchdog — caught the damage. Writes the
//! full matrix to `BENCH_CHAOS.json` (into `HMP_BENCH_JSON` if set, the
//! current directory otherwise).
//!
//! Set `HMP_CHAOS_REDUCED=1` for the CI smoke grid (proposed strategy
//! only). Exits nonzero if any cell's kernels disagree, or if any
//! protocol-breaking fault class escapes every detector.

use hmp_bench::chaos::{chaos_json, run_grid};
use hmp_bench::json::bench_json_dir;
use hmp_bench::sweep::default_workers;
use hmp_sim::export::validate_json;
use std::path::PathBuf;

fn main() {
    let reduced = matches!(
        std::env::var("HMP_CHAOS_REDUCED").as_deref(),
        Ok(v) if !v.is_empty() && v != "0"
    );
    println!(
        "chaos sweep — detector coverage ({} grid)",
        if reduced { "reduced" } else { "full" }
    );
    println!();
    println!(
        "{:<20} {:>10} {:>15} {:>18} {:>10} {:>7}  equal",
        "fault", "platform", "strategy", "detector", "outcome", "cycles"
    );

    let (cells, rows) = run_grid(reduced, default_workers());
    for c in &cells {
        println!(
            "{:<20} {:>10} {:>15} {:>18} {:>10} {:>7}  {}",
            c.kind.key(),
            hmp_bench::chaos::platform_key(c.platform),
            hmp_bench::chaos::strategy_key(c.strategy),
            c.detector.key(),
            hmp_bench::chaos::outcome_key(c.result.outcome),
            c.result.cycles_u64(),
            c.kernels_agree,
        );
    }

    println!();
    println!("detector-coverage matrix (cells per fault class):");
    println!(
        "{:<20} {:>5} {:>9} {:>10} {:>8} {:>9} {:>11}",
        "fault", "runs", "injected", "invariant", "golden", "watchdog", "undetected"
    );
    for row in &rows {
        let c = row.coverage;
        println!(
            "{:<20} {:>5} {:>9} {:>10} {:>8} {:>9} {:>11}{}",
            row.kind.key(),
            c.runs,
            c.injected,
            c.invariant,
            c.golden,
            c.watchdog,
            c.undetected,
            if row.kind.protocol_breaking() {
                "  [protocol-breaking]"
            } else if row.kind.liveness_breaking() {
                "  [liveness-breaking]"
            } else {
                ""
            },
        );
    }

    let json = chaos_json(reduced, &cells, &rows);
    validate_json(&json).unwrap_or_else(|e| panic!("malformed BENCH_CHAOS.json: {e}"));
    let dir = bench_json_dir().unwrap_or_else(|| PathBuf::from("."));
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
    let path = dir.join("BENCH_CHAOS.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("\nwrote {}", path.display());

    let divergent: Vec<_> = cells.iter().filter(|c| !c.kernels_agree).collect();
    assert!(
        divergent.is_empty(),
        "kernel divergence on {} chaos cell(s)",
        divergent.len()
    );
    for row in &rows {
        if row.kind.protocol_breaking() {
            assert!(
                row.coverage.detected() >= 1,
                "protocol-breaking class {} escaped every detector",
                row.kind.key()
            );
        }
        if row.kind.liveness_breaking() {
            assert!(
                row.coverage.watchdog >= 1,
                "liveness-breaking class {} never met the watchdog",
                row.kind.key()
            );
        }
    }
}
