//! Ablation studies beyond the paper's figures.
//!
//! 1. **Wrapper knobs** — what each manipulation (read→write conversion,
//!    shared-signal forcing) buys: stale-read counts with transparent vs
//!    paper wrappers across every protocol pairing.
//! 2. **Platform class** — PF3 (Intel486 + PowerPC755) vs PF2
//!    (PowerPC755 + ARM920T) on the same WCS workload: the paper predicts
//!    PF3 wins "due to the absence of an interrupt service routine".
//! 3. **ISR cost** — how the PF2 interrupt-drain overhead scales with the
//!    ISR's entry/exit cycles.
//! 4. **TAG-CAM capacity** — what an undersized CAM costs in capacity
//!    drain interrupts and execution time.
//! 5. **Scalability** — WCS execution time as the processor count grows
//!    (the paper's "easily extended to more than two processors").

use hmp_bench::sweep::{default_workers, par_map};
use hmp_cache::ProtocolKind;
use hmp_cpu::{IsrConfig, LockKind};
use hmp_platform::{presets, Strategy, System, WrapperMode};
use hmp_workloads::{build_programs, run, MicrobenchParams, PlatformPick, RunSpec, Scenario};

fn params() -> MicrobenchParams {
    MicrobenchParams {
        lines_per_iter: 8,
        exec_time: 1,
        outer_iters: 8,
        seed: 1,
        ..Default::default()
    }
}

fn wcs_violations(a: ProtocolKind, b: ProtocolKind, mode: WrapperMode) -> (usize, bool) {
    let (mut spec, lay) = presets::protocol_pair(a, b, Strategy::Proposed, LockKind::Turn);
    spec.wrapper_mode = mode;
    let programs = build_programs(Scenario::Worst, Strategy::Proposed, &params(), &lay);
    let mut sys = System::new(&spec, programs);
    let result = sys.run(5_000_000);
    (
        result.violations.len(),
        result.outcome == hmp_platform::RunOutcome::Completed,
    )
}

fn main() {
    println!("=== Ablation 1 — wrapper manipulations vs naive integration (WCS) ===");
    println!(
        "{:<8} {:<8} {:>18} {:>18}",
        "cpu0", "cpu1", "naive violations", "paper violations"
    );
    use ProtocolKind::*;
    let pairs = [
        (Mei, Msi),
        (Mei, Mesi),
        (Mei, Moesi),
        (Msi, Mesi),
        (Msi, Moesi),
        (Mesi, Moesi),
    ];
    let rows = par_map(&pairs, default_workers(), |&(a, b)| {
        let (naive, _) = wcs_violations(a, b, WrapperMode::Transparent);
        let (paper, done) = wcs_violations(a, b, WrapperMode::Paper);
        (naive, paper, done)
    });
    for (&(a, b), &(naive, paper, done)) in pairs.iter().zip(&rows) {
        println!(
            "{:<8} {:<8} {:>18} {:>18}{}",
            a.to_string(),
            b.to_string(),
            naive,
            paper,
            if done { "" } else { "  (incomplete)" }
        );
    }

    println!("\n=== Ablation 2 — PF3 vs PF2 on the same WCS workload ===");
    for (name, pick) in [
        ("PF2 PowerPC755+ARM920T", PlatformPick::PpcArm),
        ("PF3 Intel486+PowerPC755", PlatformPick::I486Ppc),
    ] {
        let r = run(&RunSpec::new(Scenario::Worst, Strategy::Proposed, params()).on(pick));
        println!(
            "{:<26} {:>10} cycles, {:>4} ISR entries, {:>5} bus retries",
            name,
            r.cycles_u64(),
            r.cpus.iter().map(|c| c.isr_entries).sum::<u64>(),
            r.bus.retries
        );
    }

    println!("\n=== Ablation 3 — ISR cost sweep on PF2 (WCS, proposed) ===");
    println!("{:>22} {:>12}", "entry/exit cycles", "exec cycles");
    let costs = [4u32, 8, 16, 32, 64];
    let cycles = par_map(&costs, default_workers(), |&cost| {
        let (mut spec, lay) = presets::ppc_arm(Strategy::Proposed, LockKind::Turn, false);
        spec.cpus[1].isr = IsrConfig {
            response_cycles: 4,
            entry_cycles: cost,
            exit_cycles: cost,
        };
        let programs = build_programs(Scenario::Worst, Strategy::Proposed, &params(), &lay);
        let mut sys = presets::instantiate(&spec, Strategy::Proposed, programs);
        sys.run(5_000_000).cycles_u64()
    });
    for (&cost, &c) in costs.iter().zip(&cycles) {
        println!("{:>22} {c:>12}", format!("{cost}/{cost}"));
    }

    println!("\n=== Ablation 4 — TAG-CAM capacity sweep on PF2 (WCS, proposed) ===");
    println!(
        "{:>16} {:>12} {:>14} {:>12}",
        "CAM geometry", "exec cycles", "capacity IRQs", "ISR entries"
    );
    let cam_run = |geometry: Option<(u32, u32)>| {
        let (mut spec, lay) = presets::ppc_arm(Strategy::Proposed, LockKind::Turn, false);
        spec.cpus[1].cam_geometry = geometry;
        let programs = build_programs(Scenario::Worst, Strategy::Proposed, &params(), &lay);
        let mut sys = presets::instantiate(&spec, Strategy::Proposed, programs);
        let r = sys.run(5_000_000);
        let caps = sys
            .snoop_logic(1)
            .map(|c| c.capacity_evictions())
            .unwrap_or(0);
        (r.cycles_u64(), caps, r.cpus[1].isr_entries)
    };
    let geometries = [
        Some((2u32, 1u32)),
        Some((4, 2)),
        Some((16, 4)),
        Some((64, 8)),
        None,
    ];
    let cam_rows = par_map(&geometries, default_workers(), |&g| cam_run(g));
    for (&geometry, &(cycles, caps, isrs)) in geometries.iter().zip(&cam_rows) {
        let label = match geometry {
            Some((sets, ways)) => format!("{sets}x{ways}"),
            None => "full-map".into(),
        };
        println!("{label:>16} {cycles:>12} {caps:>14} {isrs:>12}");
    }

    println!("\n=== Ablation 5 — WCS scalability with processor count (proposed) ===");
    println!(
        "{:>6} {:>12} {:>12} {:>14}",
        "CPUs", "exec cycles", "bus retries", "bus data cyc"
    );
    for n in 2..=4usize {
        let protocols = vec![hmp_cache::ProtocolKind::Mesi; n];
        let (spec, lay) = presets::generic_many(&protocols, Strategy::Proposed, LockKind::Turn);
        let programs = hmp_workloads::build_programs_for(
            Scenario::Worst,
            Strategy::Proposed,
            &params(),
            &lay,
            n,
        );
        let mut sys = presets::instantiate(&spec, Strategy::Proposed, programs);
        let r = sys.run(20_000_000);
        assert!(r.is_clean_completion(), "{n} CPUs: {r}");
        println!(
            "{:>6} {:>12} {:>12} {:>14}",
            n,
            r.cycles_u64(),
            r.bus.retries,
            r.bus.data_cycles
        );
    }
}
