//! Fabric fairness sweep.
//!
//! Runs the WCS workload on homogeneous N-master MESI fabrics across
//! every arbitration discipline and both flat and bridged (two-segment)
//! bus shapes, under both simulation kernels. Prints per-master grant
//! shares and bus utilization, and writes the full grid to
//! `BENCH_FABRIC.json` (into `HMP_BENCH_JSON` if set, the current
//! directory otherwise).
//!
//! Set `HMP_FABRIC_REDUCED=1` for the CI smoke grid (N ∈ {2, 4} only).
//! Exits nonzero if any cell's kernels disagree, if a fair discipline
//! (round-robin / FCFS) hands out grant shares far from 1/N, or if fixed
//! priority fails to starve the lowest-priority master.

use hmp_bench::fabric::{arbitration_key, fabric_json, run_grid};
use hmp_bench::json::bench_json_dir;
use hmp_bench::sweep::default_workers;
use hmp_bus::ArbitrationPolicy;
use hmp_sim::export::validate_json;
use std::path::PathBuf;

/// Fair disciplines must keep every grant share within this distance of
/// 1/N on the symmetric workload (completion skew accounts for the
/// last-iteration tail).
const FAIR_SHARE_TOLERANCE: f64 = 0.05;

/// Per-window fairness tolerance for fair disciplines. Individual
/// telemetry windows see more jitter than the whole-run average (a
/// window boundary can split a burst), so the windowed bound is looser —
/// but it still catches transient starvation the run-level average
/// would wash out.
const WINDOW_FAIR_TOLERANCE: f64 = 0.15;

fn main() {
    let reduced = matches!(
        std::env::var("HMP_FABRIC_REDUCED").as_deref(),
        Ok(v) if !v.is_empty() && v != "0"
    );
    println!(
        "fabric sweep — arbitration fairness ({} grid)",
        if reduced { "reduced" } else { "full" }
    );
    println!();
    println!(
        "{:>7} {:>8} {:>15} {:>10} {:>9} {:>6} {:>11} {:>11}  shares",
        "masters",
        "segments",
        "arbitration",
        "outcome",
        "cycles",
        "util",
        "share-err",
        "w-share-err"
    );

    let cells = run_grid(reduced, default_workers());
    for c in &cells {
        let shares = c
            .shares()
            .iter()
            .map(|s| format!("{s:.3}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:>7} {:>8} {:>15} {:>10} {:>9} {:>6.3} {:>11.4} {:>11.4}  [{}]",
            c.masters,
            c.segments,
            arbitration_key(c.arbitration),
            hmp_bench::chaos::outcome_key(c.result.outcome),
            c.result.cycles_u64(),
            c.utilization(),
            c.max_share_error(),
            c.max_windowed_share_error(),
            shares,
        );
    }

    let json = fabric_json(reduced, &cells);
    validate_json(&json).unwrap_or_else(|e| panic!("malformed BENCH_FABRIC.json: {e}"));
    let dir = bench_json_dir().unwrap_or_else(|| PathBuf::from("."));
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
    let path = dir.join("BENCH_FABRIC.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("\nwrote {}", path.display());

    let divergent: Vec<_> = cells.iter().filter(|c| !c.kernels_agree).collect();
    assert!(
        divergent.is_empty(),
        "kernel divergence on {} fabric cell(s)",
        divergent.len()
    );
    for c in &cells {
        let n = c.masters as usize;
        match c.arbitration {
            ArbitrationPolicy::RoundRobin | ArbitrationPolicy::Fcfs => {
                assert!(
                    c.result.is_clean_completion(),
                    "{}x{} {}: fair discipline did not complete: {}",
                    c.masters,
                    c.segments,
                    arbitration_key(c.arbitration),
                    c.result
                );
                assert!(
                    c.max_share_error() <= FAIR_SHARE_TOLERANCE,
                    "{}x{} {}: share error {:.4} exceeds {:.2} (shares {:?})",
                    c.masters,
                    c.segments,
                    arbitration_key(c.arbitration),
                    c.max_share_error(),
                    FAIR_SHARE_TOLERANCE,
                    c.shares(),
                );
                assert!(
                    c.busy_windows() > 0,
                    "{}x{} {}: no telemetry window cleared the grant floor",
                    c.masters,
                    c.segments,
                    arbitration_key(c.arbitration),
                );
                assert!(
                    c.max_windowed_share_error() <= WINDOW_FAIR_TOLERANCE,
                    "{}x{} {}: windowed share error {:.4} exceeds {:.2} — \
                     transient starvation inside a window",
                    c.masters,
                    c.segments,
                    arbitration_key(c.arbitration),
                    c.max_windowed_share_error(),
                    WINDOW_FAIR_TOLERANCE,
                );
            }
            ArbitrationPolicy::FixedPriority => {
                let tail = c.shares()[n - 1];
                assert!(
                    tail < 0.5 / n as f64,
                    "{}x{} fixed_priority: lowest-priority master got share \
                     {tail:.4}, expected starvation below {:.4}",
                    c.masters,
                    c.segments,
                    0.5 / n as f64,
                );
            }
        }
    }
    println!(
        "fairness checks passed: RR/FCFS within {FAIR_SHARE_TOLERANCE:.2} of 1/N \
         (every busy window within {WINDOW_FAIR_TOLERANCE:.2}), \
         fixed priority starves the tail master"
    );
}
