//! `hmp-trace` — run one microbenchmark with the full observability stack
//! and export its timeline and metrics.
//!
//! ```text
//! cargo run -p hmp-bench --release --bin hmp-trace -- \
//!     --scenario wcs --strategy proposed --lines 32 \
//!     --trace-out trace.json --metrics-out metrics.json
//! ```
//!
//! Writes a Chrome/Perfetto trace-event file (open it at
//! <https://ui.perfetto.dev> or `chrome://tracing`) and a metrics snapshot
//! (latency histograms, retry causes, hot addresses) as JSON, then prints
//! the run summary. Argument parsing is hand-rolled — the workspace builds
//! against an offline registry, so there is no clap.
//!
//! Exit status: 0 for a clean completion, 1 for any other outcome
//! (deadlock, invariant violation, cycle limit), 2 for a usage error.

use hmp_bus::ArbitrationPolicy;
use hmp_cache::ProtocolKind;
use hmp_platform::Strategy;
use hmp_sim::export::{chrome_trace_with_series, metrics_json, timeseries_json, validate_json};
use hmp_sim::{exposition, TimeSeriesSpec};
use hmp_workloads::{prepare, MicrobenchParams, PlatformPick, RunSpec, Scenario};

const USAGE: &str = "\
hmp-trace — run one microbenchmark and export Perfetto trace + metrics JSON

USAGE:
  hmp-trace [OPTIONS]

OPTIONS:
  --scenario <wcs|bcs|tcs>                  workload scenario      [default: wcs]
  --strategy <disabled|software|proposed>   shared-data strategy   [default: proposed]
  --platform <ppc-arm|i486-ppc|pf1|fabric<N>x<S>>
                       hardware platform (fabric4x2 = 4 MESI
                       masters over 2 bus segments)                [default: ppc-arm]
  --arbitration <rr|fp|fcfs>                bus arbitration        [default: rr]
  --lines <N>          accessed cache lines per iteration          [default: 8]
  --exec <N>           exec_time workload parameter                [default: 1]
  --iters <N>          critical-section entries per task           [default: 8]
  --seed <N>           workload RNG seed                           [default: 1]
  --spans <N>          completed-span ring capacity                [default: 4096]
  --burst-penalty <N>  burst miss penalty in bus cycles            [default: 13]
  --max-cycles <N>     simulation cycle budget                     [default: 50000000]
  --invariants         enforce line invariants live (fail fast)
  --trace-out <FILE>   Chrome trace-event output                   [default: hmp_trace.json]
  --metrics-out <FILE> metrics snapshot output                     [default: hmp_metrics.json]
  --timeseries-out <FILE>   windowed telemetry JSON (arms the registry)
  --exposition-out <FILE>   Prometheus-style text exposition (arms the registry)
  --ts-window <N>      telemetry window width in bus cycles        [default: 8192]
  --profile            record the kernel self-profile (wall-time split)
  -h, --help           print this help

With the telemetry registry armed (either output flag), the Chrome
trace also carries per-window counter tracks: bus utilization, grants
per master, per-segment busy cycles, retries and completions.
";

struct Cli {
    scenario: Scenario,
    strategy: Strategy,
    platform: PlatformPick,
    arbitration: ArbitrationPolicy,
    lines: u32,
    exec: u32,
    iters: u32,
    seed: u64,
    spans: usize,
    burst_penalty: u64,
    max_cycles: u64,
    invariants: bool,
    trace_out: String,
    metrics_out: String,
    timeseries_out: Option<String>,
    exposition_out: Option<String>,
    ts_window: u64,
    profile: bool,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            scenario: Scenario::Worst,
            strategy: Strategy::Proposed,
            platform: PlatformPick::PpcArm,
            arbitration: ArbitrationPolicy::RoundRobin,
            lines: 8,
            exec: 1,
            iters: 8,
            seed: 1,
            spans: 4096,
            burst_penalty: 13,
            max_cycles: 50_000_000,
            invariants: false,
            trace_out: "hmp_trace.json".to_string(),
            metrics_out: "hmp_metrics.json".to_string(),
            timeseries_out: None,
            exposition_out: None,
            ts_window: 8192,
            profile: false,
        }
    }
}

/// Parses `fabric<N>x<S>` (e.g. `fabric4x2`) into a homogeneous MESI
/// fabric pick; a bare `fabric<N>` means one flat segment.
fn parse_fabric(s: &str) -> Result<PlatformPick, String> {
    let body = &s["fabric".len()..];
    let (n, segs) = match body.split_once('x') {
        Some((n, s)) => (n, s),
        None => (body, "1"),
    };
    let masters: u8 = n
        .parse()
        .map_err(|_| format!("--platform: bad fabric master count in {s:?}"))?;
    let segments: u8 = segs
        .parse()
        .map_err(|_| format!("--platform: bad fabric segment count in {s:?}"))?;
    if masters < 2 || segments == 0 || segments > masters {
        return Err(format!(
            "--platform: fabric needs 2+ masters and 1..=N segments, got {s:?}"
        ));
    }
    Ok(PlatformPick::Fabric {
        protocol: ProtocolKind::Mesi,
        masters,
        segments,
    })
}

fn parse(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    fn num<T: std::str::FromStr>(flag: &str, v: Option<String>) -> Result<T, String> {
        let v = v.ok_or_else(|| format!("{flag} needs a value"))?;
        v.parse().map_err(|_| format!("{flag}: bad value {v:?}"))
    }
    let mut cli = Cli::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => {
                cli.scenario = match args.next().as_deref() {
                    Some("wcs") | Some("worst") => Scenario::Worst,
                    Some("bcs") | Some("best") => Scenario::Best,
                    Some("tcs") | Some("typical") => Scenario::Typical,
                    other => {
                        return Err(format!("--scenario: expected wcs|bcs|tcs, got {other:?}"))
                    }
                }
            }
            "--strategy" => {
                cli.strategy = match args.next().as_deref() {
                    Some("disabled") => Strategy::CacheDisabled,
                    Some("software") => Strategy::SoftwareDrain,
                    Some("proposed") => Strategy::Proposed,
                    other => {
                        return Err(format!(
                            "--strategy: expected disabled|software|proposed, got {other:?}"
                        ))
                    }
                }
            }
            "--platform" => {
                cli.platform = match args.next().as_deref() {
                    Some("ppc-arm") => PlatformPick::PpcArm,
                    Some("i486-ppc") => PlatformPick::I486Ppc,
                    Some("pf1") => PlatformPick::Pf1Dual,
                    Some(f) if f.starts_with("fabric") => parse_fabric(f)?,
                    other => {
                        return Err(format!(
                            "--platform: expected ppc-arm|i486-ppc|pf1|fabric<N>x<S>, \
                             got {other:?}"
                        ))
                    }
                }
            }
            "--arbitration" => {
                cli.arbitration = match args.next().as_deref() {
                    Some("rr") => ArbitrationPolicy::RoundRobin,
                    Some("fp") => ArbitrationPolicy::FixedPriority,
                    Some("fcfs") => ArbitrationPolicy::Fcfs,
                    other => {
                        return Err(format!("--arbitration: expected rr|fp|fcfs, got {other:?}"))
                    }
                }
            }
            "--lines" => cli.lines = num(&arg, args.next())?,
            "--exec" => cli.exec = num(&arg, args.next())?,
            "--iters" => cli.iters = num(&arg, args.next())?,
            "--seed" => cli.seed = num(&arg, args.next())?,
            "--spans" => cli.spans = num(&arg, args.next())?,
            "--burst-penalty" => cli.burst_penalty = num(&arg, args.next())?,
            "--max-cycles" => cli.max_cycles = num(&arg, args.next())?,
            "--invariants" => cli.invariants = true,
            "--trace-out" => cli.trace_out = num(&arg, args.next())?,
            "--metrics-out" => cli.metrics_out = num(&arg, args.next())?,
            "--timeseries-out" => cli.timeseries_out = Some(num(&arg, args.next())?),
            "--exposition-out" => cli.exposition_out = Some(num(&arg, args.next())?),
            "--ts-window" => cli.ts_window = num(&arg, args.next())?,
            "--profile" => cli.profile = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if cli.spans == 0 {
        return Err("--spans must be at least 1 (the exporters need the span ring)".into());
    }
    if cli.ts_window == 0 {
        return Err("--ts-window must be at least 1 cycle".into());
    }
    Ok(cli)
}

fn main() {
    let cli = match parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("hmp-trace: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    let params = MicrobenchParams {
        lines_per_iter: cli.lines,
        exec_time: cli.exec,
        outer_iters: cli.iters,
        seed: cli.seed,
        ..Default::default()
    };
    let mut spec = RunSpec::new(cli.scenario, cli.strategy, params)
        .on(cli.platform)
        .with_arbitration(cli.arbitration)
        .with_burst_penalty(cli.burst_penalty)
        .with_spans(cli.spans);
    if cli.invariants {
        spec = spec.with_invariants();
    }
    let telemetry = cli.timeseries_out.is_some() || cli.exposition_out.is_some();
    if telemetry {
        spec = spec.with_timeseries(TimeSeriesSpec::with_window(cli.ts_window));
    }
    if cli.profile {
        spec = spec.with_profile();
    }
    spec.max_cycles = cli.max_cycles;

    let mut sys = prepare(&spec);
    let result = sys.run(spec.max_cycles);
    let metrics = sys.metrics().expect("span capacity > 0 enables metrics");

    let trace = chrome_trace_with_series(
        metrics.spans().iter(),
        metrics.events().iter(),
        sys.cpu_names(),
        result.timeseries.as_ref(),
    );
    validate_json(&trace).expect("exporter produced invalid trace JSON");
    std::fs::write(&cli.trace_out, &trace)
        .unwrap_or_else(|e| panic!("write {}: {e}", cli.trace_out));

    let mjson = metrics_json(&metrics.snapshot());
    validate_json(&mjson).expect("exporter produced invalid metrics JSON");
    std::fs::write(&cli.metrics_out, &mjson)
        .unwrap_or_else(|e| panic!("write {}: {e}", cli.metrics_out));

    if let Some(path) = &cli.timeseries_out {
        let snap = result.timeseries.as_ref().expect("registry was armed");
        let tsjson = timeseries_json(snap, result.profile.as_ref());
        validate_json(&tsjson).expect("exporter produced invalid timeseries JSON");
        std::fs::write(path, &tsjson).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!(
            "timeseries: {path} ({} bytes, {} windows)",
            tsjson.len(),
            snap.samples()
        );
    }
    if let Some(path) = &cli.exposition_out {
        let snap = result.timeseries.as_ref().expect("registry was armed");
        let text = exposition(snap, result.profile.as_ref());
        std::fs::write(path, &text).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("exposition: {path} ({} bytes)", text.len());
    }

    println!(
        "{} / {} on {:?}: lines={} exec={} iters={} seed={}",
        cli.scenario, cli.strategy, cli.platform, cli.lines, cli.exec, cli.iters, cli.seed
    );
    println!("{result}");
    println!("trace:   {} ({} bytes)", cli.trace_out, trace.len());
    println!("metrics: {} ({} bytes)", cli.metrics_out, mjson.len());

    if !result.is_clean_completion() {
        std::process::exit(1);
    }
}
